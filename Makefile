# Convenience wrappers; every target works from a clean checkout.
export PYTHONPATH := src

.PHONY: test docs-check bench serve-demo

# Tier-1 verification — must stay green.
test:
	python -m pytest -x -q

# Execute every fenced python block in README.md and docs/*.md so the
# documented examples cannot rot.
docs-check:
	python -m pytest tests/test_docs.py -q

# Regenerate the paper figures (series land in benchmarks/out/).
bench:
	python -m pytest benchmarks/ -q

serve-demo:
	python -m repro serve --repeat 2
