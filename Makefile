# Convenience wrappers; every target works from a clean checkout.
export PYTHONPATH := src

.PHONY: test test-concurrency test-shard test-kernels test-faults \
    test-parallel-recommend docs-check bench bench-smoke bench-fig23 \
    serve-demo

# The bench_*.py naming keeps the harnesses out of default pytest
# collection (tier-1 stays fast); targets pass the files explicitly.
BENCHES := $(wildcard benchmarks/bench_*.py)

# Tier-1 verification — must stay green.
test:
	python -m pytest -x -q

# The serving concurrency gate: 50-seed stress schedules, hypothesis
# interleavings vs the serialized oracle, and the deterministic
# race-harness schedules — run without -x so one flaky schedule still
# reports every other failure.
test-concurrency:
	python -m pytest tests/test_server_concurrency.py \
	    tests/test_snapshot_properties.py tests/test_cache_boundaries.py -q

# The sharded-build gate: unit coverage for the sharding layer (union
# encoding, shared-memory blocks, a real process pool, delta routing)
# plus hypothesis shard-equivalence properties vs the single-process
# cube and the deltaref rebuild oracle — run without -x for the same
# reason as the concurrency gate.
test-shard:
	python -m pytest tests/test_shard.py tests/test_shard_properties.py -q

# The fused-kernel gate: hypothesis bitwise-equality properties for all
# three kernels across every backend present (numba cases auto-skip
# when numba is not installed) plus the dispatch/counter unit coverage.
test-kernels:
	python -m pytest tests/test_kernel_properties.py -q

# The parallel-recommend gate: sharded-vs-serial bitwise equality for
# hierarchy units, Gram blocks, the partitioned rank sweep, spill-mode
# round-trips and full recommendations. The coreutils timeout is a
# backstop: a wedged worker pool fails the gate instead of hanging CI.
test-parallel-recommend:
	timeout 600 python -m pytest tests/test_parallel_recommend.py -q

# The fault-tolerance gate: the fault-injection registry, supervised
# worker-pool recovery (crash/retry/deadline/leak), kernel quarantine,
# atomic ingest, degraded-mode serving, and 32 seeded chaos schedules
# with concurrent traffic — run without -x so one bad schedule still
# reports every other failure.
test-faults:
	python -m pytest tests/test_faults.py -q

# Execute every fenced python block in README.md and docs/*.md so the
# documented examples cannot rot.
docs-check:
	python -m pytest tests/test_docs.py -q

# Regenerate the paper figures (series land in benchmarks/out/).
bench:
	python -m pytest $(BENCHES) -q

# Run every benchmark harness at tiny sizes: a does-it-still-run gate
# for CI, not a measurement (timing assertions are skipped). Fails
# loudly if any smoke JSON row comes out without its `speedup` field —
# such rows are invisible to the cross-PR perf tracking.
bench-smoke:
	REPRO_BENCH_SMOKE=1 python -m pytest $(BENCHES) -q --benchmark-disable
	python benchmarks/check_smoke.py

# The kernel-tier figure alone, at full scale (speedup floors + memory
# bandwidth vs the measured STREAM-triad roofline).
bench-fig23:
	python -m pytest benchmarks/bench_fig23_kernels.py -q

serve-demo:
	python -m repro serve --repeat 2
