"""Tests for repro.relational.schema."""

import pytest

from repro.relational.schema import (Attribute, AttributeKind, Schema,
                                     SchemaError, dimension, measure)


class TestAttribute:
    def test_kinds(self):
        assert dimension("a").is_dimension()
        assert not dimension("a").is_measure()
        assert measure("m").is_measure()
        assert not Attribute("x").is_dimension()

    def test_equality_and_hash(self):
        assert dimension("a") == dimension("a")
        assert dimension("a") != measure("a")
        assert len({dimension("a"), dimension("a")}) == 1


class TestSchema:
    def test_from_strings(self):
        s = Schema(["a", "b"])
        assert s.names == ("a", "b")
        assert s["a"].kind is AttributeKind.OTHER

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_position_and_contains(self):
        s = Schema([dimension("a"), measure("m")])
        assert s.position("m") == 1
        assert "a" in s and "zzz" not in s
        with pytest.raises(SchemaError):
            s.position("zzz")

    def test_getitem_by_index_and_name(self):
        s = Schema([dimension("a"), measure("m")])
        assert s[0].name == "a"
        assert s["m"].name == "m"
        with pytest.raises(SchemaError):
            _ = s["nope"]

    def test_dimensions_and_measures(self):
        s = Schema([dimension("a"), measure("m"), dimension("b")])
        assert s.dimensions() == ("a", "b")
        assert s.measures() == ("m",)

    def test_project_keeps_order_given(self):
        s = Schema([dimension("a"), dimension("b"), measure("m")])
        assert s.project(["m", "a"]).names == ("m", "a")

    def test_union_disjoint(self):
        s = Schema(["a"]).union(Schema(["b"]))
        assert s.names == ("a", "b")

    def test_union_overlap_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b"]).union(Schema(["b"]))

    def test_intersection_order(self):
        s1 = Schema(["a", "b", "c"])
        s2 = Schema(["c", "a"])
        assert s1.intersection(s2) == ("a", "c")

    def test_rename(self):
        s = Schema([dimension("a"), measure("m")]).rename({"a": "z"})
        assert s.names == ("z", "m")
        assert s["z"].is_dimension()

    def test_equality_and_iteration(self):
        s1 = Schema([dimension("a")])
        s2 = Schema([dimension("a")])
        assert s1 == s2 and hash(s1) == hash(s2)
        assert [a.name for a in s1] == ["a"]
