"""Tests for the data generators: correlation induction, errors, workloads."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datagen.correlate import (induce_correlation, rank_correlation,
                                     van_der_waerden_scores)
from repro.datagen.errors import (ErrorKind, ErrorSpec, corrupt,
                                  inject_drift, inject_duplicates,
                                  inject_missing)
from repro.datagen.perf import chain_paths, deep_hierarchies, flat_hierarchies
from repro.datagen.synthetic import (SyntheticConfig, make_auxiliary,
                                     make_dataset)
from repro.datagen.workloads import absentee_like, compas_like
from repro.relational.cube import Cube


class TestImanConover:
    def test_target_correlation_achieved(self, rng):
        target = rng.normal(size=400)
        sample = rng.exponential(size=400)
        for rho in (0.3, 0.6, 0.9):
            out = induce_correlation(target, sample, rho, rng)
            assert rank_correlation(target, out) == pytest.approx(rho,
                                                                  abs=0.12)

    def test_marginal_preserved_exactly(self, rng):
        target = rng.normal(size=100)
        sample = rng.exponential(size=100)
        out = induce_correlation(target, sample, 0.7, rng)
        np.testing.assert_allclose(np.sort(out), np.sort(sample))

    def test_negative_correlation(self, rng):
        target = rng.normal(size=300)
        out = induce_correlation(target, rng.normal(size=300), -0.8, rng)
        assert rank_correlation(target, out) < -0.6

    def test_perfect_correlation(self, rng):
        target = rng.normal(size=200)
        out = induce_correlation(target, rng.normal(size=200), 1.0, rng)
        assert rank_correlation(target, out) > 0.999

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            induce_correlation(np.ones(3), np.ones(4), 0.5, rng)

    def test_invalid_rho(self, rng):
        with pytest.raises(ValueError):
            induce_correlation(np.ones(3), np.ones(3), 1.5, rng)

    def test_vdw_scores_symmetric(self):
        scores = van_der_waerden_scores(np.asarray([1.0, 2.0, 3.0]))
        assert scores[1] == pytest.approx(0.0, abs=1e-9)
        assert scores[0] == pytest.approx(-scores[2])

    def test_norm_ppf_against_scipy(self):
        from scipy.stats import norm
        from repro.datagen.correlate import _norm_ppf
        p = np.linspace(0.001, 0.999, 97)
        np.testing.assert_allclose(_norm_ppf(p), norm.ppf(p), atol=1e-7)

    @given(st.integers(0, 1000))
    def test_rank_correlation_bounds(self, seed):
        r = np.random.default_rng(seed)
        a, b = r.normal(size=50), r.normal(size=50)
        assert -1.0 <= rank_correlation(a, b) <= 1.0


class TestSyntheticDataset:
    def test_paper_shape(self, rng):
        ds = make_dataset(rng)
        groups = Cube(ds).view(("group",))
        assert len(groups) == 100
        counts = [s.count for s in groups.groups.values()]
        assert 60 < np.mean(counts) < 140
        means = [s.mean for s in groups.groups.values()]
        assert 80 < np.mean(means) < 120

    def test_config_overrides(self, rng):
        ds = make_dataset(rng, SyntheticConfig(n_groups=10, row_mean=20,
                                               row_std=2))
        assert len(Cube(ds).view(("group",))) == 10

    def test_auxiliary_correlates(self, rng):
        ds = make_dataset(rng)
        aux = make_auxiliary(ds, "mean", 0.9, rng)
        view = Cube(ds).view(("group",))
        lookup = aux.lookup()
        keys = sorted(view.groups)
        target = np.asarray([view.groups[k].mean for k in keys])
        signal = np.asarray([lookup[k]["signal"] for k in keys])
        assert rank_correlation(target, signal) > 0.75


class TestErrorInjection:
    @pytest.fixture
    def dataset(self, rng):
        return make_dataset(rng, SyntheticConfig(n_groups=10))

    def test_missing_halves_count(self, dataset):
        rel = dataset.relation
        before = rel.group_rows(["group"])
        group = sorted(before)[0][0]
        after = inject_missing(rel, {"group": group}).group_rows(["group"])
        assert len(after[(group,)]) == pytest.approx(
            len(before[(group,)]) / 2, abs=1)
        # Other groups untouched.
        other = sorted(before)[1]
        assert len(after[other]) == len(before[other])

    def test_duplicates_add_half(self, dataset):
        rel = dataset.relation
        before = rel.group_rows(["group"])
        group = sorted(before)[0][0]
        after = inject_duplicates(rel, {"group": group}).group_rows(["group"])
        assert len(after[(group,)]) == pytest.approx(
            1.5 * len(before[(group,)]), abs=1)

    def test_drift_shifts_mean_only(self, dataset):
        rel = dataset.relation
        group = sorted(set(rel.column("group")))[0]
        drifted = inject_drift(rel, {"group": group}, "value", 5.0)
        before = rel.group_measure(["group"], "value")[(group,)]
        after = drifted.group_measure(["group"], "value")[(group,)]
        assert after.mean() - before.mean() == pytest.approx(5.0)
        assert after.std() == pytest.approx(before.std())
        assert len(drifted) == len(rel)

    def test_corrupt_report(self, dataset):
        specs = [ErrorSpec(ErrorKind.MISSING, {"group": "g001"}),
                 ErrorSpec(ErrorKind.DRIFT_UP, {"group": "g002"})]
        report = corrupt(dataset.relation, specs, "value")
        assert report.true_groups() == [("g001",), ("g002",)]
        assert len(report.relation) < len(dataset.relation)


class TestPerfStructures:
    def test_chain_paths_structure(self):
        h = chain_paths("x", 3, 8, branching=2)
        assert h.n_leaves == 8
        assert len(h.attributes) == 3
        # Level 0 groups leaves into runs of 4.
        np.testing.assert_allclose(h.leaf_counts[0], [4, 4])

    def test_flat_and_deep(self):
        flat = flat_hierarchies(3, 10)
        assert len(flat) == 3 and all(h.n_leaves == 10 for h in flat)
        deep = deep_hierarchies(2, 3, 9)
        assert all(len(h.attributes) == 3 for h in deep)
        assert all(h.n_leaves == 9 for h in deep)


class TestWorkloads:
    def test_absentee_shape(self, rng):
        ds = absentee_like(rng, n_rows=5000)
        assert len(ds.relation) == 5000
        assert len(ds.dimensions) == 4
        assert len(ds.attribute_domain("county")) == 100
        assert len(ds.attribute_domain("gender")) == 3

    def test_compas_shape(self, rng):
        ds = compas_like(rng, n_rows=5000, n_days=100)
        assert len(ds.relation) == 5000
        assert len(ds.attribute_domain("day")) == 100
        # time is a real 3-attribute hierarchy with valid FDs.
        ds.dimensions.validate(ds.relation)
