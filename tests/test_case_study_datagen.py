"""Tests for the COVID / FIST / Vote case-study simulators."""

import numpy as np
import pytest

from repro.datagen.covid import (ALL_ISSUES, COMPLAINT_DAY, GLOBAL_ISSUES,
                                 IssueKind, PREVALENT_KINDS, SUBTLE_KINDS,
                                 US_ISSUES, apply_issue, global_panel,
                                 us_panel)
from repro.datagen.fist import (ScenarioKind, apply_scenario, make_scenarios,
                                make_world)
from repro.datagen.vote import inject_missing_ballots
from repro.datagen.vote import make_world as make_vote_world
from repro.relational.cube import Cube


class TestCovidPanels:
    def test_issue_roster_matches_tables(self):
        assert len(US_ISSUES) == 16
        assert len(GLOBAL_ISSUES) == 14
        assert len(ALL_ISSUES) == 30
        # Tables 1–2: Reptile detects 21 of 30.
        assert sum(i.expected_detected for i in ALL_ISSUES) == 21
        # Failures are exactly the prevalent + subtle categories.
        for issue in ALL_ISSUES:
            if issue.kind in PREVALENT_KINDS or issue.kind in SUBTLE_KINDS:
                assert not issue.expected_detected
            else:
                assert issue.expected_detected

    def test_us_panel_structure(self, rng):
        ds = us_panel(rng, n_days=20)
        assert set(ds.dimensions.names) == {"location", "time"}
        assert len(ds.attribute_domain("day")) == 20
        assert len(ds.attribute_domain("state")) == 30

    def test_global_panel_structure(self, rng):
        ds = global_panel(rng, n_days=15)
        assert len(ds.attribute_domain("region")) == 4
        assert len(ds.attribute_domain("country")) == 48
        ds.dimensions.validate(ds.relation)

    def test_missing_reports_lowers_day_value(self, rng):
        issue = US_ISSUES[0]  # Texas missing reports
        clean = us_panel(rng)
        corrupted = apply_issue(clean, issue, "state")
        key = {"state": issue.location, "day": COMPLAINT_DAY}
        before = Cube(clean).group_state(key).sum
        after = Cube(corrupted).group_state(key).sum
        assert after < 0.6 * before
        # Other days untouched.
        other = {"state": issue.location, "day": COMPLAINT_DAY - 1}
        assert Cube(corrupted).group_state(other).sum == \
            Cube(clean).group_state(other).sum

    def test_backlog_raises_day_value(self, rng):
        issue = next(i for i in US_ISSUES if i.kind is IssueKind.BACKLOG)
        clean = us_panel(rng)
        corrupted = apply_issue(clean, issue, "state")
        key = {"state": issue.location, "day": COMPLAINT_DAY}
        assert Cube(corrupted).group_state(key).sum > \
            1.5 * Cube(clean).group_state(key).sum

    def test_prevalent_affects_all_days(self, rng):
        issue = next(i for i in US_ISSUES
                     if i.kind is IssueKind.PREVALENT_MISSING)
        clean = us_panel(rng)
        corrupted = apply_issue(clean, issue, "state")
        for day in (5, 20, COMPLAINT_DAY):
            key = {"state": issue.location, "day": day}
            assert Cube(corrupted).group_state(key).sum < \
                Cube(clean).group_state(key).sum

    def test_definition_change_is_onward(self, rng):
        issue = next(i for i in US_ISSUES
                     if i.kind is IssueKind.DEFINITION_CHANGE)
        clean = us_panel(rng)
        corrupted = apply_issue(clean, issue, "state")
        before_key = {"state": issue.location, "day": COMPLAINT_DAY - 1}
        after_key = {"state": issue.location, "day": COMPLAINT_DAY + 2}
        assert Cube(corrupted).group_state(before_key).sum == \
            Cube(clean).group_state(before_key).sum
        assert Cube(corrupted).group_state(after_key).sum > \
            Cube(clean).group_state(after_key).sum


class TestFistWorld:
    def test_world_structure(self, rng):
        world = make_world(rng)
        assert len(world.regions) == 4
        assert all(len(d) == 3 for d in world.districts.values())
        assert "sensing_village" in world.dataset.auxiliary
        world.dataset.dimensions.validate(world.dataset.relation)

    def test_severity_in_range(self, rng):
        world = make_world(rng)
        values = world.dataset.relation.measure_array("severity")
        assert values.min() >= 1.0 and values.max() <= 10.0

    def test_rainfall_inverse_to_drought(self, rng):
        world = make_world(rng)
        aux = world.dataset.auxiliary["sensing_district"]
        lookup = aux.lookup()
        high, low = [], []
        for (region, year), lift in world.drought.items():
            for district in world.districts[region]:
                rain = lookup.get((district, year))
                if rain is None:
                    continue
                (high if lift > 2.0 else low).append(rain["rainfall"])
        assert np.mean(high) < np.mean(low)

    def test_scenario_roster(self, rng):
        world = make_world(rng)
        scenarios = make_scenarios(world, rng)
        assert len(scenarios) == 22
        assert sum(s.expected_resolved for s in scenarios) == 20
        kinds = [s.kind for s in scenarios]
        assert kinds.count(ScenarioKind.YEAR_SHIFT) == 6
        assert kinds.count(ScenarioKind.AMBIGUOUS) == 1
        assert kinds.count(ScenarioKind.TWO_DISTRICT_STD) == 1

    def test_year_shift_moves_records(self, rng):
        world = make_world(rng)
        scenarios = make_scenarios(world, rng)
        shift = next(s for s in scenarios
                     if s.kind is ScenarioKind.YEAR_SHIFT)
        corrupted = apply_scenario(world, shift, rng)
        key = {"district": shift.district, "year": shift.year}
        before = Cube(world.dataset).group_state(key).count
        after = Cube(corrupted).group_state(key).count
        assert after < before
        next_year = {"district": shift.district, "year": shift.year + 1}
        assert Cube(corrupted).group_state(next_year).count > \
            Cube(world.dataset).group_state(next_year).count
        # Total record count conserved (rows moved, not deleted).
        assert len(corrupted.relation) == len(world.dataset.relation)

    def test_missing_drops_records(self, rng):
        world = make_world(rng)
        scenarios = make_scenarios(world, rng)
        missing = next(s for s in scenarios
                       if s.kind is ScenarioKind.MISSING)
        corrupted = apply_scenario(world, missing, rng)
        assert len(corrupted.relation) < len(world.dataset.relation)


class TestVoteWorld:
    def test_structure(self, rng):
        world = make_vote_world(rng)
        assert len(world.states) == 6
        assert all(len(c) == 20 for c in world.counties.values())
        assert "election_2016" in world.dataset.auxiliary

    def test_2016_predicts_2020(self, rng):
        world = make_vote_world(rng)
        counties = [c for s in world.states for c in world.counties[s]]
        s16 = np.asarray([world.share_2016[c] for c in counties])
        s20 = np.asarray([world.share_2020[c] for c in counties])
        assert np.corrcoef(s16, s20)[0, 1] > 0.8

    def test_mean_tracks_share(self, rng):
        world = make_vote_world(rng)
        cube = Cube(world.dataset)
        state = world.states[0]
        county = world.counties[state][0]
        observed = cube.group_state({"county": county}).mean
        assert observed == pytest.approx(world.share_2020[county], abs=0.02)

    def test_missing_ballots_halve_counts(self, rng):
        world = make_vote_world(rng)
        state = world.states[0]
        victim = world.counties[state][0]
        corrupted = inject_missing_ballots(world, [victim], fraction=0.5)
        before = Cube(world.dataset).group_state({"county": victim}).count
        after = Cube(corrupted).group_state({"county": victim}).count
        assert after == pytest.approx(before / 2, abs=1)
