"""Tests for AIC-based model selection (Appendix K)."""

import numpy as np
import pytest

from repro.model.features import AuxiliaryFeature
from repro.model.selection import (SUBSTANTIAL_DELTA, compare_models,
                                   delta_aic, substantially_better)
from repro.relational.aggregates import AggState
from repro.relational.cube import GroupView
from repro.relational.dataset import AuxiliaryDataset
from repro.relational.relation import Relation
from repro.relational.schema import Schema, dimension, measure


@pytest.fixture
def clustered_view(rng):
    """Two-level panel with cluster-specific slopes on a known signal."""
    groups = {}
    aux_rows = []
    for c, cluster in enumerate(("c0", "c1", "c2", "c3")):
        slope = 0.5 + 0.5 * c
        for i in range(15):
            signal = float(rng.normal())
            mean = 10.0 + slope * signal + float(rng.normal(0, 0.1))
            key = (cluster, f"{cluster}-u{i:02d}")
            groups[key] = AggState.from_stats(5, mean, 0.5)
            aux_rows.append((key[1], signal))
    view = GroupView(("cluster", "unit"), groups)
    aux_rel = Relation.from_rows(
        Schema([dimension("unit"), measure("signal")]), aux_rows)
    aux = AuxiliaryDataset("sig", aux_rel, join_on=("unit",),
                           measures=("signal",))
    return view, aux


class TestCompareModels:
    def test_four_variants_scored(self, clustered_view):
        view, aux = clustered_view
        scores = compare_models(view, "mean", ("cluster",),
                                auxiliary_specs=[AuxiliaryFeature(aux,
                                                                  "signal")],
                                n_iterations=8)
        assert set(scores) == {"linear", "linear-f", "multilevel",
                               "multilevel-f"}
        for s in scores.values():
            assert np.isfinite(s.aic)

    def test_multilevel_f_wins_with_cluster_slopes(self, clustered_view):
        view, aux = clustered_view
        scores = compare_models(view, "mean", ("cluster",),
                                auxiliary_specs=[AuxiliaryFeature(aux,
                                                                  "signal")],
                                n_iterations=10)
        deltas = delta_aic(scores)
        assert deltas["multilevel-f"] == 0.0
        assert deltas["linear"] > SUBSTANTIAL_DELTA
        assert substantially_better(scores, "multilevel-f", "linear")

    def test_delta_aic_nonnegative(self, clustered_view):
        view, aux = clustered_view
        scores = compare_models(view, "mean", ("cluster",), n_iterations=5)
        deltas = delta_aic(scores)
        assert min(deltas.values()) == 0.0
        assert all(v >= 0 for v in deltas.values())

    def test_more_parameters_counted(self, clustered_view):
        view, _ = clustered_view
        scores = compare_models(view, "mean", ("cluster",), n_iterations=5)
        assert scores["multilevel"].n_parameters > \
            scores["linear"].n_parameters
