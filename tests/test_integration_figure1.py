"""End-to-end reproduction of the paper's running example (Figure 1).

The FIST researcher complains that Ofla's 1986 severity std is too high.
Two villages have abnormally low means: Darube (legitimately — a localized
rain event, visible in the satellite auxiliary data) and Zata (a reporting
error). Without the auxiliary dataset Reptile flags Darube (its drop is
larger); once the rainfall data is registered, Darube is *explained away*
and Zata is highlighted — the exact Figure 1 walkthrough.
"""

import numpy as np
import pytest

from repro.core import Complaint, Reptile, ReptileConfig
from repro.relational import (AuxiliaryDataset, HierarchicalDataset,
                              Relation, Schema, dimension, measure)

VILLAGES = {"Ofla": ["Adishim", "Darube", "Dinka", "Fala", "Zata"],
            "Alaje": ["Bora", "Chelena", "Dela", "Emba", "Feres"]}
YEARS = tuple(range(1982, 1990))
DROUGHT_YEAR = 1986


def severity_from_rainfall(rainfall: float) -> float:
    """Ground-truth physics: less rain, more severe drought."""
    return float(np.clip(11.0 - rainfall / 60.0, 1.0, 10.0))


@pytest.fixture(scope="module")
def figure1_world():
    rng = np.random.default_rng(99)
    rows = []
    rain_rows = []
    for district, villages in VILLAGES.items():
        for village in villages:
            for year in YEARS:
                rainfall = 360.0 + rng.normal(0, 25.0)
                if year == DROUGHT_YEAR:
                    rainfall = 150.0 + rng.normal(0, 20.0)
                    if village == "Darube":
                        # Localized rain event: Darube's 1986 was genuinely
                        # wet, so its low severity is *correct*.
                        rainfall = 600.0 + rng.normal(0, 20.0)
                rain_rows.append((village, year, rainfall))
                level = severity_from_rainfall(rainfall)
                for _ in range(8):
                    reported = float(np.clip(level + rng.normal(0, 0.6),
                                             1.0, 10.0))
                    if village == "Zata" and year == DROUGHT_YEAR:
                        # The data error: Zata under-reports 1986.
                        reported = max(1.0, reported - 4.5)
                    rows.append((district, village, year, reported))

    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    dataset = HierarchicalDataset.build(
        Relation.from_rows(schema, rows),
        {"geo": ["district", "village"], "time": ["year"]}, "severity")
    sensing = Relation.from_rows(
        Schema([dimension("village"), dimension("year"),
                measure("rainfall")]), rain_rows)
    aux = AuxiliaryDataset("sensing", sensing, join_on=("village", "year"),
                           measures=("rainfall",))
    return dataset, aux


def _recommend(dataset, k=5):
    engine = Reptile(dataset, config=ReptileConfig(n_em_iterations=12))
    session = engine.session(group_by=["year"],
                             filters={"district": "Ofla"})
    complaint = Complaint.too_high({"year": DROUGHT_YEAR}, "std")
    return session.recommend(complaint, k=k)


def _village_ranking(recommendation):
    return [g.coordinates["village"]
            for g in recommendation.per_hierarchy["geo"].groups]


class TestFigure1:
    def test_both_low_villages_are_visible(self, figure1_world):
        """Figure 1b: Darube and Zata have abnormally low 1986 means."""
        dataset, _ = figure1_world
        from repro.relational import Cube
        view = Cube(dataset).view(
            ("village",), filters={"district": "Ofla",
                                   "year": DROUGHT_YEAR})
        means = {k[0]: s.mean for k, s in view.groups.items()}
        normal = [m for v, m in means.items()
                  if v not in ("Darube", "Zata")]
        assert means["Darube"] < min(normal) - 1.0
        assert means["Zata"] < min(normal) - 1.0

    def test_without_auxiliary_darube_confounds(self, figure1_world):
        """Without sensing data, Darube's larger deviation wins."""
        dataset, _ = figure1_world
        ranking = _village_ranking(_recommend(dataset))
        assert ranking[0] == "Darube"

    def test_with_auxiliary_zata_is_highlighted(self, figure1_world):
        """Figure 1c: rainfall explains Darube away; Zata is the error."""
        dataset, aux = figure1_world
        with_aux = HierarchicalDataset.build(
            dataset.relation,
            {"geo": ["district", "village"], "time": ["year"]},
            "severity", auxiliary=[aux])
        recommendation = _recommend(with_aux)
        ranking = _village_ranking(recommendation)
        assert ranking[0] == "Zata"
        # Darube's repair should now buy almost nothing.
        geo = recommendation.per_hierarchy["geo"]
        gains = {g.coordinates["village"]: g.margin_gain
                 for g in geo.groups}
        assert gains["Zata"] > 3 * abs(gains.get("Darube", 0.0))

    def test_recommended_hierarchy_is_geography(self, figure1_world):
        """Drilling villages must beat drilling time for this complaint."""
        dataset, aux = figure1_world
        with_aux = HierarchicalDataset.build(
            dataset.relation,
            {"geo": ["district", "village"], "time": ["year"]},
            "severity", auxiliary=[aux])
        engine = Reptile(with_aux, config=ReptileConfig(n_em_iterations=8))
        session = engine.session(group_by=["year"],
                                 filters={"district": "Ofla"})
        complaint = Complaint.too_high({"year": DROUGHT_YEAR}, "std")
        recommendation = session.recommend(complaint)
        assert recommendation.best_hierarchy == "geo"

    def test_repair_resolves_complaint_substantially(self, figure1_world):
        dataset, aux = figure1_world
        with_aux = HierarchicalDataset.build(
            dataset.relation,
            {"geo": ["district", "village"], "time": ["year"]},
            "severity", auxiliary=[aux])
        recommendation = _recommend(with_aux)
        geo = recommendation.per_hierarchy["geo"]
        top = geo.best
        # Zata's repair materially reduces the std; it cannot remove all
        # of it because Darube's *legitimate* deviation remains in the
        # data (that is the point of the example).
        assert top.margin_gain > 0.05 * geo.base_penalty
