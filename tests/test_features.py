"""Tests for feature generation (§3.3) and view designs."""

import numpy as np
import pytest

from repro.model.features import (AuxiliaryFeature, CustomFeature,
                                  FeatureError, FeaturePlan, LagFeature,
                                  MainEffectFeature, build_view_design)
from repro.relational.aggregates import AggState
from repro.relational.cube import Cube, GroupView
from repro.relational.dataset import AuxiliaryDataset
from repro.relational.relation import Relation
from repro.relational.schema import Schema, dimension, measure


@pytest.fixture
def view():
    """A (region, year) view with two regions × three years."""
    groups = {}
    means = {("r1", 2000): 2.0, ("r1", 2001): 4.0, ("r1", 2002): 6.0,
             ("r2", 2000): 10.0, ("r2", 2001): 12.0, ("r2", 2002): 14.0}
    for key, mean in means.items():
        groups[key] = AggState.from_stats(count=5, mean=mean, std=1.0)
    return GroupView(("region", "year"), groups)


class TestMainEffect:
    def test_median_per_value(self, view):
        built = MainEffectFeature("region").build(view, "mean")
        assert built.mapping["r1"] == pytest.approx(4.0)
        assert built.mapping["r2"] == pytest.approx(12.0)

    def test_year_main_effect(self, view):
        built = MainEffectFeature("year").build(view, "mean")
        assert built.mapping[2000] == pytest.approx(6.0)   # median(2, 10)
        assert built.mapping[2002] == pytest.approx(10.0)  # median(6, 14)

    def test_leak_guard_single_group_values(self):
        """Values backed by one group map to the overall median (§3.3.1+)."""
        groups = {("g1",): AggState.from_stats(3, 5.0),
                  ("g2",): AggState.from_stats(3, 9.0),
                  ("g3",): AggState.from_stats(3, 100.0)}
        view = GroupView(("g",), groups)
        built = MainEffectFeature("g").build(view, "mean")
        assert built.mapping["g3"] == pytest.approx(9.0)  # overall median
        assert built.mapping["g1"] == pytest.approx(9.0)

    def test_not_applicable(self, view):
        spec = MainEffectFeature("nope")
        assert not spec.applicable(view)
        with pytest.raises(FeatureError):
            spec.build(view, "mean")


class TestLag:
    def test_previous_year(self, view):
        built = LagFeature("year", lag=1).build(view, "mean")
        # Feature of 2001 = median mean of 2000 groups = median(2,10) = 6.
        assert built.mapping[2001] == pytest.approx(6.0)
        # 2000 has no predecessor: falls back to the overall median.
        assert built.mapping[2000] == pytest.approx(8.0)

    def test_non_numeric_rejected(self):
        groups = {("a",): AggState.from_stats(2, 1.0)}
        view = GroupView(("x",), groups)
        with pytest.raises(FeatureError):
            LagFeature("x").build(view, "mean")


class TestAuxiliary:
    @pytest.fixture
    def aux(self):
        rel = Relation.from_rows(
            Schema([dimension("region"), measure("rain")]),
            [("r1", 100.0), ("r2", 300.0)])
        return AuxiliaryDataset("sense", rel, join_on=("region",),
                                measures=("rain",))

    def test_builds_mapping(self, view, aux):
        built = AuxiliaryFeature(aux, "rain").build(view, "mean")
        assert built.mapping["r1"] == 100.0
        assert built.name == "aux:sense.rain"

    def test_applicability(self, view, aux):
        assert AuxiliaryFeature(aux, "rain").applicable(view)
        small = GroupView(("year",), {})
        assert not AuxiliaryFeature(aux, "rain").applicable(small)

    def test_unknown_measure(self, view, aux):
        with pytest.raises(FeatureError):
            AuxiliaryFeature(aux, "zzz").build(view, "mean")

    def test_multi_attribute_join(self, view):
        rel = Relation.from_rows(
            Schema([dimension("region"), dimension("year"), measure("m")]),
            [("r1", 2000, 7.0), ("r2", 2002, 9.0)])
        aux = AuxiliaryDataset("multi", rel, join_on=("region", "year"),
                               measures=("m",))
        built = AuxiliaryFeature(aux, "m").build(view, "mean")
        assert built.value_for(view.group_attrs, ("r1", 2000)) == 7.0
        # Missing keys fall back to the default (median of known values).
        assert built.value_for(view.group_attrs, ("r1", 2001)) == \
            pytest.approx(8.0)


class TestCustom:
    def test_builder_receives_view(self, view):
        def builder(v, target):
            return {k[0]: 1.0 for k in v.groups}

        spec = CustomFeature("const", ("region",), builder)
        built = spec.build(view, "mean")
        assert built.mapping == {"r1": 1.0, "r2": 1.0}


class TestFeaturePlan:
    def test_default_builds_main_effects(self, view):
        fs = FeaturePlan().build(view, "mean")
        assert fs.column_names == ["intercept", "main:region", "main:year"]

    def test_extra_specs_appended(self, view):
        plan = FeaturePlan(extra_specs=[LagFeature("year")])
        fs = plan.build(view, "mean")
        assert "lag1:year" in fs.column_names

    def test_explicit_specs_replace_defaults(self, view):
        plan = FeaturePlan(specs=[MainEffectFeature("year")])
        fs = plan.build(view, "mean")
        assert fs.column_names == ["intercept", "main:year"]

    def test_inapplicable_specs_skipped(self, view):
        plan = FeaturePlan(extra_specs=[MainEffectFeature("village")])
        fs = plan.build(view, "mean")
        assert "main:village" not in fs.column_names

    def test_standardization(self, view):
        fs = FeaturePlan(standardize=True).build(view, "mean")
        keys = list(view.groups)
        x = fs.design_rows(keys)
        np.testing.assert_allclose(x[:, 1].mean(), 0.0, atol=1e-9)
        np.testing.assert_allclose(x[:, 1].std(), 1.0, atol=1e-9)

    def test_random_effects_selection(self, view):
        plan = FeaturePlan(random_effects=("intercept", "main:region"))
        fs = plan.build(view, "mean")
        assert fs.z_indices() == [0, 1]

    def test_unknown_random_effect(self, view):
        plan = FeaturePlan(random_effects=("nope",))
        fs = plan.build(view, "mean")
        with pytest.raises(FeatureError):
            fs.z_indices()


class TestViewDesign:
    def test_clusters_are_contiguous(self, view):
        vd = build_view_design(view, "mean", FeaturePlan(),
                               cluster_attrs=("region",))
        regions = [k[0] for k in vd.keys]
        assert regions == sorted(regions)
        np.testing.assert_array_equal(vd.design.sizes, [3, 3])

    def test_y_alignment(self, view):
        vd = build_view_design(view, "mean", FeaturePlan(),
                               cluster_attrs=("region",))
        for key, i in vd.row_of.items():
            assert vd.y[i] == pytest.approx(view.groups[key].mean)

    def test_unknown_cluster_attr(self, view):
        with pytest.raises(FeatureError):
            build_view_design(view, "mean", FeaturePlan(),
                              cluster_attrs=("zzz",))

    def test_empty_view_rejected(self):
        empty = GroupView(("a",), {})
        with pytest.raises(FeatureError):
            build_view_design(empty, "mean", FeaturePlan(), cluster_attrs=())

    def test_integration_with_cube(self, ofla_dataset):
        view = Cube(ofla_dataset).view(("district", "village"))
        vd = build_view_design(view, "mean", FeaturePlan(),
                               cluster_attrs=("district",))
        assert vd.design.n == len(view)
        assert vd.design.m == 3  # intercept + 2 main effects
