"""Shared fixtures: the paper's running examples as reusable datasets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.factorized import AttributeOrder, HierarchyPaths
from repro.relational import (HierarchicalDataset, Relation, Schema,
                              dimension, measure)

# Keep hypothesis fast and deterministic-ish in CI.
settings.register_profile(
    "repro", deadline=None, max_examples=40,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def figure3_order() -> AttributeOrder:
    """The paper's Figure 3 structure: Time [t1,t2] × Geo d1→{v1,v2}, d2→{v3}."""
    time = HierarchyPaths("time", ["T"], [("t1",), ("t2",)])
    geo = HierarchyPaths("geo", ["D", "V"],
                         [("d1", "v1"), ("d1", "v2"), ("d2", "v3")])
    return AttributeOrder([time, geo])


@pytest.fixture
def ofla_dataset() -> HierarchicalDataset:
    """A small Example-1-style drought dataset (district/village × year)."""
    rng = np.random.default_rng(7)
    rows = []
    villages = {"Ofla": ["Adishim", "Darube", "Dinka", "Fala", "Zata"],
                "Alaje": ["Bora", "Chelena", "Dela"]}
    for district, vs in villages.items():
        for village in vs:
            for year in (1984, 1985, 1986, 1987):
                base = 7.0 if district == "Ofla" else 5.0
                for _ in range(int(rng.integers(4, 9))):
                    severity = float(np.clip(base + rng.normal(0, 1.0), 1, 10))
                    rows.append((district, village, year, severity))
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    relation = Relation.from_rows(schema, rows)
    return HierarchicalDataset.build(
        relation, {"geo": ["district", "village"], "time": ["year"]},
        "severity")


@pytest.fixture
def tiny_relation() -> Relation:
    schema = Schema([dimension("a"), dimension("b"), measure("x")])
    return Relation.from_rows(schema, [
        ("a1", "b1", 1.0), ("a1", "b2", 2.0), ("a2", "b1", 3.0),
        ("a2", "b2", 4.0), ("a2", "b2", 5.0)])
