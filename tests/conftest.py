"""Shared fixtures: the paper's running examples as reusable datasets,
plus the deterministic race harness for the concurrency suite."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.factorized import AttributeOrder, HierarchyPaths
from repro.relational import (HierarchicalDataset, Relation, Schema,
                              dimension, measure)

# Keep hypothesis fast and deterministic-ish in CI.
settings.register_profile(
    "repro", deadline=None, max_examples=40,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def figure3_order() -> AttributeOrder:
    """The paper's Figure 3 structure: Time [t1,t2] × Geo d1→{v1,v2}, d2→{v3}."""
    time = HierarchyPaths("time", ["T"], [("t1",), ("t2",)])
    geo = HierarchyPaths("geo", ["D", "V"],
                         [("d1", "v1"), ("d1", "v2"), ("d2", "v3")])
    return AttributeOrder([time, geo])


@pytest.fixture
def ofla_dataset() -> HierarchicalDataset:
    """A small Example-1-style drought dataset (district/village × year)."""
    rng = np.random.default_rng(7)
    rows = []
    villages = {"Ofla": ["Adishim", "Darube", "Dinka", "Fala", "Zata"],
                "Alaje": ["Bora", "Chelena", "Dela"]}
    for district, vs in villages.items():
        for village in vs:
            for year in (1984, 1985, 1986, 1987):
                base = 7.0 if district == "Ofla" else 5.0
                for _ in range(int(rng.integers(4, 9))):
                    severity = float(np.clip(base + rng.normal(0, 1.0), 1, 10))
                    rows.append((district, village, year, severity))
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    relation = Relation.from_rows(schema, rows)
    return HierarchicalDataset.build(
        relation, {"geo": ["district", "village"], "time": ["year"]},
        "severity")


class RaceScheduler:
    """Deterministic scheduling over the serving layer's trace points.

    The concurrency primitives call
    :func:`repro.serving.concurrency.trace` at every lock boundary
    (``rw.read_acquired``, ``rw.write_wait``, ``cache.fill``, ...).
    This harness installs a hook that *parks* threads at gated points, so
    a test can drive a specific interleaving step by step instead of
    hoping a sleep-based race fires:

        race.gate("cache.fill", count=2)        # next 2 arrivals park
        ... start two threads ...
        race.wait_parked("cache.fill", 2)       # both stand at the gate
        race.release("cache.fill")              # go, in arrival order
        race.release("cache.fill")

    Every park has a hard timeout — a test that deadlocks its threads
    fails with a clear error instead of hanging the suite — and fixture
    teardown releases every parked thread unconditionally.
    """

    #: Hard cap on how long a parked thread may wait for release().
    HARD_TIMEOUT = 20.0

    def __init__(self):
        self._cond = threading.Condition()
        self._quota: dict[str, int] = {}    # point -> arrivals still to park
        self._parked: dict[str, list[threading.Event]] = {}
        self._hits: dict[str, int] = {}
        self.failures: list[str] = []       # park timeouts (checked at exit)

    # -- the trace hook (runs on the racing threads) -----------------------------
    def __call__(self, point: str, **info) -> None:
        with self._cond:
            self._hits[point] = self._hits.get(point, 0) + 1
            if self._quota.get(point, 0) <= 0:
                return
            self._quota[point] -= 1
            event = threading.Event()
            self._parked.setdefault(point, []).append(event)
            self._cond.notify_all()
        if not event.wait(self.HARD_TIMEOUT):
            message = (f"thread {threading.current_thread().name!r} parked "
                       f"at {point!r} was never released")
            with self._cond:
                self.failures.append(message)
            raise RuntimeError(f"race harness: {message}")

    # -- test-side controls ------------------------------------------------------
    def gate(self, point: str, count: int = 1) -> None:
        """Arm ``point``: the next ``count`` threads reaching it park."""
        with self._cond:
            self._quota[point] = self._quota.get(point, 0) + count

    def wait_parked(self, point: str, count: int = 1,
                    timeout: float = 10.0) -> None:
        """Block until ``count`` threads stand parked at ``point``."""
        with self._cond:
            ok = self._cond.wait_for(
                lambda: len(self._parked.get(point, [])) >= count, timeout)
            if not ok:
                raise AssertionError(
                    f"only {len(self._parked.get(point, []))} of {count} "
                    f"threads reached {point!r} within {timeout}s")

    def release(self, point: str, count: int = 1) -> int:
        """Release up to ``count`` parked threads, in arrival order."""
        released = 0
        with self._cond:
            queue = self._parked.get(point, [])
            while queue and released < count:
                queue.pop(0).set()
                released += 1
        return released

    def hits(self, point: str) -> int:
        """How many times any thread crossed ``point`` (parked or not)."""
        with self._cond:
            return self._hits.get(point, 0)

    def parked(self, point: str) -> int:
        with self._cond:
            return len(self._parked.get(point, []))

    def release_all(self) -> None:
        with self._cond:
            self._quota.clear()
            for queue in self._parked.values():
                for event in queue:
                    event.set()
            self._parked.clear()


@pytest.fixture
def race():
    """Install a :class:`RaceScheduler` as the serving trace hook."""
    from repro.serving.concurrency import set_trace_hook

    scheduler = RaceScheduler()
    previous = set_trace_hook(scheduler)
    try:
        yield scheduler
    finally:
        set_trace_hook(previous)
        scheduler.release_all()
        assert not scheduler.failures, scheduler.failures


@pytest.fixture
def tiny_relation() -> Relation:
    schema = Schema([dimension("a"), dimension("b"), measure("x")])
    return Relation.from_rows(schema, [
        ("a1", "b1", 1.0), ("a1", "b2", 2.0), ("a2", "b1", 3.0),
        ("a2", "b2", 4.0), ("a2", "b2", 5.0)])
