"""Tests for the attribute ordering and path structure (§3.4)."""

import numpy as np
import pytest
from hypothesis import given

from repro.factorized.forder import (AttributeOrder, FactorizationError,
                                     HierarchyPaths)

from factorized_strategies import attribute_orders, build_hierarchy


class TestHierarchyPaths:
    def test_sorted_and_deduplicated(self):
        h = HierarchyPaths("g", ["d", "v"],
                           [("d2", "v3"), ("d1", "v1"), ("d1", "v1"),
                            ("d1", "v2")])
        assert h.paths == [("d1", "v1"), ("d1", "v2"), ("d2", "v3")]
        assert h.n_leaves == 3

    def test_fd_violation_rejected(self):
        with pytest.raises(FactorizationError):
            HierarchyPaths("g", ["d", "v"], [("d1", "v1"), ("d2", "v1")])

    def test_wrong_width_rejected(self):
        with pytest.raises(FactorizationError):
            HierarchyPaths("g", ["d", "v"], [("d1",)])

    def test_empty_rejected(self):
        with pytest.raises(FactorizationError):
            HierarchyPaths("g", ["d"], [])

    def test_run_structure(self):
        h = HierarchyPaths("g", ["d", "v"],
                           [("d1", "v1"), ("d1", "v2"), ("d2", "v3")])
        assert h.ordered_domain[0] == ["d1", "d2"]
        np.testing.assert_allclose(h.leaf_counts[0], [2.0, 1.0])
        assert h.ordered_domain[1] == ["v1", "v2", "v3"]
        np.testing.assert_allclose(h.leaf_counts[1], [1.0, 1.0, 1.0])

    def test_restrict(self):
        h = HierarchyPaths("g", ["d", "v"],
                           [("d1", "v1"), ("d1", "v2"), ("d2", "v3")])
        top = h.restrict(1)
        assert top.attributes == ("d",)
        assert top.paths == [("d1",), ("d2",)]
        with pytest.raises(FactorizationError):
            h.restrict(0)

    def test_path_position(self):
        h = HierarchyPaths("g", ["d"], [("d1",), ("d2",)])
        assert h.path_position(("d2",)) == 1
        with pytest.raises(FactorizationError):
            h.path_position(("zzz",))


class TestAttributeOrder:
    def test_figure3_structure(self, figure3_order):
        order = figure3_order
        assert order.attributes == ("T", "D", "V")
        assert order.n_rows == 6
        # TOTAL per §4.2.1: suffix row counts.
        assert order.total("T") == 6
        assert order.total("D") == 3
        assert order.total("V") == 3
        # Repetition factors TOTAL_{A_d}/TOTAL_a.
        assert order.repetition("T") == 1
        assert order.repetition("D") == 2
        assert order.repetition("V") == 2

    def test_figure3_counts(self, figure3_order):
        order = figure3_order
        assert order.count_map("T") == {"t1": 3.0, "t2": 3.0}
        assert order.count_map("D") == {"d1": 2.0, "d2": 1.0}
        assert order.count_map("V") == {"v1": 1.0, "v2": 1.0, "v3": 1.0}

    def test_row_key_round_trip(self, figure3_order):
        order = figure3_order
        for r in range(order.n_rows):
            assert order.row_index(order.row_key(r)) == r
        with pytest.raises(FactorizationError):
            order.row_key(order.n_rows)

    def test_row_keys_sorted(self, figure3_order):
        keys = figure3_order.row_keys()
        assert keys == sorted(keys)

    def test_reorder_preserves_rows(self, figure3_order):
        reordered = figure3_order.reorder(["geo", "time"])
        assert reordered.attributes == ("D", "V", "T")
        assert reordered.n_rows == figure3_order.n_rows
        original = {frozenset(zip(figure3_order.attributes, k))
                    for k in figure3_order.row_keys()}
        swapped = {frozenset(zip(reordered.attributes, k))
                   for k in reordered.row_keys()}
        assert original == swapped

    def test_reorder_requires_cover(self, figure3_order):
        with pytest.raises(FactorizationError):
            figure3_order.reorder(["geo"])

    def test_duplicate_attribute_rejected(self):
        h1 = build_hierarchy("a", 1, [2])
        h2 = HierarchyPaths("b", [h1.attributes[0]], [("x",)])
        with pytest.raises(FactorizationError):
            AttributeOrder([h1, h2])

    @given(attribute_orders())
    def test_counts_sum_to_total(self, order):
        for attr in order.attributes:
            assert order.counts(attr).sum() == pytest.approx(
                order.total(attr))

    @given(attribute_orders())
    def test_n_rows_product(self, order):
        expected = 1
        for h in order.hierarchies:
            expected *= h.n_leaves
        assert order.n_rows == expected

    @given(attribute_orders(max_hierarchies=2, max_attrs=2, max_branch=2))
    def test_row_keys_match_cartesian(self, order):
        keys = set(order.row_keys())
        expected = [()]
        for h in order.hierarchies:
            expected = [k + p for k in expected for p in h.paths]
        assert keys == set(expected)

    def test_from_dataset_with_depths(self, ofla_dataset):
        order = AttributeOrder.from_dataset(
            ofla_dataset, hierarchy_order=["time", "geo"],
            depths={"geo": 1, "time": 1})
        assert order.attributes == ("year", "district")
        full = AttributeOrder.from_dataset(ofla_dataset)
        assert full.attributes == ("district", "village", "year")

    def test_from_dataset_depth_zero_drops_hierarchy(self, ofla_dataset):
        order = AttributeOrder.from_dataset(
            ofla_dataset, depths={"geo": 2, "time": 0})
        assert order.attributes == ("district", "village")
