"""Concurrency suite for the HTTP serving front end.

Three layers of evidence that concurrent serving is safe:

* **Stress** — N reader threads (views + recommendations) race M ingest
  threads over shared datasets through the real :class:`ServerApp`
  dispatch path. Every response must be internally consistent (all
  aggregates from a single ``data_version`` — checked against a
  per-version oracle built from the recorded deltas), no thread may
  deadlock (hard join timeouts), and the final state must equal the
  ``deltaref`` rebuild-from-scratch oracle bitwise.
* **Deterministic races** — the ``race`` fixture (tests/conftest.py)
  parks threads at named lock-boundary trace points, pinning the
  interleavings that matter: an ingest arriving while a reader is
  mid-drill, writer preference over a reader convoy, and two threads
  racing a first-touch cache fill.
* **Transport** — one real-socket HTTP round trip, overload answers
  (429/503 + Retry-After), cross-request batch collapsing, strict
  staleness over HTTP (409), and graceful shutdown draining an
  in-flight request.

Severities are integer-valued so float sums are bitwise exact.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.relational import (HierarchicalDataset, Relation, Schema,
                              dimension, measure)
from repro.relational.delta import Delta
from repro.relational.deltaref import apply_delta_rows
from repro.serving import ExplanationService, ServerApp, serve_http
from repro.serving.concurrency import BatchWindow

JOIN_TIMEOUT = 30.0


# -- workload helpers ------------------------------------------------------------
def make_dataset(seed: int, districts: int = 2, villages: int = 3,
                 years: int = 3, rows_per_cell: int = 3
                 ) -> HierarchicalDataset:
    rng = np.random.default_rng(seed)
    rows = []
    for d in range(districts):
        for v in range(villages):
            for y in range(years):
                for _ in range(rows_per_cell):
                    rows.append((f"d{d}", f"d{d}v{v}", 2000 + y,
                                 float(rng.integers(1, 10))))
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    relation = Relation.from_rows(schema, rows)
    return HierarchicalDataset.build(
        relation, {"geo": ["district", "village"], "time": ["year"]},
        "severity")


def delta_rows(rng: np.random.Generator, tag: str, n: int) -> list[dict]:
    """Appends under a fresh village (FD-safe: new village, one district)."""
    district = f"d{int(rng.integers(0, 2))}"
    village = f"{district}x{tag}"
    return [{"district": district, "village": village,
             "year": int(2000 + rng.integers(0, 3)),
             "severity": float(rng.integers(1, 10))} for _ in range(n)]


def make_app(seed: int, **kwargs) -> ServerApp:
    service = ExplanationService()
    service.register("data", make_dataset(seed))
    return ServerApp(service, batch_window_seconds=0.0, **kwargs)


def base_totals(dataset: HierarchicalDataset) -> tuple[int, float]:
    relation = dataset.relation
    return len(relation), float(sum(relation.column_values("severity")))


def run_threads(threads: list[threading.Thread]) -> None:
    """Start, join with a hard deadline, and fail loudly on a hang."""
    for t in threads:
        t.start()
    for t in threads:
        t.join(JOIN_TIMEOUT)
    hung = [t.name for t in threads if t.is_alive()]
    assert not hung, f"deadlocked threads: {hung}"


class Oracle:
    """Per-``data_version`` expected whole-relation totals.

    Ingest threads register each applied delta under the version the
    server reported; readers then check that the totals of *their*
    response match the cumulative totals at exactly that version — a
    response mixing two versions cannot match any single entry.
    """

    def __init__(self, dataset: HierarchicalDataset):
        self._lock = threading.Lock()
        self._contrib: dict[int, tuple[int, float]] = {}
        self.base = base_totals(dataset)

    def record(self, version: int, rows: list[dict]) -> None:
        add = (len(rows), float(sum(r["severity"] for r in rows)))
        with self._lock:
            assert version not in self._contrib, (
                f"two deltas claimed version {version}")
            self._contrib[version] = add

    def expected(self, version: int) -> tuple[int, float]:
        count, total = self.base
        with self._lock:
            for v, (dc, ds) in self._contrib.items():
                if v <= version:
                    count, total = count + dc, total + ds
        return count, total


def response_totals(payload: dict) -> tuple[int, float]:
    groups = payload["groups"]
    return (sum(g["count"] for g in groups),
            float(sum(g["sum"] for g in groups)))


# -- stress ----------------------------------------------------------------------
class TestStress:
    def _stress(self, seed: int, n_readers: int, n_ingesters: int,
                reads: int, ingests: int, recommend_every: int = 0
                ) -> None:
        app = make_app(seed)
        engine = app.service.engine("data")
        oracle = Oracle(engine.dataset)
        failures: list[str] = []
        deltas: dict[int, list[dict]] = {}
        deltas_lock = threading.Lock()
        deferred: list[tuple[int, tuple[int, float]]] = []

        def check(ok: bool, message: str) -> None:
            if not ok:
                failures.append(message)

        def reader(i: int) -> None:
            status, _, opened = app.dispatch(
                "POST", "/datasets/data/sessions",
                {"group_by": ["district"], "session_id": f"r{i}"})
            check(status == 201, f"open_session -> {status}: {opened}")
            last_version = -1
            for j in range(reads):
                status, _, payload = app.dispatch(
                    "GET", f"/sessions/r{i}/view")
                check(status == 200, f"view -> {status}: {payload}")
                if status != 200:
                    return
                version = payload["data_version"]
                check(version >= last_version,
                      f"session r{i} went backwards: "
                      f"{last_version} -> {version}")
                last_version = version
                got = response_totals(payload)
                if got != oracle.expected(version):
                    # An ingester records its delta only after its call
                    # returns, so the oracle may briefly lag the version
                    # this reader just saw. Re-checked after the join,
                    # once every delta is registered.
                    with deltas_lock:
                        deferred.append((version, got))
                if recommend_every and j % recommend_every == 0:
                    status, _, rec = app.dispatch(
                        "POST", f"/sessions/r{i}/recommend",
                        {"aggregate": "mean", "direction": "too_low",
                         "coordinates": {"district": "d0"}, "k": 2})
                    check(status == 200, f"recommend -> {status}: {rec}")
                    if status == 200:
                        check(rec["data_version"] >= last_version,
                              "recommend saw an older version than the "
                              "session's previous request")
                        last_version = rec["data_version"]

        def ingester(i: int) -> None:
            rng = np.random.default_rng(1000 * seed + i)
            for j in range(ingests):
                rows = delta_rows(rng, f"i{i}n{j}", int(rng.integers(1, 4)))
                status, _, payload = app.dispatch(
                    "POST", "/datasets/data/ingest", {"rows": rows})
                check(status == 200, f"ingest -> {status}: {payload}")
                if status != 200:
                    return
                oracle.record(payload["version"], rows)
                with deltas_lock:
                    deltas[payload["version"]] = rows

        run_threads(
            [threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
             for i in range(n_readers)] +
            [threading.Thread(target=ingester, args=(i,),
                              name=f"ingester-{i}")
             for i in range(n_ingesters)])
        assert not failures, failures[:10]
        torn = [(v, got) for v, got in deferred
                if got != oracle.expected(v)]
        assert not torn, f"torn reads: {torn[:10]}"

        # Final state: the live relation equals the rebuild-from-scratch
        # oracle applying the recorded deltas in version order.
        relation = engine.dataset.relation
        rebuilt = make_dataset(seed).relation
        schema = rebuilt.schema
        for _, rows in sorted(deltas.items()):
            delta = Delta.from_rows(
                schema, [tuple(r[n] for n in schema.names) for r in rows])
            rebuilt = apply_delta_rows(rebuilt, delta)
        assert sorted(map(tuple, relation.rows())) \
            == sorted(map(tuple, rebuilt.rows()))
        # And the served view agrees with the rebuilt rows, group by group.
        status, _, payload = app.dispatch("GET", "/sessions/r0/view")
        assert status == 200
        expected: dict[str, tuple[int, float]] = {}
        for row in rebuilt.rows():
            row = tuple(row)
            c, s = expected.get(row[0], (0, 0.0))
            expected[row[0]] = (c + 1, s + row[3])
        got = {g["key"][0]: (g["count"], g["sum"])
               for g in payload["groups"]}
        assert got == expected

    def test_readers_race_ingesters(self):
        """The full-size stress run: recommends + views vs ingest bursts."""
        self._stress(seed=0, n_readers=4, n_ingesters=2, reads=12,
                     ingests=4, recommend_every=4)

    @pytest.mark.parametrize("seed", range(50))
    def test_many_seeds_views_vs_ingest(self, seed: int):
        """50 distinct schedules of the compact stress workload."""
        self._stress(seed=seed, n_readers=2, n_ingesters=1, reads=4,
                     ingests=2)

    def test_append_then_retract_round_trips(self):
        app = make_app(3)
        rows = delta_rows(np.random.default_rng(3), "rt", 3)
        before = sorted(map(tuple,
                            app.service.engine("data").dataset.relation.rows()))
        status, _, _ = app.dispatch("POST", "/datasets/data/ingest",
                                    {"rows": rows})
        assert status == 200
        status, _, payload = app.dispatch("POST", "/datasets/data/ingest",
                                          {"retract": rows})
        assert status == 200 and payload["retracted"] == 3
        after = sorted(map(tuple,
                           app.service.engine("data").dataset.relation.rows()))
        assert after == before


# -- deterministic races ---------------------------------------------------------
class TestPinnedInterleavings:
    def test_ingest_waits_for_inflight_read(self, race):
        """A reader parked mid-request blocks the writer; the reader's
        response is computed entirely at the pre-ingest version."""
        app = make_app(1)
        app.dispatch("POST", "/datasets/data/sessions",
                     {"group_by": ["district"], "session_id": "r"})
        oracle = Oracle(app.service.engine("data").dataset)
        results: dict[str, object] = {}

        race.gate("rw.read_acquired")
        reader = threading.Thread(
            name="reader",
            target=lambda: results.__setitem__(
                "view", app.dispatch("GET", "/sessions/r/view")))
        reader.start()
        race.wait_parked("rw.read_acquired", 1)

        rows = delta_rows(np.random.default_rng(1), "w", 2)
        writer = threading.Thread(
            name="writer",
            target=lambda: results.__setitem__(
                "ingest", app.dispatch("POST", "/datasets/data/ingest",
                                       {"rows": rows})))
        writer.start()
        lock = app.service.locks.for_dataset("data")
        deadline = time.monotonic() + 5.0
        while lock.writers_waiting < 1:
            assert time.monotonic() < deadline, "writer never reached lock"
            time.sleep(0.002)
        # The writer stands at the lock; the reader still holds it, so
        # the data version cannot have moved.
        assert lock.readers == 1 and not lock.writer_active
        assert app.service.engine("data").data_version == 0
        assert "ingest" not in results

        race.release("rw.read_acquired")
        reader.join(JOIN_TIMEOUT)
        writer.join(JOIN_TIMEOUT)
        assert not reader.is_alive() and not writer.is_alive()

        status, _, view = results["view"]
        assert status == 200 and view["data_version"] == 0
        assert response_totals(view) == oracle.expected(0)
        status, _, ingest = results["ingest"]
        assert status == 200 and ingest["version"] == 1

    def test_writer_preference_over_late_reader(self, race):
        """reader1 holds the lock, a writer waits, reader2 arrives: the
        writer goes first, so reader2 deterministically sees version 1."""
        app = make_app(2)
        for sid in ("r1", "r2"):
            app.dispatch("POST", "/datasets/data/sessions",
                         {"group_by": ["district"], "session_id": sid})
        # Warm both sessions so reader2's request needs no cache fill.
        assert app.dispatch("GET", "/sessions/r1/view")[0] == 200
        assert app.dispatch("GET", "/sessions/r2/view")[0] == 200
        results: dict[str, object] = {}

        race.gate("rw.read_acquired")
        reader1 = threading.Thread(
            name="reader1",
            target=lambda: results.__setitem__(
                "r1", app.dispatch("GET", "/sessions/r1/view")))
        reader1.start()
        race.wait_parked("rw.read_acquired", 1)

        rows = delta_rows(np.random.default_rng(2), "w", 2)
        writer = threading.Thread(
            name="writer",
            target=lambda: results.__setitem__(
                "ingest", app.dispatch("POST", "/datasets/data/ingest",
                                       {"rows": rows})))
        writer.start()
        lock = app.service.locks.for_dataset("data")
        deadline = time.monotonic() + 5.0
        while lock.writers_waiting < 1:
            assert time.monotonic() < deadline, "writer never reached lock"
            time.sleep(0.002)

        read_waits = race.hits("rw.read_wait")
        reader2 = threading.Thread(
            name="reader2",
            target=lambda: results.__setitem__(
                "r2", app.dispatch("GET", "/sessions/r2/view")))
        reader2.start()
        deadline = time.monotonic() + 5.0
        while race.hits("rw.read_wait") < read_waits + 1:
            assert time.monotonic() < deadline, "reader2 never reached lock"
            time.sleep(0.002)

        race.release("rw.read_acquired")
        for t in (reader1, writer, reader2):
            t.join(JOIN_TIMEOUT)
            assert not t.is_alive(), f"{t.name} hung"

        assert results["r1"][2]["data_version"] == 0
        assert results["ingest"][2]["version"] == 1
        assert results["r2"][2]["data_version"] == 1

    def test_concurrent_first_touch_fill(self, race):
        """Two threads race the same cold cache key: both compute (the
        fill runs unlocked by design), results agree, one entry lands."""
        app = make_app(4)
        for sid in ("a", "b"):
            app.dispatch("POST", "/datasets/data/sessions",
                         {"group_by": ["district"], "session_id": sid})
        results: dict[str, object] = {}

        race.gate("cache.fill", count=2)
        threads = [
            threading.Thread(
                name=f"fill-{sid}",
                target=lambda sid=sid: results.__setitem__(
                    sid, app.dispatch("GET", f"/sessions/{sid}/view")))
            for sid in ("a", "b")]
        for t in threads:
            t.start()
        # Both threads miss (neither has stored yet) and park at the
        # fill boundary — the double-fill interleaving, pinned.
        race.wait_parked("cache.fill", 2)
        race.release("cache.fill", 2)
        for t in threads:
            t.join(JOIN_TIMEOUT)
            assert not t.is_alive()

        assert race.hits("cache.fill") == 2
        sa, _, va = results["a"]
        sb, _, vb = results["b"]
        assert sa == sb == 200
        assert va["groups"] == vb["groups"]
        # Last write wins: exactly one view entry for the shared key.
        view_keys = [k for k in app.service.cache.keys()
                     if isinstance(k, tuple) and k and k[0] == "view"]
        assert len(view_keys) == 1
        # And the key is now warm: no third fill on the next request.
        assert app.dispatch("GET", "/sessions/a/view")[0] == 200
        assert race.hits("cache.fill") == 2


# -- transport, overload, batching, shutdown --------------------------------------
class TestTransport:
    def test_http_round_trip(self):
        service = ExplanationService()
        service.register("data", make_dataset(5))
        server, thread = serve_http(service, batch_window_seconds=0.0)
        try:
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("POST", "/datasets/data/sessions",
                         json.dumps({"group_by": ["district"],
                                     "session_id": "web"}))
            reply = conn.getresponse()
            opened = json.loads(reply.read())
            assert reply.status == 201 and opened["session_id"] == "web"
            conn.request("GET", "/sessions/web/view")
            reply = conn.getresponse()
            view = json.loads(reply.read())
            assert reply.status == 200 and view["data_version"] == 0
            assert view["groups"]
            conn.request("GET", "/stats")
            reply = conn.getresponse()
            stats = json.loads(reply.read())
            assert reply.status == 200
            assert stats["endpoints"]["view"]["count"] == 1
            conn.close()
        finally:
            assert server.shutdown_gracefully(JOIN_TIMEOUT)
            thread.join(JOIN_TIMEOUT)
            assert not thread.is_alive()

    def test_graceful_shutdown_drains_inflight_request(self, race):
        service = ExplanationService()
        service.register("data", make_dataset(6))
        server, thread = serve_http(service, batch_window_seconds=0.0)
        app = server.app
        host, port = server.server_address[:2]
        app.dispatch("POST", "/datasets/data/sessions",
                     {"group_by": ["district"], "session_id": "s"})
        results: dict[str, object] = {}

        race.gate("cache.fill")

        def slow_request() -> None:
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request("GET", "/sessions/s/view")
            reply = conn.getresponse()
            results["status"] = reply.status
            results["body"] = json.loads(reply.read())
            conn.close()

        client = threading.Thread(target=slow_request, name="client")
        client.start()
        race.wait_parked("cache.fill", 1)

        done: dict[str, bool] = {}
        stopper = threading.Thread(
            name="stopper",
            target=lambda: done.__setitem__(
                "drained", server.shutdown_gracefully(JOIN_TIMEOUT)))
        stopper.start()
        # Draining now: dispatch-level requests are refused...
        deadline = time.monotonic() + 5.0
        while not app.draining:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        status, headers, _ = app.dispatch("GET", "/sessions/s/view")
        assert status == 503 and "Retry-After" in headers
        # ...but the parked in-flight request completes once released.
        race.release("cache.fill")
        for t in (client, stopper):
            t.join(JOIN_TIMEOUT)
            assert not t.is_alive(), f"{t.name} hung"
        assert done["drained"] is True
        assert results["status"] == 200
        assert results["body"]["data_version"] == 0
        thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive()

    def test_overload_answers_429_with_retry_after(self, race):
        app = make_app(7, max_concurrent=1, max_queue=0)
        app.dispatch("POST", "/datasets/data/sessions",
                     {"group_by": ["district"], "session_id": "s"})
        race.gate("cache.fill")
        results: dict[str, object] = {}
        holder = threading.Thread(
            name="holder",
            target=lambda: results.__setitem__(
                "held", app.dispatch("GET", "/sessions/s/view")))
        holder.start()
        race.wait_parked("cache.fill", 1)
        # The single worker slot is occupied and the queue is zero-length:
        # the next query is rejected immediately, cheaply.
        status, headers, payload = app.dispatch("GET", "/sessions/s/view")
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert payload["retry_after"] >= 1
        # Health and stats stay available on a saturated server.
        assert app.dispatch("GET", "/healthz")[0] == 200
        assert app.dispatch("GET", "/stats")[0] == 200
        race.release("cache.fill")
        holder.join(JOIN_TIMEOUT)
        assert not holder.is_alive()
        assert results["held"][0] == 200
        assert app.admission.stats()["rejected"] == 1

    def test_queue_timeout_answers_503(self, race):
        app = make_app(8, max_concurrent=1, max_queue=4,
                       queue_timeout=0.05)
        app.dispatch("POST", "/datasets/data/sessions",
                     {"group_by": ["district"], "session_id": "s"})
        race.gate("cache.fill")
        results: dict[str, object] = {}
        holder = threading.Thread(
            name="holder",
            target=lambda: results.__setitem__(
                "held", app.dispatch("GET", "/sessions/s/view")))
        holder.start()
        race.wait_parked("cache.fill", 1)
        status, headers, _ = app.dispatch("GET", "/sessions/s/view")
        assert status == 503 and "Retry-After" in headers
        race.release("cache.fill")
        holder.join(JOIN_TIMEOUT)
        assert not holder.is_alive()
        assert app.admission.stats()["timed_out"] == 1

    def test_batch_window_collapses_same_view_requests(self, race):
        app = make_app(9)
        followers = 3

        def window_sleep(_seconds: float) -> None:
            # Deterministic window: the leader waits until every other
            # request has joined the batch instead of a wall-clock nap.
            deadline = time.monotonic() + 10.0
            while (race.hits("batch.joined") < followers
                   and time.monotonic() < deadline):
                time.sleep(0.001)

        app.batches = BatchWindow(0.001, sleep=window_sleep)
        body = {"aggregate": "mean", "direction": "too_low",
                "coordinates": {"year": 2001}, "group_by": ["year"], "k": 2}
        barrier = threading.Barrier(followers + 1)
        results: list = [None] * (followers + 1)

        def submit(i: int) -> None:
            barrier.wait(timeout=JOIN_TIMEOUT)
            results[i] = app.dispatch(
                "POST", "/datasets/data/recommend", dict(body))

        run_threads([threading.Thread(target=submit, args=(i,),
                                      name=f"batch-{i}")
                     for i in range(followers + 1)])
        statuses = [r[0] for r in results]
        assert statuses == [200] * (followers + 1)
        payloads = [r[2] for r in results]
        assert all(p["batched"] for p in payloads)
        assert all(p == payloads[0] for p in payloads[1:])
        stats = app.batches.stats()
        assert stats["passes"] == 1
        assert stats["collapsed"] == followers
        assert stats["collapse_ratio"] == pytest.approx(
            followers / (followers + 1))

    def test_strict_session_conflicts_then_syncs_over_http(self):
        app = make_app(10)
        status, _, opened = app.dispatch(
            "POST", "/datasets/data/sessions",
            {"group_by": ["district"], "session_id": "strict",
             "staleness": "strict"})
        assert status == 201 and opened["staleness"] == "strict"
        assert app.dispatch("GET", "/sessions/strict/view")[0] == 200
        rows = delta_rows(np.random.default_rng(10), "s", 2)
        assert app.dispatch("POST", "/datasets/data/ingest",
                            {"rows": rows})[0] == 200
        status, _, payload = app.dispatch("GET", "/sessions/strict/view")
        assert status == 409
        assert payload["pinned"] == 0 and payload["current"] == 1
        status, _, synced = app.dispatch("POST", "/sessions/strict/sync")
        assert status == 200 and synced["data_version"] == 1
        status, _, view = app.dispatch("GET", "/sessions/strict/view")
        assert status == 200 and view["data_version"] == 1

    def test_request_validation(self):
        app = make_app(11)
        assert app.dispatch("GET", "/nope")[0] == 404
        assert app.dispatch("POST", "/healthz")[0] == 405
        assert app.dispatch("GET", "/sessions/ghost/view")[0] == 404
        assert app.dispatch("POST", "/datasets/ghost/ingest",
                            {"rows": []})[0] == 404
        status, _, payload = app.dispatch(
            "POST", "/datasets/data/sessions", {"session_id": "a/b"})
        assert status == 400 and "session_id" in payload["error"]
        status, _, payload = app.dispatch(
            "POST", "/datasets/data/recommend", {"aggregate": "mean"})
        assert status == 400 and "coordinates" in payload["error"]
        status, _, payload = app.dispatch(
            "POST", "/datasets/data/ingest", {})
        assert status == 400
