"""Tests for complaints, repair, ranking, and the drill session."""

import numpy as np
import pytest

from repro.core.complaint import Complaint, Direction
from repro.core.ranker import rank_candidates, score_drilldown
from repro.core.repair import (CustomRepairer, ModelRepairer,
                               RepairPrediction)
from repro.core.session import Reptile, ReptileConfig, SessionError
from repro.relational.aggregates import AggState
from repro.relational.cube import Cube, GroupView


class TestComplaint:
    def test_directions(self):
        c = Complaint.too_high({"year": 1986}, "std")
        assert c.penalty(5.0) == 5.0
        c = Complaint.too_low({}, "count")
        assert c.penalty(5.0) == -5.0
        c = Complaint.should_be({}, "count", 70.0)
        assert c.penalty(67.0) == pytest.approx(3.0)

    def test_example8(self):
        """Example 8: count should be 70; Darube→67 vs Zata→68... the
        preferred repair is whichever lands closer to 70."""
        c = Complaint.should_be({"year": 1986, "district": "Ofla"},
                                "count", 70.0)
        assert c.penalty(67.0) > c.penalty(68.0)

    def test_target_requires_value(self):
        with pytest.raises(ValueError):
            Complaint({}, "count", Direction.TARGET)

    def test_invalid_aggregate(self):
        with pytest.raises(Exception):
            Complaint.too_high({}, "p95")

    def test_penalty_of_state(self):
        c = Complaint.too_high({}, "sum")
        s = AggState.of([1.0, 2.0, 3.0])
        assert c.penalty_of_state(s) == pytest.approx(6.0)

    def test_base_statistics(self):
        assert Complaint.too_low({}, "sum").base_statistics() == \
            ("mean", "count")


class TestScoring:
    @pytest.fixture
    def drill_view(self):
        groups = {("g1",): AggState.from_stats(10, 5.0, 1.0),
                  ("g2",): AggState.from_stats(10, 5.0, 1.0),
                  ("g3",): AggState.from_stats(4, 5.0, 1.0)}  # missing rows
        return GroupView(("g",), groups)

    def test_perfect_repair_wins(self, drill_view):
        """Repairing the short group to its true count must rank first."""
        prediction = RepairPrediction(
            ("count",),
            {("g1",): {"count": 10.0}, ("g2",): {"count": 10.0},
             ("g3",): {"count": 10.0}})
        complaint = Complaint.should_be({}, "count", 30.0)
        base, scored = score_drilldown(drill_view, prediction, complaint)
        assert base == pytest.approx(6.0)  # 24 observed vs 30 expected
        assert scored[0].key == ("g3",)
        assert scored[0].score == pytest.approx(0.0)
        assert scored[0].margin_gain == pytest.approx(6.0)

    def test_direction_matters(self, drill_view):
        """A 'count too high' complaint must not pick the short group."""
        prediction = RepairPrediction(
            ("count",), {k: {"count": 10.0} for k in drill_view.groups})
        complaint = Complaint.too_high({}, "count")
        _, scored = score_drilldown(drill_view, prediction, complaint)
        assert scored[0].key != ("g3",)

    def test_observed_and_expected_reported(self, drill_view):
        prediction = RepairPrediction(
            ("count",), {k: {"count": 10.0} for k in drill_view.groups})
        complaint = Complaint.too_low({}, "count")
        _, scored = score_drilldown(drill_view, prediction, complaint)
        by_key = {g.key: g for g in scored}
        assert by_key[("g3",)].observed["count"] == 4.0
        assert by_key[("g3",)].expected["count"] == 10.0


class TestModelRepairer:
    def test_statistics_for(self):
        r = ModelRepairer()
        assert r.statistics_for("sum") == ("count", "mean")
        assert r.statistics_for("std") == ("mean", "std")
        assert ModelRepairer(statistics=("mean",)).statistics_for("sum") == \
            ("mean",)

    def test_predictions_nonnegative_counts(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        parallel = cube.parallel_view(("year",), "district")
        pred = ModelRepairer(n_iterations=3).predict(parallel, ("year",),
                                                     "count")
        for stats in pred.predicted.values():
            assert stats["count"] >= 0.0

    def test_unknown_model_kind(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        parallel = cube.parallel_view((), "district")
        with pytest.raises(ValueError):
            ModelRepairer(model="forest").predict(parallel, (), "count")

    def test_linear_model_variant(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        parallel = cube.parallel_view(("year",), "district")
        pred = ModelRepairer(model="linear").predict(parallel, ("year",),
                                                     "mean")
        assert set(pred.statistics) == {"mean"}

    def test_custom_repairer(self):
        groups = {("a",): AggState.from_stats(2, 1.0)}
        view = GroupView(("g",), groups)
        repairer = CustomRepairer(lambda key, state: {"mean": 42.0},
                                  statistics=("mean",))
        pred = repairer.predict(view, (), "mean")
        assert pred.expected(("a",))["mean"] == 42.0
        repaired = pred.repair_state(("a",), groups[("a",)])
        assert repaired.mean == pytest.approx(42.0)


class TestRankCandidates:
    def test_picks_planted_error(self, ofla_dataset, rng):
        """Plant a mean-shift in one village; the ranker must find it."""
        rel = ofla_dataset.relation
        values = list(rel.column("severity"))
        villages = rel.column("village")
        years = rel.column("year")
        for i, (v, y) in enumerate(zip(villages, years)):
            if v == "Zata" and y == 1986:
                values[i] = max(1.0, values[i] - 4.0)
        cols = {n: rel.column(n) for n in rel.schema.names}
        cols["severity"] = values
        from repro.relational.relation import Relation
        from repro.relational.dataset import HierarchicalDataset
        corrupted = HierarchicalDataset.build(
            Relation(rel.schema, cols),
            {"geo": ["district", "village"], "time": ["year"]}, "severity",
            validate=False)
        cube = Cube(corrupted)
        complaint = Complaint.too_low({"district": "Ofla", "year": 1986},
                                      "mean")
        rec = rank_candidates(
            cube, ("district", "year"), [("geo", "village")], complaint,
            {"district": "Ofla", "year": 1986},
            ModelRepairer(n_iterations=5))
        top = rec.per_hierarchy["geo"].best
        assert top.coordinates["village"] == "Zata"

    def test_no_candidates_raises(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        with pytest.raises(ValueError):
            rank_candidates(cube, (), [], Complaint.too_low({}, "count"),
                            {}, ModelRepairer())

    def test_empty_provenance_gives_inf_penalty(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        complaint = Complaint.too_low({"district": "Atlantis"}, "count")
        rec = rank_candidates(
            cube, ("district",), [("time", "year")], complaint,
            {"district": "Atlantis"}, ModelRepairer(n_iterations=2))
        assert rec.per_hierarchy["time"].base_penalty == float("inf")


class TestBestHierarchyTieBreak:
    @staticmethod
    def _dr(hierarchy, score):
        from repro.core.ranker import (DrilldownRecommendation, ScoredGroup)
        group = ScoredGroup(key=("g",), coordinates={}, score=score,
                            margin_gain=0.0, observed={}, expected={},
                            repaired_value=score)
        return DrilldownRecommendation(hierarchy, "a", base_penalty=score,
                                       groups=[group])

    def test_equal_scores_break_toward_lexicographic_name(self):
        """Regression: equal-scoring hierarchies used to resolve by dict
        insertion order, flipping H* between identical invocations."""
        from repro.core.ranker import Recommendation
        complaint = Complaint.too_low({}, "count")
        forward = Recommendation(complaint, {
            "time": self._dr("time", 1.0), "geo": self._dr("geo", 1.0)})
        backward = Recommendation(complaint, {
            "geo": self._dr("geo", 1.0), "time": self._dr("time", 1.0)})
        assert forward.best_hierarchy == backward.best_hierarchy == "geo"

    def test_lower_score_still_wins_over_name(self):
        from repro.core.ranker import Recommendation
        complaint = Complaint.too_low({}, "count")
        rec = Recommendation(complaint, {
            "aaa": self._dr("aaa", 2.0), "zzz": self._dr("zzz", 1.0)})
        assert rec.best_hierarchy == "zzz"

    def test_empty_hierarchy_ranks_last(self):
        from repro.core.ranker import (DrilldownRecommendation,
                                       Recommendation)
        complaint = Complaint.too_low({}, "count")
        empty = DrilldownRecommendation("aaa", "a",
                                        base_penalty=float("inf"))
        rec = Recommendation(complaint, {"aaa": empty,
                                         "zzz": self._dr("zzz", 5.0)})
        assert rec.best_hierarchy == "zzz"


class TestSession:
    def test_walkthrough(self, ofla_dataset):
        """The Example 1 flow: year view in Ofla → complain → drill."""
        engine = Reptile(ofla_dataset,
                         config=ReptileConfig(n_em_iterations=4))
        session = engine.session(group_by=["year"],
                                 filters={"district": "Ofla"})
        # Filtering district implies the geo hierarchy sits at depth 1.
        assert session.group_by == ("district", "year")
        view = session.view()
        years = {view.coordinates(k)["year"] for k in view.groups}
        assert years == {1984, 1985, 1986, 1987}
        assert all(view.coordinates(k)["district"] == "Ofla"
                   for k in view.groups)
        complaint = Complaint.too_high({"year": 1986}, "std")
        rec = session.recommend(complaint)
        assert set(rec.per_hierarchy) == {"geo"}
        geo = rec.per_hierarchy["geo"]
        assert geo.attribute == "village"
        assert geo.groups  # some ranked villages
        # Drill into the recommendation and look at village-level view.
        session.drill("geo", coordinates={"year": 1986})
        assert "village" in session.group_by
        drilled = session.view()
        assert all(drilled.coordinates(k)["year"] == 1986
                   for k in drilled.groups)

    def test_complaint_coordinate_validation(self, ofla_dataset):
        engine = Reptile(ofla_dataset)
        session = engine.session(group_by=["year"])
        with pytest.raises(SessionError):
            session.recommend(Complaint.too_low({"village": "Zata"}, "count"))

    def test_fully_drilled_raises(self, ofla_dataset):
        engine = Reptile(ofla_dataset)
        session = engine.session(
            group_by=["district", "village", "year"])
        with pytest.raises(SessionError):
            session.recommend(Complaint.too_low({}, "count"))

    def test_top_k_truncation(self, ofla_dataset):
        engine = Reptile(ofla_dataset,
                         config=ReptileConfig(n_em_iterations=2, top_k=2))
        rec = engine.recommend(Complaint.too_low({}, "count"))
        for dr in rec.per_hierarchy.values():
            assert len(dr.groups) <= 2

    def test_auto_auxiliary_included(self, ofla_dataset):
        from repro.relational.dataset import AuxiliaryDataset
        from repro.relational.relation import Relation
        from repro.relational.schema import Schema, dimension, measure
        rel = Relation.from_rows(
            Schema([dimension("village"), measure("rain")]),
            [("Zata", 1.0), ("Darube", 2.0)])
        ofla_dataset.add_auxiliary(AuxiliaryDataset(
            "sense", rel, join_on=("village",), measures=("rain",)))
        engine = Reptile(ofla_dataset)
        repairer = engine.repairer_for(("district", "village"))
        names = [getattr(s, "name", "") for s in
                 repairer.feature_plan.extra_specs]
        assert any("aux" in str(type(s)).lower() or True
                   for s in repairer.feature_plan.extra_specs)
        assert len(repairer.feature_plan.extra_specs) == 1

    def test_recommendation_best_accessors(self, ofla_dataset):
        engine = Reptile(ofla_dataset,
                         config=ReptileConfig(n_em_iterations=2))
        rec = engine.recommend(Complaint.too_low({}, "count"))
        assert rec.best_hierarchy in rec.per_hierarchy
        assert rec.best_group is rec.per_hierarchy[rec.best_hierarchy].best
        assert rec.ranked() == rec.per_hierarchy[rec.best_hierarchy].groups
