"""Tests for the work-sharing multi-query plan vs the LMFAO-style baseline.

Both planners and the closed forms must agree on every aggregate; the
engines differ only in how much work they share (asserted via the
drill-down engine's instrumentation elsewhere).
"""

import pytest
from hypothesis import given

from repro.factorized.aggregates import CrossCOF, DecomposedAggregates
from repro.factorized.factorizer import Factorizer
from repro.factorized.multiquery import (combine_units, hierarchy_unit,
                                         lmfao_plan, shared_plan)

from factorized_strategies import attribute_orders


def assert_aggregate_sets_match(order, result):
    agg = DecomposedAggregates(order)
    for a in order.attributes:
        assert result.totals[a] == pytest.approx(agg.total(a))
        got = result.count_dict(a)
        want = agg.count(a)
        assert got.keys() == want.keys()
        for k in want:
            assert got[k] == pytest.approx(want[k])
    attrs = order.attributes
    for i, a in enumerate(attrs):
        for b in attrs[i + 1:]:
            want = agg.cof(a, b).materialize()
            got = result.cofs[(a, b)]
            for key, value in want.items():
                assert got[key] == pytest.approx(value), (a, b, key)


class TestSharedPlan:
    @given(attribute_orders())
    def test_matches_closed_form(self, order):
        assert_aggregate_sets_match(order, shared_plan(Factorizer(order)))

    def test_cross_cofs_stay_lazy(self, figure3_order):
        result = shared_plan(Factorizer(figure3_order))
        assert isinstance(result.cofs[("T", "D")], CrossCOF)
        assert isinstance(result.cofs[("T", "V")], CrossCOF)
        assert not isinstance(result.cofs[("D", "V")], CrossCOF)

    def test_cof_value_accessor(self, figure3_order):
        result = shared_plan(Factorizer(figure3_order))
        assert result.cof_value("T", "V", "t2", "v3") == 1.0


class TestLmfaoPlan:
    @given(attribute_orders(max_hierarchies=2, max_attrs=2, max_branch=2))
    def test_matches_closed_form(self, order):
        assert_aggregate_sets_match(order, lmfao_plan(Factorizer(order)))

    def test_cross_cofs_materialised(self, figure3_order):
        result = lmfao_plan(Factorizer(figure3_order))
        cof = result.cofs[("T", "V")]
        assert not isinstance(cof, CrossCOF)
        assert cof[("t1", "v1")] == 1.0


class TestUnits:
    def test_unit_contents(self, figure3_order):
        geo = figure3_order.hierarchies[1]
        unit = hierarchy_unit(geo)
        assert unit.h_total == 3.0
        assert unit.within_counts["D"].as_unary_dict() == {"d1": 2.0,
                                                           "d2": 1.0}
        assert unit.within_cofs[("D", "V")][("d1", "v2")] == 1.0

    def test_combine_matches_shared(self, figure3_order):
        units = [hierarchy_unit(h) for h in figure3_order.hierarchies]
        combined = combine_units(units)
        assert_aggregate_sets_match(figure3_order, combined)

    @given(attribute_orders(max_hierarchies=3, max_attrs=2, max_branch=2))
    def test_unit_recombination_any_order(self, order):
        """Combining units must be consistent under hierarchy reordering."""
        units = {h.name: hierarchy_unit(h) for h in order.hierarchies}
        names = [h.name for h in order.hierarchies]
        rotated = names[1:] + names[:1]
        reordered = order.reorder(rotated)
        combined = combine_units([units[n] for n in rotated])
        assert_aggregate_sets_match(reordered, combined)
