"""Exact-equivalence property tests: array ranker vs the frozen oracle.

The array-native recommend path promises *exact* equality — same keys,
same scores (bitwise, no approx), same ordering — with the group-at-a-time
reference frozen in ``repro.core.rankref``. These tests drive both paths
over random views (including NaN-keyed and single-group ones), every
complaint aggregate the paper supports, and full cube-to-recommendation
runs with both model kinds.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import rankref
from repro.core.complaint import Complaint, Direction
from repro.core.ranker import rank_candidates, score_drilldown
from repro.core.repair import (ModelRepairer, RepairAlignmentError,
                               RepairPrediction)
from repro.relational import (Cube, HierarchicalDataset, Relation, Schema,
                              dimension, measure)
from repro.relational.aggregates import AggState
from repro.relational.cube import GroupView

AGGREGATES = ["count", "sum", "mean", "std"]
DIRECTIONS = [Direction.TOO_HIGH, Direction.TOO_LOW, Direction.TARGET]

# Group specs: (count, mean, std) triples. min_size=1 keeps single-group
# views in scope; NaN keys are injected separately below.
group_specs = st.lists(
    st.tuples(st.integers(1, 30),
              st.floats(-40, 40, allow_nan=False),
              st.floats(0, 8, allow_nan=False)),
    min_size=1, max_size=10)

prediction_values = st.floats(-60, 60, allow_nan=False)


def build_view(specs, nan_key: bool = False) -> GroupView:
    groups = {}
    for i, (count, mean, std) in enumerate(specs):
        key = (float("nan"),) if nan_key and i == 0 else (f"g{i}",)
        groups[key] = AggState.from_stats(count, mean, std)
    return GroupView(("g",), groups)


def complaint_for(aggregate: str, direction: Direction,
                  target: float = 10.0) -> Complaint:
    if direction is Direction.TARGET:
        return Complaint.should_be({}, aggregate, target)
    return Complaint({}, aggregate, direction)


def assert_exactly_equal(result, reference):
    base_a, scored_a = result
    base_b, scored_b = reference
    assert base_a == base_b
    assert len(scored_a) == len(scored_b)
    for ga, gb in zip(scored_a, scored_b):
        assert ga.key == gb.key
        assert ga.score == gb.score            # bitwise, no approx
        assert ga.margin_gain == gb.margin_gain
        assert ga.observed == gb.observed
        assert ga.expected == gb.expected
        assert ga.repaired_value == gb.repaired_value
        assert ga.coordinates == gb.coordinates


class TestScoringEquivalence:
    @given(group_specs, st.sampled_from(AGGREGATES),
           st.sampled_from(DIRECTIONS), prediction_values,
           st.booleans())
    def test_matches_oracle(self, specs, aggregate, direction, value,
                            nan_key):
        view = build_view(specs, nan_key=nan_key)
        stats = ModelRepairer().statistics_for(aggregate)
        prediction = RepairPrediction(
            stats, {k: {s: value for s in stats} for k in view.groups})
        complaint = complaint_for(aggregate, direction)
        assert_exactly_equal(
            score_drilldown(view, prediction, complaint),
            rankref.score_drilldown_ref(view, prediction, complaint))

    @given(group_specs, st.sampled_from(AGGREGATES))
    def test_partial_predictions_match_oracle(self, specs, aggregate):
        """Every other group lacks a prediction (identity repair)."""
        view = build_view(specs)
        stats = ModelRepairer().statistics_for(aggregate)
        prediction = RepairPrediction(
            stats, {k: {s: 3.0 for s in stats}
                    for i, k in enumerate(view.groups) if i % 2 == 0})
        complaint = complaint_for(aggregate, Direction.TOO_LOW)
        assert_exactly_equal(
            score_drilldown(view, prediction, complaint),
            rankref.score_drilldown_ref(view, prediction, complaint))

    @given(group_specs)
    def test_single_statistic_subset_matches_oracle(self, specs):
        """Per-key dicts covering a subset of the statistics tuple."""
        view = build_view(specs)
        prediction = RepairPrediction(
            ("count", "mean"),
            {k: ({"count": 5.0} if i % 2 else {"mean": 1.0})
             for i, k in enumerate(view.groups)})
        complaint = complaint_for("sum", Direction.TOO_HIGH)
        assert_exactly_equal(
            score_drilldown(view, prediction, complaint),
            rankref.score_drilldown_ref(view, prediction, complaint))

    @given(group_specs, st.sampled_from(AGGREGATES))
    def test_topk_is_prefix_of_full_ranking(self, specs, aggregate):
        view = build_view(specs)
        stats = ModelRepairer().statistics_for(aggregate)
        prediction = RepairPrediction(
            stats, {k: {s: 2.0 for s in stats} for k in view.groups})
        complaint = complaint_for(aggregate, Direction.TOO_HIGH)
        base_full, full = score_drilldown(view, prediction, complaint)
        base_top, top = score_drilldown(view, prediction, complaint, k=2)
        assert base_top == base_full
        assert [g.key for g in top] == [g.key for g in full[:2]]

    def test_out_of_order_custom_dicts_fall_back(self):
        """A per-key dict ordered against the statistics tuple cannot be
        replayed column-wise; the fallback loop must still agree with the
        oracle (they share the group-at-a-time semantics)."""
        view = build_view([(5, 2.0, 1.0), (7, 3.0, 1.0)])
        prediction = RepairPrediction(
            ("count", "mean"),
            {k: {"mean": 4.0, "count": 6.0} for k in view.groups})
        complaint = complaint_for("sum", Direction.TOO_LOW)
        assert_exactly_equal(
            score_drilldown(view, prediction, complaint),
            rankref.score_drilldown_ref(view, prediction, complaint))


def _random_dataset(seed: int, n: int = 1500,
                    nan_years: bool = False) -> HierarchicalDataset:
    rng = np.random.default_rng(seed)
    d = rng.integers(0, 6, n)
    v = d * 9 + rng.integers(0, 9, n)
    years = (1980 + rng.integers(0, 4, n)).astype(float)
    if nan_years:
        years[rng.random(n) < 0.05] = float("nan")
    relation = Relation(
        Schema([dimension("district"), dimension("village"),
                dimension("year"), measure("sev")]),
        {"district": np.array([f"d{i}" for i in range(6)])[d],
         "village": np.array([f"v{i:03d}" for i in range(54)])[v],
         "year": years,
         "sev": rng.integers(0, 40, n).astype(float)})
    return HierarchicalDataset.build(
        relation, {"geo": ["district", "village"], "time": ["year"]},
        "sev", validate=False)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("aggregate", AGGREGATES)
    @pytest.mark.parametrize("model", ["linear", "multilevel"])
    def test_rank_candidates_matches_oracle(self, aggregate, model):
        cube = Cube(_random_dataset(seed=11))
        complaint = Complaint.too_low({"district": "d2"}, aggregate)
        repairer = ModelRepairer(model=model, n_iterations=4)
        args = (cube, ("district",),
                [("geo", "village"), ("time", "year")], complaint,
                {"district": "d2"}, repairer)
        rec = rank_candidates(*args)
        ref = rankref.rank_candidates_ref(*args)
        assert rec.best_hierarchy == ref.best_hierarchy
        for h in rec.per_hierarchy:
            a, b = rec.per_hierarchy[h], ref.per_hierarchy[h]
            assert a.base_penalty == b.base_penalty
            assert_exactly_equal((a.base_penalty, a.groups),
                                 (b.base_penalty, b.groups))

    def test_nan_dimension_values_match_oracle(self):
        """NaN dimension values form their own groups (PR 2 semantics);
        the array ranker must handle and rank them identically."""
        cube = Cube(_random_dataset(seed=5, nan_years=True))
        complaint = Complaint.too_high({"district": "d1"}, "mean")
        repairer = ModelRepairer(model="linear")
        args = (cube, ("district",), [("time", "year")], complaint,
                {"district": "d1"}, repairer)
        rec = rank_candidates(*args)
        ref = rankref.rank_candidates_ref(*args)
        a = rec.per_hierarchy["time"]
        b = ref.per_hierarchy["time"]
        assert_exactly_equal((a.base_penalty, a.groups),
                             (b.base_penalty, b.groups))

    def test_single_group_drilldown_matches_oracle(self):
        rel = Relation.from_rows(
            Schema([dimension("g"), measure("x")]),
            [("only", 1.0), ("only", 2.0), ("only", 5.0)])
        ds = HierarchicalDataset.build(rel, {"h": ["g"]}, "x")
        cube = Cube(ds)
        complaint = Complaint.too_low({}, "count")
        repairer = ModelRepairer(model="linear")
        args = (cube, (), [("h", "g")], complaint, {}, repairer)
        rec = rank_candidates(*args)
        ref = rankref.rank_candidates_ref(*args)
        a, b = rec.per_hierarchy["h"], ref.per_hierarchy["h"]
        assert len(a.groups) == len(b.groups) == 1
        assert_exactly_equal((a.base_penalty, a.groups),
                             (b.base_penalty, b.groups))


class TestStrictAlignment:
    def test_strict_prediction_raises_on_unknown_key(self):
        prediction = RepairPrediction.from_arrays(
            ("mean",), [("a",)], np.array([[2.0]]))
        with pytest.raises(RepairAlignmentError):
            prediction.expected(("missing",))

    def test_strict_array_form_raises_on_missing_rows(self):
        prediction = RepairPrediction.from_arrays(
            ("mean",), [("a",)], np.array([[2.0]]))
        with pytest.raises(RepairAlignmentError):
            prediction.array_form([("a",), ("missing",)])

    def test_non_strict_logs_and_returns_empty(self, caplog):
        prediction = RepairPrediction(("mean",), {})
        with caplog.at_level("WARNING", logger="repro.core.repair"):
            assert prediction.expected(("nope",)) == {}
        assert any("no entry" in r.message for r in caplog.records)
        state = AggState.of([1.0, 2.0])
        assert prediction.repair_state(("nope",), state) == state

    def test_array_container_asserts_alignment(self):
        with pytest.raises(ValueError):
            RepairPrediction.from_arrays(
                ("mean", "count"), [("a",)], np.array([[1.0]]))

    def test_model_repairer_predictions_are_strict_arrays(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        parallel = cube.parallel_view(("year",), "district")
        pred = ModelRepairer(model="linear").predict(parallel, ("year",),
                                                     "mean")
        assert pred.strict
        assert pred.matrix.shape == (len(parallel.groups), 1)
        assert set(pred.predicted) == set(parallel.groups)

    def test_empty_prediction_scores_as_all_noops(self):
        """Regression: a zero-key non-strict prediction must behave as
        documented (every repair a no-op), not crash the array sweep."""
        view = build_view([(5, 2.0, 1.0), (7, 3.0, 1.0)])
        prediction = RepairPrediction(("count",), {})
        complaint = complaint_for("count", Direction.TOO_LOW)
        assert_exactly_equal(
            score_drilldown(view, prediction, complaint),
            rankref.score_drilldown_ref(view, prediction, complaint))

    def test_nan_prediction_matches_oracle_ordering(self):
        """Regression: a NaN prediction yields a NaN score; the ranking
        (including where the NaN group lands) must match the oracle."""
        nan = float("nan")
        view = build_view([(5, 2.0, 1.0), (7, 3.0, 1.0), (4, 9.0, 1.0)])
        prediction = RepairPrediction(
            ("mean",), {k: {"mean": nan if i == 0 else float(i)}
                        for i, k in enumerate(view.groups)})
        complaint = complaint_for("mean", Direction.TOO_HIGH)
        base_a, scored_a = score_drilldown(view, prediction, complaint)
        base_b, scored_b = rankref.score_drilldown_ref(view, prediction,
                                                       complaint)
        assert base_a == base_b
        assert [g.key for g in scored_a] == [g.key for g in scored_b]
        _, top = score_drilldown(view, prediction, complaint, k=1)
        assert top[0].key == scored_b[0].key

    def test_nan_group_key_lookup(self):
        nan = float("nan")
        prediction = RepairPrediction(("mean",), {(nan,): {"mean": 1.0}})
        assert prediction.expected((nan,)) == {"mean": 1.0}
        assert math.isnan(prediction.keys[0][0])
