"""Tests for hierarchy metadata, FD validation, and drill states."""

import pytest

from repro.relational.hierarchy import (Dimensions, DrillState, Hierarchy,
                                        HierarchyError)
from repro.relational.relation import Relation
from repro.relational.schema import Schema, dimension


class TestHierarchy:
    def test_structure(self):
        h = Hierarchy("geo", ["district", "village"])
        assert h.root == "district" and h.leaf == "village"
        assert h.level("village") == 1
        assert h.prefix(1) == ("district",)
        assert h.next_attribute(1) == "village"
        assert h.next_attribute(2) is None
        assert h.more_specific("village", "district")

    def test_empty_rejected(self):
        with pytest.raises(HierarchyError):
            Hierarchy("x", [])

    def test_duplicate_attrs_rejected(self):
        with pytest.raises(HierarchyError):
            Hierarchy("x", ["a", "a"])

    def test_level_of_unknown(self):
        with pytest.raises(HierarchyError):
            Hierarchy("x", ["a"]).level("b")

    def test_fd_validation_ok(self):
        rel = Relation.from_rows(
            Schema([dimension("d"), dimension("v")]),
            [("d1", "v1"), ("d1", "v2"), ("d2", "v3"), ("d1", "v1")])
        Hierarchy("geo", ["d", "v"]).validate_fds(rel)  # no raise

    def test_fd_violation_detected(self):
        rel = Relation.from_rows(
            Schema([dimension("d"), dimension("v")]),
            [("d1", "v1"), ("d2", "v1")])
        with pytest.raises(HierarchyError, match="FD"):
            Hierarchy("geo", ["d", "v"]).validate_fds(rel)


class TestDimensions:
    def test_from_mapping(self):
        dims = Dimensions.from_mapping({"geo": ["d", "v"], "time": ["y"]})
        assert dims.names == ("geo", "time")
        assert dims.attributes() == ("d", "v", "y")
        assert dims.hierarchy_of("v").name == "geo"

    def test_attribute_in_two_hierarchies_rejected(self):
        with pytest.raises(HierarchyError):
            Dimensions.from_mapping({"a": ["x"], "b": ["x"]})

    def test_duplicate_hierarchy_name(self):
        with pytest.raises(HierarchyError):
            Dimensions([Hierarchy("h", ["a"]), Hierarchy("h", ["b"])])

    def test_unknown_lookups(self):
        dims = Dimensions.from_mapping({"geo": ["d"]})
        with pytest.raises(HierarchyError):
            dims.hierarchy_of("zzz")
        with pytest.raises(HierarchyError):
            _ = dims["zzz"]


class TestDrillState:
    @pytest.fixture
    def dims(self):
        return Dimensions.from_mapping({"geo": ["d", "v"], "time": ["y"]})

    def test_initial_state(self, dims):
        state = DrillState(dims)
        assert state.group_by() == ()
        assert [(h.name, a) for h, a in state.candidates()] == \
            [("geo", "d"), ("time", "y")]

    def test_from_groupby(self, dims):
        state = DrillState.from_groupby(dims, ["y", "d"])
        assert state.depths == {"geo": 1, "time": 1}
        assert state.group_by() == ("d", "y")

    def test_from_groupby_requires_prefix(self, dims):
        with pytest.raises(HierarchyError):
            DrillState.from_groupby(dims, ["v"])  # skips district

    def test_drill_progression(self, dims):
        state = DrillState(dims).drill("geo")
        assert state.group_by() == ("d",)
        state = state.drill("geo")
        assert state.group_by() == ("d", "v")
        assert [(h.name, a) for h, a in state.candidates()] == [("time", "y")]
        with pytest.raises(HierarchyError):
            state.drill("geo")

    def test_drill_returns_new_state(self, dims):
        s0 = DrillState(dims)
        s1 = s0.drill("time")
        assert s0.group_by() == ()
        assert s1.group_by() == ("y",)

    def test_invalid_depth(self, dims):
        with pytest.raises(HierarchyError):
            DrillState(dims, {"geo": 5, "time": 0})
