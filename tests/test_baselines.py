"""Tests for the §5.2 comparison baselines."""

import numpy as np
import pytest

from repro.baselines import (OutlierBaseline, RawBaseline,
                             SensitivityBaseline, SupportBaseline)
from repro.core.complaint import Complaint
from repro.core.repair import ModelRepairer
from repro.relational.aggregates import AggState
from repro.relational.cube import GroupView
from repro.relational.relation import Relation
from repro.relational.schema import Schema, dimension, measure


@pytest.fixture
def drill_view():
    groups = {
        ("big",): AggState.from_stats(100, 5.0, 1.0),
        ("high",): AggState.from_stats(10, 9.0, 1.0),
        ("normal",): AggState.from_stats(10, 5.0, 1.0),
    }
    return GroupView(("g",), groups)


class TestSensitivity:
    def test_deletion_semantics(self, drill_view):
        """For 'sum too high', deleting the biggest contributor wins."""
        complaint = Complaint.too_high({}, "sum")
        best = SensitivityBaseline().best(drill_view, complaint)
        assert best == ("big",)

    def test_cannot_express_additive_repairs(self):
        """'count too low': deletion can only lower counts further, so the
        least-harmful deletion (smallest group) is chosen — not the group
        with missing rows unless it happens to be smallest."""
        groups = {("missing",): AggState.from_stats(6, 5.0, 1.0),
                  ("tiny",): AggState.from_stats(2, 5.0, 1.0),
                  ("normal",): AggState.from_stats(10, 5.0, 1.0)}
        view = GroupView(("g",), groups)
        complaint = Complaint.too_low({}, "count")
        assert SensitivityBaseline().best(view, complaint) == ("tiny",)

    def test_rank_is_total_order(self, drill_view):
        ranked = SensitivityBaseline().rank(drill_view,
                                            Complaint.too_low({}, "mean"))
        assert sorted(ranked) == sorted(drill_view.groups)


class TestSupport:
    def test_largest_count_first(self, drill_view):
        assert SupportBaseline().best(drill_view) == ("big",)

    def test_ignores_complaint(self, drill_view):
        r1 = SupportBaseline().rank(drill_view, Complaint.too_low({}, "mean"))
        r2 = SupportBaseline().rank(drill_view, Complaint.too_high({}, "sum"))
        assert r1 == r2


class TestOutlier:
    def test_finds_deviating_group_but_not_direction(self):
        """Outlier flags both high and low deviants indiscriminately."""
        groups = {}
        for i in range(20):
            groups[(f"g{i:02d}",)] = AggState.from_stats(10, 5.0, 1.0)
        groups[("low",)] = AggState.from_stats(10, 1.0, 1.0)
        groups[("hi",)] = AggState.from_stats(10, 9.2, 1.0)
        view = GroupView(("g",), groups)
        baseline = OutlierBaseline(ModelRepairer(n_iterations=3))
        ranked = baseline.rank(view, view, (), "mean")
        assert set(ranked[:2]) == {("low",), ("hi",)}


class TestRaw:
    @pytest.fixture
    def relation(self, rng):
        rows = []
        for g in ("a", "b", "c"):
            for v in rng.normal(10.0, 1.0, size=30):
                rows.append((g, float(v)))
        # Group c has a few extreme outliers pulling its mean up.
        rows += [("c", 60.0), ("c", 55.0), ("c", 70.0)]
        return Relation.from_rows(
            Schema([dimension("g"), measure("x")]), rows)

    def test_winsorization_finds_outlier_records(self, relation):
        complaint = Complaint.too_high({}, "mean")
        best = RawBaseline().best(relation, ("g",), "x", complaint)
        assert best == ("c",)

    def test_blind_to_missing_rows(self, rng):
        """Clipping never changes counts, so Raw cannot see missing rows."""
        rows = []
        for g, n in (("short", 5), ("full1", 30), ("full2", 30)):
            for v in rng.normal(10.0, 1.0, size=n):
                rows.append((g, float(v)))
        relation = Relation.from_rows(
            Schema([dimension("g"), measure("x")]), rows)
        complaint = Complaint.too_low({}, "count")
        ranked = RawBaseline().rank(relation, ("g",), "x", complaint)
        # All repairs leave count unchanged: scores tie, so the "short"
        # group gets no preferential treatment from the repair itself.
        base = Complaint.too_low({}, "count")
        from repro.relational.aggregates import merge_states
        states = {g: AggState.of(
            relation.filter_equals({"g": g[0]}).measure_array("x"))
            for g in ranked}
        penalties = {base.penalty_of_state(merge_states(states.values()))}
        assert len(penalties) == 1

    def test_provenance_filter(self, relation):
        complaint = Complaint.too_high({}, "mean")
        ranked = RawBaseline().rank(relation, ("g",), "x", complaint,
                                    provenance={"g": "a"})
        assert ranked == [("a",)]

    def test_winsorize_small_groups(self):
        np.testing.assert_allclose(RawBaseline._winsorize(np.asarray([5.0])),
                                   [5.0])
        out = RawBaseline._winsorize(np.asarray([0.0, 5.0, 5.0, 5.0, 10.0]))
        assert out[0] > 0.0 and out[-1] < 10.0
