"""Property tests: every fused-kernel backend ≡ the frozen plain tier.

The kernel-tier contract is *bitwise* equality: for any input, a fused
backend either declines (returns ``None``; the dispatcher falls back) or
produces ``tobytes()``-identical arrays to ``repro.kernels.plain`` —
which the pre-existing suites pin to the frozen row/rank oracles. The
properties here drive all three kernels across dtypes, NaN domains,
empty inputs, single-group views, and radix products straddling the
``int64``-overflow guard, for the NumPy-fused tier always and the numba
tier whenever numba is installed (its cases auto-skip otherwise).

Also covers the dispatch layer itself: ``REPTILE_KERNELS`` resolution,
``set_backend``, the fused/fallback counters, and their exposure through
``ExplanationService.stats()``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels import dispatch, numba_backend, numpy_fused, plain
from repro.relational.encoding import _RADIX_LIMIT, combine_codes

BACKENDS = [pytest.param(numpy_fused, id="numpy")] + ([
    pytest.param(numba_backend, id="numba")]
    if numba_backend.available() else [
    pytest.param(None, id="numba",
                 marks=pytest.mark.skip(reason="numba not installed"))])

SWEEP_STATS = ("count", "mean", "std")


def _assert_bitwise(fused_result, plain_result, label: str) -> None:
    assert len(fused_result) == len(plain_result)
    for got, want in zip(fused_result, plain_result):
        got, want = np.asarray(got), np.asarray(want)
        assert got.dtype == want.dtype, \
            f"{label}: dtype {got.dtype} != {want.dtype}"
        assert got.tobytes() == want.tobytes(), f"{label}: not bitwise"


# -- strategies ------------------------------------------------------------------

@st.composite
def keyed_arrays(draw):
    """``(combined, radix)`` with empty/single-key/dense/sparse shapes."""
    radix = draw(st.sampled_from([1, 2, 7, 64, 1 << 16, (1 << 16) + 3,
                                  1 << 20]))
    n = draw(st.integers(0, 50))
    shape = draw(st.sampled_from(["uniform", "single", "extremes"]))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    if shape == "single" and n:
        combined = np.full(n, int(rng.integers(0, radix)), dtype=np.int64)
    elif shape == "extremes" and n:
        combined = rng.choice([0, radix - 1], size=n).astype(np.int64)
    else:
        combined = rng.integers(0, radix, n)
    return combined, radix


@st.composite
def join_inputs(draw):
    """Left/right keys + counts; right side may hold duplicate keys."""
    radix = draw(st.sampled_from([1, 5, 256, 1 << 16]))
    nl = draw(st.integers(0, 40))
    nr = draw(st.integers(0, 40))
    seed = draw(st.integers(0, 2 ** 16))
    unique_right = draw(st.booleans())
    rng = np.random.default_rng(seed)
    if unique_right:
        nr = min(nr, radix)
        combined_r = rng.permutation(radix)[:nr]
    else:
        combined_r = rng.integers(0, radix, nr)
    combined_l = rng.integers(0, radix, nl)
    left_counts = rng.integers(1, 9, nl).astype(float)
    right_counts = rng.integers(1, 9, nr).astype(float)
    return combined_l, combined_r, left_counts, right_counts, radix


@st.composite
def sweep_inputs(draw):
    """Group stats + a prediction matrix with NaN/invalid/edge groups."""
    n = draw(st.integers(0, 30))
    seed = draw(st.integers(0, 2 ** 16))
    with_nan = draw(st.booleans())
    validity = draw(st.sampled_from(["all", "none", "mixed"]))
    rng = np.random.default_rng(seed)
    # count 0/1 groups exercise every guard branch of mean/var.
    count = rng.integers(0, 6, n).astype(float)
    total = np.round(rng.normal(10.0, 5.0, n) * count, 3)
    sumsq = np.where(count > 0, total * total / np.maximum(count, 1.0)
                     + rng.integers(0, 20, n), 0.0)
    parent = (float(count.sum()), float(total.sum()), float(sumsq.sum()))
    k = len(SWEEP_STATS)
    values = np.round(rng.normal(5.0, 3.0, (n, k)), 3)
    if with_nan and n:
        values[rng.integers(0, n), rng.integers(0, k)] = np.nan
    if validity == "all":
        valid = np.ones((n, k), dtype=bool)
    elif validity == "none":
        valid = np.zeros((n, k), dtype=bool)
    else:
        valid = rng.random((n, k)) < 0.6
    return count, total, sumsq, parent, values, valid


# -- kernel properties -----------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(data=keyed_arrays())
def test_group_codes_bitwise(backend, data):
    combined, radix = data
    fused = backend.group_codes(combined, radix)
    if fused is None:
        return   # guard declined: the dispatcher would run plain
    _assert_bitwise(fused, plain.group_codes(combined, radix),
                    "group_codes")


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(data=join_inputs())
def test_join_kernels_bitwise(backend, data):
    combined_l, combined_r, left_counts, right_counts, radix = data
    fused = backend.join_probe(combined_l, combined_r, radix)
    if fused is not None:
        _assert_bitwise(fused, plain.join_probe(combined_l, combined_r,
                                                radix), "join_probe")
    fused = backend.join_multiply(combined_l, combined_r, left_counts,
                                  right_counts, radix)
    if fused is not None:
        _assert_bitwise(
            fused, plain.join_multiply(combined_l, combined_r,
                                       left_counts, right_counts, radix),
            "join_multiply")


def test_numpy_join_declines_duplicate_right_keys():
    combined_r = np.array([3, 3, 5], dtype=np.int64)
    combined_l = np.array([3, 5], dtype=np.int64)
    assert numpy_fused.join_probe(combined_l, combined_r, 8) is None
    # ...and the dispatcher still returns the plain result.
    l_idx, r_pos = kernels.join_probe(combined_l, combined_r, 8)
    want_l, want_r = plain.join_probe(combined_l, combined_r, 8)
    assert np.array_equal(l_idx, want_l) and np.array_equal(r_pos, want_r)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(data=sweep_inputs())
def test_rank1_sweep_bitwise(backend, data):
    count, total, sumsq, parent, values, valid = data
    args = (count, total, sumsq, parent[0], parent[1], parent[2],
            SWEEP_STATS, values, valid, "sum", ("count", "mean", "std"))
    fused = backend.rank1_sweep(*args)
    if fused is None:
        return
    _assert_bitwise(fused, plain.rank1_sweep(*args), "rank1_sweep")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("aggregate", ["count", "sum", "mean", "std",
                                       "var"])
def test_rank1_sweep_aggregates_bitwise(backend, aggregate):
    rng = np.random.default_rng(5)
    n, k = 17, 3
    count = rng.integers(0, 6, n).astype(float)
    total = rng.normal(10.0, 5.0, n) * count
    sumsq = np.where(count > 0,
                     total * total / np.maximum(count, 1.0) + 1.0, 0.0)
    values = rng.normal(5.0, 3.0, (n, k))
    valid = rng.random((n, k)) < 0.7
    args = (count, total, sumsq, float(count.sum()), float(total.sum()),
            float(sumsq.sum()), SWEEP_STATS, values, valid, aggregate,
            ("mean",))
    fused = backend.rank1_sweep(*args)
    assert fused is not None
    _assert_bitwise(fused, plain.rank1_sweep(*args), "rank1_sweep")


# -- the int64-overflow guard straddle -------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2 ** 16), overflow=st.booleans())
def test_combine_codes_straddles_radix_limit(seed, overflow):
    """combine_codes agrees across backends on both sides of the guard.

    Just under ``_RADIX_LIMIT`` the kernel tier dispatches; at or above
    it the pre-kernel ``np.unique(axis=0)`` branch runs for every
    backend. Outputs must be identical either way.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 30))
    huge = 1 << 30
    # Two huge domains give radix 2^60 (just under the 2^62 guard); the
    # third size pushes it to exactly 2^62 (at the guard) or leaves it.
    third = 4 if overflow else 1
    sizes = [huge, huge, third]
    radix = sizes[0] * sizes[1] * sizes[2]
    assert (radix >= _RADIX_LIMIT) == overflow
    cols = [rng.integers(0, 50, n).astype(np.int32) for _ in range(2)]
    cols.append(rng.integers(0, third, n).astype(np.int32))
    by_backend = {}
    before = kernels.backend_name()
    try:
        for name in ("plain", "numpy"):
            kernels.set_backend(name)
            by_backend[name] = combine_codes(cols, sizes, n)
    finally:
        kernels.set_backend(before)
    _assert_bitwise(by_backend["numpy"], by_backend["plain"],
                    "combine_codes")


# -- dispatch, counters, stats ---------------------------------------------------

@pytest.fixture
def restore_backend():
    before = kernels.backend_name()
    yield
    kernels.set_backend(before)
    kernels.reset_kernel_stats()


def test_resolve_backend_names(monkeypatch):
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    assert kernels.resolve_backend("off") == "plain"
    assert kernels.resolve_backend("plain") == "plain"
    assert kernels.resolve_backend("numpy") == "numpy"
    expect = "numba" if numba_backend.available() else "numpy"
    assert kernels.resolve_backend("auto") == expect
    assert kernels.resolve_backend(None) == expect
    monkeypatch.setenv(kernels.ENV_VAR, "numpy")
    assert kernels.resolve_backend(None) == "numpy"
    with pytest.raises(kernels.KernelBackendError):
        kernels.resolve_backend("cuda")
    if not numba_backend.available():
        with pytest.raises(kernels.KernelBackendError):
            kernels.resolve_backend("numba")


def test_set_backend_switches_dispatch(restore_backend):
    kernels.set_backend("plain")
    assert kernels.backend_name() == "plain"
    assert kernels.kernel_stats()["backend"] == "plain"
    kernels.reset_kernel_stats()
    combined = np.array([1, 0, 1], dtype=np.int64)
    kernels.group_codes(combined, 4)
    assert kernels.KERNEL_STATS["group_codes"] == {"fused": 0,
                                                   "fallback": 1}
    kernels.set_backend("numpy")
    kernels.group_codes(combined, 4)
    assert kernels.KERNEL_STATS["group_codes"]["fused"] == 1


def test_counters_track_guard_fallback(restore_backend):
    kernels.set_backend("numpy")
    kernels.reset_kernel_stats()
    dup_r = np.array([2, 2], dtype=np.int64)
    lhs = np.array([2], dtype=np.int64)
    kernels.join_multiply(lhs, dup_r, np.ones(1), np.ones(2), 4)
    assert kernels.KERNEL_STATS["join_multiply"] == {"fused": 0,
                                                     "fallback": 1}
    stats = kernels.kernel_stats()
    assert stats["backend"] == "numpy"
    assert stats["counters"]["join_multiply"]["fallback"] == 1
    # Snapshots are copies: mutating one must not corrupt the counters.
    stats["counters"]["join_multiply"]["fallback"] = 99
    assert kernels.KERNEL_STATS["join_multiply"]["fallback"] == 1


def test_service_stats_expose_kernels(restore_backend):
    from repro.serving.service import ExplanationService

    kernels.set_backend("numpy")
    stats = ExplanationService().stats()
    assert stats["kernels"]["backend"] == "numpy"
    assert set(stats["kernels"]["counters"]) == set(kernels.KERNEL_STATS)


def test_no_numba_import_on_default_path():
    """The default (numpy) tier must never import numba at module load."""
    import subprocess
    import sys

    code = ("import sys\n"
            "import repro\n"
            "from repro import kernels\n"
            "kernels.set_backend('numpy')\n"
            "import numpy as np\n"
            "kernels.group_codes(np.array([1, 0], dtype=np.int64), 2)\n"
            "assert 'numba' not in sys.modules, 'numba leaked in'\n")
    result = subprocess.run([sys.executable, "-c", code],
                            capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
