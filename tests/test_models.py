"""Tests for the linear and multi-level models and their backends."""

import numpy as np
import pytest

from repro.factorized import (Factorizer, FactorizedMatrix, FeatureColumn,
                              intercept_column)
from repro.model.backends import DenseDesign, FactorizedDesign
from repro.model.linear import LinearModel, solve_spd
from repro.model.matlab_style import MatlabStyleEM
from repro.model.multilevel import MultilevelModel

from factorized_strategies import build_hierarchy
from repro.factorized.forder import AttributeOrder


def random_design(rng, n_clusters=10, size_range=(2, 7), m=4):
    sizes = rng.integers(size_range[0], size_range[1], size=n_clusters)
    n = int(sizes.sum())
    x = rng.normal(size=(n, m))
    x[:, 0] = 1.0
    return DenseDesign(x, sizes), x, sizes


def simulate_lmm(rng, design, beta, cov_scale=0.5, noise=0.3):
    """Draw y from the §3.2 generative model."""
    x = design.x
    z = x[:, design.z_columns]
    g = design.n_clusters
    r = design.r
    b = rng.normal(scale=cov_scale, size=(g, r))
    row_cluster = np.repeat(np.arange(g), design.sizes)
    y = x @ beta + np.einsum("ni,ni->n", z, b[row_cluster]) \
        + rng.normal(scale=noise, size=x.shape[0])
    return y, b


class TestSolveSpd:
    def test_solves_well_conditioned(self, rng):
        a = rng.normal(size=(4, 4))
        spd = a @ a.T + 4 * np.eye(4)
        b = rng.normal(size=4)
        np.testing.assert_allclose(solve_spd(spd, b, ridge=0.0),
                                   np.linalg.solve(spd, b), rtol=1e-8)

    def test_singular_falls_back(self):
        a = np.zeros((3, 3))
        out = solve_spd(a, np.ones(3))
        assert np.all(np.isfinite(out))


class TestLinearModel:
    def test_recovers_coefficients(self, rng):
        design, x, _ = random_design(rng)
        beta = np.asarray([1.0, -2.0, 0.5, 3.0])
        y = x @ beta + rng.normal(scale=0.01, size=design.n)
        fit = LinearModel().fit(design, y)
        np.testing.assert_allclose(fit.beta, beta, atol=0.05)

    def test_shape_check(self, rng):
        design, _, _ = random_design(rng)
        with pytest.raises(ValueError):
            LinearModel().fit(design, np.ones(3))

    def test_aic_decreases_with_better_fit(self, rng):
        design, x, sizes = random_design(rng)
        beta = np.asarray([1.0, -2.0, 0.5, 3.0])
        y_clean = x @ beta + rng.normal(scale=0.01, size=design.n)
        y_noisy = x @ beta + rng.normal(scale=5.0, size=design.n)
        assert LinearModel().fit(design, y_clean).aic() < \
            LinearModel().fit(design, y_noisy).aic()


class TestMultilevelEM:
    def test_sigma2_decreases(self, rng):
        design, x, _ = random_design(rng, n_clusters=20)
        beta = np.asarray([2.0, 1.0, -1.0, 0.5])
        y, _ = simulate_lmm(rng, design, beta)
        fit = MultilevelModel(n_iterations=15).fit(design, y)
        # EM on a correctly specified model should not increase σ².
        assert fit.history[-1] <= fit.history[0] * 1.01

    def test_recovers_fixed_effects(self, rng):
        design, x, _ = random_design(rng, n_clusters=60, size_range=(4, 9))
        beta = np.asarray([2.0, 1.0, -1.0, 0.5])
        y, _ = simulate_lmm(rng, design, beta, cov_scale=0.2, noise=0.1)
        fit = MultilevelModel(n_iterations=20).fit(design, y)
        np.testing.assert_allclose(fit.beta, beta, atol=0.35)

    def test_blups_shrink_toward_zero(self, rng):
        """Cluster effects are posterior means — smaller than raw effects."""
        design, x, _ = random_design(rng, n_clusters=30)
        beta = np.zeros(4)
        y, b_true = simulate_lmm(rng, design, beta, cov_scale=1.0, noise=2.0)
        fit = MultilevelModel(n_iterations=15).fit(design, y)
        assert np.linalg.norm(fit.b) < np.linalg.norm(b_true) * 1.5

    def test_fit_better_than_linear(self, rng):
        design, x, _ = random_design(rng, n_clusters=40)
        beta = np.asarray([1.0, 0.5, -0.5, 0.0])
        y, _ = simulate_lmm(rng, design, beta, cov_scale=1.0, noise=0.2)
        mm = MultilevelModel(n_iterations=15)
        fit = mm.fit(design, y)
        pred_ml = mm.predict(design, fit)
        pred_lin = LinearModel().fit_predict(design, y)
        assert np.mean((y - pred_ml) ** 2) < np.mean((y - pred_lin) ** 2)

    def test_z_column_subset(self, rng):
        sizes = rng.integers(2, 6, size=8)
        n = int(sizes.sum())
        x = rng.normal(size=(n, 3))
        design = DenseDesign(x, sizes, z_columns=[0, 2])
        fit = MultilevelModel(n_iterations=5).fit(design, rng.normal(size=n))
        assert fit.r == 2
        assert fit.cov.shape == (2, 2)
        assert fit.b.shape == (8, 2)

    def test_log_likelihood_finite_and_ordered(self, rng):
        design, x, _ = random_design(rng, n_clusters=25)
        beta = np.asarray([1.0, 0.5, -0.5, 0.0])
        y, _ = simulate_lmm(rng, design, beta)
        mm = MultilevelModel(n_iterations=10)
        fit = mm.fit(design, y)
        ll = mm.log_likelihood(design, fit, y)
        assert np.isfinite(ll)
        # Shuffled targets should fit worse.
        y_shuffled = y.copy()
        rng.shuffle(y_shuffled)
        fit_bad = mm.fit(design, y_shuffled)
        assert mm.log_likelihood(design, fit_bad, y_shuffled) < ll + 50

    def test_parameter_count(self, rng):
        design, _, _ = random_design(rng, m=3)
        fit = MultilevelModel(n_iterations=2).fit(
            design, rng.normal(size=design.n))
        assert fit.n_parameters == 3 + 3 * 4 // 2 + 1


class TestBackendEquivalence:
    """Dense and factorized designs must give identical EM results."""

    @pytest.fixture
    def factorized_setup(self, rng):
        h1 = build_hierarchy("p", 2, [3, 2])
        h2 = build_hierarchy("q", 2, [2, 3])
        order = AttributeOrder([h1, h2])
        cols = [intercept_column(order)]
        for attr in order.attributes:
            dom = order.ordered_domain(attr)
            cols.append(FeatureColumn(
                attr, f"f_{attr}",
                {v: float(x) for v, x in
                 zip(dom, rng.standard_normal(len(dom)))}))
        matrix = FactorizedMatrix(order, cols)
        y = matrix.materialize() @ rng.normal(size=matrix.n_cols) \
            + rng.normal(scale=0.2, size=matrix.n_rows)
        return matrix, y

    def test_em_identical(self, factorized_setup, rng):
        matrix, y = factorized_setup
        fd = FactorizedDesign(matrix)
        dd = DenseDesign(matrix.materialize(),
                         Factorizer(matrix.order).cluster_sizes().astype(int))
        mm = MultilevelModel(n_iterations=12)
        f1, f2 = mm.fit(fd, y), mm.fit(dd, y)
        np.testing.assert_allclose(f1.beta, f2.beta, atol=1e-7)
        np.testing.assert_allclose(f1.cov, f2.cov, atol=1e-7)
        np.testing.assert_allclose(f1.b, f2.b, atol=1e-7)
        assert f1.sigma2 == pytest.approx(f2.sigma2, abs=1e-8)
        np.testing.assert_allclose(mm.predict(fd, f1), mm.predict(dd, f2),
                                   atol=1e-6)
        assert mm.log_likelihood(fd, f1, y) == pytest.approx(
            mm.log_likelihood(dd, f2, y), abs=1e-5)

    def test_matlab_style_identical(self, factorized_setup):
        matrix, y = factorized_setup
        x = matrix.materialize()
        sizes = Factorizer(matrix.order).cluster_sizes().astype(int)
        dd = DenseDesign(x, sizes)
        f1 = MultilevelModel(n_iterations=9).fit(dd, y)
        f2 = MatlabStyleEM(n_iterations=9).fit(x, y, sizes)
        np.testing.assert_allclose(f1.beta, f2.beta, atol=1e-8)
        np.testing.assert_allclose(f1.cov, f2.cov, atol=1e-8)
        assert f1.sigma2 == pytest.approx(f2.sigma2, abs=1e-10)

    def test_z_subset_equivalence(self, factorized_setup):
        matrix, y = factorized_setup
        z_cols = [0, 2]
        fd = FactorizedDesign(matrix, z_columns=z_cols)
        dd = DenseDesign(matrix.materialize(),
                         Factorizer(matrix.order).cluster_sizes().astype(int),
                         z_columns=z_cols)
        mm = MultilevelModel(n_iterations=8)
        f1, f2 = mm.fit(fd, y), mm.fit(dd, y)
        np.testing.assert_allclose(f1.beta, f2.beta, atol=1e-8)
        np.testing.assert_allclose(f1.b, f2.b, atol=1e-8)


class TestDenseDesignValidation:
    def test_size_mismatch(self, rng):
        with pytest.raises(ValueError):
            DenseDesign(rng.normal(size=(5, 2)), [2, 2])

    def test_one_dimensional_rejected(self, rng):
        with pytest.raises(ValueError):
            DenseDesign(rng.normal(size=5), [5])
