"""Property tests for session snapshot/staleness semantics.

Hypothesis generates interleavings of ``ingest`` / ``recommend`` /
``view`` / ``sync`` operations against an :class:`ExplanationService`
holding one auto-``sync`` and one ``strict`` session, and checks every
response against a serialized oracle — a dozen lines of Python tracking
the current version, each session's pinned version, and the cumulative
relation totals per version:

* a ``sync`` session never goes backwards in ``data_version`` and always
  answers at the engine's current version;
* a ``strict`` session raises :class:`StaleDataError` *exactly* when a
  delta has landed since its pinned version — never spuriously, never
  silently serving mixed versions — and the error names both versions;
* every answered view's totals equal the oracle's totals at the reported
  version, bitwise (integer-valued measures).

A second property drives the same operations from two real threads and
checks the invariants that survive nondeterminism: per-session version
monotonicity and single-version response consistency.
"""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import StaleDataError
from repro.relational import (HierarchicalDataset, Relation, Schema,
                              dimension, measure)
from repro.serving import ExplanationService


def small_dataset(seed: int = 0) -> HierarchicalDataset:
    rng = np.random.default_rng(seed)
    rows = []
    for d in range(2):
        for v in range(2):
            for y in (2000, 2001):
                for _ in range(3):
                    rows.append((f"d{d}", f"d{d}v{v}", y,
                                 float(rng.integers(1, 10))))
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    return HierarchicalDataset.build(
        Relation.from_rows(schema, rows),
        {"geo": ["district", "village"], "time": ["year"]}, "severity")


def view_totals(view) -> tuple[int, float]:
    count = total = 0.0
    for state in view.groups.values():
        count += state.count
        total += state.total
    return int(count), float(total)


def fresh_service() -> tuple[ExplanationService, str, str]:
    service = ExplanationService()
    service.register("data", small_dataset())
    sync_id = service.open_session("data", session_id="auto",
                                   group_by=["district"])
    strict_id = service.open_session("data", session_id="strict",
                                     group_by=["district"],
                                     staleness="strict")
    return service, sync_id, strict_id


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("ingest"),
                  st.integers(min_value=1, max_value=3),
                  st.integers(min_value=1, max_value=9)),
        st.tuples(st.just("view"), st.sampled_from(["auto", "strict"]),
                  st.just(0)),
        st.tuples(st.just("recommend"), st.just("auto"), st.just(0)),
        st.tuples(st.just("sync"), st.just("strict"), st.just(0)),
    ),
    min_size=1, max_size=14)


class TestSerializedOracle:
    @given(ops=OPS)
    @settings(max_examples=40)
    def test_interleavings_match_serialized_oracle(self, ops):
        service, sync_id, strict_id = fresh_service()
        dataset = service.engine("data").dataset
        base_count = len(dataset.relation)
        base_total = float(sum(dataset.relation.column_values("severity")))

        # The oracle: current version, per-version totals, pinned marks.
        current = 0
        totals = {0: (base_count, base_total)}
        pinned = {"auto": 0, "strict": 0}
        last_answered = {"auto": 0, "strict": 0}
        village_counter = 0

        for op, a, b in ops:
            if op == "ingest":
                village_counter += 1
                rows = [("d0", f"d0new{village_counter}", 2000, float(b))
                        for _ in range(a)]
                info = service.ingest("data", rows)
                current += 1
                count, total = totals[current - 1]
                totals[current] = (count + a, total + a * float(b))
                assert info["version"] == current
                # The write bumped the auto-sync session immediately.
                pinned["auto"] = current
            elif op == "view":
                session_id = sync_id if a == "auto" else strict_id
                if a == "strict" and pinned["strict"] != current:
                    try:
                        service.with_session(session_id,
                                             lambda s: s.view())
                    except StaleDataError as exc:
                        assert exc.pinned == pinned["strict"]
                        assert exc.current == current
                    else:
                        raise AssertionError(
                            "strict session served a stale view without "
                            "raising")
                    continue
                view, version = service.with_session(session_id,
                                                     lambda s: s.view())
                assert version == current
                assert view_totals(view) == totals[version]
                assert version >= last_answered[a], (
                    f"session {a} went backwards: "
                    f"{last_answered[a]} -> {version}")
                last_answered[a] = version
                pinned[a] = version
            elif op == "recommend":
                from repro.core.complaint import Complaint
                _, version = service.with_session(
                    sync_id, lambda s: s.recommend(
                        Complaint.too_low({"district": "d0"}, "mean"), k=2))
                assert version == current
                assert version >= last_answered["auto"]
                last_answered["auto"] = version
                pinned["auto"] = version
            else:  # sync the strict session
                _, version = service.with_session(strict_id,
                                                  lambda s: s.sync())
                assert version == current
                pinned["strict"] = current

        # Exactly-once staleness: after syncing, strict serves again.
        service.with_session(strict_id, lambda s: s.sync())
        view, version = service.with_session(strict_id, lambda s: s.view())
        assert version == current
        assert view_totals(view) == totals[current]


class TestConcurrentInvariants:
    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           n_reads=st.integers(min_value=1, max_value=6),
           n_ingests=st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_threaded_reads_see_single_versions(self, seed, n_reads,
                                                n_ingests):
        service, sync_id, _ = fresh_service()
        dataset = service.engine("data").dataset
        base = (len(dataset.relation),
                float(sum(dataset.relation.column_values("severity"))))
        contrib: dict[int, tuple[int, float]] = {}
        contrib_lock = threading.Lock()
        deferred: list[tuple[int, tuple[int, float]]] = []
        failures: list[str] = []

        def expected(version: int) -> tuple[int, float]:
            count, total = base
            with contrib_lock:
                for v, (dc, ds) in contrib.items():
                    if v <= version:
                        count, total = count + dc, total + ds
            return count, total

        def reader() -> None:
            last = -1
            for _ in range(n_reads):
                view, version = service.with_session(sync_id,
                                                     lambda s: s.view())
                got = view_totals(view)
                if got != expected(version):
                    # The ingester records its contribution only after
                    # its call returns, so the oracle may briefly lag
                    # the version we just read. Re-check post-join.
                    with contrib_lock:
                        deferred.append((version, got))
                if version < last:
                    failures.append(f"went backwards {last} -> {version}")
                last = version

        def ingester() -> None:
            rng = np.random.default_rng(seed)
            for i in range(n_ingests):
                value = float(rng.integers(1, 9))
                rows = [("d1", f"d1t{seed}n{i}", 2001, value)]
                info = service.ingest("data", rows)
                with contrib_lock:
                    contrib[info["version"]] = (1, value)

        threads = [threading.Thread(target=reader, name="reader"),
                   threading.Thread(target=ingester, name="ingester")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not any(t.is_alive() for t in threads), "threads hung"
        assert not failures, failures
        torn = [(v, got) for v, got in deferred if got != expected(v)]
        assert not torn, f"torn reads: {torn}"
