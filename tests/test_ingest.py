"""Delta ingestion: unit coverage layer by layer, plus the serving path.

Complements the hypothesis oracle suite (``test_delta_properties``) with
pinned behaviours: domain extension without re-encode, retraction
validation and atomicity, counted-map delta merges, path patching,
session staleness policies, the serving cache's patch/retain/drop
decisions, the ``ExplanationService.invalidate`` session regression, and
the CLI ``ingest`` command.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro import (Complaint, Delta, DeltaError, HierarchicalDataset,
                   Relation, Reptile, ReptileConfig, Schema, StaleDataError,
                   dimension, measure)
from repro.factorized import HierarchyPaths
from repro.factorized.drilldown import DrilldownEngine
from repro.factorized.forder import FactorizationError
from repro.factorized.reference import assert_aggregate_sets_equal
from repro.relational import deltaref
from repro.relational.countmap import CountMapError, EncodedCountMap
from repro.relational.cube import Cube
from repro.relational.delta import locate_rows
from repro.serving import AggregateCache, ExplanationService

CONFIG = ReptileConfig(n_em_iterations=2)
COMPLAINT = Complaint.too_low({"year": 1986}, "mean")


def _delta(dataset, appended=(), retracted=()):
    return Delta.from_rows(dataset.relation.schema, appended, retracted)


# -- encoding layer -------------------------------------------------------------------
class TestExtendDomain:
    def test_old_codes_survive_untouched(self, ofla_dataset):
        enc = ofla_dataset.relation.encoding("district")
        extended, codes = enc.extend_domain(["Ofla", "Tigray", "Alaje"])
        assert extended.codes is enc.codes  # same array, no re-encode
        assert extended.domain[:enc.cardinality] == enc.domain
        assert codes.tolist() == [enc.code_of("Ofla"),
                                  enc.cardinality,  # new value at the end
                                  enc.code_of("Alaje")]
        # The source encoding is isolated from the extension.
        assert "Tigray" not in enc.domain
        assert enc.code_of("Tigray") is None
        assert extended.domain_sorted is False  # appended out of order

    def test_no_new_values_keeps_sortedness(self, ofla_dataset):
        enc = ofla_dataset.relation.encoding("district")
        extended, _ = enc.extend_domain(["Alaje", "Ofla"])
        assert extended.domain is not enc.domain  # still copy-on-write
        assert extended.domain == enc.domain
        assert extended.domain_sorted == enc.domain_sorted

    def test_nan_values_get_fresh_codes(self):
        from repro.relational.encoding import factorize
        nan = float("nan")
        enc = factorize([1.0, nan, 2.0])
        extended, codes = enc.extend_domain([nan, float("nan"), 1.0])
        # The *same* NaN object matches its code; a new NaN object is a
        # new domain entry — dict identity semantics, as in factorize.
        assert codes[0] == enc.code_of(1.0) or True  # placeholder, below
        nan_code = enc.codes[1]
        assert codes.tolist()[0] == nan_code
        assert codes.tolist()[1] == enc.cardinality
        assert codes.tolist()[2] == extended.domain.index(1.0)

    def test_cross_type_merge_flags_lossy(self):
        from repro.relational.encoding import factorize
        enc = factorize([1, 2, 3])
        extended, codes = enc.extend_domain([True, 2.0])
        assert extended.lossy
        assert codes.tolist() == [enc.code_of(1), enc.code_of(2)]


class TestRelationDelta:
    def test_append_extends_encodings_in_place(self, ofla_dataset):
        relation = ofla_dataset.relation
        old_enc = relation.encoding("district")
        extra = Relation.from_rows(relation.schema, [
            ("Tigray", "Newtown", 1990, 5.0)])
        appended = relation.with_rows_appended(extra)
        assert len(appended) == len(relation) + 1
        new_enc = appended.encoding("district")
        # Old codes are a verbatim prefix: no re-encode happened.
        np.testing.assert_array_equal(new_enc.codes[:len(relation)],
                                      old_enc.codes)
        assert new_enc.domain[:old_enc.cardinality] == old_enc.domain
        assert new_enc.domain[-1] == "Tigray"
        assert list(appended.rows())[-1] == ("Tigray", "Newtown", 1990, 5.0)

    def test_append_requires_same_schema(self, ofla_dataset, tiny_relation):
        with pytest.raises(Exception):
            ofla_dataset.relation.with_rows_appended(tiny_relation)

    def test_without_rows(self, tiny_relation):
        trimmed = tiny_relation.without_rows([0, 3])
        assert list(trimmed.rows()) == [("a1", "b2", 2.0), ("a2", "b1", 3.0),
                                        ("a2", "b2", 5.0)]

    def test_locate_rows_earliest_match_bag_semantics(self):
        schema = Schema([dimension("a"), measure("x")])
        relation = Relation.from_rows(
            schema, [("p", 1.0), ("q", 2.0), ("p", 1.0), ("p", 1.0)])
        target = Relation.from_rows(schema, [("p", 1.0), ("p", 1.0)])
        assert locate_rows(relation, target).tolist() == [0, 2]

    def test_locate_rows_missing_raises(self, tiny_relation):
        target = Relation.from_rows(tiny_relation.schema,
                                    [("a9", "b1", 1.0)])
        with pytest.raises(DeltaError, match="matches no base row"):
            locate_rows(tiny_relation, target)

    def test_locate_rows_multiplicity_overflow_raises(self, tiny_relation):
        target = Relation.from_rows(
            tiny_relation.schema,
            [("a1", "b1", 1.0), ("a1", "b1", 1.0)])
        with pytest.raises(DeltaError, match="multiplicity"):
            locate_rows(tiny_relation, target)

    def test_locate_rows_nan_never_matches(self):
        schema = Schema([dimension("a"), measure("x")])
        nan = float("nan")
        relation = Relation.from_rows(schema, [(nan, 1.0), ("p", 2.0)])
        target = Relation.from_rows(schema, [(nan, 1.0)])
        with pytest.raises(DeltaError, match="matches no base row"):
            locate_rows(relation, target)

    def test_locate_rows_python_fallback(self):
        schema = Schema([dimension("a"), measure("x")])
        key = ["unhashable"]  # a list cell defeats dictionary encoding
        relation = Relation.from_rows(schema, [(key, 1.0), ("p", 2.0)])
        target = Relation.from_rows(schema, [(["unhashable"], 1.0)])
        assert locate_rows(relation, target).tolist() == [0]


# -- cube layer -----------------------------------------------------------------------
class TestCubeDelta:
    @staticmethod
    def _int_dataset(ofla_dataset) -> HierarchicalDataset:
        """The ofla fixture with integer-valued measures: float sums are
        then exact in any order, so delta vs rebuild must match bitwise
        (the same convention as the fig17/fig20 in-run checks)."""
        rows = [(d, v, y, float(int(s)))
                for d, v, y, s in ofla_dataset.relation.rows()]
        return HierarchicalDataset.build(
            Relation.from_rows(ofla_dataset.relation.schema, rows),
            {"geo": ["district", "village"], "time": ["year"]}, "severity")

    def test_retraction_empties_group(self, ofla_dataset):
        dataset = self._int_dataset(ofla_dataset)
        cube = Cube(dataset)
        doomed = [r for r in dataset.relation.rows()
                  if r[1] == "Zata" and r[2] == 1984]
        cube.apply_delta(_delta(dataset, retracted=doomed))
        assert ("Ofla", "Zata", 1984) not in cube.leaf_states
        oracle = deltaref.rebuilt_dataset(
            dataset, [_delta(dataset, retracted=doomed)])
        deltaref.assert_groups_equal(cube.leaf_states,
                                     deltaref.rebuilt_leaf_states(oracle))

    def test_over_retraction_raises_and_mutates_nothing(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        before = dict(cube.leaf_states)
        n_groups = len(cube)
        bad = [("Ofla", "Zata", 1984, 123.0)] * 999
        with pytest.raises(DeltaError):
            cube.apply_delta(_delta(ofla_dataset, retracted=bad))
        assert len(cube) == n_groups
        assert dict(cube.leaf_states) == before

    def test_empty_delta_is_noop(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        before = dict(cube.leaf_states)
        cube.apply_delta(_delta(ofla_dataset))
        assert dict(cube.leaf_states) == before


# -- factorized layer -----------------------------------------------------------------
class TestEncodedCountMapMergeDelta:
    def test_add_append_and_drop(self):
        dom = ["a", "b", "c"]
        base = EncodedCountMap.dense_unary("X", dom, np.array([2.0, 1.0, 3.0]))
        delta = EncodedCountMap(("X",), (["b", "d"],),
                                (np.array([0, 1], dtype=np.int32),),
                                np.array([-1.0, 4.0]))
        merged = base.merge_delta(delta, domains=(dom + ["d"],))
        assert merged.as_unary_dict() == {"a": 2.0, "c": 3.0, "d": 4.0}

    def test_same_domain_object_fast_path(self):
        dom = ["a", "b"]
        base = EncodedCountMap.dense_unary("X", dom, np.array([2.0, 1.0]))
        delta = EncodedCountMap.dense_unary("X", dom, np.array([1.0, 1.0]))
        merged = base.merge_delta(delta)
        assert merged.as_unary_dict() == {"a": 3.0, "b": 2.0}

    def test_value_missing_from_target_raises(self):
        base = EncodedCountMap.dense_unary("X", ["a"], np.array([1.0]))
        delta = EncodedCountMap.dense_unary("X", ["z"], np.array([1.0]))
        with pytest.raises(CountMapError, match="missing from the target"):
            base.merge_delta(delta)

    def test_shrinking_target_domain_rejected(self):
        base = EncodedCountMap.dense_unary("X", ["a", "b"],
                                           np.array([1.0, 1.0]))
        delta = EncodedCountMap.dense_unary("X", ["a"], np.array([1.0]))
        with pytest.raises(CountMapError, match="does not extend"):
            base.merge_delta(delta, domains=(["a"],))


class TestHierarchyPathsExtend:
    def test_noop_returns_self(self):
        paths = HierarchyPaths("geo", ["D", "V"], [("d1", "v1")])
        assert paths.extend([("d1", "v1")]) is paths

    def test_extend_revalidates_fd(self):
        paths = HierarchyPaths("geo", ["D", "V"], [("d1", "v1")])
        with pytest.raises(FactorizationError):
            paths.extend([("d2", "v1")])  # v1 cannot move districts

    def test_drilldown_engine_patches_instead_of_rebuilding(self):
        geo = HierarchyPaths("geo", ["D", "V"],
                             [("d1", "v1"), ("d1", "v2"), ("d2", "v3")])
        time = HierarchyPaths("time", ["Y"], [("y1",), ("y2",)])
        engine = DrilldownEngine([time, geo], mode="cache")
        engine.evaluate_all()
        engine.drill("geo")
        builds = engine.unit_computations
        assert engine.ingest_paths("geo", [("d1", "v9"), ("d3", "v7")]) == 2
        fresh = DrilldownEngine(
            [time, HierarchyPaths("geo", ["D", "V"],
                                  [("d1", "v1"), ("d1", "v2"), ("d2", "v3"),
                                   ("d1", "v9"), ("d3", "v7")])],
            mode="cache", initial_depths={"geo": 2})
        assert_aggregate_sets_equal(engine.current_aggregates(),
                                    fresh.current_aggregates())
        assert engine.unit_computations == builds  # zero full rebuilds
        assert engine.unit_patches > 0
        for name in engine.candidates():
            assert_aggregate_sets_equal(engine.evaluate_candidate(name),
                                        fresh.evaluate_candidate(name))


# -- engine layer ---------------------------------------------------------------------
class TestEngineDelta:
    def test_untouched_hierarchy_keeps_paths_object(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        time_paths = engine.full_paths()["time"]
        geo_paths = engine.full_paths()["geo"]
        engine.apply_delta(_delta(
            ofla_dataset, appended=[("Ofla", "Mehoni", 1984, 5.0)]))
        assert engine.full_paths()["time"] is time_paths  # identity kept
        assert engine.full_paths()["geo"] is not geo_paths
        assert ("Ofla", "Mehoni") in engine.full_paths()["geo"].paths
        assert engine.touched_since(0) == frozenset({"geo"})

    def test_fd_violating_append_rejected_atomically(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        before = dict(engine.cube.leaf_states)
        with pytest.raises(DeltaError, match="violate hierarchy"):
            engine.apply_delta(_delta(
                ofla_dataset, appended=[("Alaje", "Zata", 1984, 5.0)]))
        assert engine.data_version == 0
        assert dict(engine.cube.leaf_states) == before

    def test_unmatched_retraction_rejected_atomically(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        n = len(ofla_dataset.relation)
        with pytest.raises(DeltaError, match="matches no base row"):
            engine.apply_delta(_delta(
                ofla_dataset, retracted=[("Ofla", "Zata", 1984, -99.0)]))
        assert engine.data_version == 0
        assert len(engine.dataset.relation) == n

    def test_strict_session_raises_until_synced(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        session = engine.session(group_by=["year"],
                                 filters={"district": "Ofla"},
                                 staleness="strict")
        session.aggregates()
        engine.apply_delta(_delta(
            ofla_dataset, appended=[("Ofla", "Zata", 1984, 5.0)]))
        with pytest.raises(StaleDataError):
            session.recommend(COMPLAINT)
        with pytest.raises(StaleDataError):
            session.view()
        with pytest.raises(StaleDataError):
            session.aggregates()
        session.sync()
        assert session.view().total().count \
            == Cube(ofla_dataset).view(
                ("year",), {"district": "Ofla"}).total().count

    def test_invalid_staleness_policy_rejected(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        with pytest.raises(Exception, match="staleness"):
            engine.session(staleness="yolo")

    def test_sync_drops_only_touched_units(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        session = engine.session(group_by=["district", "year"])
        session.aggregates()
        assert session.unit_computations == 2  # geo@1 + time@1
        engine.apply_delta(_delta(
            ofla_dataset, appended=[("Ofla", "Mehoni", 1984, 5.0)]))
        session.aggregates()
        # Only geo's paths changed; time's unit was reused as-is.
        assert session.unit_computations == 3

    def test_refresh_still_resets_everything(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        session = engine.session(group_by=["district", "year"])
        session.aggregates()
        engine.refresh()
        assert engine.touched_since(0) is None
        assert session.is_stale()
        session.aggregates()
        assert session.unit_computations == 4  # both units rebuilt


# -- serving layer --------------------------------------------------------------------
class TestServingIngest:
    def _service(self, dataset):
        service = ExplanationService(config=CONFIG)
        service.register("drought", dataset)
        return service

    def test_ingest_summary_and_correctness(self, ofla_dataset):
        service = self._service(ofla_dataset)
        sid = service.open_session("drought", group_by=["year"],
                                   filters={"district": "Ofla"})
        service.recommend(sid, COMPLAINT)
        rows = [("Ofla", "Zata", 1986, 1.0)] * 4
        info = service.ingest("drought", rows)
        assert info["version"] == 1
        assert info["appended"] == 4 and info["retracted"] == 0
        assert info["cache_patched"] + info["cache_retained"] > 0
        after = service.recommend(sid, COMPLAINT)
        fresh = Reptile(ofla_dataset, config=CONFIG)
        expected = fresh.session(group_by=["year"],
                                 filters={"district": "Ofla"}) \
            .recommend(COMPLAINT)
        assert after == expected
        assert after.ranked()[0].coordinates["village"] == "Zata"

    def test_grand_total_view_is_patched(self, ofla_dataset):
        # Regression: the empty group-by (grand-total) view — the
        # starting view of every undrilled session — has zero key
        # columns; its cached entry used to drop the delta silently.
        cache = AggregateCache()
        engine = Reptile(ofla_dataset, config=CONFIG, cache=cache)
        total = engine.cube.view(()).total()
        row = ("Ofla", "Zata", 1986, 4.0)
        engine.apply_delta(_delta(ofla_dataset, appended=[row]))
        after = engine.cube.view(()).total()
        assert after.count == total.count + 1
        assert after.total == total.total + 4.0
        engine.apply_delta(_delta(ofla_dataset, retracted=[row]))
        assert engine.cube.view(()).total().count == total.count

    def test_untouched_view_entry_retained_by_identity(self, ofla_dataset):
        cache = AggregateCache()
        engine = Reptile(ofla_dataset, config=CONFIG, cache=cache)
        alaje = engine.cube.view(("village", "year"),
                                 {"district": "Alaje"})
        engine.apply_delta(_delta(
            ofla_dataset, appended=[("Ofla", "Zata", 1986, 1.0)]))
        assert cache.stats.retained >= 1
        assert engine.cube.view(("village", "year"),
                                {"district": "Alaje"}) is alaje

    def test_untouched_prediction_survives_ingest(self, ofla_dataset):
        # A delta confined to Alaje leaves the Ofla-filtered view — and
        # any prediction keyed to it — untouched.
        cache = AggregateCache()
        engine = Reptile(ofla_dataset, config=CONFIG, cache=cache)
        repairer = engine.repairer_for(("village",))
        view = engine.cube.view(("village",), {"district": "Ofla"})
        repairer.predict(view, (), "mean")
        fits = cache.timings()["predict"].computations
        engine.apply_delta(_delta(
            ofla_dataset, appended=[("Alaje", "Bora", 1986, 2.0)]))
        fresh_view = engine.cube.view(("village",), {"district": "Ofla"})
        assert fresh_view is view  # retained entry
        repairer.predict(fresh_view, (), "mean")
        assert cache.timings()["predict"].computations == fits  # warm hit

    def test_ingest_strict_session_left_stale(self, ofla_dataset):
        service = self._service(ofla_dataset)
        strict_engine = service.engine("drought")
        sid = service.open_session("drought", group_by=["year"],
                                   filters={"district": "Ofla"})
        strict = strict_engine.session(group_by=["year"],
                                       staleness="strict")
        service._sessions["strict"] = ("drought", strict)
        service.ingest("drought", [("Ofla", "Zata", 1986, 1.0)])
        assert not service.session(sid).is_stale()  # auto-synced
        with pytest.raises(StaleDataError):
            strict.view()

    def test_invalidate_bumps_open_sessions(self, ofla_dataset):
        # Regression: invalidate() used to leave open sessions pinned to
        # the pre-mutation engine state; they must be version-bumped so
        # recommend() cannot serve stale aggregates.
        service = self._service(ofla_dataset)
        sid = service.open_session("drought", group_by=["year"],
                                   filters={"district": "Ofla"})
        service.recommend(sid, COMPLAINT)
        session = service.session(sid)
        version = session.data_version
        severities = ofla_dataset.relation.column("severity")
        for i, (v, y) in enumerate(zip(
                ofla_dataset.relation.column("village"),
                ofla_dataset.relation.column("year"))):
            if v == "Darube" and y == 1986:
                severities[i] = 1.0
        service.invalidate("drought")
        assert session.data_version > version  # bumped, not stale
        assert not session.is_stale()
        after = service.recommend(sid, COMPLAINT)
        expected = Reptile(ofla_dataset, config=CONFIG) \
            .session(group_by=["year"], filters={"district": "Ofla"}) \
            .recommend(COMPLAINT)
        assert after == expected
        assert after.ranked()[0].coordinates["village"] == "Darube"

    def test_retraction_through_service(self, ofla_dataset):
        service = self._service(ofla_dataset)
        doomed = [r for r in ofla_dataset.relation.rows()
                  if r[1] == "Zata"][:2]
        before = len(ofla_dataset.relation)
        info = service.ingest("drought", retract=doomed)
        assert info["retracted"] == 2
        assert len(ofla_dataset.relation) == before - 2


# -- auxiliary lookup memoization -----------------------------------------------------
class TestAuxiliaryLookupMemo:
    def test_lookup_is_memoized(self):
        from repro import AuxiliaryDataset
        schema = Schema([dimension("district"), measure("rain")])
        aux = AuxiliaryDataset(
            "sat", Relation.from_rows(schema, [("Ofla", 1.0),
                                               ("Ofla", 3.0),
                                               ("Alaje", 2.0)]),
            ["district"], ["rain"])
        first = aux.lookup()
        assert first == {("Ofla",): {"rain": 2.0},
                         ("Alaje",): {"rain": 2.0}}
        assert aux.lookup() is first  # built once, reused

    def test_mixed_type_keys_still_work_and_memoize(self):
        # 1 and True merge under == exactly as the old row-dict path did.
        from repro import AuxiliaryDataset
        schema = Schema([dimension("k"), measure("m")])
        aux = AuxiliaryDataset(
            "odd", Relation.from_rows(schema, [(1, 4.0), (True, 6.0),
                                               ("x", 2.0)]),
            ["k"], ["m"])
        first = aux.lookup()
        assert first[(1,)] == {"m": 5.0}
        assert first[("x",)] == {"m": 2.0}
        assert aux.lookup() is first


# -- CLI ------------------------------------------------------------------------------
class TestIngestCommand:
    def test_ingest_demo_smoke(self, capsys):
        from repro.cli import main
        assert main(["ingest", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "data version 1" in out
        assert "patched in place" in out
        assert "post-ingest recommendation" in out

    def test_ingest_rows_file(self, tmp_path, capsys):
        from repro.cli import main
        rows = [{"district": "Ofla", "village": "Mehoni", "year": 1986,
                 "severity": 2.0},
                ["Ofla", "Mehoni", 1986, 3.0]]
        path = tmp_path / "rows.json"
        path.write_text(json.dumps(rows))
        assert main(["ingest", "--rows", str(path),
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "+2 -0 rows" in out

    def test_ingest_rejects_malformed_rows(self, tmp_path):
        from repro.cli import main
        for bad in ([{"district": "Ofla"}],          # missing columns
                    [["Ofla", "Zata"]],              # wrong width
                    ["not-a-row"],                   # not object/list
                    "not-a-list"):
            path = tmp_path / "bad.json"
            path.write_text(json.dumps(bad))
            with pytest.raises(SystemExit):
                main(["ingest", "--rows", str(path)])

    def test_ingest_csv_requires_rows(self, tmp_path):
        from repro.cli import main
        csv = tmp_path / "d.csv"
        csv.write_text("a,m\nx,1.0\n")
        with pytest.raises(SystemExit, match="--rows"):
            main(["ingest", "--csv", str(csv), "--hierarchy", "h=a",
                  "--measure", "m"])
