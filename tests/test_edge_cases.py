"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Complaint, ModelRepairer, Reptile, ReptileConfig
from repro.core.ranker import score_drilldown
from repro.core.repair import RepairPrediction
from repro.factorized import (AttributeOrder, FactorizedMatrix,
                              FeatureColumn, HierarchyPaths,
                              intercept_column)
from repro.model.backends import DenseDesign, FactorizedDesign
from repro.model.multilevel import MultilevelModel
from repro.relational import (AggState, Cube, GroupView,
                              HierarchicalDataset, Relation, Schema,
                              dimension, measure)


class TestDegenerateData:
    def test_single_group_dataset(self):
        """One group, one hierarchy: everything should still work."""
        rel = Relation.from_rows(
            Schema([dimension("g"), measure("x")]),
            [("only", 1.0), ("only", 2.0), ("only", 3.0)])
        ds = HierarchicalDataset.build(rel, {"h": ["g"]}, "x")
        engine = Reptile(ds, config=ReptileConfig(n_em_iterations=2))
        rec = engine.recommend(Complaint.too_low({}, "count"))
        assert rec.best_group.coordinates == {"g": "only"}

    def test_constant_measure(self):
        """Zero-variance data must not crash EM or std computations."""
        rel = Relation.from_rows(
            Schema([dimension("g"), measure("x")]),
            [(f"g{i}", 5.0) for i in range(10) for _ in range(4)])
        ds = HierarchicalDataset.build(rel, {"h": ["g"]}, "x")
        engine = Reptile(ds, config=ReptileConfig(n_em_iterations=3))
        rec = engine.recommend(Complaint.too_high({}, "std"))
        assert np.isfinite(rec.per_hierarchy["h"].base_penalty)

    def test_groups_of_size_one(self):
        rel = Relation.from_rows(
            Schema([dimension("g"), measure("x")]),
            [(f"g{i}", float(i)) for i in range(6)])
        ds = HierarchicalDataset.build(rel, {"h": ["g"]}, "x")
        view = Cube(ds).view(("g",))
        assert all(s.std == 0.0 for s in view.groups.values())

    def test_em_on_tiny_clusters(self, rng):
        """Clusters of size 1 keep V_i well-defined via Σ⁻¹."""
        x = rng.normal(size=(5, 2))
        design = DenseDesign(x, [1, 1, 1, 1, 1])
        fit = MultilevelModel(n_iterations=5).fit(design, rng.normal(size=5))
        assert np.all(np.isfinite(fit.beta))
        assert fit.sigma2 > 0

    def test_em_zero_variance_targets(self, rng):
        x = rng.normal(size=(12, 2))
        design = DenseDesign(x, [4, 4, 4])
        fit = MultilevelModel(n_iterations=5).fit(design, np.zeros(12))
        assert np.all(np.isfinite(fit.beta))
        pred = MultilevelModel.predict(design, fit)
        np.testing.assert_allclose(pred, 0.0, atol=1e-5)


class TestRepairEdges:
    def test_repairing_missing_key_is_identity(self):
        prediction = RepairPrediction(("mean",), {})
        state = AggState.of([1.0, 2.0])
        assert prediction.repair_state(("nope",), state) == state

    def test_score_single_group_view(self):
        view = GroupView(("g",), {("a",): AggState.from_stats(5, 2.0)})
        prediction = RepairPrediction(("mean",), {("a",): {"mean": 3.0}})
        complaint = Complaint.too_low({}, "mean")
        base, scored = score_drilldown(view, prediction, complaint)
        assert len(scored) == 1
        assert scored[0].repaired_value == pytest.approx(3.0)

    def test_negative_predicted_std_clamped(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        parallel = cube.parallel_view(("year",), "district")
        pred = ModelRepairer(n_iterations=2).predict(parallel, ("year",),
                                                     "std")
        for stats in pred.predicted.values():
            assert stats["std"] >= 0.0

    @given(st.floats(min_value=-50, max_value=50, allow_nan=False))
    def test_repair_to_any_mean_is_consistent(self, target):
        state = AggState.of([1.0, 2.0, 3.0, 4.0])
        prediction = RepairPrediction(("mean",), {("k",): {"mean": target}})
        repaired = prediction.repair_state(("k",), state)
        assert repaired.mean == pytest.approx(target, abs=1e-6)
        assert repaired.count == state.count


class TestFactorizedEdges:
    def test_one_by_one_matrix(self):
        order = AttributeOrder([HierarchyPaths("h", ["a"], [("v",)])])
        m = FactorizedMatrix(order, [intercept_column(order)])
        np.testing.assert_allclose(m.materialize(), [[1.0]])
        np.testing.assert_allclose(m.gram(), [[1.0]])

    def test_left_multiply_zero_rows_of_a(self, figure3_order):
        m = FactorizedMatrix(figure3_order, [intercept_column(figure3_order)])
        out = m.left_multiply(np.zeros((1, m.n_rows)))
        np.testing.assert_allclose(out, 0.0)

    def test_right_multiply_zeros(self, figure3_order):
        m = FactorizedMatrix(figure3_order, [intercept_column(figure3_order)])
        out = m.right_multiply(np.zeros(1))
        np.testing.assert_allclose(out, 0.0)

    def test_gram_invariant_under_hierarchy_reorder(self, figure3_order):
        """§3.4: hierarchy order must not change XᵀX up to column perm."""
        cols = [FeatureColumn("T", "fT", {"t1": 1.0, "t2": 2.0}),
                FeatureColumn("D", "fD", {"d1": 3.0, "d2": 4.0})]
        m1 = FactorizedMatrix(figure3_order, cols)
        reordered = figure3_order.reorder(["geo", "time"])
        m2 = FactorizedMatrix(reordered, cols)
        np.testing.assert_allclose(m1.gram(), m2.gram())

    def test_factorized_design_caches_gram(self, figure3_order):
        m = FactorizedMatrix(figure3_order, [intercept_column(figure3_order)])
        design = FactorizedDesign(m)
        g1 = design.gram()
        assert design.gram() is g1  # cached object identity

    def test_duplicate_feature_values_fine(self, figure3_order):
        """Two values mapping to the same feature is legal (ties)."""
        col = FeatureColumn("V", "fV", {"v1": 1.0, "v2": 1.0, "v3": 1.0})
        m = FactorizedMatrix(figure3_order, [col])
        np.testing.assert_allclose(m.materialize()[:, 0], 1.0)


class TestSessionEdges:
    def test_filters_on_leaf_attribute(self, ofla_dataset):
        """Filtering the most specific attribute leaves only time to drill."""
        engine = Reptile(ofla_dataset,
                         config=ReptileConfig(n_em_iterations=2))
        session = engine.session(filters={"village": "Zata"})
        assert session.group_by == ("district", "village")
        rec = session.recommend(Complaint.too_low({}, "count"))
        assert set(rec.per_hierarchy) == {"time"}

    def test_complaint_on_filtered_attr_ok(self, ofla_dataset):
        engine = Reptile(ofla_dataset,
                         config=ReptileConfig(n_em_iterations=2))
        session = engine.session(group_by=["year"],
                                 filters={"district": "Ofla"})
        rec = session.recommend(
            Complaint.too_low({"district": "Ofla", "year": 1986}, "count"))
        assert rec.per_hierarchy

    def test_history_accumulates(self, ofla_dataset):
        engine = Reptile(ofla_dataset,
                         config=ReptileConfig(n_em_iterations=2))
        session = engine.session(group_by=["year"])
        session.recommend(Complaint.too_low({"year": 1986}, "count"))
        session.recommend(Complaint.too_high({"year": 1985}, "mean"))
        assert len(session.history) == 2

    def test_drill_with_coordinates_filters(self, ofla_dataset):
        engine = Reptile(ofla_dataset,
                         config=ReptileConfig(n_em_iterations=2))
        session = engine.session(group_by=["year"])
        session.drill("geo", coordinates={"year": 1986})
        assert session.filters == {"year": 1986}
        view = session.view()
        assert all(view.coordinates(k)["year"] == 1986 for k in view.groups)
