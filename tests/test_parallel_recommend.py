"""The parallel recommend path is bitwise-equal to the serial one.

Every stage the shard-compute tier fans out — hierarchy-unit edge scans,
per-cluster Gram stacks, the feature fill, the eq.-3 rank-1 sweep — and
the full end-to-end recommendation are checked against their serial
forms (and, for units and designs, against the frozen oracles in
:mod:`repro.factorized.reference` and :mod:`repro.core.rankref`).
Shard counts 1/2/7 make empty shard ranges routine; NaN keys exercise
the domain-rank decline path. The out-of-core pieces — spilled
shared-code blocks and ``spill_build_from_chunks`` — must round-trip
bitwise through their memory maps, including across a worker-pool
respawn. The one knowingly *non*-bitwise kernel, the sharded partial
``XᵀX`` accumulation, is pinned to its documented contract:
reproducible for a fixed range decomposition, allclose to the one-shot
BLAS product (see ``sum_design_products``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HierarchicalDataset, Relation, Schema, dimension, measure
from repro.core.complaint import Complaint
from repro.core.rankref import build_view_design_ref
from repro.core.session import Reptile, ReptileConfig
from repro.datagen.perf import (DROUGHT_HIERARCHIES, DROUGHT_MEASURE,
                                drought_chunks)
from repro.factorized.forder import HierarchyPaths
from repro.factorized.multiquery import (hierarchy_unit,
                                         sharded_hierarchy_unit)
from repro.factorized.reference import reference_hierarchy_unit
from repro.model.backends import (DenseDesign, partial_design_products,
                                  sharded_cluster_grams,
                                  sum_design_products)
from repro.model.features import FeaturePlan, build_view_design
from repro.relational import Cube, dataset_from_chunks
from repro.relational.aggregates import GroupStats
from repro.relational.countmap import EncodedCountMap
from repro.relational.shard import (ShardedCube, ShardExecutor, SharedCodes,
                                    merge_shard_blocks,
                                    shutdown_worker_pools,
                                    spill_build_from_chunks)

SCHEMA = Schema([dimension("district"), dimension("village"),
                 dimension("year"), measure("sev")])
HIERARCHIES = {"geo": ["district", "village"], "time": ["year"]}
NAN = float("nan")
DISTRICTS = ("d0", "d1", "d2")
SHARD_COUNTS = (1, 2, 7)

#: Dyadic measures: every float sum is exact, so any summation order
#: must agree bitwise.
measures = st.integers(-8, 24).map(lambda v: v / 2.0)

#: Rows that are always present, so the complaint's district exists and
#: every hierarchy has at least two levels' worth of structure.
BASE_ROWS = [("d0", "d0-v0", 2000, 1.0), ("d0", "d0-v1", 2001, 3.5),
             ("d1", "d1-v0", 2000, 2.0), ("d1", "d1-v1", 2001, 0.5)]


def _row(draw, districts, years):
    d = draw(st.sampled_from(districts))
    v = f"{d}-v{draw(st.integers(0, 2))}"
    return (d, v, draw(st.sampled_from(years)), draw(measures))


@st.composite
def relations(draw, allow_nan: bool = False):
    districts = DISTRICTS + ((NAN,) if allow_nan else ())
    years = [2000, 2001] + ([NAN] if allow_nan else [])
    extra = [_row(draw, districts, years)
             for _ in range(draw(st.integers(0, 12)))]
    return BASE_ROWS + extra


def _dataset(rows) -> HierarchicalDataset:
    return HierarchicalDataset.build(
        Relation.from_rows(SCHEMA, rows), HIERARCHIES, "sev")


def _assert_maps_equal(got, want, label) -> None:
    """Value equality always; bitwise storage equality when both sides
    are array-backed (CountMap/EncodedCountMap __eq__ bridge types)."""
    assert got == want, label
    if isinstance(got, EncodedCountMap) and isinstance(want,
                                                       EncodedCountMap):
        for a, b in zip(got.key_codes, want.key_codes):
            assert np.array_equal(a, b), label
        assert np.array_equal(got.counts, want.counts), label


def _assert_units_equal(got, want) -> None:
    assert got.name == want.name
    assert got.attributes == want.attributes
    assert got.h_total == want.h_total
    assert got.ordered_domains == want.ordered_domains
    assert got.within_counts.keys() == want.within_counts.keys()
    for a in want.within_counts:
        _assert_maps_equal(got.within_counts[a], want.within_counts[a], a)
    assert got.within_cofs.keys() == want.within_cofs.keys()
    for pair in want.within_cofs:
        _assert_maps_equal(got.within_cofs[pair], want.within_cofs[pair],
                           pair)


def _assert_recommendations_equal(got, ref) -> None:
    assert set(got.per_hierarchy) == set(ref.per_hierarchy)
    for name, want in ref.per_hierarchy.items():
        have = got.per_hierarchy[name]
        assert have.attribute == want.attribute, name
        assert have.base_penalty == want.base_penalty, name
        assert len(have.groups) == len(want.groups), name
        for a, b in zip(have.groups, want.groups):
            assert a.key == b.key, (name, b.key)
            assert a.coordinates == b.coordinates, (name, b.key)
            assert a.score == b.score, (name, b.key)
            assert a.margin_gain == b.margin_gain, (name, b.key)
            assert a.repaired_value == b.repaired_value, (name, b.key)
            assert a.observed == b.observed, (name, b.key)
            assert a.expected == b.expected, (name, b.key)


# -- hierarchy units -----------------------------------------------------------

class TestShardedUnits:
    @settings(deadline=None)
    @given(relations(), st.sampled_from(SHARD_COUNTS))
    def test_sharded_unit_bitwise_vs_serial_and_reference(self, rows,
                                                          n_parts):
        dataset = _dataset(rows)
        for hier in dataset.dimensions:
            paths = HierarchyPaths.from_relation(hier, dataset.relation)
            want = hierarchy_unit(paths)
            got = sharded_hierarchy_unit(paths,
                                         sharder=ShardExecutor(n_parts))
            _assert_units_equal(got, want)
            _assert_units_equal(got, reference_hierarchy_unit(paths))

    @settings(deadline=None)
    @given(relations(allow_nan=True), st.sampled_from((2, 7)))
    def test_sharded_unit_with_nan_keys(self, rows, n_parts):
        dataset = _dataset(rows)
        for hier in dataset.dimensions:
            paths = HierarchyPaths.from_relation(hier, dataset.relation)
            _assert_units_equal(
                sharded_hierarchy_unit(paths, sharder=ShardExecutor(n_parts)),
                hierarchy_unit(paths))

    def test_unit_merge_with_empty_shard_ranges(self):
        """More shards than leaf paths: empty edge scans merge exactly."""
        dataset = _dataset(BASE_ROWS[:2])  # 2 leaf paths, 7 shards
        for hier in dataset.dimensions:
            paths = HierarchyPaths.from_relation(hier, dataset.relation)
            sharder = ShardExecutor(7)
            assert any(lo == hi for lo, hi in sharder.ranges(paths.n_leaves))
            _assert_units_equal(
                sharded_hierarchy_unit(paths, sharder=sharder),
                hierarchy_unit(paths))


# -- leaf-block merges ---------------------------------------------------------

class TestBlockMerges:
    @settings(deadline=None)
    @given(relations(), st.sampled_from((2, 5, 7)))
    def test_merge_tolerates_empty_shard_blocks(self, rows, n_shards):
        """Empty blocks (leading, interleaved, trailing) are no-ops."""
        dataset = _dataset(rows)
        sharded = ShardedCube(dataset, n_shards=n_shards)
        cube = Cube(dataset)
        sizes = [e.cardinality for e in sharded._encodings]
        k = cube._key_codes.shape[1]
        empty = (np.empty((0, k), dtype=sharded._key_codes.dtype),
                 GroupStats(np.zeros(0), np.zeros(0), np.zeros(0)))
        blocks = [empty]
        for block in sharded.shard_blocks:
            blocks.extend([block, empty])
        key_codes, stats = merge_shard_blocks(blocks, sizes)
        assert np.array_equal(key_codes, cube._key_codes)
        for name in ("count", "total", "sumsq"):
            assert np.array_equal(getattr(stats, name),
                                  getattr(cube.leaf_stats, name)), name


# -- designs, Gram stacks and the documented non-bitwise caveat ----------------

class TestDesignProducts:
    def test_sharded_cluster_grams_bitwise(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(60, 3))
        sizes = [7, 13, 20, 11, 9]
        got = sharded_cluster_grams(
            DenseDesign(x, sizes, z_columns=[0, 1, 2]), ShardExecutor(3))
        want = DenseDesign(x, sizes, z_columns=[0, 1, 2]).cluster_grams()
        assert np.array_equal(got, want)

    def test_sharded_cluster_grams_with_empty_ranges(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(9, 2))
        sizes = [4, 5]  # 2 clusters over 7 shard ranges
        got = sharded_cluster_grams(
            DenseDesign(x, sizes, z_columns=[0, 1]), ShardExecutor(7))
        want = DenseDesign(x, sizes, z_columns=[0, 1]).cluster_grams()
        assert np.array_equal(got, want)

    def test_partial_products_reproducible_and_allclose(self):
        """The documented ``sum_design_products`` caveat, pinned.

        A fixed range decomposition must reproduce bit for bit run to
        run; against the one-shot BLAS product the contract is only
        allclose (summation-order reassociation), which is exactly why
        the recommend path computes ``design.gram()`` serially.
        """
        rng = np.random.default_rng(11)
        x = rng.normal(size=(97, 4))
        ys = [rng.normal(size=97), rng.normal(size=97)]
        ranges = [(0, 40), (40, 71), (71, 97)]

        def accumulate():
            return sum_design_products(
                [partial_design_products(x, ys, lo, hi)
                 for lo, hi in ranges])

        xtx_a, xtys_a = accumulate()
        xtx_b, xtys_b = accumulate()
        assert np.array_equal(xtx_a, xtx_b)
        for a, b in zip(xtys_a, xtys_b):
            assert np.array_equal(a, b)
        assert np.allclose(xtx_a, x.T @ x)
        for got, y in zip(xtys_a, ys):
            assert np.allclose(got, x.T @ y)

    def test_chunk_streamed_design_matches_python_sort_oracle(self):
        """Chunk-streamed domains (not sort-friendly) take the
        domain-rank lexsort; the design must equal the frozen Python-sort
        oracle exactly."""
        # The second chunk introduces values that sort *before* the
        # first chunk's (extend_domain appends, so the union domain
        # comes out unsorted).
        chunks = [
            {"district": np.array(["d2", "d2", "d1", "d1"]),
             "village": np.array(["d2-v1", "d2-v0", "d1-v0", "d1-v1"]),
             "year": np.array([2001, 2000, 2001, 2000]),
             "sev": np.array([2.0, 1.5, 0.5, 3.0])},
            {"district": np.array(["d0", "d1", "d0"]),
             "village": np.array(["d0-v1", "d1-v1", "d0-v0"]),
             "year": np.array([2000, 2001, 2000]),
             "sev": np.array([1.0, 2.5, 4.0])},
        ]
        dataset = dataset_from_chunks(chunks, HIERARCHIES, "sev")
        cube = Cube(dataset)
        view = cube.view(("district", "village"))
        enc = view.encodings[0]
        assert not enc.sort_friendly()  # the path under test
        vd = build_view_design(view, "mean", FeaturePlan(), ("district",))
        ref_keys, ref_y, ref_design = build_view_design_ref(
            view, "mean", FeaturePlan(), ("district",))
        assert vd.keys == ref_keys
        assert np.array_equal(vd.design.x, ref_design.x)
        assert np.array_equal(vd.y, ref_y)
        assert list(vd.design.sizes) == list(ref_design.sizes)

    def test_nan_domain_design_matches_python_sort_oracle(self):
        """NaN domain values decline the rank table; the Python-sort
        fallback must still match the oracle."""
        rows = BASE_ROWS + [("d2", NAN, 2000, 2.0), ("d2", NAN, 2001, 4.0)]
        cube = Cube(_dataset(rows))
        view = cube.view(("district", "village"))
        vd = build_view_design(view, "mean", FeaturePlan(), ("district",))
        ref_keys, ref_y, ref_design = build_view_design_ref(
            view, "mean", FeaturePlan(), ("district",))
        assert vd.keys == ref_keys
        assert np.array_equal(vd.design.x, ref_design.x)
        assert np.array_equal(vd.y, ref_y)


# -- spill-mode round trips ----------------------------------------------------

class TestSpillRoundTrips:
    def test_shared_codes_spill_mmap_roundtrip(self, tmp_path):
        rng = np.random.default_rng(5)
        arrays = {"c0": rng.integers(0, 9, 64).astype(np.int32),
                  "c1": rng.integers(0, 5, 64).astype(np.int32),
                  "m": rng.normal(size=64)}
        owner = SharedCodes.pack(arrays, directory=str(tmp_path), spill=True)
        try:
            assert owner.handle.kind == "mmap"
            view = SharedCodes.attach(owner.handle)
            for name, arr in arrays.items():
                assert np.array_equal(np.asarray(view.arrays[name]), arr), \
                    name
            view.release()
        finally:
            owner.release()
        assert not os.listdir(tmp_path), "spill files not reclaimed"

    def test_spill_build_bitwise_across_pool_respawn(self, tmp_path):
        """Two spill builds — with a pool shutdown (forced respawn) in
        between — both bitwise-equal to the one-process Cube."""
        def chunks():
            return drought_chunks(4_000, 1_000, seed=3)

        def build():
            return spill_build_from_chunks(
                chunks(), DROUGHT_HIERARCHIES, DROUGHT_MEASURE,
                spill_dir=str(tmp_path), n_shards=3, workers=2)

        try:
            first = build()
            shutdown_worker_pools()
            second = build()
        finally:
            shutdown_worker_pools()
        cube = Cube(dataset_from_chunks(chunks(), DROUGHT_HIERARCHIES,
                                        DROUGHT_MEASURE, validate=False))
        for label, result in (("first", first), ("respawned", second)):
            assert np.array_equal(result.key_codes, cube._key_codes), label
            for name in ("count", "total", "sumsq"):
                assert np.array_equal(getattr(result.stats, name),
                                      getattr(cube.leaf_stats, name)), \
                    (label, name)
        assert not os.listdir(tmp_path), "spill files not reclaimed"


# -- end-to-end recommendations ------------------------------------------------

class TestParallelRecommend:
    @settings(deadline=None, max_examples=25)
    @given(relations(), st.sampled_from(SHARD_COUNTS))
    def test_sharded_recommend_bitwise_equals_serial(self, rows, shards):
        dataset = _dataset(rows)
        complaint = Complaint.too_low({"district": "d0"}, "mean")
        serial = Reptile(dataset, config=ReptileConfig())
        sharded = Reptile(dataset, config=ReptileConfig(shards=shards))
        _assert_recommendations_equal(
            sharded.recommend(complaint, group_by=("district",)),
            serial.recommend(complaint, group_by=("district",)))

    def test_recommend_with_nan_keys_and_empty_shards(self):
        rows = BASE_ROWS + [(NAN, NAN, 2000, 2.0), ("d2", "d2-v0", NAN, 4.0),
                            ("d2", "d2-v0", 2001, 0.25)]
        dataset = _dataset(rows)
        complaint = Complaint.too_low({"district": "d0"}, "mean")
        serial = Reptile(dataset, config=ReptileConfig())
        sharded = Reptile(dataset, config=ReptileConfig(shards=7))
        _assert_recommendations_equal(
            sharded.recommend(complaint, group_by=("district",)),
            serial.recommend(complaint, group_by=("district",)))

    def test_recommend_with_real_worker_pool(self):
        """One pass through a real process pool (not the serial
        executor): the recommendation must still be bitwise-equal."""
        rows = [(f"d{i % 3}", f"d{i % 3}-v{i % 4}", 2000 + i % 3,
                 (i % 11) / 2.0) for i in range(64)]
        dataset = _dataset(rows)
        complaint = Complaint.too_low({"district": "d0"}, "mean")
        try:
            serial = Reptile(dataset, config=ReptileConfig())
            sharded = Reptile(dataset,
                              config=ReptileConfig(shards=3, workers=2))
            _assert_recommendations_equal(
                sharded.recommend(complaint, group_by=("district",)),
                serial.recommend(complaint, group_by=("district",)))
        finally:
            shutdown_worker_pools()
