"""AggregateCache boundary behaviour, pinned explicitly.

``test_serving_cache.py`` exercises the cache through the serving stack;
this file pins the data-structure contract on its own: eviction order
exactly at ``max_entries``, recency semantics of every operation,
``invalidate()`` return counts, hit/miss accounting, and the
``pop_fingerprint``/``note_patched`` hooks the delta engine relies on.
"""

from __future__ import annotations

import pytest

from repro.serving import AggregateCache


class TestEvictionBoundary:
    def test_exactly_at_capacity_no_eviction(self):
        cache = AggregateCache(max_entries=3)
        for i in range(3):
            cache.put(("k", "fp", i), i)
        assert len(cache) == 3
        assert cache.stats.evictions == 0

    def test_one_past_capacity_evicts_exactly_lru(self):
        cache = AggregateCache(max_entries=3)
        for i in range(3):
            cache.put(("k", "fp", i), i)
        cache.put(("k", "fp", 3), 3)
        assert len(cache) == 3
        assert cache.stats.evictions == 1
        assert ("k", "fp", 0) not in cache
        assert cache.keys() == [("k", "fp", i) for i in (1, 2, 3)]

    def test_overwrite_does_not_evict(self):
        cache = AggregateCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("a",), 10)  # overwrite: size unchanged, "a" now MRU
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.keys() == [("b",), ("a",)]
        cache.put(("c",), 3)
        assert ("b",) not in cache and cache.get(("a",)) == 10

    def test_get_refreshes_recency_get_miss_does_not_insert(self):
        cache = AggregateCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1
        assert cache.get(("zzz",), default="d") == "d"
        assert len(cache) == 2  # miss inserted nothing
        cache.put(("c",), 3)
        assert cache.keys() == [("a",), ("c",)]  # "b" was the LRU

    def test_capacity_one(self):
        cache = AggregateCache(max_entries=1)
        for i in range(5):
            cache.put(("k", i), i)
        assert len(cache) == 1
        assert cache.stats.evictions == 4
        assert cache.get(("k", 4)) == 4

    def test_get_or_compute_respects_capacity(self):
        cache = AggregateCache(max_entries=2)
        for i in range(4):
            assert cache.get_or_compute(("k", "fp", i), lambda i=i: i) == i
        assert len(cache) == 2
        assert cache.stats.evictions == 2


class TestInvalidateReturnCounts:
    def test_empty_cache_returns_zero(self):
        cache = AggregateCache()
        assert cache.invalidate() == 0
        assert cache.invalidate("nope") == 0
        assert cache.invalidate(predicate=lambda k: True) == 0
        assert cache.stats.invalidations == 0

    def test_per_fingerprint_counts(self):
        cache = AggregateCache()
        cache.put(("view", "fp1", 1), 1)
        cache.put(("hunit", "fp1", 2), 2)
        cache.put(("view", "fp2", 3), 3)
        assert cache.invalidate("fp1") == 2
        assert cache.invalidate("fp1") == 0  # idempotent
        assert cache.invalidate("fp2") == 1
        assert cache.stats.invalidations == 3
        assert len(cache) == 0

    def test_short_keys_never_match_a_fingerprint(self):
        cache = AggregateCache()
        cache.put(("solo",), 1)
        assert cache.invalidate("solo") == 0
        assert len(cache) == 1

    def test_predicate_and_fingerprint_are_exclusive(self):
        with pytest.raises(ValueError):
            AggregateCache().invalidate("fp", predicate=lambda k: True)

    def test_clear_resets_statistics(self):
        cache = AggregateCache()
        cache.put(("a",), 1)
        cache.get(("a",))
        cache.get(("b",))
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions,
                stats.invalidations) == (0, 0, 0, 0)


class TestHitMissStats:
    def test_every_lookup_is_counted_once(self):
        cache = AggregateCache()
        cache.get(("a",))                       # miss
        cache.put(("a",), 1)
        cache.get(("a",))                       # hit
        cache.get_or_compute(("b",), lambda: 2)  # miss + compute
        cache.get_or_compute(("b",), lambda: 3)  # hit
        stats = cache.stats
        assert (stats.hits, stats.misses) == (2, 2)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.5

    def test_contains_is_not_a_lookup(self):
        cache = AggregateCache()
        cache.put(("a",), 1)
        assert ("a",) in cache and ("b",) not in cache
        assert cache.stats.lookups == 0

    def test_idle_hit_rate_is_zero(self):
        assert AggregateCache().stats.hit_rate == 0.0


class TestPopFingerprint:
    def test_pop_returns_lru_order_and_removes(self):
        cache = AggregateCache()
        cache.put(("view", "fp", "x"), 1)
        cache.put(("view", "other", "y"), 2)
        cache.put(("hunit", "fp", "z"), 3)
        cache.get(("view", "fp", "x"))  # make it MRU
        popped = cache.pop_fingerprint("fp")
        assert popped == [(("hunit", "fp", "z"), 3),
                          (("view", "fp", "x"), 1)]
        assert cache.keys() == [("view", "other", "y")]
        assert cache.stats.invalidations == 0  # patching, not dropping

    def test_note_patched_accumulates(self):
        cache = AggregateCache()
        cache.note_patched(2, 3)
        cache.note_patched(1, 0)
        assert cache.stats.patched == 3
        assert cache.stats.retained == 3


class TestStatsSnapshotConcurrency:
    """Regression: ``stats`` must be an atomic snapshot, not the live
    accounting object.

    The live object allowed torn multi-counter reads under concurrency
    (``lookups != hits + misses`` mid-increment, ``hit_rate`` dividing
    counters captured at different instants) and made two-read
    arithmetic — the ingest path's ``after.patched - before.patched`` —
    unreliable. These tests hammer the cache from several threads and
    require every snapshot to be internally consistent and immutable.
    """

    def test_snapshot_does_not_track_later_operations(self):
        cache = AggregateCache()
        cache.get(("a",))                 # one miss
        before = cache.stats
        cache.put(("a",), 1)
        cache.get(("a",))                 # one hit
        assert (before.hits, before.misses) == (0, 1)
        after = cache.stats
        assert (after.hits, after.misses) == (1, 1)
        assert after.hits - before.hits == 1  # straddling arithmetic works

    def test_snapshots_consistent_under_concurrent_hammering(self):
        import threading

        cache = AggregateCache(max_entries=64)
        n_threads, n_ops = 4, 300
        start = threading.Barrier(n_threads + 1)
        inconsistent: list[tuple] = []

        def worker(tid: int) -> None:
            start.wait(timeout=30)
            for i in range(n_ops):
                cache.get_or_compute(("k", "fp", tid, i % 80),
                                     lambda: i)

        def observer() -> None:
            start.wait(timeout=30)
            for _ in range(400):
                s = cache.stats
                if s.lookups != s.hits + s.misses:
                    inconsistent.append((s.hits, s.misses, s.lookups))
                rate = s.hit_rate
                if s.lookups and not (0.0 <= rate <= 1.0):
                    inconsistent.append(("rate", rate))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        threads.append(threading.Thread(target=observer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not any(t.is_alive() for t in threads), "threads hung"
        assert not inconsistent, inconsistent[:5]
        # Exact accounting after the dust settles: every get_or_compute
        # was either a hit or a miss, nothing lost to races on the
        # counters themselves.
        final = cache.stats
        assert final.lookups == n_threads * n_ops
        assert final.hits + final.misses == final.lookups

    def test_mutating_a_snapshot_does_not_corrupt_the_cache(self):
        cache = AggregateCache()
        cache.get(("a",))
        snapshot = cache.stats
        snapshot.misses = 10 ** 6          # a confused caller
        assert cache.stats.misses == 1     # the cache is unaffected
