"""Tests for the extensions: explanations, set repair, and the CLI."""

import numpy as np
import pytest

from repro.core.complaint import Complaint
from repro.core.explanation import (describe_complaint, describe_group,
                                    explain_prediction,
                                    render_prediction_explanation,
                                    render_recommendation,
                                    resolution_fraction)
from repro.core.ranker import rank_candidates
from repro.core.repair import ModelRepairer, RepairPrediction
from repro.core.session import Reptile, ReptileConfig
from repro.core.set_repair import (exhaustive_set_repair, greedy_set_repair)
from repro.model.features import FeaturePlan, build_view_design
from repro.model.multilevel import MultilevelModel
from repro.relational.aggregates import AggState
from repro.relational.cube import Cube, GroupView


class TestExplanations:
    def test_describe_complaint(self):
        c = Complaint.too_high({"year": 1986}, "std")
        assert "STD" in describe_complaint(c)
        assert "year=1986" in describe_complaint(c)
        t = Complaint.should_be({}, "count", 70)
        assert "70" in describe_complaint(t)

    def test_render_recommendation(self, ofla_dataset):
        engine = Reptile(ofla_dataset,
                         config=ReptileConfig(n_em_iterations=3))
        rec = engine.recommend(Complaint.too_low({}, "count"))
        text = render_recommendation(rec)
        assert "Complaint" in text
        assert "(recommended)" in text
        assert rec.best_hierarchy in text

    def test_resolution_fraction_bounds(self):
        from repro.core.ranker import ScoredGroup
        g = ScoredGroup(("k",), {}, score=2.0, margin_gain=1.0,
                        observed={}, expected={}, repaired_value=0.0)
        assert resolution_fraction(g, 4.0) == pytest.approx(0.25)
        assert resolution_fraction(g, 0.0) == 0.0
        big = ScoredGroup(("k",), {}, score=0.0, margin_gain=10.0,
                          observed={}, expected={}, repaired_value=0.0)
        assert resolution_fraction(big, 4.0) == 1.0

    def test_describe_group_mentions_stats(self):
        from repro.core.ranker import ScoredGroup
        g = ScoredGroup(("Zata",), {"village": "Zata"}, score=1.0,
                        margin_gain=1.0, observed={"mean": 4.5},
                        expected={"mean": 7.0}, repaired_value=6.0)
        text = describe_group(g, base_penalty=2.0)
        assert "village=Zata" in text
        assert "expected 7" in text
        assert "50%" in text

    def test_prediction_contributions_sum(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        view = cube.view(("district", "village", "year"))
        vd = build_view_design(view, "mean", FeaturePlan(),
                               cluster_attrs=("district", "year"))
        model = MultilevelModel(n_iterations=5)
        fit = model.fit(vd.design, vd.y)
        predictions = model.predict(vd.design, fit)
        key = vd.keys[3]
        contributions = explain_prediction(vd, fit, key)
        total = sum(c.contribution for c in contributions)
        assert total == pytest.approx(predictions[vd.row_of[key]], abs=1e-8)
        text = render_prediction_explanation(vd, fit, key)
        assert "intercept" in text


class TestSetRepair:
    @pytest.fixture
    def two_of_three_corrupted(self):
        """Appendix M's failure: 2 of 3 siblings shifted by the same Δ."""
        groups = {
            ("d1",): AggState.from_stats(100, 8.0, 1.0),   # corrupted (+3)
            ("d2",): AggState.from_stats(100, 8.0, 1.0),   # corrupted (+3)
            ("d3",): AggState.from_stats(100, 5.0, 1.0),   # clean
        }
        view = GroupView(("d",), groups)
        prediction = RepairPrediction(
            ("mean",), {k: {"mean": 5.0} for k in groups})
        complaint = Complaint.too_high({}, "std")
        return view, prediction, complaint

    def test_single_repair_cannot_resolve(self, two_of_three_corrupted):
        """The parabola argument: one repair leaves the std ~unchanged."""
        view, prediction, complaint = two_of_three_corrupted
        from repro.core.ranker import score_drilldown
        base, scored = score_drilldown(view, prediction, complaint)
        assert scored[0].margin_gain < 0.15 * base

    def test_exhaustive_pair_resolves(self, two_of_three_corrupted):
        view, prediction, complaint = two_of_three_corrupted
        best = exhaustive_set_repair(view, prediction, complaint, max_size=2)
        assert sorted(best.keys) == [("d1",), ("d2",)]
        assert best.penalty < 0.8 * best.base_penalty

    def test_greedy_matches_single_when_one_error(self):
        groups = {("a",): AggState.from_stats(10, 5.0, 1.0),
                  ("b",): AggState.from_stats(4, 5.0, 1.0),
                  ("c",): AggState.from_stats(10, 5.0, 1.0)}
        view = GroupView(("g",), groups)
        prediction = RepairPrediction(
            ("count",), {k: {"count": 10.0} for k in groups})
        complaint = Complaint.should_be({}, "count", 30.0)
        result = greedy_set_repair(view, prediction, complaint)
        assert result.keys == [("b",)]
        assert result.penalty == pytest.approx(0.0)

    def test_greedy_respects_max_groups(self, two_of_three_corrupted):
        view, prediction, complaint = two_of_three_corrupted
        result = greedy_set_repair(view, prediction, complaint, max_groups=1)
        assert len(result) <= 1

    def test_greedy_stops_when_no_gain(self):
        """Perfect data: no repair should be chosen at all."""
        groups = {("a",): AggState.from_stats(10, 5.0, 1.0),
                  ("b",): AggState.from_stats(10, 5.0, 1.0)}
        view = GroupView(("g",), groups)
        prediction = RepairPrediction(
            ("count",), {k: {"count": 10.0} for k in groups})
        complaint = Complaint.should_be({}, "count", 20.0)
        result = greedy_set_repair(view, prediction, complaint)
        assert result.keys == []
        assert result.margin_gain == pytest.approx(0.0)

    def test_exhaustive_empty_set_when_clean(self):
        groups = {("a",): AggState.from_stats(10, 5.0, 1.0)}
        view = GroupView(("g",), groups)
        prediction = RepairPrediction(
            ("count",), {("a",): {"count": 10.0}})
        complaint = Complaint.should_be({}, "count", 10.0)
        best = exhaustive_set_repair(view, prediction, complaint)
        assert best.keys == []


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "covid" in out and "fist" in out

    def test_no_command_lists(self, capsys):
        from repro.cli import main
        assert main([]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_perf_command(self, capsys):
        from repro.cli import main
        assert main(["perf", "--hierarchies", "2"]) == 0
        out = capsys.readouterr().out
        assert "gram-ratio" in out

    def test_aic_command(self, capsys):
        from repro.cli import main
        assert main(["aic", "--iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "multilevel-f" in out

    def test_vote_command(self, capsys):
        from repro.cli import main
        assert main(["vote", "--iterations", "4"]) == 0
        assert "model1 top-5" in capsys.readouterr().out
