"""Sharded parallel cube build: unit coverage for the sharding layer.

Pins down (1) ``DictEncoding.merge`` union semantics — shard 0's codes
survive verbatim, NaN domain entries match by object identity, and
cross-type ``==``-equal merges flag the union lossy; (2) the
shared-memory column blocks (pack/attach roundtrip, mmap fallback,
owner-side release); (3) ``merge_shard_blocks`` canonical ordering;
(4) ``ShardedCube`` bitwise equality against the single-process
``Cube`` across shard counts, including empty shards and a real
process pool; (5) owning-shard delta routing with patch counters; and
(6) the upward wiring: ``Relation.from_encoded``, chunked dataset
construction, ``ReptileConfig(shards=...)``, service ingest's
``shards_touched``, and the CLI flags.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (Delta, HierarchicalDataset, Relation, Reptile,
                   ReptileConfig, Schema, dimension, measure)
from repro.cli import build_parser
from repro.relational import deltaref
from repro.relational.cube import Cube
from repro.relational.encoding import DictEncoding, factorize
from repro.relational.shard import (SharedCodes, ShardedCube, ShardError,
                                    dataset_from_chunks,
                                    encode_columns_chunked,
                                    merge_shard_blocks,
                                    shutdown_worker_pools)
from repro.serving import CachingShardedCube, ExplanationService

SCHEMA = Schema([dimension("district"), dimension("village"),
                 dimension("year"), measure("sev")])
HIERARCHIES = {"geo": ["district", "village"], "time": ["year"]}
NAN = float("nan")

ROWS = [
    ("d0", "d0-v0", 2000, 1.5),
    ("d1", "d1-v0", 2000, 2.0),
    ("d0", "d0-v1", 2001, -0.5),
    ("d2", "d2-v0", 2001, 4.0),
    ("d1", "d1-v1", 2000, 0.25),
    ("d0", "d0-v0", 2001, 3.0),
    ("d2", "d2-v1", 2000, 8.0),
    ("d1", "d1-v0", 2001, 1.0),
]


def _dataset(rows=ROWS) -> HierarchicalDataset:
    return HierarchicalDataset.build(
        Relation.from_rows(SCHEMA, rows), HIERARCHIES, "sev")


def _assert_cubes_bitwise(actual: Cube, expected: Cube) -> None:
    assert np.array_equal(actual._key_codes, expected._key_codes)
    assert actual._key_codes.dtype == expected._key_codes.dtype
    for name in ("count", "total", "sumsq"):
        a = getattr(actual.leaf_stats, name)
        b = getattr(expected.leaf_stats, name)
        assert np.array_equal(a, b), name
        assert a.dtype == b.dtype, name


def _block_map(key_codes, stats):
    return {tuple(int(c) for c in row):
            (stats.count[i], stats.total[i], stats.sumsq[i])
            for i, row in enumerate(key_codes)}


# ---------------------------------------------------------------------------
# DictEncoding.merge


class TestDictEncodingMerge:
    def test_first_shard_codes_survive_verbatim(self):
        a = factorize(np.array(["x", "y", "x"], dtype=object))
        b = factorize(np.array(["y", "z"], dtype=object))
        merged, remaps = DictEncoding.merge([a, b])
        assert merged.domain[:a.cardinality] == list(a.domain)
        assert np.array_equal(merged.codes, a.codes)
        assert np.array_equal(remaps[0], np.arange(a.cardinality))

    def test_remaps_reexpress_each_shard_in_union_space(self):
        parts = [np.array(vals, dtype=object)
                 for vals in (["x", "y"], ["z", "y"], ["w"])]
        encs = [factorize(p) for p in parts]
        merged, remaps = DictEncoding.merge(encs)
        assert set(merged.domain) == {"x", "y", "z", "w"}
        for part, enc, remap in zip(parts, encs, remaps):
            decoded = [merged.domain[c] for c in remap[enc.codes]]
            assert decoded == list(part)

    def test_union_codes_match_single_pass_factorize(self):
        # First-appearance order across concatenated chunks is exactly
        # the single-pass factorize order, so chunked encoding is not
        # merely consistent — it is code-for-code identical.
        parts = [["a", "b", "a"], ["c", "b"], ["d", "a", "c"]]
        encs = [factorize(np.array(p, dtype=object)) for p in parts]
        merged, remaps = DictEncoding.merge(encs)
        chunked = np.concatenate([r[e.codes] for r, e in zip(remaps, encs)])
        single = factorize(np.array(sum(parts, []), dtype=object))
        assert list(merged.domain) == list(single.domain)
        assert np.array_equal(chunked, single.codes)

    def test_nan_matches_by_object_identity(self):
        # The same NaN object appearing in two shards is one domain
        # entry; a distinct NaN object is its own entry — dict-key
        # semantics, same as factorize's dict path.
        other_nan = float("nan")
        a = factorize(np.array([NAN, "x"], dtype=object))
        b = factorize(np.array(["x", NAN], dtype=object))
        merged, remaps = DictEncoding.merge([a, b])
        nan_entries = [v for v in merged.domain
                       if isinstance(v, float) and math.isnan(v)]
        assert len(nan_entries) == 1
        c = factorize(np.array([other_nan], dtype=object))
        merged2, _ = DictEncoding.merge([a, c])
        nan_entries2 = [v for v in merged2.domain
                        if isinstance(v, float) and math.isnan(v)]
        assert len(nan_entries2) == 2

    def test_cross_type_equal_values_flag_lossy(self):
        a = factorize(np.array([1, 2], dtype=object))
        b = factorize(np.array([1.0], dtype=object))
        merged, remaps = DictEncoding.merge([a, b])
        assert merged.lossy
        # the float folded into int 1's existing code
        assert remaps[1][b.codes[0]] == 0
        assert merged.domain == [1, 2]

    def test_lossy_input_marks_union(self):
        a = factorize(np.array(["x"], dtype=object))
        b = factorize(np.array(["y"], dtype=object))
        b.lossy = True
        merged, _ = DictEncoding.merge([a, b])
        assert merged.lossy

    def test_merge_requires_input(self):
        with pytest.raises(ValueError):
            DictEncoding.merge([])


# ---------------------------------------------------------------------------
# Shared-memory blocks


class TestSharedCodes:
    ARRAYS = {"c0": np.array([0, 1, 2, 1], dtype=np.int32),
              "c1": np.array([3, 3, 0, 1], dtype=np.int32),
              "m": np.array([0.5, 1.25, -2.0, 8.0])}

    def test_pack_attach_roundtrip(self):
        block = SharedCodes.pack(self.ARRAYS)
        try:
            attached = SharedCodes.attach(block.handle)
            try:
                for name, arr in self.ARRAYS.items():
                    got = attached.arrays[name]
                    assert np.array_equal(got, arr)
                    assert got.dtype == arr.dtype
            finally:
                attached.release()
        finally:
            block.release()

    def test_mmap_fallback_roundtrip(self, tmp_path):
        prepared, layout, size = SharedCodes._layout(self.ARRAYS)
        block = SharedCodes._pack_mmap(prepared, layout, size,
                                       str(tmp_path))
        try:
            assert block.handle.kind == "mmap"
            attached = SharedCodes.attach(block.handle)
            for name, arr in self.ARRAYS.items():
                assert np.array_equal(attached.arrays[name], arr)
            attached.release()
        finally:
            block.release()
        assert not list(tmp_path.iterdir())  # owner unlinked the file

    def test_views_are_64_byte_aligned(self):
        _, layout, _ = SharedCodes._layout(self.ARRAYS)
        assert all(off % 64 == 0 for _, _, _, off in layout)


# ---------------------------------------------------------------------------
# Block merge


class TestMergeShardBlocks:
    def test_restores_lexicographic_order(self):
        cube = Cube(_dataset())
        keys, stats = cube._key_codes, cube.leaf_stats
        sizes = [e.cardinality for e in cube._encodings]
        # Split rows odd/even — deliberately interleaved key ranges.
        blocks = [(keys[0::2], stats.select(np.arange(0, len(keys), 2))),
                  (keys[1::2], stats.select(np.arange(1, len(keys), 2)))]
        merged_keys, merged_stats = merge_shard_blocks(blocks, sizes)
        assert np.array_equal(merged_keys, keys)
        assert np.array_equal(merged_stats.count, stats.count)
        assert np.array_equal(merged_stats.total, stats.total)

    def test_empty_blocks_are_skipped(self):
        cube = Cube(_dataset())
        sizes = [e.cardinality for e in cube._encodings]
        empty = (np.empty((0, 3), dtype=np.int32),
                 type(cube.leaf_stats)(np.zeros(0), np.zeros(0),
                                       np.zeros(0)))
        merged_keys, _ = merge_shard_blocks(
            [empty, (cube._key_codes, cube.leaf_stats), empty], sizes)
        assert np.array_equal(merged_keys, cube._key_codes)

    def test_requires_a_block(self):
        with pytest.raises(ShardError):
            merge_shard_blocks([], [2, 2])


# ---------------------------------------------------------------------------
# ShardedCube: build equality


class TestShardedBuild:
    @pytest.mark.parametrize("n_shards", [1, 2, 7])
    def test_bitwise_equal_to_single_process(self, n_shards):
        dataset = _dataset()
        _assert_cubes_bitwise(ShardedCube(dataset, n_shards=n_shards),
                              Cube(dataset))

    def test_more_shards_than_districts_leaves_empty_shards(self):
        dataset = _dataset()
        sc = ShardedCube(dataset, n_shards=11)
        assert sc.shard_sizes().count(0) >= 8  # only 3 districts
        _assert_cubes_bitwise(sc, Cube(dataset))

    def test_partition_attr_defaults_to_first_hierarchy_root(self):
        sc = ShardedCube(_dataset(), n_shards=2)
        assert sc.partition_attr == "district"

    def test_explicit_partition_attr(self):
        dataset = _dataset()
        sc = ShardedCube(dataset, n_shards=3, partition_attr="year")
        _assert_cubes_bitwise(sc, Cube(dataset))

    def test_rejects_non_leaf_partition_attr(self):
        with pytest.raises(ShardError):
            ShardedCube(_dataset(), n_shards=2, partition_attr="sev")

    @pytest.mark.parametrize("kwargs", [{"n_shards": 0}, {"n_shards": -2},
                                        {"workers": -1}])
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ShardError):
            ShardedCube(_dataset(), **kwargs)

    def test_nan_partition_keys_build(self):
        rows = ROWS + [(NAN, "no-district", 2000, 7.0),
                       (NAN, "no-district", 2001, 1.0)]
        dataset = _dataset(rows)
        _assert_cubes_bitwise(ShardedCube(dataset, n_shards=4),
                              Cube(dataset))

    def test_views_match_single_process(self):
        dataset = _dataset()
        sc = ShardedCube(dataset, n_shards=3)
        cube = Cube(dataset)
        for attrs, filters in [((), None), (("district",), None),
                               (("village", "year"), {"district": "d0"})]:
            deltaref.assert_groups_equal(sc.view(attrs, filters).groups,
                                         cube.view(attrs, filters).groups)

    def test_rebuild_keeps_identity_and_equality(self):
        dataset = _dataset()
        sc = ShardedCube(dataset, n_shards=3)
        before = id(sc)
        sc.rebuild()
        assert id(sc) == before
        _assert_cubes_bitwise(sc, Cube(dataset))

    def test_timings_recorded(self):
        sc = ShardedCube(_dataset(), n_shards=3)
        for key in ("partition_s", "build_wall_s", "merge_s",
                    "worker_busy_s"):
            assert key in sc.timings


class TestShardedPoolBuild:
    def test_process_pool_build_is_bitwise_equal(self):
        dataset = _dataset()
        try:
            sc = ShardedCube(dataset, n_shards=3, workers=2)
            assert sc.timings.get("fallback") is None, sc.timings
            # real out-of-process workers did the shard builds
            assert any(pid != __import__("os").getpid()
                       for pid in sc.timings["worker_pids"])
            _assert_cubes_bitwise(sc, Cube(dataset))
        finally:
            shutdown_worker_pools()


# ---------------------------------------------------------------------------
# Delta routing


class TestDeltaRouting:
    def _delta(self, district="d1"):
        return Delta.from_rows(
            SCHEMA,
            appended=[(district, f"{district}-v0", 2000, 2.5),
                      (district, f"{district}-v9", 2002, 1.0)],
            retracted=[(district, f"{district}-v0", 2000,
                        2.0 if district == "d1" else 1.5)])

    def test_single_district_delta_touches_one_shard(self):
        sc = ShardedCube(_dataset(), n_shards=4)
        untouched_before = [sc.shard_blocks[s] for s in (0, 2, 3)]
        sc.apply_delta(self._delta("d1"))
        assert sc.shard_patches == [0, 1, 0, 0]
        # untouched shard blocks were not even rebuilt (same objects)
        for (codes_a, stats_a), (codes_b, stats_b) in zip(
                untouched_before, [sc.shard_blocks[s] for s in (0, 2, 3)]):
            assert codes_a is codes_b and stats_a is stats_b

    def test_global_arrays_match_single_process_incremental(self):
        dataset = _dataset()
        sc = ShardedCube(dataset, n_shards=4)
        cube = Cube(dataset)
        for district in ("d1", "d0", "d9"):  # d9: new partition value
            delta = self._delta(district) if district != "d9" else \
                Delta.from_rows(SCHEMA, [("d9", "d9-v0", 2003, 5.0)])
            sc.apply_delta(delta)
            cube.apply_delta(delta)
            _assert_cubes_bitwise(sc, cube)

    def test_shard_blocks_still_partition_the_global_arrays(self):
        sc = ShardedCube(_dataset(), n_shards=3)
        sc.apply_delta(self._delta("d2"))
        sizes = [e.cardinality for e in sc._encodings]
        merged_keys, merged_stats = merge_shard_blocks(sc.shard_blocks,
                                                       sizes)
        # after a delta the global arrays append fresh keys at the end,
        # so compare as mappings, not positionally
        assert _block_map(merged_keys, merged_stats) == \
            _block_map(sc._key_codes, sc.leaf_stats)

    def test_matches_rebuild_oracle(self):
        base = _dataset()
        sc = ShardedCube(base, n_shards=3)
        delta = self._delta("d0")
        sc.apply_delta(delta)
        oracle = deltaref.rebuilt_dataset(base, [delta])
        deltaref.assert_groups_equal(sc.leaf_states,
                                     deltaref.rebuilt_leaf_states(oracle))


# ---------------------------------------------------------------------------
# Chunked encoding and Relation.from_encoded


class TestChunkedConstruction:
    CHUNKS = [
        {"district": np.array(["d0", "d1"], dtype=object),
         "village": np.array(["d0-v0", "d1-v0"], dtype=object),
         "year": np.array([2000, 2000], dtype=object),
         "sev": np.array([1.5, 2.0])},
        {"district": np.array(["d0", "d2"], dtype=object),
         "village": np.array(["d0-v1", "d2-v0"], dtype=object),
         "year": np.array([2001, 2000], dtype=object),
         "sev": np.array([-0.5, 4.0])},
    ]
    FLAT_ROWS = [("d0", "d0-v0", 2000, 1.5), ("d1", "d1-v0", 2000, 2.0),
                 ("d0", "d0-v1", 2001, -0.5), ("d2", "d2-v0", 2000, 4.0)]

    def test_encode_columns_chunked_decodes_to_original_values(self):
        # Code spaces may differ from a single factorize pass (which
        # sorts sortable domains) — the invariant is that the union
        # decodes every row back to its original value, with chunk 0's
        # domain surviving as the prefix.
        columns, n = encode_columns_chunked(
            self.CHUNKS, ["district", "village", "year"], "sev")
        assert n == 4
        for attr in ("district", "village", "year"):
            whole = np.concatenate([c[attr] for c in self.CHUNKS])
            enc = columns[attr]
            assert [enc.domain[c] for c in enc.codes] == list(whole)
            assert len(set(enc.domain)) == len(enc.domain)
            chunk0 = factorize(self.CHUNKS[0][attr])
            assert list(enc.domain[:chunk0.cardinality]) == \
                list(chunk0.domain)
        assert np.array_equal(columns["sev"],
                              np.array([1.5, 2.0, -0.5, 4.0]))

    def test_relation_from_encoded_roundtrip(self):
        columns, _ = encode_columns_chunked(
            self.CHUNKS, ["district", "village", "year"], "sev")
        relation = Relation.from_encoded(SCHEMA, columns)
        flat = Relation.from_rows(SCHEMA, self.FLAT_ROWS)
        assert list(relation.rows()) == list(flat.rows())

    def test_dataset_from_chunks_builds_equal_cube(self):
        # Code spaces differ (chunked keeps first-appearance order,
        # from_rows sorts), so compare decoded groups — and bitwise
        # between sharded and unsharded over the *same* dataset.
        dataset = dataset_from_chunks(self.CHUNKS, HIERARCHIES, "sev")
        flat = _dataset(self.FLAT_ROWS)
        deltaref.assert_groups_equal(
            Cube(dataset).leaf_states, Cube(flat).leaf_states)
        _assert_cubes_bitwise(ShardedCube(dataset, n_shards=3),
                              Cube(dataset))


# ---------------------------------------------------------------------------
# Engine, serving and CLI wiring


class TestUpwardWiring:
    def test_reptile_config_selects_sharded_cube(self):
        dataset = _dataset()
        engine = Reptile(dataset, config=ReptileConfig(
            n_em_iterations=1, shards=3))
        assert isinstance(engine.cube, ShardedCube)
        plain = Reptile(_dataset(), config=ReptileConfig(n_em_iterations=1))
        assert not isinstance(plain.cube, ShardedCube)
        _assert_cubes_bitwise(engine.cube, plain.cube)

    def test_engine_refresh_keeps_sharded_cube(self):
        engine = Reptile(_dataset(), config=ReptileConfig(
            n_em_iterations=1, shards=2))
        cube = engine.cube
        engine.refresh()
        assert engine.cube is cube  # rebuilt in place, not replaced

    def test_service_ingest_reports_shards_touched(self):
        service = ExplanationService()
        service.register("drought", _dataset(),
                         config=ReptileConfig(n_em_iterations=1, shards=4))
        engine = service.engine("drought")
        assert isinstance(engine.cube, CachingShardedCube)
        summary = service.ingest(
            "drought", rows=[("d1", "d1-v7", 2002, 3.0)])
        assert summary["shards_touched"] == [1]
        plain = ExplanationService()
        plain.register("drought", _dataset(),
                       config=ReptileConfig(n_em_iterations=1))
        assert "shards_touched" not in plain.ingest(
            "drought", rows=[("d1", "d1-v7", 2002, 3.0)])

    def test_sharded_engine_answers_match_unsharded(self):
        sharded = Reptile(_dataset(), config=ReptileConfig(
            n_em_iterations=1, shards=3))
        plain = Reptile(_dataset(), config=ReptileConfig(n_em_iterations=1))
        view_s = sharded.cube.view(("district",))
        view_p = plain.cube.view(("district",))
        deltaref.assert_groups_equal(view_s.groups, view_p.groups)

    @pytest.mark.parametrize("command", ["serve", "serve-http", "ingest"])
    def test_cli_accepts_shard_flags(self, command):
        args = build_parser().parse_args(
            [command, "--shards", "4", "--shard-workers", "2"])
        assert args.shards == 4
        assert args.shard_workers == 2

    def test_cli_shard_flags_default_off(self):
        args = build_parser().parse_args(["serve"])
        assert args.shards == 0
        assert args.shard_workers == 0
