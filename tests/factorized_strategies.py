"""Hypothesis strategies and helpers for random factorised structures."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.factorized import (AttributeOrder, FactorizedMatrix,
                              FeatureColumn, HierarchyPaths)


def build_hierarchy(name: str, n_attrs: int, branch_choices: list[int]
                    ) -> HierarchyPaths:
    """A hierarchy whose level-k fan-out is branch_choices[k]."""
    paths = [()]
    for level in range(n_attrs):
        branching = branch_choices[level % len(branch_choices)]
        new = []
        for p in paths:
            for _ in range(branching):
                new.append(p + (f"{name}L{level}N{len(new):04d}",))
        paths = new
    attrs = [f"{name}_a{k}" for k in range(n_attrs)]
    return HierarchyPaths(name, attrs, paths)


@st.composite
def attribute_orders(draw, max_hierarchies: int = 3, max_attrs: int = 3,
                     max_branch: int = 3):
    """Random multi-hierarchy attribute orders (bounded total size)."""
    n_h = draw(st.integers(1, max_hierarchies))
    hierarchies = []
    for i in range(n_h):
        n_attrs = draw(st.integers(1, max_attrs))
        branches = draw(st.lists(st.integers(1, max_branch),
                                 min_size=n_attrs, max_size=n_attrs))
        hierarchies.append(build_hierarchy(f"h{i}", n_attrs, branches))
    return AttributeOrder(hierarchies)


@st.composite
def matrices(draw, max_hierarchies: int = 3, max_attrs: int = 3,
             max_branch: int = 3, extra_column: bool = True):
    """A random order plus one random feature column per attribute."""
    order = draw(attribute_orders(max_hierarchies, max_attrs, max_branch))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    cols = []
    for attr in order.attributes:
        dom = order.ordered_domain(attr)
        cols.append(FeatureColumn(
            attr, f"f_{attr}",
            {v: float(x) for v, x in zip(dom, rng.standard_normal(len(dom)))}))
    if extra_column and draw(st.booleans()):
        attr = order.attributes[-1]
        dom = order.ordered_domain(attr)
        cols.append(FeatureColumn(
            attr, f"g_{attr}",
            {v: float(x) for v, x in zip(dom, rng.standard_normal(len(dom)))}))
    return FactorizedMatrix(order, cols)
