"""Sharded cube ≡ single-process cube ≡ rebuild oracle (hypothesis).

Every property builds a :class:`ShardedCube` over randomly generated
relations — shard counts 1/2/7 (7 usually exceeds the district
cardinality, so empty shards are routine), NaN partition keys, random
partition attributes — and asserts *bitwise* equality against the
single-process :class:`Cube` on the same dataset: identical key-code
arrays and identical count/total/sumsq bits (measures are dyadic
rationals, so float sums are order-independent). Delta sequences are
routed through ``ShardedCube.apply_delta`` and checked three ways: the
global arrays stay bitwise-equal to ``Cube.apply_delta``'s, the shard
blocks keep partitioning the global block (merge-as-mapping), and the
end state matches the frozen row-at-a-time rebuild in
:mod:`repro.relational.deltaref`.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (Delta, HierarchicalDataset, Relation, Schema, dimension,
                   measure)
from repro.relational import deltaref
from repro.relational.cube import Cube
from repro.relational.shard import ShardedCube, merge_shard_blocks

SCHEMA = Schema([dimension("district"), dimension("village"),
                 dimension("year"), measure("sev")])
HIERARCHIES = {"geo": ["district", "village"], "time": ["year"]}

#: One shared NaN object: rows drawn with it form a single group (dict
#: identity semantics) and a single, valid partition key.
NAN = float("nan")

DISTRICTS = ("d0", "d1", "d2")
NEW_DISTRICTS = ("n0", "n1")
SHARD_COUNTS = (1, 2, 7)

# Dyadic measures: every sum is exactly representable, so sharded and
# single-process accumulations must agree bitwise.
measures = st.integers(-8, 24).map(lambda v: v / 2.0)


def _village(district, i: int) -> str:
    return f"{district}-v{i}"


def _row(draw, districts, village_range, years):
    d = draw(st.sampled_from(districts))
    v = _village(d, draw(st.integers(0, village_range - 1)))
    return (d, v, draw(st.sampled_from(years)), draw(measures))


@st.composite
def relations(draw, allow_nan: bool = False):
    districts = DISTRICTS + ((NAN,) if allow_nan else ())
    years = [2000, 2001] + ([NAN] if allow_nan else [])
    return [_row(draw, districts, 3, years)
            for _ in range(draw(st.integers(1, 16)))]


@st.composite
def evolutions(draw, max_deltas: int = 3):
    """A base row set plus a sequence of valid deltas over it."""
    base = [_row(draw, DISTRICTS, 2, [2000, 2001])
            for _ in range(draw(st.integers(1, 12)))]
    current = list(base)
    deltas = []
    for _ in range(draw(st.integers(1, max_deltas))):
        appends = [_row(draw, DISTRICTS + NEW_DISTRICTS, 4,
                        [2000, 2001, 2002])
                   for _ in range(draw(st.integers(0, 5)))]
        n_retract = draw(st.integers(0, min(3, len(current))))
        retracts = []
        if n_retract:
            idx = draw(st.lists(
                st.integers(0, len(current) - 1), min_size=n_retract,
                max_size=n_retract, unique=True))
            retracts = [current[i] for i in idx]
        for r in retracts:
            current.remove(r)
        current.extend(appends)
        if not current:  # keep at least one row so the cube stays valid
            keep = _row(draw, DISTRICTS, 2, [2000])
            appends = appends + [keep]
            current.append(keep)
        deltas.append(Delta.from_rows(SCHEMA, appends, retracts))
    return base, deltas


def _dataset(rows) -> HierarchicalDataset:
    return HierarchicalDataset.build(
        Relation.from_rows(SCHEMA, rows), HIERARCHIES, "sev")


def _assert_bitwise(sharded: ShardedCube, cube: Cube) -> None:
    assert np.array_equal(sharded._key_codes, cube._key_codes)
    for name in ("count", "total", "sumsq"):
        assert np.array_equal(getattr(sharded.leaf_stats, name),
                              getattr(cube.leaf_stats, name)), name


def _block_map(key_codes, stats):
    return {tuple(int(c) for c in row):
            (stats.count[i], stats.total[i], stats.sumsq[i])
            for i, row in enumerate(key_codes)}


def _assert_blocks_partition_global(sharded: ShardedCube) -> None:
    """merge(shard blocks) == global block, compared as mappings.

    After a delta the global arrays append fresh keys at the end while
    the block merge re-sorts, so positional comparison is wrong by
    design — the invariant is the key→stats mapping.
    """
    sizes = [e.cardinality for e in sharded._encodings]
    merged_keys, merged_stats = merge_shard_blocks(sharded.shard_blocks,
                                                   sizes)
    assert _block_map(merged_keys, merged_stats) == \
        _block_map(sharded._key_codes, sharded.leaf_stats)


@given(relations(), st.sampled_from(SHARD_COUNTS))
def test_sharded_build_bitwise_equals_single_process(rows, n_shards):
    dataset = _dataset(rows)
    sharded = ShardedCube(dataset, n_shards=n_shards)
    _assert_bitwise(sharded, Cube(dataset))
    _assert_blocks_partition_global(sharded)
    assert sum(sharded.shard_sizes()) == len(sharded._key_codes)


@given(relations(allow_nan=True), st.sampled_from(SHARD_COUNTS))
def test_sharded_build_with_nan_partition_keys(rows, n_shards):
    dataset = _dataset(rows)
    _assert_bitwise(ShardedCube(dataset, n_shards=n_shards), Cube(dataset))


@given(relations(), st.sampled_from(("district", "village", "year")),
       st.sampled_from(SHARD_COUNTS))
def test_any_leaf_attribute_partitions_correctly(rows, attr, n_shards):
    dataset = _dataset(rows)
    sharded = ShardedCube(dataset, n_shards=n_shards, partition_attr=attr)
    _assert_bitwise(sharded, Cube(dataset))
    _assert_blocks_partition_global(sharded)


@given(evolutions(), st.sampled_from(SHARD_COUNTS))
def test_delta_sequence_bitwise_equals_single_process(evolution, n_shards):
    base, deltas = evolution
    dataset = _dataset(base)
    sharded = ShardedCube(dataset, n_shards=n_shards)
    cube = Cube(dataset)
    for delta in deltas:
        sharded.apply_delta(delta)
        cube.apply_delta(delta)
        _assert_bitwise(sharded, cube)
    _assert_blocks_partition_global(sharded)


@settings(deadline=None)
@given(evolutions(), st.sampled_from(SHARD_COUNTS))
def test_delta_sequence_matches_rebuild_oracle(evolution, n_shards):
    base, deltas = evolution
    sharded = ShardedCube(_dataset(base), n_shards=n_shards)
    for delta in deltas:
        sharded.apply_delta(delta)
    oracle = deltaref.rebuilt_dataset(_dataset(base), deltas)
    deltaref.assert_groups_equal(sharded.leaf_states,
                                 deltaref.rebuilt_leaf_states(oracle))
    for attrs, filters in [((), None), (("district",), None),
                           (("district", "year"), None),
                           (("village",), {"district": "d0"})]:
        deltaref.assert_groups_equal(
            sharded.view(attrs, filters).groups,
            deltaref.rebuilt_view(oracle, attrs, filters))


@given(evolutions(max_deltas=2), st.sampled_from((2, 7)))
def test_deltas_only_touch_owning_shards(evolution, n_shards):
    base, deltas = evolution
    sharded = ShardedCube(_dataset(base), n_shards=n_shards)
    for delta in deltas:
        # which shards *should* a batch touch: the partition codes of
        # its rows (mod n_shards), computed from the post-merge domain
        before = list(sharded.shard_patches)
        blocks_before = list(sharded.shard_blocks)
        sharded.apply_delta(delta)
        touched = {s for s, (a, b) in
                   enumerate(zip(before, sharded.shard_patches)) if b > a}
        enc = sharded._encodings[sharded._part_pos]
        domain_pos = {id(v): c for c, v in enumerate(enc.domain)}
        expected = set()
        for row in list(delta.appended) + list(delta.retracted):
            d = row[0]
            code = domain_pos.get(id(d))
            if code is None:
                code = enc.domain.index(d)
            expected.add(code % n_shards)
        assert touched == expected
        for s in range(n_shards):
            if s not in touched:
                a_codes, a_stats = blocks_before[s]
                b_codes, b_stats = sharded.shard_blocks[s]
                assert a_codes is b_codes and a_stats is b_stats
