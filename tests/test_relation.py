"""Tests for repro.relational.relation."""

import numpy as np
import pytest

from repro.relational.relation import Relation
from repro.relational.schema import Schema, SchemaError, dimension, measure


@pytest.fixture
def rel():
    schema = Schema([dimension("a"), dimension("b"), measure("x")])
    return Relation.from_rows(schema, [
        ("a1", "b1", 1.0), ("a1", "b2", 2.0), ("a2", "b1", 3.0),
        ("a2", "b2", 4.0), ("a2", "b2", 5.0)])


class TestConstruction:
    def test_column_length_mismatch(self):
        with pytest.raises(SchemaError):
            Relation(Schema(["a", "b"]), {"a": [1, 2], "b": [1]})

    def test_missing_column(self):
        with pytest.raises(SchemaError):
            Relation(Schema(["a", "b"]), {"a": [1]})

    def test_row_width_mismatch(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(Schema(["a", "b"]), [(1,)])

    def test_len_and_rows(self, rel):
        assert len(rel) == 5
        assert list(rel)[0] == ("a1", "b1", 1.0)
        assert rel.row(2) == ("a2", "b1", 3.0)


class TestAccessors:
    def test_column_and_measure_array(self, rel):
        assert rel.column("a")[:2] == ["a1", "a1"]
        np.testing.assert_allclose(rel.measure_array("x"),
                                   [1.0, 2.0, 3.0, 4.0, 5.0])

    def test_unknown_column(self, rel):
        with pytest.raises(SchemaError):
            rel.column("zzz")

    def test_key_tuples(self, rel):
        assert rel.key_tuples(["b"])[:3] == [("b1",), ("b2",), ("b1",)]
        assert rel.key_tuples([]) == [()] * 5


class TestOperators:
    def test_project(self, rel):
        p = rel.project(["b", "a"])
        assert p.schema.names == ("b", "a")
        assert len(p) == 5

    def test_distinct(self, rel):
        d = rel.distinct(["a", "b"])
        assert sorted(d.rows()) == [("a1", "b1"), ("a1", "b2"),
                                    ("a2", "b1"), ("a2", "b2")]

    def test_filter_predicate(self, rel):
        f = rel.filter(lambda r: r["x"] > 2.5)
        assert len(f) == 3

    def test_filter_equals(self, rel):
        f = rel.filter_equals({"a": "a2", "b": "b2"})
        assert sorted(f.column("x")) == [4.0, 5.0]

    def test_filter_equals_empty_conditions(self, rel):
        assert rel.filter_equals({}) is rel

    def test_sort(self, rel):
        s = rel.sort(["x"])
        assert s.column("x") == sorted(rel.column("x"))

    def test_extend(self, rel):
        e = rel.extend("y", [0, 1, 2, 3, 4])
        assert e.column("y") == [0, 1, 2, 3, 4]
        with pytest.raises(SchemaError):
            rel.extend("y", [1])

    def test_concat(self, rel):
        c = rel.concat(rel)
        assert len(c) == 10
        with pytest.raises(SchemaError):
            rel.concat(rel.project(["a"]))

    def test_bag_equality(self, rel):
        shuffled = rel.sort(["x"])
        assert rel == shuffled
        assert rel != rel.project(["a", "b"])


class TestJoin:
    def test_natural_join_shared_key(self, rel):
        lookup = Relation.from_rows(Schema([dimension("b"), measure("w")]),
                                    [("b1", 10.0), ("b2", 20.0)])
        joined = rel.natural_join(lookup)
        assert joined.schema.names == ("a", "b", "x", "w")
        assert len(joined) == 5
        by_b = dict(zip(joined.column("b"), joined.column("w")))
        assert by_b == {"b1": 10.0, "b2": 20.0}

    def test_join_drops_unmatched(self, rel):
        lookup = Relation.from_rows(Schema([dimension("b"), measure("w")]),
                                    [("b1", 10.0)])
        joined = rel.natural_join(lookup)
        assert set(joined.column("b")) == {"b1"}
        assert len(joined) == 2

    def test_join_one_to_many(self):
        left = Relation.from_rows(Schema(["k"]), [("k1",), ("k2",)])
        right = Relation.from_rows(Schema(["k", "v"]),
                                   [("k1", 1), ("k1", 2), ("k2", 3)])
        assert len(left.natural_join(right)) == 3

    def test_cartesian_when_disjoint(self):
        left = Relation.from_rows(Schema(["a"]), [(1,), (2,)])
        right = Relation.from_rows(Schema(["b"]), [(10,), (20,), (30,)])
        prod = left.natural_join(right)
        assert len(prod) == 6
        assert sorted(prod.rows())[0] == (1, 10)


class TestGrouping:
    def test_group_rows(self, rel):
        groups = rel.group_rows(["a"])
        assert groups[("a1",)] == [0, 1]
        assert groups[("a2",)] == [2, 3, 4]

    def test_group_measure(self, rel):
        gm = rel.group_measure(["a"], "x")
        np.testing.assert_allclose(gm[("a2",)], [3.0, 4.0, 5.0])


class TestDerivedIsolation:
    """Derived relations must stay isolated under column() mutation,
    exactly as when every operation copied its columns."""

    def test_extend_mutation_does_not_alias_base(self, rel):
        extended = rel.extend("y", [0, 1, 2, 3, 4])
        extended.column("x")[0] = 999.0
        assert rel.column("x")[0] == 1.0

    def test_base_mutation_does_not_leak_into_projection(self, rel):
        projected = rel.project(["a", "b"])
        rel.column("a")[0] = "mutated"
        assert projected.column("a")[0] == "a1"

    def test_projection_mutation_does_not_leak_into_base(self, rel):
        projected = rel.project(["a", "b"])
        projected.column("a")[0] = "mutated"
        assert rel.column("a")[0] == "a1"

    def test_concat_mixed_dtype_arrays_preserves_values(self):
        left = Relation(Schema(["k"]), {"k": np.array([1, 2])})
        right = Relation(Schema(["k"]), {"k": np.array(["a"])})
        both = left.concat(right)
        assert both.column("k") == [1, 2, "a"]  # no silent stringification


class TestCsv(object):
    def test_round_trip(self, rel, tmp_path):
        path = str(tmp_path / "r.csv")
        rel.to_csv(path)
        back = Relation.from_csv(path, rel.schema)
        assert back == rel

    def test_custom_converter(self, tmp_path):
        schema = Schema([dimension("year"), measure("v")])
        r = Relation.from_rows(schema, [(1984, 1.5), (1985, 2.5)])
        path = str(tmp_path / "r.csv")
        r.to_csv(path)
        back = Relation.from_csv(path, schema, converters={"year": int})
        assert back.column("year") == [1984, 1985]
