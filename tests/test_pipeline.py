"""Tests for the factorised training pipeline (§4.5 glue)."""

import numpy as np
import pytest

from repro.factorized.forder import AttributeOrder
from repro.model.pipeline import (feature_columns_from_view, train_dense,
                                  train_factorized, train_matlab, y_vector)
from repro.relational.cube import Cube


@pytest.fixture
def setup(ofla_dataset):
    order = AttributeOrder.from_dataset(
        ofla_dataset, hierarchy_order=["time", "geo"])
    view = Cube(ofla_dataset).view(order.attributes)
    return ofla_dataset, order, view


class TestYVector:
    def test_alignment(self, setup):
        _, order, view = setup
        y = y_vector(order, view, "count")
        positions = [view.group_attrs.index(a) for a in order.attributes]
        for key, state in view.groups.items():
            row = order.row_index(tuple(key[p] for p in positions))
            assert y[row] == state.count

    def test_missing_groups_default(self, setup):
        dataset, order, view = setup
        # Drop one group from the view; its row must take the default.
        key = next(iter(view.groups))
        groups = dict(view.groups)
        del groups[key]
        from repro.relational.cube import GroupView
        smaller = GroupView(view.group_attrs, groups)
        y = y_vector(order, smaller, "count", default=-7.0)
        positions = [view.group_attrs.index(a) for a in order.attributes]
        row = order.row_index(tuple(key[p] for p in positions))
        assert y[row] == -7.0

    def test_total_conserved(self, setup):
        _, order, view = setup
        y = y_vector(order, view, "count")
        assert y.sum() == pytest.approx(
            sum(s.count for s in view.groups.values()))


class TestFeatureColumns:
    def test_one_column_per_attribute_plus_intercept(self, setup):
        _, order, view = setup
        cols = feature_columns_from_view(order, view, "mean")
        assert len(cols) == 1 + order.n_attributes
        assert cols[0].name == "intercept"

    def test_medians_match_manual(self, setup):
        import statistics
        _, order, view = setup
        cols = feature_columns_from_view(order, view, "mean")
        year_col = next(c for c in cols if c.name == "main:year")
        pos = view.group_attrs.index("year")
        per_year = {}
        for key, state in view.groups.items():
            per_year.setdefault(key[pos], []).append(state.mean)
        for year, values in per_year.items():
            assert year_col.mapping[year] == pytest.approx(
                statistics.median(values))

    def test_min_groups_guard(self, setup):
        _, order, view = setup
        cols = feature_columns_from_view(order, view, "mean",
                                         min_groups=10 ** 6)
        # Every value falls back to the overall median: constant columns.
        for col in cols[1:]:
            assert len(set(col.mapping.values())) == 1


class TestTrainers:
    def test_three_backends_agree(self, setup):
        _, order, view = setup
        fact = train_factorized(order, view, "mean", n_iterations=6)
        dense = train_dense(order, view, "mean", n_iterations=6)
        matlab = train_matlab(order, view, "mean", n_iterations=6)
        np.testing.assert_allclose(fact.fit.beta, dense.fit.beta, atol=1e-7)
        np.testing.assert_allclose(fact.fit.beta, matlab.fit.beta, atol=1e-7)
        assert fact.fit.sigma2 == pytest.approx(dense.fit.sigma2, abs=1e-8)
        assert fact.fit.sigma2 == pytest.approx(matlab.fit.sigma2, abs=1e-8)
        np.testing.assert_allclose(fact.predictions(), dense.predictions(),
                                   atol=1e-6)

    def test_predictions_track_y(self, setup):
        """Fitted expectations should correlate strongly with observations."""
        _, order, view = setup
        level = train_factorized(order, view, "mean", n_iterations=8)
        observed = level.y
        predicted = level.predictions()
        mask = observed != 0
        corr = np.corrcoef(observed[mask], predicted[mask])[0, 1]
        assert corr > 0.5
