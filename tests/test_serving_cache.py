"""Serving layer: cache correctness, invalidation, eviction, batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (Complaint, HierarchicalDataset, Relation, Reptile,
                   ReptileConfig, Schema, dimension, measure)
from repro.factorized import AttributeOrder, Factorizer, shared_plan
from repro.serving import (AggregateCache, CachingCube, ComplaintRequest,
                           ExplanationService, ServiceError,
                           dataset_fingerprint, refresh_fingerprint)


CONFIG = ReptileConfig(n_em_iterations=4)
COMPLAINT = Complaint.too_low({"year": 1986}, "mean")


def _recommend(engine: Reptile):
    session = engine.session(group_by=["year"], filters={"district": "Ofla"})
    return session.recommend(COMPLAINT)


# -- cache data structure ------------------------------------------------------------
class TestAggregateCache:
    def test_get_or_compute_memoizes(self):
        cache = AggregateCache()
        calls = []
        value = cache.get_or_compute(("k", "fp"), lambda: calls.append(1) or 41)
        again = cache.get_or_compute(("k", "fp"), lambda: calls.append(1) or 42)
        assert (value, again) == (41, 41)
        assert len(calls) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_bounds(self):
        cache = AggregateCache(max_entries=3)
        for i in range(10):
            cache.put(("k", "fp", i), i)
        assert len(cache) == 3
        assert cache.stats.evictions == 7
        assert cache.keys() == [("k", "fp", i) for i in (7, 8, 9)]

    def test_lru_recency_is_use_not_insertion(self):
        cache = AggregateCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh "a"
        cache.put(("c",), 3)           # evicts "b", the LRU entry
        assert ("b",) not in cache
        assert cache.get(("a",)) == 1 and cache.get(("c",)) == 3

    def test_unbounded_when_max_entries_none(self):
        cache = AggregateCache(max_entries=None)
        for i in range(100):
            cache.put(("k", i), i)
        assert len(cache) == 100 and cache.stats.evictions == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            AggregateCache(max_entries=0)

    def test_invalidate_by_fingerprint(self):
        cache = AggregateCache()
        cache.put(("view", "fp1", "x"), 1)
        cache.put(("predict", "fp1", "y"), 2)
        cache.put(("view", "fp2", "x"), 3)
        assert cache.invalidate("fp1") == 2
        assert cache.keys() == [("view", "fp2", "x")]
        assert cache.stats.invalidations == 2

    def test_invalidate_everything(self):
        cache = AggregateCache()
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_invalidate_by_predicate(self):
        cache = AggregateCache()
        cache.put(("view", "fp", 1), 1)
        cache.put(("predict", "fp", 2), 2)
        assert cache.invalidate(predicate=lambda k: k[0] == "view") == 1
        assert cache.keys() == [("predict", "fp", 2)]

    def test_timings_record_compute_kinds(self):
        cache = AggregateCache()
        cache.get_or_compute(("view", "fp", 1), lambda: 1)
        cache.get_or_compute(("view", "fp", 2), lambda: 2)
        cache.get_or_compute(("predict", "fp"), lambda: 3)
        timings = cache.timings()
        assert timings["view"].computations == 2
        assert timings["predict"].computations == 1
        assert timings["view"].seconds >= 0.0


# -- fingerprints --------------------------------------------------------------------
class TestFingerprint:
    def test_stable_and_content_addressed(self, ofla_dataset):
        fp1 = dataset_fingerprint(ofla_dataset)
        assert fp1 == dataset_fingerprint(ofla_dataset)  # memoized
        clone = HierarchicalDataset(
            ofla_dataset.relation, ofla_dataset.dimensions,
            ofla_dataset.measure, validate=False)
        assert dataset_fingerprint(clone) == fp1

    def test_refresh_after_in_place_mutation(self, ofla_dataset):
        fp1 = dataset_fingerprint(ofla_dataset)
        ofla_dataset.relation.column("severity")[0] += 1.0
        assert dataset_fingerprint(ofla_dataset) == fp1  # memo still live
        assert refresh_fingerprint(ofla_dataset) != fp1

    def test_auxiliary_contents_are_fingerprinted(self, ofla_dataset):
        from repro import AuxiliaryDataset
        schema = Schema([dimension("district"), measure("rain")])
        a = HierarchicalDataset(ofla_dataset.relation,
                                ofla_dataset.dimensions, "severity",
                                validate=False)
        b = HierarchicalDataset(ofla_dataset.relation,
                                ofla_dataset.dimensions, "severity",
                                validate=False)
        a.add_auxiliary(AuxiliaryDataset(
            "sat", Relation.from_rows(schema, [("Ofla", 1.0)]),
            ["district"], ["rain"]))
        b.add_auxiliary(AuxiliaryDataset(
            "sat", Relation.from_rows(schema, [("Ofla", 9.0)]),
            ["district"], ["rain"]))
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_no_column_copies_on_large_dataset(self):
        # Fingerprinting a 10⁵-row array-backed dataset must hash the
        # typed arrays / interned code arrays directly: no Python list
        # may be materialized for any column, and the per-column tokens
        # must be memoized so a second engine construction is O(1) per
        # column.
        n = 100_000
        rng = np.random.default_rng(3)
        districts = np.array([f"d{i:02d}" for i in range(20)])
        relation = Relation(
            Schema([dimension("district"), dimension("year"),
                    measure("severity")]),
            {"district": districts[rng.integers(0, 20, n)],
             "year": 1980 + rng.integers(0, 10, n),
             "severity": rng.normal(size=n)})
        dataset = HierarchicalDataset.build(
            relation, {"geo": ["district"], "time": ["year"]}, "severity",
            validate=False)
        fp = dataset_fingerprint(dataset)
        for name in relation.schema.names:
            col = relation._cols[name]
            assert col._values is None, \
                f"fingerprinting materialized a Python list for {name!r}"
            assert col._token is not None  # memoized for the next engine
        assert dataset_fingerprint(dataset, refresh=True) == fp

    def test_token_reuses_interned_encoding(self, ofla_dataset):
        # Once a dimension column is interned (e.g. by a cube build), the
        # fingerprint token is exactly the encoding's memoized hash —
        # no re-hash of the value column.
        relation = ofla_dataset.relation
        enc = relation.encoding("district")
        assert relation.content_token("district") == enc.hash_token()

    def test_mutated_column_rehashes(self, ofla_dataset):
        relation = ofla_dataset.relation
        token = relation.content_token("severity")
        relation.column("severity")[0] += 123.0  # escape + mutate
        assert relation.content_token("severity") != token

    def test_different_measure_differs(self, ofla_dataset):
        rng = np.random.default_rng(0)
        relation = ofla_dataset.relation.extend(
            "other", rng.normal(size=len(ofla_dataset.relation)))
        a = HierarchicalDataset(relation, ofla_dataset.dimensions,
                                "severity", validate=False)
        b = HierarchicalDataset(relation, ofla_dataset.dimensions,
                                "other", validate=False)
        assert dataset_fingerprint(a) != dataset_fingerprint(b)


# -- cache-backed engine -------------------------------------------------------------
class TestCachedRecommendations:
    def test_warm_equals_cold_exactly(self, ofla_dataset):
        cold = _recommend(Reptile(ofla_dataset, config=CONFIG))
        cache = AggregateCache()
        _recommend(Reptile(ofla_dataset, config=CONFIG, cache=cache))
        warm = _recommend(Reptile(ofla_dataset, config=CONFIG, cache=cache))
        assert warm == cold
        assert repr(warm) == repr(cold)
        assert warm.best_group.score == cold.best_group.score

    def test_warm_engine_computes_no_predictions(self, ofla_dataset):
        cache = AggregateCache()
        _recommend(Reptile(ofla_dataset, config=CONFIG, cache=cache))
        computed = cache.timings()["predict"].computations
        _recommend(Reptile(ofla_dataset, config=CONFIG, cache=cache))
        assert cache.timings()["predict"].computations == computed
        assert cache.stats.hits > 0

    def test_caching_cube_is_transparent(self, ofla_dataset):
        plain = Reptile(ofla_dataset, config=CONFIG).cube
        cached = CachingCube(ofla_dataset, AggregateCache())
        view = cached.view(("district", "year"))
        assert view.groups == plain.view(("district", "year")).groups
        assert cached.view(("district", "year")) is view  # served warm

    def test_distinct_configs_do_not_alias(self, ofla_dataset):
        cache = AggregateCache()
        few = Reptile(ofla_dataset,
                      config=ReptileConfig(n_em_iterations=1), cache=cache)
        many = Reptile(ofla_dataset,
                       config=ReptileConfig(n_em_iterations=30), cache=cache)
        assert _recommend(few) != _recommend(many)

    def test_custom_repairer_bypasses_cache(self, ofla_dataset):
        from repro import ModelRepairer
        from repro.core.repair import CustomRepairer
        cache = AggregateCache()
        repairer = CustomRepairer(fn=lambda key, state: {"mean": 5.0})
        engine = Reptile(ofla_dataset, config=CONFIG, repairer=repairer,
                         cache=cache)
        _recommend(engine)
        assert "predict" not in cache.timings()  # never cached, still ran

    def test_new_engine_sees_in_place_mutation(self, ofla_dataset):
        # A fresh engine must hash the data as it is *now*: constructing
        # it after an in-place mutation may not reuse the pre-mutation
        # fingerprint (and with it the stale cache entries).
        cache = AggregateCache()
        stale = Reptile(ofla_dataset, config=CONFIG, cache=cache)
        _recommend(stale)
        ofla_dataset.relation.column("severity")[0] += 50.0
        fresh = Reptile(ofla_dataset, config=CONFIG, cache=cache)
        assert fresh.fingerprint != stale.fingerprint
        truth = _recommend(Reptile(ofla_dataset, config=CONFIG))
        assert _recommend(fresh) == truth

    def test_filtered_views_do_not_alias_predictions(self, ofla_dataset):
        # Two views with the same group attributes but different filters
        # must never share a cached prediction.
        engine = Reptile(ofla_dataset, config=CONFIG,
                         cache=AggregateCache())
        repairer = engine.repairer_for(("village",))
        ofla = engine.cube.view(("village",), {"district": "Ofla"})
        alaje = engine.cube.view(("village",), {"district": "Alaje"})
        p_ofla = repairer.predict(ofla, (), "mean")
        p_alaje = repairer.predict(alaje, (), "mean")
        assert set(ofla.groups) != set(alaje.groups)
        assert p_ofla is not p_alaje

    def test_untagged_views_bypass_prediction_cache(self, ofla_dataset):
        # A view built by a plain Cube carries no serving tag; its
        # contents are unknown to the cache, so predictions recompute.
        from repro.relational import Cube
        cache = AggregateCache()
        engine = Reptile(ofla_dataset, config=CONFIG, cache=cache)
        plain = Cube(ofla_dataset).view(("village",), {"district": "Ofla"})
        engine.repairer_for(("village",)).predict(plain, (), "mean")
        assert "predict" not in cache.timings()


# -- §4.4 incremental units ----------------------------------------------------------
class TestIncrementalUnits:
    def test_drill_recomputes_only_drilled_unit(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        session = engine.session(group_by=["district", "year"])
        session.aggregates()
        assert session.unit_computations == 2  # geo@1 and time@1
        session.drill("geo")
        session.aggregates()
        assert session.unit_computations == 3  # only geo@2 was rebuilt
        assert engine.unit_builds == 3

    def test_warm_session_builds_no_units(self, ofla_dataset):
        cache = AggregateCache()
        first = Reptile(ofla_dataset, config=CONFIG, cache=cache)
        s1 = first.session(group_by=["district", "year"])
        s1.aggregates()
        s1.drill("geo")
        s1.aggregates()
        assert first.unit_builds == 3

        replay = Reptile(ofla_dataset, config=CONFIG, cache=cache)
        s2 = replay.session(group_by=["district", "year"])
        s2.aggregates()
        s2.drill("geo")
        s2.aggregates()
        assert replay.unit_builds == 0       # all units served by the cache
        assert s2.unit_computations == 3     # same §4.4 fetch pattern

    def test_engine_refresh_drops_session_units(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        session = engine.session(group_by=["district", "year"])
        before = session.aggregates().counts["year"].as_unary_dict()
        relation = ofla_dataset.relation
        years = relation.column("year")
        for i, year in enumerate(years):
            if year == 1987:
                years[i] = 1988
        engine.refresh()
        after = session.aggregates().counts["year"].as_unary_dict()
        assert 1988 in after and 1987 not in after
        assert before != after

    def test_aggregates_match_shared_plan(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        session = engine.session(group_by=["district", "year"])
        session.drill("geo")
        got = session.aggregates()
        order = AttributeOrder.from_dataset(ofla_dataset,
                                            hierarchy_order=["time", "geo"])
        want = shared_plan(Factorizer(order))
        assert got.totals == want.totals
        for attribute, count_map in want.counts.items():
            assert got.counts[attribute].as_unary_dict() \
                == count_map.as_unary_dict()
        for pair in want.cofs:
            assert (pair in got.cofs) or (pair[::-1] in got.cofs)

    def test_depth_zero_hierarchy_is_omitted(self, ofla_dataset):
        engine = Reptile(ofla_dataset, config=CONFIG)
        session = engine.session(group_by=["year"])  # geo not drilled yet
        aggregates = session.aggregates()
        assert set(aggregates.totals) == {"year"}
        assert session.unit_computations == 1


# -- the explanation service ---------------------------------------------------------
class TestExplanationService:
    def _service(self, dataset) -> ExplanationService:
        service = ExplanationService(config=CONFIG)
        service.register("drought", dataset)
        return service

    def test_session_lifecycle(self, ofla_dataset):
        service = self._service(ofla_dataset)
        sid = service.open_session("drought", group_by=["year"],
                                   filters={"district": "Ofla"})
        assert sid in service.sessions
        recommendation = service.recommend(sid, COMPLAINT)
        service.drill(sid, recommendation.best_hierarchy)
        assert "village" in service.session(sid).group_by
        service.close_session(sid)
        assert sid not in service.sessions
        with pytest.raises(ServiceError):
            service.session(sid)
        with pytest.raises(ServiceError):
            service.recommend("nope", COMPLAINT)
        with pytest.raises(ServiceError):
            service.engine("nope")
        with pytest.raises(ServiceError):
            service.register("drought", ofla_dataset)

    def test_batch_matches_sequential_and_shares_work(self, ofla_dataset):
        requests = [
            ComplaintRequest(COMPLAINT, ("year",), {"district": "Ofla"}),
            ComplaintRequest(Complaint.too_high({"year": 1985}, "mean"),
                             ("year",), {"district": "Ofla"}),
            ComplaintRequest(COMPLAINT, ("year",), {"district": "Alaje"}),
        ]
        service = self._service(ofla_dataset)
        result = service.submit_batch("drought", requests)
        assert result.n_views == 2
        assert len(result.items) == 3
        # Same complaints one-by-one on an uncached engine agree exactly.
        for request, item in zip(requests, result.items):
            engine = Reptile(ofla_dataset, config=CONFIG)
            session = engine.session(request.group_by, dict(request.filters))
            assert session.recommend(request.complaint) == item.recommendation
        # All three requests share one parallel-view model fit: the
        # complained statistic is "mean" for every request and the
        # parallel view ignores filters, so one "predict" computation
        # serves the whole batch.
        assert service.cache.timings()["predict"].computations == 1
        stats = service.stats()
        assert stats["recommend"]["count"] == 3
        assert stats["cache"]["hit_rate"] > 0.0

    def test_batch_isolates_failing_requests(self, ofla_dataset):
        bad = ComplaintRequest(Complaint.too_low({"village": "Zata"}, "mean"),
                               ("year",), {"district": "Ofla"})
        good = ComplaintRequest(COMPLAINT, ("year",), {"district": "Ofla"})
        service = self._service(ofla_dataset)
        result = service.submit_batch("drought", [bad, good])
        assert result.items[0].recommendation is None
        assert "village" in result.items[0].error
        assert result.items[1].error is None
        assert result.items[1].recommendation.best_group is not None
        assert result.recommendations()[0] is None

    def test_batch_isolates_unhashable_filter_values(self, ofla_dataset):
        bad = ComplaintRequest(COMPLAINT, ("year",),
                               {"district": ["Ofla", "Alaje"]})
        good = ComplaintRequest(COMPLAINT, ("year",), {"district": "Ofla"})
        service = self._service(ofla_dataset)
        result = service.submit_batch("drought", [bad, good])
        assert result.items[0].recommendation is None
        assert "TypeError" in result.items[0].error
        assert result.items[1].error is None
        assert result.items[1].recommendation.best_group is not None

    def test_explicit_auxiliary_extra_spec_does_not_crash(self,
                                                          ofla_dataset):
        from repro import AuxiliaryDataset
        from repro.model.features import AuxiliaryFeature, FeaturePlan
        schema = Schema([dimension("district"), measure("rain")])
        aux = AuxiliaryDataset(
            "sat", Relation.from_rows(schema, [("Ofla", 1.0),
                                               ("Alaje", 2.0)]),
            ["district"], ["rain"])
        ofla_dataset.add_auxiliary(aux)
        plan = FeaturePlan(extra_specs=[AuxiliaryFeature(aux, "rain")])
        engine = Reptile(ofla_dataset, feature_plan=plan, config=CONFIG)
        assert _recommend(engine).best_group is not None

    def test_invalidate_after_mutation_serves_fresh_results(self,
                                                            ofla_dataset):
        service = self._service(ofla_dataset)
        sid = service.open_session("drought", group_by=["year"],
                                   filters={"district": "Ofla"})
        before = service.recommend(sid, COMPLAINT)
        old_fingerprint = service.engine("drought").fingerprint

        # Plant a severe under-report in one village, in place.
        relation = ofla_dataset.relation
        severities = relation.column("severity")
        for i, (village, year) in enumerate(zip(relation.column("village"),
                                                relation.column("year"))):
            if village == "Darube" and year == 1986:
                severities[i] = 1.0
        dropped = service.invalidate("drought")
        assert dropped > 0
        assert service.engine("drought").fingerprint != old_fingerprint

        after = service.recommend(sid, COMPLAINT)
        assert after != before
        fresh = Reptile(ofla_dataset, config=CONFIG)
        expected = fresh.session(group_by=["year"],
                                 filters={"district": "Ofla"}) \
            .recommend(COMPLAINT)
        assert after == expected
        assert after.ranked()[0].coordinates["village"] == "Darube"

    def test_eviction_bounded_service_still_correct(self, ofla_dataset):
        service = ExplanationService(max_entries=2, config=CONFIG)
        service.register("drought", ofla_dataset)
        sid = service.open_session("drought", group_by=["year"],
                                   filters={"district": "Ofla"})
        constrained = service.recommend(sid, COMPLAINT)
        assert len(service.cache) <= 2
        assert constrained == _recommend(Reptile(ofla_dataset, config=CONFIG))


# -- CLI ------------------------------------------------------------------------------
class TestServeCommand:
    def test_serve_demo_smoke(self, capsys):
        from repro.cli import main
        assert main(["serve", "--repeat", "2", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "pass 2 (warm)" in out
        assert "Zata" in out  # the planted error is found

    def test_serve_batch_file(self, tmp_path, capsys):
        import json
        from repro.cli import main
        batch = [{"aggregate": "mean", "direction": "too_low",
                  "coordinates": {"year": 1986}, "group_by": ["year"],
                  "filters": {"district": "Ofla"}, "k": 2}]
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(batch))
        assert main(["serve", "--batch", str(path),
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 complaints" in out

    def test_serve_rejects_malformed_entries(self, tmp_path):
        import json
        from repro.cli import main
        for bad in ([{"direction": "too_low"}],            # no aggregate
                    [{"aggregate": "mean"}],               # no coordinates
                    [{"aggregate": "mean", "direction": "should_be",
                      "coordinates": {"year": 1986}}],     # no target
                    [{"aggregate": "mean", "direction": "should_be",
                      "coordinates": {"year": 1986},
                      "target": "abc"}],                   # bad target
                    [{"aggregate": "mean", "coordinates": {"year": 1986},
                      "group_by": "year"}],                # string group_by
                    ["not-an-object"]):
            path = tmp_path / "bad.json"
            path.write_text(json.dumps(bad))
            with pytest.raises(SystemExit):
                main(["serve", "--batch", str(path)])

    def test_serve_rejects_non_scalar_filters(self, tmp_path):
        import json
        from repro.cli import main
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{
            "aggregate": "mean", "coordinates": {"year": 1986},
            "filters": {"district": ["Ofla", "Alaje"]}}]))
        with pytest.raises(SystemExit, match="scalar"):
            main(["serve", "--batch", str(path)])

    def test_serve_rejects_hierarchy_without_csv(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="--csv"):
            main(["serve", "--hierarchy", "geo=district,village"])

    def test_serve_seed_changes_demo(self, capsys):
        from repro.cli import main
        assert main(["serve", "--iterations", "2", "--seed", "0"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "--iterations", "2", "--seed", "7"]) == 0
        second = capsys.readouterr().out
        gains = [l for l in first.splitlines() if "margin gain" in l]
        gains2 = [l for l in second.splitlines() if "margin gain" in l]
        assert gains and gains != gains2

    def test_serve_rejects_bad_cache_capacity(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="cache-entries"):
            main(["serve", "--cache-entries", "0"])

    def test_serve_rejects_bad_direction(self, tmp_path):
        import json
        from repro.cli import main
        path = tmp_path / "batch.json"
        path.write_text(json.dumps([{"aggregate": "mean",
                                     "direction": "sideways",
                                     "coordinates": {"year": 1986}}]))
        with pytest.raises(SystemExit):
            main(["serve", "--batch", str(path)])
