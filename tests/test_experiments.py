"""Integration tests for the experiment runners (reduced scale).

These assert the *qualitative shape* of each paper result on small
configurations; the benchmarks regenerate the full series.
"""

import numpy as np
import pytest

from repro.datagen.synthetic import SyntheticConfig
from repro.experiments.accuracy import (ABLATION_CONDITIONS, run_ablation,
                                        run_condition)
from repro.experiments.covid import (covid_feature_plan, run_case_study,
                                     run_issue)
from repro.datagen.covid import ALL_ISSUES, US_ISSUES
from repro.experiments.endtoend import run_compas
from repro.experiments.fist import run_study as run_fist_study
from repro.experiments.model_quality import run_fist, run_vote
from repro.experiments.perf import (run_cluster_ops, run_drilldown,
                                    run_matrix_ops, run_multiquery)
from repro.experiments.vote import run_study as run_vote_study

SMALL = SyntheticConfig(n_groups=40)


class TestAccuracyExperiment:
    def test_reptile_beats_baselines_on_missing(self):
        res = run_condition("Missing (count)", rho=0.9, n_trials=12, seed=3,
                            n_iterations=5, config=SMALL)
        assert res.accuracy["reptile"] >= 0.6
        assert res.accuracy["reptile"] > res.accuracy["raw"]
        assert res.accuracy["reptile"] > res.accuracy["support"]

    def test_raw_blind_to_row_errors(self):
        res = run_condition("Dup (count)", rho=0.9, n_trials=10, seed=4,
                            n_iterations=5, config=SMALL)
        assert res.accuracy["raw"] <= 0.2
        assert res.accuracy["reptile"] >= 0.6

    def test_support_only_good_for_duplication(self):
        dup = run_condition("Dup (count)", rho=0.9, n_trials=10, seed=5,
                            n_iterations=4, config=SMALL,
                            approaches=("support",))
        miss = run_condition("Missing (count)", rho=0.9, n_trials=10, seed=5,
                             n_iterations=4, config=SMALL,
                             approaches=("support",))
        assert dup.accuracy["support"] > miss.accuracy["support"]

    def test_ablation_outlier_capped(self):
        res = run_ablation("Decrease+Increase (mean)", rho=0.9, n_trials=12,
                           seed=6, n_iterations=5, config=SMALL)
        assert res.accuracy["reptile"] >= res.accuracy["outlier"]
        assert res.accuracy["reptile"] >= 0.7

    def test_all_conditions_enumerable(self):
        assert len(ABLATION_CONDITIONS) == 3


class TestCovidExperiment:
    def test_detectable_issue_found(self):
        issue = US_ISSUES[0]  # Texas missing reports
        result = run_issue(issue, seed=11, n_iterations=6)
        assert result.hits["reptile"]

    def test_prevalent_issue_missed(self):
        issue = next(i for i in US_ISSUES if i.issue_id == "3476")
        result = run_issue(issue, seed=11, n_iterations=6)
        assert not result.hits["reptile"]

    def test_full_study_shape(self):
        summary = run_case_study(seed=0, n_iterations=6)
        assert summary.accuracy("reptile") >= 0.6
        assert summary.accuracy("reptile") > summary.accuracy("sensitivity")
        assert summary.accuracy("reptile") > summary.accuracy("support")
        rows = summary.table_rows()
        assert len(rows) == len(ALL_ISSUES)

    def test_feature_plan_has_lags(self):
        plan = covid_feature_plan("state")
        names = [s.name for s in plan.extra_specs]
        assert names == ["lag1_state", "lag7_state"]


class TestFistExperiment:
    def test_study_matches_paper(self):
        summary = run_fist_study(seed=2, n_iterations=5)
        assert summary.n_complaints == 22
        assert summary.n_resolved >= 18
        assert summary.agreement_with_paper() >= 0.9


class TestVoteExperiment:
    def test_models_differ(self):
        study = run_vote_study(seed=1, n_iterations=6)
        assert study.model1.ranking != study.model2.ranking

    def test_missing_records_shift_gains(self):
        study = run_vote_study(seed=1, n_iterations=6)
        miss = set(study.missing_counties)
        shift = {c: abs(study.model2_missing.margin_gain.get(c, 0.0)
                        - study.model2.margin_gain.get(c, 0.0))
                 for c in study.model2.margin_gain}
        affected = np.mean([shift[c] for c in miss if c in shift])
        others = np.mean([v for c, v in shift.items() if c not in miss])
        assert affected > others


class TestModelQualityExperiment:
    def test_fist_multilevel_f_best(self):
        result = run_fist(seed=0, n_iterations=8)
        assert result.best() == "multilevel-f"
        assert result.deltas["linear"] > 10.0

    def test_vote_aux_matters(self):
        result = run_vote(seed=0, n_iterations=8)
        assert result.deltas["linear"] > result.deltas["linear-f"]
        assert result.best() == "multilevel-f"


class TestPerfRunners:
    def test_matrix_ops_sane(self):
        t = run_matrix_ops(3, cardinality=6)
        assert t.n_rows == 6 ** 3
        assert t.gram_factorized > 0 and t.gram_dense > 0

    def test_multiquery_sane(self):
        t = run_multiquery(cardinality=30)
        assert t.shared_seconds > 0 and t.lmfao_seconds > 0

    def test_drilldown_unit_counts(self):
        static = run_drilldown("static", depth_b=3, cardinality=40)
        cache = run_drilldown("cache", depth_b=3, cardinality=40)
        assert cache.unit_computations < static.unit_computations

    def test_cluster_ops_sane(self):
        t = run_cluster_ops(2, n_attrs=2, cardinality=8)
        assert t.n_clusters > 1
        assert t.gram_factorized > 0

    def test_endtoend_backends_timed(self):
        res = run_compas(n_rows=1500, n_iterations=3)
        assert len(res.invocations) == 6
        assert res.total_factorized > 0
        assert res.total_matlab > 0
