"""Tests for the Factorizer: relation interface, row iterator, clusters."""

import numpy as np
import pytest
from hypothesis import given

from repro.factorized.factorizer import Factorizer, check_row_order
from repro.factorized.forder import AttributeOrder, HierarchyPaths

from factorized_strategies import attribute_orders


class TestRelationInterface:
    def test_root_is_unary(self, figure3_order):
        fz = Factorizer(figure3_order)
        rel = fz.relation_for("T")
        assert rel.schema == ("T",)
        assert rel.as_unary_dict() == {"t1": 1.0, "t2": 1.0}

    def test_child_is_binary_parent_child(self, figure3_order):
        fz = Factorizer(figure3_order)
        rel = fz.relation_for("V")
        assert rel.schema == ("D", "V")
        assert rel[("d1", "v1")] == 1.0
        assert rel[("d2", "v3")] == 1.0
        assert rel[("d2", "v1")] == 0.0

    def test_relations_in_order(self, figure3_order):
        fz = Factorizer(figure3_order)
        schemas = [r.schema for r in fz.relations()]
        assert schemas == [("T",), ("D",), ("D", "V")]

    def test_relations_of_hierarchy(self, figure3_order):
        fz = Factorizer(figure3_order)
        assert len(fz.relations_of_hierarchy(1)) == 2


class TestRowIterator:
    def test_figure3_iteration(self, figure3_order):
        fz = Factorizer(figure3_order)
        rows = fz.materialized_rows()
        assert rows == [("t1", "d1", "v1"), ("t1", "d1", "v2"),
                        ("t1", "d2", "v3"), ("t2", "d1", "v1"),
                        ("t2", "d1", "v2"), ("t2", "d2", "v3")]

    def test_updates_are_minimal(self, figure3_order):
        """Algorithm 1 yields only the attributes that changed."""
        fz = Factorizer(figure3_order)
        updates = list(fz.row_iterator())
        assert set(updates[0]) == {"T", "D", "V"}  # full first row
        assert set(updates[1]) == {"V"}            # v1 -> v2 under d1
        assert set(updates[2]) == {"D", "V"}       # d1 -> d2
        assert set(updates[3]) == {"T", "D", "V"}  # time wraps geo

    @given(attribute_orders())
    def test_iterator_matches_row_keys(self, order):
        check_row_order(Factorizer(order))

    def test_single_row(self):
        order = AttributeOrder([HierarchyPaths("h", ["a"], [("only",)])])
        assert Factorizer(order).materialized_rows() == [("only",)]


class TestClusters:
    def test_figure3_clusters(self, figure3_order):
        fz = Factorizer(figure3_order)
        np.testing.assert_allclose(fz.cluster_sizes(), [2, 1, 2, 1])
        np.testing.assert_array_equal(fz.cluster_offsets(), [0, 2, 3, 5, 6])
        assert fz.intra_attribute == "V"
        assert fz.inter_attributes() == ("T", "D")
        assert fz.cluster_keys() == [("t1", "d1"), ("t1", "d2"),
                                     ("t2", "d1"), ("t2", "d2")]

    def test_single_attr_last_hierarchy(self):
        h1 = HierarchyPaths("a", ["x"], [("x1",), ("x2",)])
        h2 = HierarchyPaths("b", ["y"], [("y1",), ("y2",), ("y3",)])
        fz = Factorizer(AttributeOrder([h1, h2]))
        np.testing.assert_allclose(fz.cluster_sizes(), [3, 3])
        assert fz.cluster_keys() == [("x1",), ("x2",)]

    @given(attribute_orders())
    def test_cluster_sizes_partition_rows(self, order):
        fz = Factorizer(order)
        sizes = fz.cluster_sizes()
        assert sizes.sum() == order.n_rows
        assert (sizes > 0).all()

    @given(attribute_orders())
    def test_clusters_constant_on_inter_attributes(self, order):
        """Rows within a cluster agree on every inter attribute."""
        fz = Factorizer(order)
        rows = fz.materialized_rows()
        offsets = fz.cluster_offsets()
        intra_pos = order.attributes.index(fz.intra_attribute)
        for i in range(len(offsets) - 1):
            chunk = rows[offsets[i]:offsets[i + 1]]
            inter = {tuple(v for j, v in enumerate(r) if j != intra_pos)
                     for r in chunk}
            assert len(inter) == 1

    @given(attribute_orders())
    def test_cluster_keys_align_with_rows(self, order):
        fz = Factorizer(order)
        rows = fz.materialized_rows()
        offsets = fz.cluster_offsets()
        keys = fz.cluster_keys()
        intra_pos = order.attributes.index(fz.intra_attribute)
        for i, key in enumerate(keys):
            row = rows[offsets[i]]
            inter = tuple(v for j, v in enumerate(row) if j != intra_pos)
            assert inter == key
