"""Tests for per-cluster operators (Appendix F): batched == per-slice numpy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.factorized.cluster_ops import ClusterOps
from repro.factorized.forder import FactorizationError

from factorized_strategies import matrices


def dense_clusters(matrix, columns=None):
    """Materialise cluster slices the slow way for comparison."""
    ops = ClusterOps(matrix, columns)
    x = matrix.materialize()
    if columns is not None:
        x = x[:, list(columns)]
    offsets = ops.offsets
    slices = [x[offsets[i]:offsets[i + 1]] for i in range(ops.n_clusters)]
    return ops, slices


class TestClusterGrams:
    @given(matrices())
    def test_matches_slices(self, matrix):
        ops, slices = dense_clusters(matrix)
        grams = ops.cluster_grams()
        for g, xi in enumerate(slices):
            np.testing.assert_allclose(grams[g], xi.T @ xi,
                                       rtol=1e-9, atol=1e-9)

    @given(matrices())
    def test_column_subset(self, matrix):
        cols = list(range(matrix.n_cols))[::2] or [0]
        ops, slices = dense_clusters(matrix, cols)
        grams = ops.cluster_grams()
        for g, xi in enumerate(slices):
            np.testing.assert_allclose(grams[g], xi.T @ xi,
                                       rtol=1e-9, atol=1e-9)


class TestClusterLeft:
    @given(matrices(), st.integers(0, 2 ** 16))
    def test_matches_slices(self, matrix, seed):
        rng = np.random.default_rng(seed)
        v = rng.normal(size=matrix.n_rows)
        ops, slices = dense_clusters(matrix)
        lefts = ops.cluster_left(v)
        offsets = ops.offsets
        for g, xi in enumerate(slices):
            np.testing.assert_allclose(
                lefts[g], xi.T @ v[offsets[g]:offsets[g + 1]],
                rtol=1e-9, atol=1e-9)

    def test_wrong_length_rejected(self, figure3_order):
        from repro.factorized.matrix import intercept_column, FactorizedMatrix
        m = FactorizedMatrix(figure3_order, [intercept_column(figure3_order)])
        with pytest.raises(ValueError):
            ClusterOps(m).cluster_left(np.ones(3))


class TestClusterRight:
    @given(matrices(), st.integers(0, 2 ** 16))
    def test_matches_slices(self, matrix, seed):
        rng = np.random.default_rng(seed)
        ops, slices = dense_clusters(matrix)
        b = rng.normal(size=(ops.n_clusters, matrix.n_cols))
        out = ops.cluster_right(b)
        offsets = ops.offsets
        for g, xi in enumerate(slices):
            np.testing.assert_allclose(out[offsets[g]:offsets[g + 1]],
                                       xi @ b[g], rtol=1e-9, atol=1e-9)

    def test_wrong_shape_rejected(self, figure3_order):
        from repro.factorized.matrix import intercept_column, FactorizedMatrix
        m = FactorizedMatrix(figure3_order, [intercept_column(figure3_order)])
        ops = ClusterOps(m)
        with pytest.raises(ValueError):
            ops.cluster_right(np.ones((ops.n_clusters, 7)))


class TestStructure:
    @given(matrices())
    def test_split_partitions(self, matrix):
        ops = ClusterOps(matrix)
        v = np.arange(matrix.n_rows, dtype=float)
        chunks = ops.split(v)
        assert sum(len(c) for c in chunks) == matrix.n_rows
        np.testing.assert_allclose(np.concatenate(chunks), v)

    def test_requires_columns(self, figure3_order):
        from repro.factorized.matrix import intercept_column, FactorizedMatrix
        m = FactorizedMatrix(figure3_order, [intercept_column(figure3_order)])
        with pytest.raises(FactorizationError):
            ClusterOps(m, columns=[])

    def test_intra_only_matrix(self, figure3_order):
        """A matrix whose only column sits on the intra attribute."""
        from repro.factorized.matrix import FactorizedMatrix, FeatureColumn
        col = FeatureColumn("V", "fV", {"v1": 1.0, "v2": 2.0, "v3": 3.0})
        m = FactorizedMatrix(figure3_order, [col])
        ops, slices = dense_clusters(m)
        grams = ops.cluster_grams()
        for g, xi in enumerate(slices):
            np.testing.assert_allclose(grams[g], xi.T @ xi)

    def test_inter_only_columns(self, figure3_order):
        """Z restricted to inter attributes only (tuned Z of §3.3.4)."""
        from repro.factorized.matrix import FactorizedMatrix, FeatureColumn
        cols = [FeatureColumn("T", "fT", {"t1": 1.0, "t2": 2.0}),
                FeatureColumn("V", "fV", {"v1": 1.0, "v2": 2.0, "v3": 3.0})]
        m = FactorizedMatrix(figure3_order, cols)
        ops, slices = dense_clusters(m, columns=[0])
        grams = ops.cluster_grams()
        for g, xi in enumerate(slices):
            np.testing.assert_allclose(grams[g], xi.T @ xi)
