"""Tests for counted relations and the §2.2 operators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relational import rowref
from repro.relational.countmap import (CountMap, CountMapError, _VECTOR_MIN,
                                       aggregate_query,
                                       aggregate_query_early, join_all)


@pytest.fixture
def r_ab():
    """The paper's Example 4 relation R = {(a1,b1):1, (a2,b1):2}."""
    return CountMap(("A", "B"), {("a1", "b1"): 1.0, ("a2", "b1"): 2.0})


@pytest.fixture
def t_bc():
    """Example 4's T = {(b1,c1):3, (b1,c2):4}."""
    return CountMap(("B", "C"), {("b1", "c1"): 3.0, ("b1", "c2"): 4.0})


class TestBasics:
    def test_unary(self):
        m = CountMap.unary("A", ["x", "y"])
        assert m[("x",)] == 1.0 and m[("zzz",)] == 0.0

    def test_from_rows_counts_duplicates(self):
        m = CountMap.from_rows(("A",), [("x",), ("x",), ("y",)])
        assert m[("x",)] == 2.0

    def test_width_check(self):
        m = CountMap(("A", "B"))
        with pytest.raises(CountMapError):
            m.add(("only-one",), 1.0)

    def test_duplicate_schema(self):
        with pytest.raises(CountMapError):
            CountMap(("A", "A"))

    def test_total(self, r_ab):
        assert r_ab.total() == 3.0

    def test_reorder(self, r_ab):
        r = r_ab.reorder(("B", "A"))
        assert r[("b1", "a2")] == 2.0
        assert r == r_ab  # equality is order-insensitive

    def test_scale(self, r_ab):
        assert r_ab.scale(2.0)[("a2", "b1")] == 4.0

    def test_as_unary_dict(self):
        assert CountMap.unary("A", ["x"]).as_unary_dict() == {"x": 1.0}
        with pytest.raises(CountMapError):
            CountMap(("A", "B")).as_unary_dict()


class TestJoinMultiply:
    def test_example4_join(self, r_ab, t_bc):
        """Example 4: counts multiply through the join."""
        joined = r_ab.join(t_bc)
        assert joined[("a1", "b1", "c1")] == 3.0
        assert joined[("a1", "b1", "c2")] == 4.0
        assert joined[("a2", "b1", "c1")] == 6.0
        assert joined[("a2", "b1", "c2")] == 8.0

    def test_example4_marginalize(self, r_ab, t_bc):
        """Example 4: ⊕_C partitions by (A,B) and sums counts."""
        q = r_ab.join(t_bc).marginalize("C")
        assert q[("a1", "b1")] == 7.0
        assert q[("a2", "b1")] == 14.0

    def test_disjoint_cartesian(self):
        """Example 3: disjoint schemas give a counted cartesian product."""
        r1 = CountMap.unary("A", ["a1", "a2", "a3"])
        r2 = CountMap.unary("B", ["b1", "b2", "b3"])
        prod = r1.join(r2)
        assert len(prod) == 9
        assert prod.total() == 9.0

    def test_join_drops_unmatched(self):
        left = CountMap(("A",), {("x",): 1.0})
        right = CountMap(("A",), {("y",): 1.0})
        assert len(left.join(right)) == 0

    def test_marginalize_unknown_attribute(self, r_ab):
        with pytest.raises(CountMapError):
            r_ab.marginalize("Z")

    def test_project_keep(self, r_ab):
        assert r_ab.project_keep(["A"]).as_unary_dict() == {"a1": 1.0,
                                                            "a2": 2.0}

    def test_empty_schema_scalar(self, r_ab):
        scalar = r_ab.project_keep([])
        assert scalar.schema == ()
        assert scalar[()] == 3.0


class TestAggregateQueries:
    def test_naive_vs_early(self, r_ab, t_bc):
        """Early marginalization (Example 5) must not change the answer."""
        naive = aggregate_query([r_ab, t_bc], ["A"])
        early = aggregate_query_early([r_ab, t_bc], ["A"])
        assert naive == early
        assert naive[("a1",)] == 7.0
        assert naive[("a2",)] == 14.0

    def test_early_keeps_pending_join_keys(self):
        """Regression: pruning must not kill a join key before its join."""
        pi = CountMap.unary("T", ["t1", "t2"])
        r_d = CountMap.unary("D", ["d1", "d2"])
        r_v = CountMap(("D", "V"), {("d1", "v1"): 1.0, ("d1", "v2"): 1.0,
                                    ("d2", "v3"): 1.0})
        naive = aggregate_query([pi, r_d, r_v], [])
        early = aggregate_query_early([pi, r_d, r_v], [])
        assert naive[()] == early[()] == 6.0

    def test_join_all_requires_input(self):
        with pytest.raises(CountMapError):
            join_all([])

    @given(st.lists(st.tuples(st.sampled_from("ab"), st.sampled_from("xy"),
                              st.integers(1, 3)), min_size=1, max_size=8),
           st.lists(st.tuples(st.sampled_from("xy"), st.sampled_from("pq"),
                              st.integers(1, 3)), min_size=1, max_size=8))
    def test_early_equals_naive_random(self, left_rows, right_rows):
        left = CountMap(("A", "B"))
        for a, b, c in left_rows:
            left.add((a, b), float(c))
        right = CountMap(("B", "C"))
        for b, c, n in right_rows:
            right.add((b, c), float(n))
        for group_by in ([], ["A"], ["A", "C"], ["B"]):
            naive = aggregate_query([left, right], group_by)
            early = aggregate_query_early([left, right], group_by)
            assert naive == early


class TestVectorThresholdBoundary:
    """The `_VECTOR_MIN` dispatch boundary, exactly at and on both sides.

    `CountMap.join`/`marginalize` switch between the plain dict loops and
    the encoded-key kernels at `_VECTOR_MIN` entries; each size below is
    pinned (no hypothesis shrinking past the boundary) so both dispatch
    arms are provably exercised against the frozen row-path loops.
    """

    SIZES = [_VECTOR_MIN - 1, _VECTOR_MIN, _VECTOR_MIN + 1]

    @staticmethod
    def _map_of_size(schema, n, draw_count, key_of):
        out = CountMap(schema)
        for i in range(n):
            out.add(key_of(i), float(draw_count(i)))
        return out

    @pytest.mark.parametrize("n", SIZES)
    @given(data=st.data())
    def test_join_at_boundary(self, n, data):
        # Left size is pinned at/around the threshold; the right side is
        # small, so dispatch is decided purely by the pinned size.
        counts = data.draw(st.lists(st.integers(1, 9), min_size=n,
                                    max_size=n))
        left = self._map_of_size(
            ("A", "B"), n, lambda i: counts[i],
            lambda i: (f"a{i}", f"b{i % 5}"))
        right = CountMap(("B", "C"),
                         {(f"b{j}", f"c{j}"): float(j + 1)
                          for j in range(data.draw(st.integers(0, 5)))})
        assert left.join(right) == rowref.countmap_join(left, right)
        assert right.join(left) == rowref.countmap_join(right, left)

    @pytest.mark.parametrize("n", SIZES)
    @given(data=st.data())
    def test_marginalize_at_boundary(self, n, data):
        counts = data.draw(st.lists(st.integers(1, 9), min_size=n,
                                    max_size=n))
        cm = self._map_of_size(
            ("A", "B", "C"), n, lambda i: counts[i],
            lambda i: (f"a{i % 7}", f"b{i % 11}", i))
        for attribute in ("A", "B", "C"):
            assert cm.marginalize(attribute) \
                == rowref.countmap_marginalize(cm, attribute)

    @pytest.mark.parametrize("n", SIZES)
    def test_cartesian_join_at_boundary(self, n):
        left = CountMap.unary("A", [f"a{i}" for i in range(n)])
        right = CountMap.unary("B", ["b0", "b1"])
        assert left.join(right) == rowref.countmap_join(left, right)
