"""Fault-injection and chaos suite for the robustness layer.

Exercises every registered fault point (``pool.submit``, ``pool.result``,
``shm.attach``, ``worker.build``, ``kernel.dispatch``, ``cache.fill``,
``ingest.commit``, ``serving.rebuild``) and pins the recovery contracts:

* the :mod:`repro.robustness.faultinject` registry itself (spec grammar,
  deterministic hit selection, cross-process ``@once`` tokens, the
  ``REPTILE_FAULTS`` environment path, clean teardown);
* the supervised :class:`~repro.relational.shard.ShardWorkerPool`
  (retry + salvage on task errors, respawn after crashes, per-task
  deadlines, ``PoolFailure`` after the budget, serial fallback keeping
  builds bitwise-equal, no leaked shared-memory segments — ever);
* kernel-backend quarantine (a raising fused tier serves plain, the
  quarantine is visible and liftable);
* atomic ingest (a failed commit leaves version, cube, fingerprints and
  cache exactly at the last good snapshot, and the same delta applies
  cleanly afterwards);
* degraded-mode serving (failed ingest answers 503 + ``degraded: true``
  while reads keep serving the old snapshot, recovery through
  foreground and background rebuilds, per-request deadlines);
* 32 seeded chaos schedules — concurrent read/ingest traffic under
  randomly placed faults — asserting the availability invariants: no
  non-degraded 5xx, full recovery, no leaked segments, and the served
  cube bitwise-equal to the row-at-a-time rebuild oracle.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro.robustness.faultinject as fi
from repro import (Delta, HierarchicalDataset, Relation, Reptile,
                   ReptileConfig, Schema, dimension, measure)
from repro import kernels
from repro.kernels import plain as plain_kernels
from repro.relational import deltaref
from repro.relational.cube import Cube
from repro.relational.shard import (PoolFailure, ShardedCube,
                                    ShardWorkerPool, leaked_segments,
                                    shutdown_worker_pools)
from repro.robustness.faultinject import (FaultInjected, faults,
                                          parse_spec)
from repro.serving.health import (DEGRADED, HEALTHY, REBUILDING,
                                  HealthRegistry, IngestFailure)
from repro.serving.server import ServerApp
from repro.serving.service import ExplanationService

SCHEMA = Schema([dimension("district"), dimension("village"),
                 dimension("year"), measure("sev")])
HIERARCHIES = {"geo": ["district", "village"], "time": ["year"]}

ROWS = [
    ("d0", "d0-v0", 2000, 1.5),
    ("d1", "d1-v0", 2000, 2.0),
    ("d0", "d0-v1", 2001, -0.5),
    ("d2", "d2-v0", 2001, 4.0),
    ("d1", "d1-v1", 2000, 0.25),
    ("d0", "d0-v0", 2001, 3.0),
    ("d2", "d2-v1", 2000, 8.0),
    ("d1", "d1-v0", 2001, 1.0),
    ("d2", "d2-v0", 2000, 2.5),
    ("d0", "d0-v1", 2000, 0.75),
]

CONFIG = ReptileConfig(n_em_iterations=2, top_k=2)


def _dataset(rows=ROWS) -> HierarchicalDataset:
    return HierarchicalDataset.build(
        Relation.from_rows(SCHEMA, rows), HIERARCHIES, "sev")


def _assert_cubes_bitwise(actual: Cube, expected: Cube) -> None:
    assert np.array_equal(actual._key_codes, expected._key_codes)
    for name in ("count", "total", "sumsq"):
        assert np.array_equal(getattr(actual.leaf_stats, name),
                              getattr(expected.leaf_stats, name)), name


@pytest.fixture(autouse=True)
def _clean_faults():
    """Every test starts and ends fault-free (token files removed)."""
    fi.clear_faults()
    yield
    fi.clear_faults()


# A picklable worker task with its own fault point exposure: forked pool
# workers inherit specs installed before the pool's first submit.
def _double(x: int) -> int:
    fi.fault_point("worker.build", task=x)
    return 2 * x


# ---------------------------------------------------------------------------
# The fault registry itself


class TestFaultSpecs:
    def test_parse_spec_roundtrip(self):
        specs = parse_spec("cache.fill=error:OSError@2,5; "
                           "pool.submit=delay:0.01;worker.build=crash@once")
        assert [s.point for s in specs] == ["cache.fill", "pool.submit",
                                           "worker.build"]
        assert specs[0].kind == "error" and specs[0].arg == "OSError"
        assert specs[0].hits == (2, 5)
        assert specs[1].kind == "delay" and specs[1].arg == "0.01"
        assert specs[1].hits is None and not specs[1].once
        assert specs[2].kind == "crash" and specs[2].once
        assert specs[2].token is not None

    @pytest.mark.parametrize("bad", [
        "nokind", "p=wat", "p=delay:abc", "p=error@0", "p=error@x",
        "=error",
    ])
    def test_parse_spec_rejects_bad_grammar(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)

    def test_fires_only_on_chosen_invocations(self):
        fi.inject("cache.fill", kind="error", hits=(2,))
        fi.fault_point("cache.fill")  # invocation 1: clean
        with pytest.raises(FaultInjected):
            fi.fault_point("cache.fill")  # invocation 2: fires
        fi.fault_point("cache.fill")  # invocation 3: clean again
        assert fi.fired_counts() == {"cache.fill": 1}

    def test_named_builtin_exception(self):
        fi.inject("ingest.commit", kind="error", arg="OSError")
        with pytest.raises(OSError):
            fi.fault_point("ingest.commit")

    def test_once_fires_a_single_time(self):
        fi.inject("cache.fill", kind="error", once=True)
        with pytest.raises(FaultInjected):
            fi.fault_point("cache.fill")
        for _ in range(5):
            fi.fault_point("cache.fill")  # token claimed: never again
        assert fi.fired_counts() == {"cache.fill": 1}

    def test_faults_context_restores_clean_state(self):
        with faults("cache.fill=error"):
            with pytest.raises(FaultInjected):
                fi.fault_point("cache.fill")
        fi.fault_point("cache.fill")  # clean after the context
        assert fi.fired_counts() == {}

    def test_env_spec_crashes_fresh_process(self):
        """REPTILE_FAULTS drives processes that never saw install()."""
        env = dict(os.environ,
                   REPTILE_FAULTS="worker.build=crash",
                   PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.robustness.faultinject import fault_point; "
             "fault_point('worker.build')"],
            env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
            capture_output=True)
        assert proc.returncode == fi.CRASH_EXIT_CODE

    def test_clear_faults_neutralizes_set_env_var(self, monkeypatch):
        monkeypatch.setenv(fi.ENV_VAR, "cache.fill=error")
        with pytest.raises(FaultInjected):
            fi.fault_point("cache.fill")
        fi.clear_faults()
        fi.fault_point("cache.fill")  # var still set, but neutralized


# ---------------------------------------------------------------------------
# Supervised worker pool


class TestSupervisedPool:
    def _pool(self, **kw) -> ShardWorkerPool:
        kw.setdefault("task_timeout", 30.0)
        kw.setdefault("backoff_base", 0.001)
        kw.setdefault("backoff_cap", 0.002)
        return ShardWorkerPool(2, **kw)

    def test_task_error_is_retried_and_salvaged(self):
        pool = self._pool()
        try:
            fi.inject("worker.build", kind="error", once=True)
            assert pool.run_tasks(_double, [(i,) for i in range(4)]) == \
                [0, 2, 4, 6]
            assert pool.respawns == 0  # an exception does not kill workers
            assert pool.retried_tasks >= 1
            assert pool.task_failures >= 1
        finally:
            pool.shutdown()
        assert pool.leaked_at_shutdown == []

    def test_worker_crash_respawns_pool(self):
        pool = self._pool()
        try:
            fi.inject("worker.build", kind="crash", once=True)
            assert pool.run_tasks(_double, [(i,) for i in range(4)]) == \
                [0, 2, 4, 6]
            assert pool.respawns >= 1
            assert pool.alive()
        finally:
            pool.shutdown()

    def test_deadline_terminates_stuck_worker(self):
        pool = self._pool()
        try:
            fi.inject("worker.build", kind="delay", arg="30", once=True)
            t0 = time.monotonic()
            assert pool.run_tasks(_double, [(i,) for i in range(3)],
                                  timeout=0.5) == [0, 2, 4]
            assert time.monotonic() - t0 < 10.0  # never waited the 30s out
            assert pool.respawns >= 1  # the stuck worker was terminated
            assert any("deadline" in f for f in [pool.last_error or ""])
        finally:
            pool.shutdown()

    def test_budget_exhaustion_raises_poolfailure_then_recovers(self):
        pool = self._pool(retry_budget=1)
        try:
            fi.inject("worker.build", kind="error")  # every invocation
            with pytest.raises(PoolFailure) as err:
                pool.run_tasks(_double, [(0,), (1,)])
            assert err.value.failures  # per-attempt history travels along
            fi.clear_faults()
            # Workers forked before clear_faults inherited the spec;
            # respawn so fresh forks see the cleared registry.
            pool._respawn()
            assert pool.run_tasks(_double, [(5,)]) == [10]
        finally:
            pool.shutdown()

    def test_pool_failure_falls_back_to_bitwise_serial_build(self):
        dataset = _dataset()
        pool = self._pool(retry_budget=0)
        try:
            fi.inject("worker.build", kind="error")
            sc = ShardedCube(dataset, n_shards=3, workers=2, pool=pool)
            assert "fallback" in sc.timings
            _assert_cubes_bitwise(sc, Cube(dataset))
            health = sc.pool_health()
            assert health["last_build_fallback"]
            assert health["task_failures"] >= 1
        finally:
            pool.shutdown()
        assert pool.leaked_at_shutdown == []

    def test_no_segments_leak_after_injected_crash(self, tmp_path):
        """Regression: a worker crash mid-build must not leak segments.

        Checks both the in-process registry and the filesystem: every
        name the build registered is released even though a worker died
        between pack and release, so ``/dev/shm`` (or the tempdir, for
        the mmap fallback) holds nothing of ours afterwards.
        """
        shm_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
        before = set(os.listdir(shm_dir)) if shm_dir else set()
        dataset = _dataset()
        pool = self._pool()
        try:
            fi.inject("worker.build", kind="crash", once=True)
            sc = ShardedCube(dataset, n_shards=3, workers=2, pool=pool)
            _assert_cubes_bitwise(sc, Cube(dataset))
        finally:
            pool.shutdown()
        assert pool.leaked_at_shutdown == []
        assert leaked_segments() == []
        if shm_dir:
            assert set(os.listdir(shm_dir)) - before == set()


# ---------------------------------------------------------------------------
# Kernel-backend quarantine


class TestKernelQuarantine:
    @pytest.fixture(autouse=True)
    def _restore_backend(self):
        original = kernels.backend_name()
        yield
        kernels.clear_quarantine()
        kernels.set_backend(original)

    def test_raising_backend_is_quarantined_and_plain_serves(self):
        kernels.set_backend("numpy")
        combined = np.array([3, 1, 3, 0], dtype=np.int64)
        expected = plain_kernels.group_codes(combined, 4)
        fi.inject("kernel.dispatch", kind="error", hits=(1,))
        got = kernels.group_codes(combined, 4)
        # The injected raise was swallowed; the answer is the plain tier's.
        assert np.array_equal(got[0], expected[0])
        assert np.array_equal(got[1], expected[1])
        quarantined = kernels.quarantined_backends()
        assert "numpy" in quarantined
        assert quarantined["numpy"]["kernel"] == "group_codes"
        assert "quarantined" in kernels.kernel_stats()
        # Later calls skip the fused tier entirely (no more fault hits).
        again = kernels.group_codes(combined, 4)
        assert np.array_equal(again[0], expected[0])
        assert fi.fired_counts() == {"kernel.dispatch": 1}

    def test_set_backend_lifts_quarantine(self):
        kernels.set_backend("numpy")
        fi.inject("kernel.dispatch", kind="error", hits=(1,))
        combined = np.array([1, 0, 1], dtype=np.int64)
        kernels.group_codes(combined, 2)
        assert "numpy" in kernels.quarantined_backends()
        kernels.set_backend("numpy")  # the operator forces it back
        assert "numpy" not in kernels.quarantined_backends()
        got = kernels.group_codes(combined, 2)
        expected = plain_kernels.group_codes(combined, 2)
        assert np.array_equal(got[0], expected[0])


# ---------------------------------------------------------------------------
# Atomic ingest


class TestAtomicIngest:
    def test_failed_commit_rolls_back_to_last_good_snapshot(self):
        engine = Reptile(_dataset(), config=CONFIG)
        v0 = engine.data_version
        oracle0 = deltaref.rebuilt_leaf_states(engine.dataset)
        delta = Delta.from_rows(SCHEMA,
                                appended=[("d3", "d3-v0", 2000, 9.0)])
        fi.inject("ingest.commit", kind="error")
        with pytest.raises(FaultInjected):
            engine.apply_delta(delta)
        fi.clear_faults()
        # Nothing moved: version, relation and cube are the old snapshot.
        assert engine.data_version == v0
        deltaref.assert_groups_equal(engine.cube.leaf_states, oracle0)
        # The identical delta applies cleanly afterwards.
        assert engine.apply_delta(delta) == v0 + 1
        oracle1 = deltaref.rebuilt_leaf_states(engine.dataset)
        deltaref.assert_groups_equal(engine.cube.leaf_states, oracle1)
        assert ("d3", "d3-v0", 2000) in engine.cube.leaf_states

    def test_failed_commit_never_leaves_cache_patched(self):
        service, app = _make_app()
        engine = service.engine("data")
        fp0 = engine.fingerprint
        # Warm the cache so the failing ingest has entries to patch.
        status, _ = _request(app, "POST", "/datasets/data/recommend", REC)
        assert status == 200 and len(service.cache) > 0
        fi.inject("ingest.commit", kind="error")
        with pytest.raises(IngestFailure) as err:
            service.ingest("data", rows=[("d3", "d3-v0", 2000, 9.0)])
        fi.clear_faults()
        assert err.value.data_version == 0
        # Fingerprint rolled back; no entry survives under a new version.
        assert engine.fingerprint == fp0
        versioned = [k for k in service.cache.keys()
                     if isinstance(k, tuple) and len(k) > 1
                     and isinstance(k[1], str) and "@" in k[1]]
        assert versioned == []
        # Recovery: the same delta commits and bumps exactly once.
        info = service.ingest("data", rows=[("d3", "d3-v0", 2000, 9.0)])
        assert info["version"] == 1
        assert not service.health.is_degraded("data")


# ---------------------------------------------------------------------------
# Degraded-mode serving


def _make_app(auto_rebuild=False, request_timeout=None, rows=ROWS):
    service = ExplanationService(config=CONFIG, auto_rebuild=auto_rebuild)
    service.register("data", _dataset(rows))
    app = ServerApp(service, max_concurrent=4, max_queue=32,
                    request_timeout=request_timeout)
    return service, app


def _request(app, method, path, body=None):
    status, _headers, payload = app.dispatch(method, path, body)
    return status, payload


REC = {"aggregate": "mean", "direction": "too_low",
       "coordinates": {"year": 2000}, "group_by": ["year"]}


class TestDegradedServing:
    def test_failed_ingest_serves_degraded_not_500(self):
        service, app = _make_app()
        fi.inject("ingest.commit", kind="error")
        status, payload = _request(app, "POST", "/datasets/data/ingest",
                                   {"rows": [["d3", "d3-v0", 2000, 9.0]]})
        fi.clear_faults()
        assert status == 503
        assert payload["degraded"] is True
        assert payload["data_version"] == 0
        assert payload["retry_after"] >= 1
        # Reads keep answering from the old snapshot, marked degraded.
        status, payload = _request(app, "POST",
                                   "/datasets/data/recommend", REC)
        assert status == 200 and payload["degraded"] is True
        health = service.health.for_dataset("data")
        assert health.state == DEGRADED
        assert health.consecutive_failures == 1

    def test_healthz_reflects_state_machine(self):
        service, app = _make_app()
        status, payload = _request(app, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"
        assert payload["datasets"]["data"]["state"] == HEALTHY
        fi.inject("ingest.commit", kind="error")
        _request(app, "POST", "/datasets/data/ingest",
                 {"rows": [["d3", "d3-v0", 2000, 9.0]]})
        fi.clear_faults()
        status, payload = _request(app, "GET", "/healthz")
        assert status == 200  # healthz never 500s
        assert payload["status"] == "degraded"
        assert payload["degraded_datasets"] == ["data"]
        assert payload["datasets"]["data"]["last_error"]
        assert service.try_rebuild("data")
        status, payload = _request(app, "GET", "/healthz")
        assert payload["status"] == "ok"
        assert payload["datasets"]["data"]["rebuilds"] == 1

    def test_rebuild_failure_backs_off_and_stays_degraded(self):
        service, app = _make_app()
        service.health.backoff_base = 0.01
        fi.inject("ingest.commit", kind="error")
        _request(app, "POST", "/datasets/data/ingest",
                 {"rows": [["d3", "d3-v0", 2000, 9.0]]})
        fi.clear_faults()
        fi.inject("serving.rebuild", kind="error")
        assert not service.try_rebuild("data")
        fi.clear_faults()
        health = service.health.for_dataset("data")
        assert health.state == DEGRADED
        assert health.consecutive_failures == 2
        # Backoff grows with consecutive failures.
        assert service.health.retry_delay("data") > 0.0
        assert service.try_rebuild("data")
        assert health.state == HEALTHY

    def test_background_rebuild_restores_health(self):
        service, app = _make_app(auto_rebuild=True)
        service.health.backoff_base = 0.005
        service.health.backoff_cap = 0.01
        # Fail the ingest, then let the background loop recover alone.
        fi.inject("ingest.commit", kind="error")
        status, _ = _request(app, "POST", "/datasets/data/ingest",
                             {"rows": [["d3", "d3-v0", 2000, 9.0]]})
        assert status == 503
        fi.clear_faults()
        deadline = time.monotonic() + 30.0
        while (service.health.is_degraded("data")
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert not service.health.is_degraded("data")
        assert service.health.for_dataset("data").rebuilds >= 1
        status, payload = _request(app, "POST",
                                   "/datasets/data/recommend", REC)
        assert status == 200 and "degraded" not in payload

    def test_request_deadline_returns_503_with_retry_after(self):
        service, app = _make_app(request_timeout=0.2)
        fi.inject("cache.fill", kind="delay", arg="2.0", hits=(1,))
        t0 = time.monotonic()
        status, payload = _request(app, "POST",
                                   "/datasets/data/recommend", REC)
        assert status == 503
        assert "deadline" in payload["error"]
        assert payload["retry_after"] >= 1
        assert time.monotonic() - t0 < 2.0  # the slot was released early
        # The delayed fill was a one-shot: the retry answers in time.
        fi.clear_faults()
        time.sleep(2.1)  # let the runaway helper thread finish its fill
        status, payload = _request(app, "POST",
                                   "/datasets/data/recommend", REC)
        assert status == 200

    def test_maintenance_endpoints_are_exempt_from_deadline(self):
        service, app = _make_app(request_timeout=0.05)
        fi.inject("ingest.commit", kind="delay", arg="0.3", hits=(1,))
        status, payload = _request(app, "POST", "/datasets/data/ingest",
                                   {"rows": [["d3", "d3-v0", 2000, 9.0]]})
        # Slow but NOT timed out: the commit's outcome stays knowable.
        assert status == 200
        assert payload["version"] == 1


# ---------------------------------------------------------------------------
# Seeded chaos schedules


#: Serving-layer fault menu: (point, kind, arg). Hits are seeded per run.
_SERVING_MENU = [
    ("cache.fill", "error", None),
    ("cache.fill", "error", "OSError"),
    ("cache.fill", "delay", "0.02"),
    ("ingest.commit", "error", None),
    ("ingest.commit", "error", "OSError"),
    ("serving.rebuild", "error", None),
    ("kernel.dispatch", "error", None),
]

#: Pool-layer fault menu. ``once`` specs cross process boundaries.
_POOL_MENU = [
    ("worker.build", "crash", None, True),
    ("worker.build", "error", None, True),
    ("worker.build", "error", "OSError", True),
    ("worker.build", "delay", "30", True),
    ("shm.attach", "error", None, True),
    ("pool.submit", "error", None, False),
    ("pool.result", "error", None, False),
]

_ALLOWED_STATUSES = {200, 400, 409, 503}


class TestChaosSchedules:
    """≥30 seeded fault schedules under concurrent read/ingest traffic."""

    @pytest.mark.parametrize("seed", range(24))
    def test_serving_chaos(self, seed):
        rng = np.random.default_rng(seed)
        service, app = _make_app(auto_rebuild=False)
        responses: list[tuple[str, int, dict]] = []
        resp_lock = threading.Lock()

        def record(tag, status, payload):
            with resp_lock:
                responses.append((tag, status, payload))

        def reader(worker: int, n: int, years: list[int]):
            for j in range(n):
                body = {"aggregate": "mean", "direction": "too_low",
                        "coordinates": {"year": years[j % len(years)]},
                        "group_by": ["year"]}
                record("read", *_request(app, "POST",
                                         "/datasets/data/recommend", body))

        def ingester(n: int):
            for j in range(n):
                row = [f"d{seed % 3}", f"chaos-{seed}-{j}",
                       2000 + (j % 2), float(j) + 0.5]
                record("ingest", *_request(app, "POST",
                                           "/datasets/data/ingest",
                                           {"rows": [row]}))

        # One to two faults per schedule, seeded placement and timing.
        for _ in range(int(rng.integers(1, 3))):
            point, kind, arg = _SERVING_MENU[
                int(rng.integers(len(_SERVING_MENU)))]
            hits = (tuple(int(h) for h in rng.integers(1, 8, size=2))
                    if rng.random() < 0.7 else None)
            fi.inject(point, kind=kind, arg=arg,
                      hits=tuple(sorted(set(hits))) if hits else None)

        years = [2000, 2001]
        threads = [threading.Thread(target=reader, args=(w, 4, years))
                   for w in range(2)]
        threads.append(threading.Thread(target=ingester, args=(3,)))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "chaos traffic deadlocked"
        fi.clear_faults()

        # Availability invariant: every failure is a client error or a
        # degraded/retryable 503 — never a bare 5xx.
        for tag, status, payload in responses:
            assert status in _ALLOWED_STATUSES, (tag, status, payload)
            if status >= 500:
                assert (payload.get("degraded") is True
                        or payload.get("retry_after") is not None), \
                    (tag, status, payload)

        # Recovery: bounded rebuild attempts restore full health.
        rebuild_bumps = 0
        for _ in range(5):
            if not service.health.is_degraded("data"):
                break
            if service.try_rebuild("data"):
                rebuild_bumps += 1
        assert not service.health.is_degraded("data")
        status, payload = _request(app, "POST",
                                   "/datasets/data/recommend", REC)
        assert status == 200 and "degraded" not in payload

        # Atomicity accounting: the version moved once per 200 ingest
        # plus once per recovery rebuild — a failed ingest never bumps.
        engine = service.engine("data")
        ok_ingests = sum(1 for tag, status, _ in responses
                         if tag == "ingest" and status == 200)
        assert engine.data_version == ok_ingests + rebuild_bumps

        # Bitwise oracle: the served cube equals a row-at-a-time rebuild
        # of the relation it claims to serve.
        deltaref.assert_groups_equal(
            engine.cube.leaf_states,
            deltaref.rebuilt_leaf_states(engine.dataset))
        assert leaked_segments() == []

    @pytest.mark.parametrize("seed", range(8))
    def test_pool_chaos(self, seed):
        rng = np.random.default_rng(1000 + seed)
        point, kind, arg, once = _POOL_MENU[seed % len(_POOL_MENU)]
        dataset = _dataset()
        expected = Cube(dataset)
        pool = ShardWorkerPool(2, task_timeout=5.0, retry_budget=2,
                               backoff_base=0.001, backoff_cap=0.002)
        try:
            if once:
                fi.inject(point, kind=kind, arg=arg, once=True)
            else:
                fi.inject(point, kind=kind, arg=arg,
                          hits=(int(rng.integers(1, 4)),))
            sc = ShardedCube(dataset, n_shards=3, workers=2, pool=pool)
            # Pooled-with-retries or serial fallback: bitwise either way.
            _assert_cubes_bitwise(sc, expected)
            fi.clear_faults()
            # The pool (or its respawned successor) still serves rebuilds.
            sc.rebuild()
            _assert_cubes_bitwise(sc, expected)
            health = sc.pool_health()
            assert health["retry_budget"] == 2
        finally:
            pool.shutdown()
        assert pool.leaked_at_shutdown == []
        assert leaked_segments() == []
