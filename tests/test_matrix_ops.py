"""Tests for factorised matrix operations: vectorized == reference == numpy.

This is the central correctness property of §4.2: gram, left and right
multiplication over the f-representation must agree with LAPACK (numpy) on
the materialised matrix, and with the literal Appendix E pseudocode.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.factorized.forder import FactorizationError
from repro.factorized.matrix import (FactorizedMatrix, FeatureColumn,
                                     intercept_column)
from repro.factorized.reference import (reference_gram,
                                        reference_left_multiply,
                                        reference_right_multiply)

from factorized_strategies import matrices


class TestConstruction:
    def test_shape(self, figure3_order):
        m = FactorizedMatrix(figure3_order, [intercept_column(figure3_order)])
        assert m.shape == (6, 1)

    def test_empty_columns_rejected(self, figure3_order):
        with pytest.raises(FactorizationError):
            FactorizedMatrix(figure3_order, [])

    def test_unknown_attribute_rejected(self, figure3_order):
        with pytest.raises(FactorizationError):
            FactorizedMatrix(figure3_order,
                             [FeatureColumn("nope", "f", {})])

    def test_column_indices(self, figure3_order):
        m = FactorizedMatrix(figure3_order, [
            intercept_column(figure3_order),
            FeatureColumn("D", "fD", {"d1": 1.0, "d2": 2.0})])
        assert m.column_indices(["fD"]) == [1]
        with pytest.raises(FactorizationError):
            m.column_indices(["zzz"])

    def test_select_columns(self, figure3_order):
        m = FactorizedMatrix(figure3_order, [
            intercept_column(figure3_order),
            FeatureColumn("D", "fD", {"d1": 1.0, "d2": 2.0})])
        sub = m.select_columns([1])
        assert sub.column_names == ("fD",)
        np.testing.assert_allclose(sub.materialize(),
                                   m.materialize()[:, [1]])

    def test_missing_value_uses_default(self, figure3_order):
        col = FeatureColumn("D", "fD", {"d1": 5.0}, default=-1.0)
        m = FactorizedMatrix(figure3_order, [col])
        dense = m.materialize()[:, 0]
        assert set(dense) == {5.0, -1.0}

    def test_materialize_figure3(self, figure3_order):
        cols = [FeatureColumn("T", "fT", {"t1": 1.0, "t2": 2.0}),
                FeatureColumn("D", "fD", {"d1": 10.0, "d2": 20.0}),
                FeatureColumn("V", "fV", {"v1": 1.0, "v2": 2.0, "v3": 3.0})]
        dense = FactorizedMatrix(figure3_order, cols).materialize()
        np.testing.assert_allclose(dense, [
            [1, 10, 1], [1, 10, 2], [1, 20, 3],
            [2, 10, 1], [2, 10, 2], [2, 20, 3]])


class TestAgainstNumpy:
    @given(matrices())
    def test_gram(self, matrix):
        dense = matrix.materialize()
        np.testing.assert_allclose(matrix.gram(), dense.T @ dense,
                                   rtol=1e-9, atol=1e-9)

    @given(matrices(), st.integers(0, 2 ** 16))
    def test_left_multiply(self, matrix, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(3, matrix.n_rows))
        dense = matrix.materialize()
        np.testing.assert_allclose(matrix.left_multiply(a), a @ dense,
                                   rtol=1e-9, atol=1e-9)

    @given(matrices(), st.integers(0, 2 ** 16))
    def test_right_multiply(self, matrix, seed):
        rng = np.random.default_rng(seed)
        b = rng.normal(size=(matrix.n_cols, 2))
        dense = matrix.materialize()
        np.testing.assert_allclose(matrix.right_multiply(b), dense @ b,
                                   rtol=1e-9, atol=1e-9)

    @given(matrices())
    def test_column_sums(self, matrix):
        np.testing.assert_allclose(matrix.column_sums(),
                                   matrix.materialize().sum(axis=0),
                                   rtol=1e-9, atol=1e-9)

    @given(matrices(), st.integers(0, 2 ** 16))
    def test_right_multiply_vector_shape(self, matrix, seed):
        rng = np.random.default_rng(seed)
        b = rng.normal(size=matrix.n_cols)
        out = matrix.right_multiply(b)
        assert out.shape == (matrix.n_rows,)
        np.testing.assert_allclose(out, matrix.materialize() @ b,
                                   rtol=1e-9, atol=1e-9)


class TestAgainstReference:
    """Vectorized implementations vs the literal Appendix E pseudocode."""

    @given(matrices(max_hierarchies=2, max_attrs=2, max_branch=2))
    def test_gram_reference(self, matrix):
        np.testing.assert_allclose(matrix.gram(), reference_gram(matrix),
                                   rtol=1e-9, atol=1e-9)

    @given(matrices(max_hierarchies=2, max_attrs=2, max_branch=2),
           st.integers(0, 2 ** 16))
    def test_left_reference(self, matrix, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(2, matrix.n_rows))
        np.testing.assert_allclose(matrix.left_multiply(a),
                                   reference_left_multiply(matrix, a),
                                   rtol=1e-9, atol=1e-9)

    @given(matrices(max_hierarchies=2, max_attrs=2, max_branch=2),
           st.integers(0, 2 ** 16))
    def test_right_reference(self, matrix, seed):
        rng = np.random.default_rng(seed)
        b = rng.normal(size=(matrix.n_cols, 2))
        np.testing.assert_allclose(matrix.right_multiply(b),
                                   reference_right_multiply(matrix, b),
                                   rtol=1e-9, atol=1e-9)


class TestShapeChecks:
    def test_left_wrong_width(self, figure3_order):
        m = FactorizedMatrix(figure3_order, [intercept_column(figure3_order)])
        with pytest.raises(ValueError):
            m.left_multiply(np.ones((1, 5)))

    def test_right_wrong_height(self, figure3_order):
        m = FactorizedMatrix(figure3_order, [intercept_column(figure3_order)])
        with pytest.raises(ValueError):
            m.right_multiply(np.ones((3, 1)))
