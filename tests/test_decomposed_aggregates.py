"""Tests for TOTAL/COUNT/COF: closed forms vs naive join-aggregation."""

import pytest
from hypothesis import given

from repro.factorized.aggregates import (CrossCOF, DecomposedAggregates,
                                         PairCOF)
from repro.factorized.factorizer import Factorizer
from repro.factorized.forder import FactorizationError

from factorized_strategies import attribute_orders


def naive_counts(order):
    """COUNT/TOTAL/COF computed by brute force over materialised rows."""
    rows = Factorizer(order).materialized_rows()
    attrs = order.attributes
    pos = {a: i for i, a in enumerate(attrs)}

    def suffix_rows(a):
        """Distinct sub-rows of the suffix matrix from attribute a."""
        i = pos[a]
        return [r[i:] for r in rows]

    counts = {}
    totals = {}
    for a in attrs:
        suffix = suffix_rows(a)
        distinct = set(suffix)
        totals[a] = len(distinct)
        per_value = {}
        for s in distinct:
            per_value[s[0]] = per_value.get(s[0], 0) + 1
        counts[a] = per_value
    cofs = {}
    for i, a in enumerate(attrs):
        for b in attrs[i + 1:]:
            suffix = set(suffix_rows(a))
            pair_counts = {}
            off = pos[b] - pos[a]
            for s in suffix:
                key = (s[0], s[off])
                pair_counts[key] = pair_counts.get(key, 0) + 1
            cofs[(a, b)] = pair_counts
    return counts, totals, cofs


class TestClosedForms:
    def test_figure4_values(self, figure3_order):
        """The worked aggregation results of Figure 4 (adapted shapes)."""
        agg = DecomposedAggregates(figure3_order)
        assert agg.total("T") == 6
        assert agg.count("D") == {"d1": 2.0, "d2": 1.0}
        cof_tv = agg.cof("T", "V")
        assert isinstance(cof_tv, CrossCOF)
        assert cof_tv[("t1", "v2")] == 1.0
        cof_dv = agg.cof("D", "V")
        assert isinstance(cof_dv, PairCOF)
        assert cof_dv[("d1", "v1")] == 1.0
        assert cof_dv[("d1", "v3")] == 0.0

    def test_cof_requires_order(self, figure3_order):
        agg = DecomposedAggregates(figure3_order)
        with pytest.raises(FactorizationError):
            agg.cof("V", "T")

    def test_cross_cof_weighted_sum(self, figure3_order):
        import numpy as np
        agg = DecomposedAggregates(figure3_order)
        cof = agg.cof("T", "D")
        f_t = np.asarray([1.0, 2.0])
        f_d = np.asarray([10.0, 20.0])
        expected = sum(cof[(t, d)] * ft * fd
                       for t, ft in zip(["t1", "t2"], f_t)
                       for d, fd in zip(["d1", "d2"], f_d))
        assert cof.weighted_sum(f_t, f_d) == pytest.approx(expected)

    @given(attribute_orders())
    def test_counts_match_naive(self, order):
        agg = DecomposedAggregates(order)
        counts, totals, _ = naive_counts(order)
        for a in order.attributes:
            assert agg.total(a) == pytest.approx(totals[a])
            assert {k: pytest.approx(v) for k, v in agg.count(a).items()} \
                == counts[a]

    @given(attribute_orders())
    def test_cofs_match_naive(self, order):
        agg = DecomposedAggregates(order)
        _, _, cofs = naive_counts(order)
        attrs = order.attributes
        for i, a in enumerate(attrs):
            for b in attrs[i + 1:]:
                got = agg.cof(a, b)
                expected = cofs[(a, b)]
                materialized = {k: v for k, v in got.materialize().items()
                                if v != 0}
                assert materialized.keys() == expected.keys()
                for k in expected:
                    assert materialized[k] == pytest.approx(expected[k])

    @given(attribute_orders(max_hierarchies=2))
    def test_all_pairs_cover_everything(self, order):
        pairs = DecomposedAggregates(order).all_pairs()
        d = order.n_attributes
        assert len(pairs) == d * (d - 1) // 2

    @given(attribute_orders())
    def test_grand_total_is_n_rows(self, order):
        assert DecomposedAggregates(order).grand_total() == order.n_rows
