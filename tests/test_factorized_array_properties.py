"""Property tests: array-native factorized path ≡ frozen dict oracle.

The code-indexed aggregate planners, the drill-down unit recombination,
and the feature-array matrix/cluster builds must reproduce the pre-array
dict pipeline (frozen in ``repro.factorized.reference``) **exactly** —
same key sets, bitwise-equal counts and feature values. The strategies
deliberately cover the paper-shaped corner cases: NaN domain values
(distinct objects, each its own key), mixed-type domains (``1`` vs
``1.0`` vs ``True`` merge under one code, like dict keys), values shared
across parents (the ==-merge path), and single-leaf hierarchies.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factorized import ops
from repro.factorized.cluster_ops import ClusterOps
from repro.factorized.drilldown import DrilldownEngine
from repro.factorized.factorizer import Factorizer
from repro.factorized.forder import AttributeOrder, HierarchyPaths
from repro.factorized.matrix import (FactorizedMatrix, FeatureColumn,
                                     intercept_column)
from repro.factorized.multiquery import (combine_units, hierarchy_unit,
                                         lmfao_plan, shared_plan)
from repro.factorized.reference import (assert_aggregate_sets_equal,
                                        dict_path_matrix,
                                        reference_cluster_tables,
                                        reference_combine_units,
                                        reference_hierarchy_unit,
                                        reference_lmfao_plan,
                                        reference_shared_plan)
from repro.relational import rowref
from repro.relational.countmap import CountMap, EncodedCountMap


# -- strategies ----------------------------------------------------------------------
def _ancestor_pool(name: str, level: int) -> list:
    """Mixed-type candidate values for one ancestor level.

    Small on purpose: equal values recur under different parents (the
    ==-merge path), ints/bools/floats collide cross-type (1 == True), and
    one NaN object is shared across paths (one code) while staying
    unequal to itself (its own dict key).
    """
    pool: list = [f"{name}{level}v0", f"{name}{level}v1", level,
                  float(level) + 0.5, _NAN_POOL[level % len(_NAN_POOL)]]
    if level == 1:
        pool.append(True)  # ==-collides with int 1
    return pool


_NAN_POOL = [float("nan"), float("nan")]


@st.composite
def rich_hierarchies(draw, name: str, max_attrs: int = 3,
                     max_leaves: int = 8) -> HierarchyPaths:
    """Hierarchies over NaN / mixed-type / duplicated-ancestor domains."""
    n_attrs = draw(st.integers(1, max_attrs))
    n_leaves = draw(st.integers(1, max_leaves))
    paths = []
    for i in range(n_leaves):
        anc = tuple(draw(st.sampled_from(_ancestor_pool(name, level)))
                    for level in range(n_attrs - 1))
        kind = draw(st.sampled_from(["str", "int", "float", "nan"]))
        leaf = {"str": f"{name}L{i}", "int": 1000 + i,
                "float": i + 0.25, "nan": float("nan")}[kind]
        paths.append(anc + (leaf,))
    attrs = [f"{name}_a{k}" for k in range(n_attrs)]
    return HierarchyPaths(name, attrs, paths)


@st.composite
def tree_hierarchies(draw, name: str, max_attrs: int = 3,
                     max_branch: int = 3) -> HierarchyPaths:
    """FD-clean hierarchies (every prefix restrictable) with mixed-type
    and NaN values — level values are unique, so truncating to any depth
    keeps the leaf → ancestors dependency intact."""
    n_attrs = draw(st.integers(1, max_attrs))
    paths = [()]
    for level in range(n_attrs):
        branching = draw(st.integers(1, max_branch))
        new = []
        for p in paths:
            for _ in range(branching):
                i = len(new)
                kind = draw(st.sampled_from(["str", "int", "float", "nan"]))
                value = {"str": f"{name}{level}n{i}",
                         "int": level * 1000 + i,
                         "float": level * 1000 + i + 0.5,
                         "nan": float("nan")}[kind]
                new.append(p + (value,))
        paths = new
    attrs = [f"{name}_a{k}" for k in range(n_attrs)]
    return HierarchyPaths(name, attrs, paths)


@st.composite
def rich_orders(draw, max_hierarchies: int = 3) -> AttributeOrder:
    n_h = draw(st.integers(1, max_hierarchies))
    return AttributeOrder([draw(rich_hierarchies(f"h{i}"))
                           for i in range(n_h)])


@st.composite
def rich_matrices(draw, max_hierarchies: int = 3) -> FactorizedMatrix:
    """A rich order plus random columns, including constant columns."""
    order = draw(rich_orders(max_hierarchies))
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 16)))
    cols = [intercept_column(order)]
    for attr in order.attributes:
        dom = order.ordered_domain(attr)
        cols.append(FeatureColumn(
            attr, f"f_{attr}",
            {v: float(x) for v, x in zip(dom, rng.standard_normal(len(dom)))}))
        if draw(st.booleans()):
            # Constant column via the empty-mapping fast path.
            cols.append(FeatureColumn(attr, f"c_{attr}", {},
                                      default=float(rng.standard_normal())))
    return FactorizedMatrix(order, cols)


# -- aggregate planners --------------------------------------------------------------
class TestPlannersMatchDictOracle:
    @given(rich_orders())
    def test_shared_plan_exact(self, order):
        factorizer = Factorizer(order)
        assert_aggregate_sets_equal(shared_plan(factorizer),
                                    reference_shared_plan(factorizer))

    @settings(max_examples=25)
    @given(rich_orders(max_hierarchies=2))
    def test_lmfao_plan_exact(self, order):
        factorizer = Factorizer(order)
        assert_aggregate_sets_equal(lmfao_plan(factorizer),
                                    reference_lmfao_plan(factorizer))

    @given(rich_hierarchies("solo", max_attrs=3))
    def test_hierarchy_unit_exact(self, paths):
        got = hierarchy_unit(paths)
        want = reference_hierarchy_unit(paths)
        assert got.h_total == want.h_total
        assert got.within_counts.keys() == want.within_counts.keys()
        for a in want.within_counts:
            assert got.within_counts[a].as_unary_dict() \
                == want.within_counts[a].as_unary_dict()
        assert got.within_cofs.keys() == want.within_cofs.keys()
        for pair in want.within_cofs:
            assert got.within_cofs[pair] == want.within_cofs[pair]

    @given(rich_orders(max_hierarchies=3))
    def test_combine_units_any_rotation(self, order):
        array_units = {h.name: hierarchy_unit(h) for h in order.hierarchies}
        dict_units = {h.name: reference_hierarchy_unit(h)
                      for h in order.hierarchies}
        names = [h.name for h in order.hierarchies]
        rotated = names[1:] + names[:1]
        assert_aggregate_sets_equal(
            combine_units([array_units[n] for n in rotated]),
            reference_combine_units([dict_units[n] for n in rotated]))


class TestDrilldownMatchesDictOracle:
    @settings(max_examples=20)
    @given(tree_hierarchies("A"), tree_hierarchies("B"))
    def test_candidates_and_commit(self, a, b):
        array_engine = DrilldownEngine([a, b], mode="dynamic")
        oracle_engine = DrilldownEngine(
            [a, b], mode="dynamic", builder=reference_hierarchy_unit,
            combiner=reference_combine_units)
        for name in array_engine.candidates():
            assert_aggregate_sets_equal(
                array_engine.evaluate_candidate(name),
                oracle_engine.evaluate_candidate(name))
        assert_aggregate_sets_equal(array_engine.current_aggregates(),
                                    oracle_engine.current_aggregates())
        if array_engine.candidates():
            drilled = array_engine.candidates()[0]
            array_engine.drill(drilled)
            oracle_engine.drill(drilled)
            assert_aggregate_sets_equal(array_engine.current_aggregates(),
                                        oracle_engine.current_aggregates())


# -- feature arrays / matrix build ---------------------------------------------------
class TestMatrixBitwiseEqualsDictPath:
    @given(rich_matrices())
    def test_feature_arrays_bitwise(self, matrix):
        clone = dict_path_matrix(matrix)
        for ci in range(matrix.n_cols):
            np.testing.assert_array_equal(matrix.domain_features(ci),
                                          clone.domain_features(ci))
        for hi in range(len(matrix.order.hierarchies)):
            np.testing.assert_array_equal(matrix.leaf_features(hi),
                                          clone.leaf_features(hi))

    @given(rich_matrices(), st.integers(0, 2 ** 16))
    def test_ops_bitwise(self, matrix, seed):
        rng = np.random.default_rng(seed)
        clone = dict_path_matrix(matrix)
        np.testing.assert_array_equal(ops.gram(matrix), ops.gram(clone))
        a = rng.normal(size=(2, matrix.n_rows))
        np.testing.assert_array_equal(ops.left_multiply(matrix, a),
                                      ops.left_multiply(clone, a))
        b = rng.normal(size=(matrix.n_cols, 2))
        np.testing.assert_array_equal(ops.right_multiply(matrix, b),
                                      ops.right_multiply(clone, b))
        np.testing.assert_array_equal(ops.materialize(matrix),
                                      ops.materialize(clone))
        np.testing.assert_array_equal(ops.column_sums(matrix),
                                      ops.column_sums(clone))

    @given(rich_matrices(max_hierarchies=2))
    def test_cluster_tables_bitwise(self, matrix):
        cops = ClusterOps(matrix)
        inter, intra = reference_cluster_tables(
            matrix, cops.columns, cops._inter_pos, cops._intra_pos,
            cops.n_clusters)
        np.testing.assert_array_equal(cops._inter_values, inter)
        np.testing.assert_array_equal(cops._intra_rows, intra)

    def test_constant_column_fast_path(self, figure3_order):
        col = intercept_column(figure3_order)
        assert col.mapping == {}  # O(1) memory, not {v: 1.0 for v in dom}
        dom = figure3_order.ordered_domain("V")
        np.testing.assert_array_equal(col.feature_array(dom),
                                      np.ones(len(dom)))
        # Memoized per domain object, and equal to the per-value loop.
        assert col.feature_array(dom) is col.feature_array(dom)
        other = FeatureColumn("V", "c", {}, default=-2.5)
        np.testing.assert_array_equal(
            other.feature_array(dom),
            np.asarray([other.feature_of(v) for v in dom]))

    def test_feature_array_matches_feature_of_with_nan_domain(self):
        nan = float("nan")
        dom = ["x", nan, 1, 1.0, True, float("nan")]
        col = FeatureColumn("a", "f", {"x": 1.5, nan: 2.5, 1: 3.5},
                            default=-1.0)
        got = col.feature_array(dom)
        want = np.asarray([col.feature_of(v) for v in dom])
        np.testing.assert_array_equal(got, want)
        # The shared NaN object hits its mapping entry; the fresh one
        # falls to the default — exactly like dict lookups.
        assert got[1] == 2.5 and got[5] == -1.0


# -- encoded counted relations over arbitrary (non-hierarchy) data -------------------
@st.composite
def encoded_and_dict_maps(draw, attrs: tuple[str, ...], max_keys: int = 30):
    """An EncodedCountMap and its dict twin over a mixed-type domain."""
    domains = [[f"{a}{j}" for j in range(3)] + [7, 7.5] for a in attrs]
    n = draw(st.integers(0, max_keys))
    data: dict = {}
    for _ in range(n):
        key = tuple(draw(st.sampled_from(d)) for d in domains)
        data[key] = data.get(key, 0.0) + float(draw(st.integers(1, 9)))
    cm = CountMap(attrs, data)
    return EncodedCountMap.from_countmap(cm, domains), cm


class TestEncodedCountMapKernels:
    @given(encoded_and_dict_maps(("a", "b")), encoded_and_dict_maps(("b", "c")))
    def test_join_matches_dict(self, left, right):
        el, dl = left
        er, dr = right
        # Distinct domain list objects force the cross-domain remap path.
        assert el.join(er) == dl.join(dr)

    @given(encoded_and_dict_maps(("a", "b", "c")),
           st.sampled_from(["a", "b", "c"]))
    def test_marginalize_matches_dict(self, maps, attribute):
        em, dm = maps
        assert em.marginalize(attribute) == dm.marginalize(attribute)
        assert em.total() == pytest.approx(dm.total())

    def test_join_radix_overflow_falls_back_to_dense_reencode(self):
        # Five shared attributes with 2^13-value domains: the mixed-radix
        # key space (2^65) overflows int64, forcing the row-wise unique
        # re-encode path. Results must still match the dict loops exactly.
        attrs = ("a", "b", "c", "d", "e")
        domains = [list(range(8192)) for _ in attrs]
        left = EncodedCountMap(
            attrs, domains,
            [np.asarray([1, 8000, 17], dtype=np.int32) for _ in attrs],
            np.asarray([2.0, 3.0, 5.0]))
        right = EncodedCountMap(
            attrs, domains,
            [np.asarray([8000, 2, 1], dtype=np.int32) for _ in attrs],
            np.asarray([7.0, 11.0, 13.0]))
        got = left.join(right)
        want = rowref.countmap_join(left.to_countmap(), right.to_countmap())
        assert got == want
        assert got[(1,) * 5] == 2.0 * 13.0 and got[(8000,) * 5] == 3.0 * 7.0

    @given(encoded_and_dict_maps(("a", "b")))
    def test_roundtrip_and_accessors(self, maps):
        em, dm = maps
        assert em.to_countmap() == dm
        assert em.reorder(("b", "a")) == dm.reorder(("b", "a"))
        for key in list(dm.data)[:5]:
            assert em[key] == dm[key]
        assert em[("absent", "absent")] == 0.0
        scalar = em.project_keep([])
        assert scalar.total() == pytest.approx(dm.total())
