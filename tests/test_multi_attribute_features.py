"""Tests for multi-attribute features (Appendix H, within-hierarchy case)."""

import numpy as np
import pytest

from repro.factorized import (AttributeOrder, FactorizedMatrix,
                              FactorizationError, HierarchyPaths,
                              multi_attribute_column)


@pytest.fixture
def order():
    geo = HierarchyPaths("geo", ["D", "V"],
                         [("d1", "v1"), ("d1", "v2"), ("d2", "v3")])
    time = HierarchyPaths("time", ["T"], [("t1",), ("t2",)])
    return AttributeOrder([time, geo])


class TestMultiAttributeColumn:
    def test_reduces_to_deepest_attribute(self, order):
        mapping = {("d1", "v1"): 10.0, ("d1", "v2"): 20.0,
                   ("d2", "v3"): 30.0}
        col = multi_attribute_column(order, ["D", "V"], "ext", mapping)
        assert col.attribute == "V"
        assert col.mapping == {"v1": 10.0, "v2": 20.0, "v3": 30.0}

    def test_attribute_order_in_keys_respected(self, order):
        mapping = {("v1", "d1"): 7.0}
        col = multi_attribute_column(order, ["V", "D"], "ext", mapping,
                                     default=-1.0)
        assert col.mapping["v1"] == 7.0
        assert col.mapping["v2"] == -1.0

    def test_matrix_integration(self, order):
        mapping = {("d1", "v1"): 1.0, ("d1", "v2"): 2.0, ("d2", "v3"): 3.0}
        col = multi_attribute_column(order, ["D", "V"], "ext", mapping)
        matrix = FactorizedMatrix(order, [col])
        dense = matrix.materialize()
        # Rows: (t, d, v) in row order; value = mapping[(d, v)].
        expected = []
        for t in ("t1", "t2"):
            expected.extend([1.0, 2.0, 3.0])
        np.testing.assert_allclose(dense[:, 0], expected)
        # Operators keep working (they see an ordinary column).
        np.testing.assert_allclose(matrix.gram(), dense.T @ dense)

    def test_missing_combinations_use_default(self, order):
        col = multi_attribute_column(order, ["D", "V"], "ext",
                                     {("d1", "v1"): 5.0}, default=0.5)
        assert col.mapping["v3"] == 0.5

    def test_single_attribute_degenerates(self, order):
        col = multi_attribute_column(order, ["D"], "ext",
                                     {("d1",): 1.0, ("d2",): 2.0})
        assert col.attribute == "D"
        assert col.mapping == {"d1": 1.0, "d2": 2.0}

    def test_cross_hierarchy_rejected(self, order):
        with pytest.raises(FactorizationError, match="dense path"):
            multi_attribute_column(order, ["T", "V"], "bad", {})

    def test_empty_attributes_rejected(self, order):
        with pytest.raises(FactorizationError):
            multi_attribute_column(order, [], "bad", {})

    def test_matches_dense_builtfeature(self, order):
        """The factorised reduction equals the dense multi-attr feature."""
        from repro.model.features import BuiltFeature
        mapping = {("d1", "v1"): 1.5, ("d1", "v2"): 2.5, ("d2", "v3"): 3.5}
        col = multi_attribute_column(order, ["D", "V"], "ext", mapping)
        built = BuiltFeature("ext", ("D", "V"), dict(mapping))
        matrix = FactorizedMatrix(order, [col])
        dense = matrix.materialize()[:, 0]
        view_attrs = ("T", "D", "V")
        for r in range(order.n_rows):
            key = order.row_key(r)
            assert dense[r] == pytest.approx(
                built.value_for(view_attrs, key))
