"""Property tests: vectorized kernels ≡ naive row-at-a-time reference.

Every hot operation of the columnar core — group-by, leaf-cube build,
roll-up (with and without provenance filters), natural join, distinct,
sort, filter, and the §2.2 counted-relation operators — is checked for
exact agreement with the frozen loops in ``repro.relational.rowref`` on
random relations (mixed string/int domains, duplicate rows, empty
results). Counts and measures are integer-valued so float sums are
order-independent and equality can be exact.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (Cube, CountMap, HierarchicalDataset, Relation,
                              Schema, dimension, measure)
from repro.relational import rowref
from repro.relational.cube import StatesMap


# -- strategies ----------------------------------------------------------------------
def _values(prefix: str, size: int):
    """A small mixed domain: strings and ints exercise both factorizers."""
    return st.one_of(
        st.sampled_from([f"{prefix}{i}" for i in range(size)]),
        st.integers(0, size - 1))


@st.composite
def relations(draw, min_rows: int = 0, max_rows: int = 60):
    """Random (a, b, c, x) relations with duplicate-heavy key columns."""
    n = draw(st.integers(min_rows, max_rows))
    schema = Schema([dimension("a"), dimension("b"), dimension("c"),
                     measure("x")])
    rows = [(draw(_values("a", 3)), draw(_values("b", 4)),
             draw(_values("c", 3)), float(draw(st.integers(-50, 50))))
            for _ in range(n)]
    return Relation.from_rows(schema, rows)


@st.composite
def array_relations(draw, max_rows: int = 60):
    """Array-backed relations: the numpy factorization fast path."""
    n = draw(st.integers(0, max_rows))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    schema = Schema([dimension("a"), dimension("b"), measure("x")])
    return Relation(schema, {
        "a": rng.integers(0, 4, n),
        "b": np.array([f"b{i}" for i in range(5)])[rng.integers(0, 5, n)],
        "x": rng.integers(-50, 50, n).astype(float)})


@st.composite
def countmaps(draw, attrs: tuple[str, ...], max_keys: int = 80):
    """Counted relations with integer counts (exact under reordering)."""
    n = draw(st.integers(0, max_keys))
    data = {}
    for _ in range(n):
        key = tuple(draw(_values(a, 3)) for a in attrs)
        data[key] = float(draw(st.integers(1, 9)))
    return CountMap(attrs, data)


def _states_equal(naive: dict, columnar) -> None:
    assert len(naive) == len(columnar)
    for key, state in naive.items():
        got = columnar[key]
        assert (got.count, got.total, got.sumsq) \
            == (state.count, state.total, state.sumsq)


# -- relation operators --------------------------------------------------------------
class TestRelationOps:
    @given(relations(), st.sampled_from([["a"], ["b", "c"], ["a", "b", "c"],
                                         []]))
    def test_group_rows(self, rel, names):
        assert rel.group_rows(names) == rowref.group_rows(rel, names)

    @given(relations(), st.sampled_from([["a"], ["a", "c"]]))
    def test_group_measure(self, rel, names):
        naive = rowref.group_measure(rel, names, "x")
        got = rel.group_measure(names, "x")
        assert set(naive) == set(got)
        for key in naive:
            np.testing.assert_array_equal(naive[key], got[key])

    @given(relations(), st.sampled_from([["a"], ["b", "c"]]))
    def test_group_stats(self, rel, names):
        keys, stats = rel.group_stats(names, "x")
        _states_equal(rowref.group_states(rel, names, "x"),
                      StatesMap(keys, stats))

    @given(relations(), st.sampled_from([{}, {"a": "a0"}, {"a": 1},
                                         {"a": "a0", "b": "b1"},
                                         {"c": "nope"}]))
    def test_filter_equals(self, rel, conditions):
        assert rel.filter_equals(conditions) \
            == rowref.filter_equals(rel, conditions)

    @given(relations(), st.sampled_from([None, ["a"], ["b", "a"],
                                         ["a", "b", "c"]]))
    def test_distinct(self, rel, names):
        assert rel.distinct(names) == rowref.distinct(rel, names)

    @given(relations(), st.sampled_from([None, ["a"], ["x", "a"]]))
    def test_sort(self, rel, names):
        # Exact row order, not just bag equality: both paths must be a
        # stable lexicographic sort — and both must raise on mixed
        # str/int keys.
        try:
            want = list(rowref.sort(rel, names).rows())
        except TypeError:
            with pytest.raises(TypeError):
                rel.sort(names)
            return
        assert list(rel.sort(names).rows()) == want

    @given(relations(max_rows=30), relations(max_rows=30))
    def test_natural_join_full_overlap(self, left, right):
        right = right.project(["a", "b"]).extend("w", [1.0] * len(right))
        assert left.natural_join(right) == rowref.natural_join(left, right)

    @given(relations(max_rows=25))
    def test_natural_join_lookup(self, rel):
        lookup = Relation.from_rows(
            Schema([dimension("b"), measure("w")]),
            [(f"b{i}", float(i)) for i in range(3)] + [(1, 10.0)])
        assert rel.natural_join(lookup) == rowref.natural_join(rel, lookup)

    @given(relations(max_rows=12))
    def test_cartesian_product(self, rel):
        other = Relation.from_rows(Schema([dimension("z")]),
                                   [("z1",), ("z2",), (3,)])
        assert rel.natural_join(other) == rowref.natural_join(rel, other)

    @given(array_relations())
    def test_array_backed_group_and_filter(self, rel):
        assert rel.group_rows(["a", "b"]) == rowref.group_rows(rel,
                                                               ["a", "b"])
        value = rel.column("a")[0] if len(rel) else 0
        assert rel.filter_equals({"a": value}) \
            == rowref.filter_equals(rel, {"a": value})


def test_nan_dimension_values_group_like_row_path():
    # nan != nan: the row engine kept every NaN row its own group, so the
    # encoded path must too (np.unique alone would merge them).
    rel = Relation(Schema([dimension("g"), measure("x")]),
                   {"g": np.array([1.0, np.nan, np.nan]),
                    "x": np.array([1.0, 2.0, 3.0])})
    got = rel.group_rows(["g"])
    want = rowref.group_rows(rel, ["g"])
    # NaN keys are distinct objects on both paths, so compare the group
    # structure rather than dicts (NaN keys never compare equal).
    assert len(got) == len(want) == 3
    assert sorted(got.values()) == sorted(want.values())
    assert got[(1.0,)] == [0]


def test_mixed_numeric_types_preserved_in_derived_relations():
    # 1/True and 2/2.0 share a group code (==-equal, like the old dict
    # keys did), but derived relations must keep the original row
    # objects, not the first-seen domain representative.
    rel = Relation.from_rows(Schema([dimension("k"), measure("x")]),
                             [(1, 1.0), (True, 2.0), (2.0, 3.0), (2, 4.0)])
    rel.encoding("k")  # intern first, as a cube build would
    kept = rel.filter_equals({"k": 1})
    assert kept.column_values("k") == [1, True]
    assert [type(v) for v in kept.column_values("k")] == [int, bool]
    assert [type(v) for v in rel.sort(["x"]).column_values("k")] \
        == [int, bool, float, int]
    # Grouping still merges ==-equal values, exactly like the row path.
    assert len(rel.group_rows(["k"])) == len(rowref.group_rows(rel, ["k"]))


def test_mixed_numeric_distinct_and_concat_preserve_originals():
    rel = Relation.from_rows(Schema([dimension("k"), dimension("b")]),
                             [(1, "b1"), (True, "b2"), (2.0, "b3")])
    rel.encoding("k")
    assert rel.distinct() == rowref.distinct(rel)
    assert list(rel.distinct().rows())[1][0] is True
    # Cross-type merge across two encoded relations' domains: the concat
    # must keep 1.0 a float even though the left domain holds int 1.
    left = Relation(Schema(["k"]), {"k": [1, 2]}).sort(["k"])
    right = Relation(Schema(["k"]), {"k": [1.0, 3.0]}).sort(["k"])
    assert [type(v) for v in left.concat(right).column_values("k")] \
        == [int, int, float, float]


def test_nan_filter_value_matches_nothing():
    rel = Relation(Schema([dimension("g"), measure("x")]),
                   {"g": np.array([1.0, np.nan, 3.0]),
                    "x": np.array([1.0, 2.0, 3.0])})
    stored_nan = rel.column_values("g")[1]
    assert len(rel.filter_equals({"g": stored_nan})) == 0  # nan != nan
    assert len(rowref.filter_equals(rel, {"g": stored_nan})) == 0


def test_lossy_columns_get_distinct_fingerprint_tokens():
    a = Relation(Schema([dimension("k")]), {"k": [1, True]})
    b = Relation(Schema([dimension("k")]), {"k": [1, 1]})
    assert a.content_token("k") != b.content_token("k")


def test_sort_mixed_types_raises_like_row_path():
    rel = Relation.from_rows(Schema([dimension("a")]), [("s",), (1,)])
    with pytest.raises(TypeError):
        rowref.sort(rel, ["a"])
    with pytest.raises(TypeError):
        rel.sort(["a"])


# -- cube ----------------------------------------------------------------------------
class TestCubeEquivalence:
    @staticmethod
    def _dataset(rel):
        return HierarchicalDataset.build(
            rel, {"ha": ["a"], "hb": ["b"], "hc": ["c"]}, "x",
            validate=False)

    @given(relations(min_rows=1))
    def test_leaf_states(self, rel):
        dataset = self._dataset(rel)
        _states_equal(rowref.leaf_states(dataset),
                      Cube(dataset).leaf_states)

    @given(relations(min_rows=1),
           st.sampled_from([("a",), ("b", "c"), ("a", "b", "c"), ()]))
    def test_rollup(self, rel, group_attrs):
        dataset = self._dataset(rel)
        cube = Cube(dataset)
        naive = rowref.rollup_view(rowref.leaf_states(dataset),
                                   dataset.leaf_group_by(), group_attrs)
        _states_equal(naive, cube.view(group_attrs).groups)

    @given(relations(min_rows=1),
           st.sampled_from([{"a": "a0"}, {"b": "b2"}, {"a": 2, "c": "c1"},
                            {"c": "absent"}]))
    def test_filtered_rollup(self, rel, filters):
        dataset = self._dataset(rel)
        cube = Cube(dataset)
        naive = rowref.rollup_view(rowref.leaf_states(dataset),
                                   dataset.leaf_group_by(), ("b",), filters)
        _states_equal(naive, cube.view(("b",), filters).groups)


# -- counted relations ---------------------------------------------------------------
class TestCountMapEquivalence:
    # Key spaces overlap on "b" (shared join attribute) by construction.
    @given(countmaps(("a", "b")), countmaps(("b", "c")))
    def test_join_shared(self, left, right):
        assert left.join(right) == rowref.countmap_join(left, right)

    @given(countmaps(("a",), max_keys=12), countmaps(("c",), max_keys=12))
    def test_join_cartesian(self, left, right):
        assert left.join(right) == rowref.countmap_join(left, right)

    @given(countmaps(("a", "b", "c")), st.sampled_from(["a", "b", "c"]))
    def test_marginalize(self, cm, attribute):
        assert cm.marginalize(attribute) \
            == rowref.countmap_marginalize(cm, attribute)

    @given(countmaps(("a", "b", "c"), max_keys=120))
    def test_marginalize_chain_matches_total(self, cm):
        out = cm.marginalize("a").marginalize("c").marginalize("b")
        assert out.total() == pytest.approx(cm.total())

    @settings(max_examples=10)
    @given(countmaps(("a", "b"), max_keys=200), countmaps(("b", "c"),
                                                          max_keys=200))
    def test_join_large_forces_vectorized_kernel(self, left, right):
        # max_keys above the vectorization threshold: this exercises the
        # encoded kernel even when hypothesis shrinks other examples.
        assert left.join(right) == rowref.countmap_join(left, right)
