"""Tests for HierarchicalDataset, AuxiliaryDataset and the roll-up Cube."""

import numpy as np
import pytest

from repro.relational.aggregates import AggState
from repro.relational.cube import Cube
from repro.relational.dataset import (AuxiliaryDataset, DatasetError,
                                      HierarchicalDataset)
from repro.relational.relation import Relation
from repro.relational.schema import Schema, dimension, measure


class TestDataset:
    def test_build_validates_fds(self):
        rel = Relation.from_rows(
            Schema([dimension("d"), dimension("v"), measure("x")]),
            [("d1", "v1", 1.0), ("d2", "v1", 2.0)])
        with pytest.raises(DatasetError):
            HierarchicalDataset.build(rel, {"geo": ["d", "v"]}, "x")
        # validate=False skips the check (used by error injectors).
        HierarchicalDataset.build(rel, {"geo": ["d", "v"]}, "x",
                                  validate=False)

    def test_missing_measure(self, tiny_relation):
        with pytest.raises(DatasetError):
            HierarchicalDataset.build(tiny_relation, {"h": ["a"]}, "zzz")

    def test_missing_hierarchy_attr(self, tiny_relation):
        with pytest.raises(DatasetError):
            HierarchicalDataset.build(tiny_relation, {"h": ["zzz"]}, "x")

    def test_attribute_domain(self, ofla_dataset):
        assert ofla_dataset.attribute_domain("district") == ["Alaje", "Ofla"]

    def test_attribute_domain_of_filtered_relation(self, ofla_dataset):
        # A derived relation shares (wider) encoding domains; the dataset
        # must report only the values actually present in its rows.
        sub = ofla_dataset.relation.filter_equals({"district": "Ofla"})
        dataset = HierarchicalDataset.build(
            sub, {"geo": ["district", "village"], "time": ["year"]},
            "severity", validate=False)
        assert dataset.attribute_domain("district") == ["Ofla"]

    def test_fd_validation_on_filtered_relation(self):
        # The FD violation (v1 maps to d1 and d2) must still be caught on
        # a derived relation whose shared village domain is wider than
        # the villages present in its rows.
        rel = Relation.from_rows(
            Schema([dimension("d"), dimension("v"), dimension("keep"),
                    measure("x")]),
            [("d1", "v1", 1, 1.0), ("d2", "v1", 1, 2.0),
             ("d1", "v2", 1, 3.0), ("d1", "v3", 1, 4.0),
             ("d1", "v4", 1, 5.0), ("d1", "v5", 0, 6.0)])
        sub = rel.filter_equals({"keep": 1})  # v5 absent, domain keeps it
        with pytest.raises(DatasetError):
            HierarchicalDataset.build(sub, {"geo": ["d", "v"]}, "x")

    def test_leaf_group_by(self, ofla_dataset):
        assert ofla_dataset.leaf_group_by() == ("district", "village", "year")


class TestAuxiliary:
    @pytest.fixture
    def aux(self):
        rel = Relation.from_rows(
            Schema([dimension("village"), measure("rain")]),
            [("Adishim", 100.0), ("Darube", 600.0), ("Darube", 700.0)])
        return AuxiliaryDataset("sensing", rel, join_on=("village",),
                                measures=("rain",))

    def test_lookup_averages_duplicates(self, aux):
        lookup = aux.lookup()
        assert lookup[("Adishim",)]["rain"] == 100.0
        assert lookup[("Darube",)]["rain"] == pytest.approx(650.0)

    def test_registration(self, ofla_dataset, aux):
        ofla_dataset.add_auxiliary(aux)
        assert "sensing" in ofla_dataset.auxiliary
        with pytest.raises(DatasetError):
            ofla_dataset.add_auxiliary(aux)  # duplicate name

    def test_applicability(self, ofla_dataset, aux):
        ofla_dataset.add_auxiliary(aux)
        assert ofla_dataset.applicable_auxiliary(("district", "village")) \
            == [aux]
        assert ofla_dataset.applicable_auxiliary(("district",)) == []

    def test_join_key_must_be_dimension(self, ofla_dataset):
        rel = Relation.from_rows(Schema([dimension("nope"), measure("m")]),
                                 [("x", 1.0)])
        bad = AuxiliaryDataset("bad", rel, join_on=("nope",), measures=("m",))
        with pytest.raises(DatasetError):
            ofla_dataset.add_auxiliary(bad)

    def test_missing_attrs_in_aux_relation(self):
        rel = Relation.from_rows(Schema([dimension("v")]), [("x",)])
        with pytest.raises(DatasetError):
            AuxiliaryDataset("bad", rel, join_on=("v",), measures=("gone",))


class TestCube:
    def test_leaf_states_match_direct_groupby(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        rel = ofla_dataset.relation
        grouped = rel.group_measure(["district", "village", "year"],
                                    "severity")
        assert len(cube.leaf_states) == len(grouped)
        for key, values in grouped.items():
            state = cube.leaf_states[key]
            assert state.count == len(values)
            assert state.mean == pytest.approx(np.mean(values))

    def test_rollup_equals_direct(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        view = cube.view(("district", "year"))
        rel = ofla_dataset.relation
        for key, values in rel.group_measure(["district", "year"],
                                             "severity").items():
            assert view.state(key).count == len(values)
            assert view.state(key).mean == pytest.approx(np.mean(values))
            assert view.state(key).std == pytest.approx(
                np.std(values, ddof=1))

    def test_view_filters_are_provenance(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        view = cube.view(("village",), filters={"district": "Ofla",
                                                "year": 1986})
        rel = ofla_dataset.relation.filter_equals({"district": "Ofla",
                                                   "year": 1986})
        assert set(view.groups) == set(rel.group_rows(["village"]))

    def test_total_equals_parent(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        view = cube.view(("village",), filters={"district": "Ofla"})
        direct = AggState.of(
            ofla_dataset.relation.filter_equals({"district": "Ofla"})
            .measure_array("severity"))
        total = view.total()
        assert total.count == direct.count
        assert total.mean == pytest.approx(direct.mean)
        assert total.std == pytest.approx(direct.std)

    def test_drilldown_view(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        drill = cube.drilldown_view(("year",), "village",
                                    {"district": "Ofla", "year": 1986})
        assert drill.group_attrs == ("year", "village")
        # Only Ofla 1986 provenance.
        years = {k[0] for k in drill.groups}
        assert years == {1986}

    def test_parallel_view_covers_everything(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        parallel = cube.parallel_view(("year",), "village")
        drill = cube.drilldown_view(("year",), "village",
                                    {"district": "Ofla", "year": 1986})
        assert set(drill.groups) <= set(parallel.groups)
        assert len(parallel) > len(drill)

    def test_group_state(self, ofla_dataset):
        cube = Cube(ofla_dataset)
        state = cube.group_state({"district": "Ofla", "year": 1986})
        rel = ofla_dataset.relation.filter_equals({"district": "Ofla",
                                                   "year": 1986})
        assert state.count == len(rel)

    def test_keys_matching_and_coordinates(self, ofla_dataset):
        view = Cube(ofla_dataset).view(("district", "year"))
        keys = view.keys_matching({"district": "Ofla"})
        assert all(k[0] == "Ofla" for k in keys)
        coords = view.coordinates(keys[0])
        assert coords["district"] == "Ofla"

    def test_missing_group_is_empty_state(self, ofla_dataset):
        view = Cube(ofla_dataset).view(("district",))
        assert view.state(("Atlantis",)).is_empty()
