"""Executable documentation: every python snippet in README/docs runs.

The docs-as-tests contract (`make docs-check`): any fenced ```python
block in README.md or docs/*.md must execute top to bottom without
raising. Blocks within one file share a namespace, so later snippets may
build on earlier ones exactly as a reader would run them. Non-runnable
examples belong in ```bash / ```json / ```text fences.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = sorted([ROOT / "README.md", *(ROOT / "docs").glob("*.md")])
FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    return FENCE.findall(path.read_text())


def test_docs_exist_and_have_snippets():
    assert (ROOT / "README.md").exists()
    assert (ROOT / "docs" / "architecture.md").exists()
    assert (ROOT / "docs" / "cli.md").exists()
    assert python_blocks(ROOT / "README.md"), \
        "README.md lost its executable examples"


@pytest.mark.parametrize("path", [p for p in DOC_FILES if p.exists()],
                         ids=lambda p: p.name)
def test_python_snippets_execute(path: Path):
    blocks = python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no python snippets")
    namespace: dict = {"__name__": f"docs_{path.stem}"}
    for i, block in enumerate(blocks):
        code = compile(block, f"{path.name}[snippet {i}]", "exec")
        exec(code, namespace)  # noqa: S102 - the point of the test


def test_readme_documents_tier1_verify():
    text = (ROOT / "README.md").read_text()
    assert "python -m pytest -x -q" in text
    assert "PYTHONPATH=src" in text
