"""Tests for the drill-down engine (§4.4): correctness and work sharing."""

import pytest

from repro.factorized.drilldown import DrilldownEngine
from repro.factorized.factorizer import Factorizer
from repro.factorized.forder import AttributeOrder, FactorizationError
from repro.factorized.multiquery import shared_plan

from factorized_strategies import build_hierarchy
from test_multiquery import assert_aggregate_sets_match


@pytest.fixture
def two_hierarchies():
    a = build_hierarchy("A", 4, [2, 2, 1, 2])
    b = build_hierarchy("B", 4, [2, 1, 2, 2])
    return a, b


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["static", "dynamic", "cache"])
    def test_candidate_matches_scratch(self, two_hierarchies, mode):
        """Every mode must produce the same aggregates as a fresh plan."""
        a, b = two_hierarchies
        engine = DrilldownEngine([a, b], initial_depths={"A": 2, "B": 2},
                                 mode=mode)
        for cand, other in (("A", "B"), ("B", "A")):
            result = engine.evaluate_candidate(cand)
            depth = {cand: 3, other: 2}
            order = AttributeOrder([
                (a if other == "A" else b).restrict(depth[other]),
                (a if cand == "A" else b).restrict(depth[cand])])
            expected = shared_plan(Factorizer(order))
            assert_aggregate_sets_match(order, result)
            assert result.totals.keys() == expected.totals.keys()

    @pytest.mark.parametrize("mode", ["static", "dynamic", "cache"])
    def test_commit_then_current(self, two_hierarchies, mode):
        a, b = two_hierarchies
        engine = DrilldownEngine([a, b], initial_depths={"A": 1, "B": 1},
                                 mode=mode)
        engine.drill("A")
        current = engine.current_aggregates()
        order = AttributeOrder([b.restrict(1), a.restrict(2)])
        assert_aggregate_sets_match(order, current)

    def test_drill_past_leaf_rejected(self, two_hierarchies):
        a, b = two_hierarchies
        engine = DrilldownEngine([a, b], initial_depths={"A": 4, "B": 1})
        with pytest.raises(FactorizationError):
            engine.drill("A")
        with pytest.raises(FactorizationError):
            engine.evaluate_candidate("A")
        assert engine.candidates() == ["B"]

    def test_unknown_hierarchy(self, two_hierarchies):
        engine = DrilldownEngine(two_hierarchies)
        with pytest.raises(FactorizationError):
            engine.evaluate_candidate("Z")

    def test_invalid_mode(self, two_hierarchies):
        with pytest.raises(ValueError):
            DrilldownEngine(two_hierarchies, mode="turbo")

    def test_invalid_initial_depth(self, two_hierarchies):
        with pytest.raises(FactorizationError):
            DrilldownEngine(two_hierarchies, initial_depths={"A": 0, "B": 1})


class TestWorkSharing:
    """The §5.1.3 instrumentation: unit builds per mode."""

    def invocations(self, mode, n=3):
        a = build_hierarchy("A", 6, [2, 1, 2, 1, 2, 1])
        b = build_hierarchy("B", 6, [2, 1, 2, 1, 2, 1])
        engine = DrilldownEngine([a, b], initial_depths={"A": 3, "B": 3},
                                 mode=mode)
        baseline = engine.unit_computations
        counts = []
        for _ in range(n):
            engine.evaluate_all()
            engine.drill("A")
            counts.append(engine.unit_computations - baseline)
            baseline = engine.unit_computations
        return counts

    def test_static_recomputes_everything(self):
        # Per invocation: 2 candidates × 2 hierarchies + nothing reused.
        counts = self.invocations("static")
        assert all(c >= 4 for c in counts)

    def test_dynamic_skips_unchanged_hierarchies(self):
        # Candidate units are built fresh; the other hierarchy's unit is
        # reused, and the commit reuses the evaluated candidate? No —
        # dynamic has no cache, so commit recomputes A's new level.
        counts = self.invocations("dynamic")
        static = self.invocations("static")
        assert sum(counts) < sum(static)

    def test_cache_eliminates_repeat_candidates(self):
        # B stays at depth 3 forever: its candidate unit (depth 4) is
        # computed once in invocation 1 and cached for invocations 2, 3.
        counts = self.invocations("cache")
        assert counts[0] >= 2            # A@4 and B@4 computed
        assert counts[1] == 1            # only A@5 is new
        assert counts[2] == 1            # only A@6 is new

    def test_cache_hits_do_not_grow_with_invocations(self):
        dynamic = self.invocations("dynamic")
        cache = self.invocations("cache")
        assert sum(cache) < sum(dynamic)
