"""Delta-update engine ≡ rebuild-from-scratch oracle (hypothesis).

Every property threads randomly generated append/retract deltas through
the incremental path — ``Cube.apply_delta``, ``Reptile.apply_delta``,
patched serving-cache entries — and asserts *exact* equality against the
frozen row-at-a-time rebuild in :mod:`repro.relational.deltaref`: same
key sets (NaN keys compared by identity-faithful signatures), bitwise
counts, and bitwise totals/sums of squares (measures are dyadic
rationals, so float sums are order-independent and must match bit for
bit). Covered shapes: appends to existing groups, new dimension values,
new leaf paths, NaN dimension keys, retractions (down to emptying groups
and removing whole paths), and drill/ingest interleavings.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (Delta, DeltaError, HierarchicalDataset, Relation, Reptile,
                   ReptileConfig, Schema, dimension, measure)
from repro.factorized import AttributeOrder, Factorizer
from repro.factorized.multiquery import shared_plan
from repro.factorized.reference import assert_aggregate_sets_equal
from repro.relational import deltaref
from repro.relational.cube import Cube
from repro.serving import AggregateCache

SCHEMA = Schema([dimension("district"), dimension("village"),
                 dimension("year"), measure("sev")])
HIERARCHIES = {"geo": ["district", "village"], "time": ["year"]}
CONFIG = ReptileConfig(n_em_iterations=1)

#: One shared NaN object: rows drawn with it form a single group (dict
#: identity semantics), exactly as the row engine grouped them.
NAN = float("nan")

DISTRICTS = ("d0", "d1", "d2")
NEW_DISTRICTS = ("n0", "n1")

# Dyadic measures: every sum is exactly representable, so incremental
# and rebuilt accumulations must agree bitwise.
measures = st.integers(-8, 24).map(lambda v: v / 2.0)


def _village(district: str, i: int) -> str:
    return f"{district}-v{i}"


def _row(draw, districts, village_range, years):
    d = draw(st.sampled_from(districts))
    v = _village(d, draw(st.integers(0, village_range - 1)))
    return (d, v, draw(st.sampled_from(years)), draw(measures))


@st.composite
def evolutions(draw, max_deltas: int = 3, allow_nan: bool = False):
    """A base row set plus a sequence of valid deltas over it."""
    years = [2000, 2001] + ([NAN] if allow_nan else [])
    base = [_row(draw, DISTRICTS, 2, years)
            for _ in range(draw(st.integers(1, 12)))]
    current = list(base)
    deltas = []
    for _ in range(draw(st.integers(1, max_deltas))):
        new_years = years + [2002]
        appends = [_row(draw, DISTRICTS + NEW_DISTRICTS, 4, new_years)
                   for _ in range(draw(st.integers(0, 5)))]
        # Retractions must name matchable rows: draw them from the
        # current contents, skipping NaN-keyed rows (never matchable).
        candidates = [r for r in current if not math.isnan(r[2])]
        n_retract = draw(st.integers(0, min(3, len(candidates))))
        retracts = []
        if n_retract:
            idx = draw(st.lists(
                st.integers(0, len(candidates) - 1), min_size=n_retract,
                max_size=n_retract, unique=True))
            retracts = [candidates[i] for i in idx]
        for r in retracts:
            current.remove(r)
        current.extend(appends)
        if not current:  # keep at least one row so the cube stays valid
            keep = _row(draw, DISTRICTS, 2, [2000])
            appends = appends + [keep]
            current.append(keep)
        deltas.append(Delta.from_rows(SCHEMA, appends, retracts))
    return base, deltas


def _dataset(rows) -> HierarchicalDataset:
    return HierarchicalDataset.build(
        Relation.from_rows(SCHEMA, rows), HIERARCHIES, "sev")


def _rebuilt(base, deltas) -> HierarchicalDataset:
    return deltaref.rebuilt_dataset(_dataset(base), deltas)


def _assert_views_match(cube: Cube, oracle_ds: HierarchicalDataset) -> None:
    """Leaf states and a spread of roll-ups, incl. provenance filters."""
    deltaref.assert_groups_equal(
        cube.leaf_states, deltaref.rebuilt_leaf_states(oracle_ds))
    view_specs = [((), None), (("district",), None), (("year",), None),
                  (("district", "year"), None),
                  (("village", "year"), {"district": "d0"}),
                  (("village",), {"year": 2002}),
                  ((), {"district": "d0"})]
    for attrs, filters in view_specs:
        deltaref.assert_groups_equal(
            cube.view(attrs, filters).groups,
            deltaref.rebuilt_view(oracle_ds, attrs, filters))


@given(evolutions())
def test_cube_apply_delta_matches_rebuild(evolution):
    base, deltas = evolution
    cube = Cube(_dataset(base))
    for delta in deltas:
        cube.apply_delta(delta)
    _assert_views_match(cube, _rebuilt(base, deltas))


@given(evolutions(allow_nan=True))
def test_cube_delta_with_nan_keys_matches_rebuild(evolution):
    base, deltas = evolution
    cube = Cube(_dataset(base))
    for delta in deltas:
        cube.apply_delta(delta)
    oracle_ds = _rebuilt(base, deltas)
    deltaref.assert_groups_equal(
        cube.leaf_states, deltaref.rebuilt_leaf_states(oracle_ds))
    deltaref.assert_groups_equal(
        cube.view(("year",)).groups,
        deltaref.rebuilt_view(oracle_ds, ("year",)))


@given(evolutions())
def test_engine_apply_delta_matches_rebuild(evolution):
    base, deltas = evolution
    engine = Reptile(_dataset(base), config=CONFIG)
    for delta in deltas:
        engine.apply_delta(delta)
    oracle_ds = _rebuilt(base, deltas)
    # Empty deltas are no-ops: the version advances once per real delta.
    assert engine.data_version == sum(1 for d in deltas if not d.is_empty())
    _assert_views_match(engine.cube, oracle_ds)
    # The relation itself evolved: a *fresh* engine over it agrees too.
    rebuilt_rel = deltaref.rebuilt_leaf_states(
        HierarchicalDataset(engine.dataset.relation,
                            engine.dataset.dimensions, "sev"))
    deltaref.assert_groups_equal(Cube(engine.dataset).leaf_states,
                                 rebuilt_rel)


@given(evolutions(max_deltas=2))
def test_session_aggregates_track_deltas(evolution):
    """Decomposed §4.4 aggregates after ingest ≡ a from-scratch plan."""
    base, deltas = evolution
    engine = Reptile(_dataset(base), config=CONFIG)
    session = engine.session(group_by=["district", "year"])
    session.aggregates()  # warm the reusable units pre-delta
    applied = sum(1 for d in deltas if not d.is_empty())
    for delta in deltas:
        engine.apply_delta(delta)
    assert session.is_stale() == (applied > 0)
    got = session.aggregates()  # auto-syncs, re-merging only the touched
    oracle_ds = _rebuilt(base, deltas)
    order = AttributeOrder.from_dataset(
        oracle_ds, hierarchy_order=["geo", "time"],
        depths={"geo": 1, "time": 1})
    assert_aggregate_sets_equal(got, shared_plan(Factorizer(order)))
    assert not session.is_stale()


@given(evolutions(max_deltas=2))
def test_interleaved_drill_and_ingest(evolution):
    """drill → ingest → drill ≡ the same drills on the rebuilt data."""
    base, deltas = evolution
    engine = Reptile(_dataset(base), config=CONFIG)
    session = engine.session(group_by=["district", "year"])
    session.aggregates()
    applied = []
    for i, delta in enumerate(deltas):
        engine.apply_delta(delta)
        applied.append(delta)
        if i == 0:
            session.drill("geo")
        got = session.aggregates()
        fresh = Reptile(_rebuilt(base, applied), config=CONFIG) \
            .session(group_by=["district", "year"])
        if session.state.depths.get("geo") == 2:
            fresh.drill("geo")  # replay the committed drill
        assert_aggregate_sets_equal(got, fresh.aggregates())


@given(evolutions(max_deltas=2))
def test_cached_views_patched_not_rebuilt(evolution):
    """Warm CachingCube views survive ingest bitwise-correct."""
    base, deltas = evolution
    cache = AggregateCache()
    engine = Reptile(_dataset(base), config=CONFIG, cache=cache)
    view_specs = [((), None), (("district", "year"), None),
                  (("village", "year"), {"district": "d0"})]
    for attrs, filters in view_specs:
        engine.cube.view(attrs, filters)  # warm the entries pre-delta
    for delta in deltas:
        engine.apply_delta(delta)
    oracle_ds = _rebuilt(base, deltas)
    misses_before = cache.stats.misses
    for attrs, filters in view_specs:
        deltaref.assert_groups_equal(
            engine.cube.view(attrs, filters).groups,
            deltaref.rebuilt_view(oracle_ds, attrs, filters))
    # Every post-ingest view above was served from a patched/retained
    # entry — no recomputation, hence no new cache misses.
    assert cache.stats.misses == misses_before
    if any(not d.is_empty() for d in deltas):
        assert cache.stats.patched + cache.stats.retained > 0


@given(evolutions())
def test_versioned_fingerprints_never_alias(evolution):
    base, deltas = evolution
    engine = Reptile(_dataset(base), config=CONFIG, cache=AggregateCache())
    seen = {engine.fingerprint}
    for delta in deltas:
        engine.apply_delta(delta)
        if not delta.is_empty():
            assert engine.fingerprint not in seen
        assert engine.cube.fingerprint == engine.fingerprint
        seen.add(engine.fingerprint)
