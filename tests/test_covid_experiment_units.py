"""Unit tests for the COVID experiment's feature builders."""

import statistics

import numpy as np
import pytest

from repro.datagen.covid import COMPLAINT_DAY, us_panel
from repro.experiments.covid import _lag_builder, covid_feature_plan
from repro.relational.cube import Cube


@pytest.fixture(scope="module")
def panel_view():
    rng = np.random.default_rng(3)
    dataset = us_panel(rng, n_days=20)
    view = Cube(dataset).view(("day", "state"))
    return dataset, view


class TestLagBuilder:
    def test_lag1_is_previous_day(self, panel_view):
        dataset, view = panel_view
        mapping = _lag_builder("state", 1)(view, "mean")
        stat = {(k[1], k[0]): view.groups[k].mean for k in view.groups}
        for (state, day), value in mapping.items():
            if (state, day - 1) in stat:
                assert value == pytest.approx(stat[(state, day - 1)])

    def test_missing_lag_falls_back_to_state_median(self, panel_view):
        _, view = panel_view
        mapping = _lag_builder("state", 7)(view, "mean")
        stat = {(k[1], k[0]): view.groups[k].mean for k in view.groups}
        per_state = {}
        for (state, _), v in stat.items():
            per_state.setdefault(state, []).append(v)
        for (state, day), value in mapping.items():
            if (state, day - 7) not in stat:
                assert value == pytest.approx(
                    statistics.median(per_state[state]))

    def test_lag7_captures_weekday_pattern(self, panel_view):
        """Same-weekday lag should correlate strongly with the value."""
        _, view = panel_view
        mapping = _lag_builder("state", 7)(view, "mean")
        stat = {(k[1], k[0]): view.groups[k].mean for k in view.groups}
        xs, ys = [], []
        for key, lagged in mapping.items():
            state, day = key
            if (state, day - 7) in stat:
                xs.append(lagged)
                ys.append(stat[key])
        corr = np.corrcoef(xs, ys)[0, 1]
        assert corr > 0.9

    def test_plan_applies_only_when_attrs_present(self):
        plan = covid_feature_plan("state")
        from repro.relational.cube import GroupView
        view = GroupView(("day",), {})
        for spec in plan.extra_specs:
            assert not spec.applicable(view)
