"""Property tests of the ranker's scoring identity (Problem 1, eq. 3).

The score of a group must equal f_comp of the parent aggregate recomputed
*from scratch* with that group's state replaced by its repaired state —
the incremental `replace` shortcut may not drift from the definition.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.complaint import Complaint, Direction
from repro.core.ranker import score_drilldown
from repro.core.repair import RepairPrediction
from repro.relational.aggregates import AggState, merge_states
from repro.relational.cube import GroupView

group_states = st.lists(
    st.tuples(st.integers(2, 30),
              st.floats(-50, 50, allow_nan=False),
              st.floats(0, 10, allow_nan=False)),
    min_size=2, max_size=8)

predictions = st.tuples(
    st.floats(-50, 50, allow_nan=False),
    st.floats(1, 40, allow_nan=False))


def build_view(specs):
    groups = {}
    for i, (count, mean, std) in enumerate(specs):
        groups[(f"g{i}",)] = AggState.from_stats(count, mean, std)
    return GroupView(("g",), groups)


class TestScoringIdentity:
    @given(group_states, st.sampled_from(["count", "mean", "sum", "std"]),
           st.sampled_from([Direction.TOO_HIGH, Direction.TOO_LOW]))
    def test_score_equals_recomputed_parent(self, specs, aggregate,
                                            direction):
        view = build_view(specs)
        prediction = RepairPrediction(
            ("mean",), {k: {"mean": 1.0} for k in view.groups})
        complaint = Complaint(dict(), aggregate, direction)
        _, scored = score_drilldown(view, prediction, complaint)
        for group in scored:
            # Recompute from scratch: merge all other groups with the
            # repaired one.
            others = [s for k, s in view.groups.items() if k != group.key]
            repaired = prediction.repair_state(group.key,
                                               view.groups[group.key])
            parent = merge_states(others + [repaired])
            assert group.score == pytest.approx(
                complaint.penalty_of_state(parent), rel=1e-9, abs=1e-9)

    @given(group_states)
    def test_identity_prediction_gives_zero_gain(self, specs):
        """Predicting the observed statistics repairs nothing."""
        view = build_view(specs)
        prediction = RepairPrediction(
            ("count", "mean"),
            {k: {"count": s.count, "mean": s.mean}
             for k, s in view.groups.items()})
        complaint = Complaint.too_high({}, "sum")
        base, scored = score_drilldown(view, prediction, complaint)
        for group in scored:
            assert group.margin_gain == pytest.approx(0.0, abs=1e-7)

    @given(group_states, predictions)
    def test_ranking_is_by_score(self, specs, pred):
        view = build_view(specs)
        mean, count = pred
        prediction = RepairPrediction(
            ("count", "mean"),
            {k: {"count": count, "mean": mean} for k in view.groups})
        complaint = Complaint.too_low({}, "sum")
        _, scored = score_drilldown(view, prediction, complaint)
        scores = [g.score for g in scored]
        assert scores == sorted(scores)

    @given(group_states)
    def test_target_complaint_repair_to_truth_is_optimal(self, specs):
        """If one group's count is repaired to make the parent hit the
        target exactly, no other repair can score better."""
        view = build_view(specs)
        parent = merge_states(view.groups.values())
        victim = next(iter(view.groups))
        deficit = 7.0
        target_total = parent.count + deficit
        prediction = RepairPrediction(
            ("count",),
            {k: {"count": s.count + (deficit if k == victim else 0.0)}
             for k, s in view.groups.items()})
        complaint = Complaint.should_be({}, "count", target_total)
        _, scored = score_drilldown(view, prediction, complaint)
        assert scored[0].key == victim
        assert scored[0].score == pytest.approx(0.0, abs=1e-9)

    @given(group_states)
    def test_margin_gain_consistency(self, specs):
        view = build_view(specs)
        prediction = RepairPrediction(
            ("mean",), {k: {"mean": 0.0} for k in view.groups})
        complaint = Complaint.too_high({}, "mean")
        base, scored = score_drilldown(view, prediction, complaint)
        for g in scored:
            assert g.margin_gain == pytest.approx(base - g.score, rel=1e-9,
                                                  abs=1e-9)
