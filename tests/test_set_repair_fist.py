"""The set-repair extension resolves Appendix M's two-district failure.

§5.4's second failed complaint needed two districts fixed *together*.
With two of three districts shifted identically, the pooled mean sits
between the clean and corrupted levels, so the *single* repair that most
reduces the std is moving the CLEAN district toward the corrupted
majority — Appendix M's parabola trap, and the reason the paper's top-1
answer was wrong. Searching over repair *sets* (the appendix's proposed
fix) recovers exactly the two corrupted districts.
"""

import numpy as np
import pytest

from repro.core.complaint import Complaint
from repro.core.ranker import score_drilldown
from repro.core.set_repair import exhaustive_set_repair, greedy_set_repair
from repro.core.session import Reptile, ReptileConfig
from repro.datagen.fist import (ScenarioKind, apply_scenario, make_scenarios,
                                make_world)
from repro.relational.cube import Cube


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(0)
    world = make_world(rng)
    scenario = next(s for s in make_scenarios(world, rng)
                    if s.kind is ScenarioKind.TWO_DISTRICT_STD)
    dataset = apply_scenario(world, scenario, rng)

    engine = Reptile(dataset, config=ReptileConfig(n_em_iterations=8))
    cube = Cube(dataset)
    coords = {"region": scenario.region, "year": scenario.year}
    drill = cube.drilldown_view(("region", "year"), "district", coords)
    parallel = cube.parallel_view(("region", "year"), "district")
    repairer = engine.repairer_for(("region", "year", "district"))
    prediction = repairer.predict(parallel, ("region", "year"), "std")
    complaint = Complaint.too_high(coords, "std")
    corrupted = {scenario.district, scenario.second_district}
    return drill, prediction, complaint, corrupted


def _district(drill, key):
    return key[drill.group_attrs.index("district")]


class TestTwoDistrictResolution:
    def test_single_repair_is_misled(self, case):
        """The best single repair targets the CLEAN district (the trap)."""
        drill, prediction, complaint, corrupted = case
        _, scored = score_drilldown(drill, prediction, complaint)
        top_district = scored[0].coordinates["district"]
        assert top_district not in corrupted

    def test_pair_repair_finds_the_corrupted_pair(self, case):
        drill, prediction, complaint, corrupted = case
        best = exhaustive_set_repair(drill, prediction, complaint,
                                     max_size=2)
        assert {_district(drill, k) for k in best.keys} == corrupted
        assert best.penalty < 0.7 * best.base_penalty

    def test_pair_beats_best_single(self, case):
        drill, prediction, complaint, _ = case
        single = exhaustive_set_repair(drill, prediction, complaint,
                                       max_size=1)
        pair = exhaustive_set_repair(drill, prediction, complaint,
                                     max_size=2)
        assert pair.penalty < single.penalty
        assert pair.margin_gain > 1.1 * single.margin_gain

    def test_greedy_is_not_optimal_here(self, case):
        """Documented limitation: std is not submodular (Appendix M), so
        greedy — whose first step is the misleading clean-district repair —
        cannot beat the exhaustive pair."""
        drill, prediction, complaint, _ = case
        greedy = greedy_set_repair(drill, prediction, complaint,
                                   max_groups=2, min_gain=0.0)
        exact = exhaustive_set_repair(drill, prediction, complaint,
                                      max_size=2)
        assert greedy.penalty >= exact.penalty - 1e-9
