"""Size-bound checks for the f-representation (§2.2, Examples 2–3).

The reason factorisation matters: hierarchical FDs and cross-hierarchy
independence make the f-representation's size linear where the flat
encoding is multiplicative. These tests assert the bounds directly.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.factorized import (AttributeOrder, FactorizedMatrix,
                              FeatureColumn, HierarchyPaths)


def frep_size(matrix: FactorizedMatrix) -> int:
    """Stored feature values in the factorised form."""
    return sum(len(matrix.domain_features(i)) for i in range(matrix.n_cols))


def dense_size(matrix: FactorizedMatrix) -> int:
    n, m = matrix.shape
    return n * m


class TestExample3Independence:
    """Disjoint schemas: join result quadratic, f-representation linear."""

    @given(st.integers(2, 40), st.integers(2, 40))
    def test_cross_product_compression(self, n_a, n_b):
        h1 = HierarchyPaths("a", ["A"], [(f"a{i}",) for i in range(n_a)])
        h2 = HierarchyPaths("b", ["B"], [(f"b{i}",) for i in range(n_b)])
        order = AttributeOrder([h1, h2])
        cols = [FeatureColumn("A", "fA", {f"a{i}": 1.0 for i in range(n_a)}),
                FeatureColumn("B", "fB", {f"b{i}": 1.0 for i in range(n_b)})]
        matrix = FactorizedMatrix(order, cols)
        assert matrix.n_rows == n_a * n_b          # dense is quadratic
        assert frep_size(matrix) == n_a + n_b      # f-rep is linear


class TestExample2FunctionalDependency:
    """Within a hierarchy, parents are stored once per child run."""

    def test_paper_example(self):
        h = HierarchyPaths("h", ["A", "B"],
                           [("a1", "b1"), ("a1", "b2"),
                            ("a2", "b3"), ("a2", "b4")])
        order = AttributeOrder([h])
        cols = [FeatureColumn("A", "fA", {"a1": 1.0, "a2": 2.0}),
                FeatureColumn("B", "fB", {f"b{i}": float(i)
                                          for i in range(1, 5)})]
        matrix = FactorizedMatrix(order, cols)
        # Dense: 4 rows × 2 cols = 8 values; f-rep: 2 + 4 = 6.
        assert dense_size(matrix) == 8
        assert frep_size(matrix) == 6

    @given(st.integers(2, 10), st.integers(2, 10))
    def test_fd_compression_grows_with_fanout(self, n_parents, fanout):
        paths = [(f"p{i}", f"c{i}_{j}")
                 for i in range(n_parents) for j in range(fanout)]
        h = HierarchyPaths("h", ["P", "C"], paths)
        order = AttributeOrder([h])
        cols = [
            FeatureColumn("P", "fP", {f"p{i}": 1.0
                                      for i in range(n_parents)}),
            FeatureColumn("C", "fC", {f"c{i}_{j}": 1.0
                                      for i in range(n_parents)
                                      for j in range(fanout)})]
        matrix = FactorizedMatrix(order, cols)
        assert dense_size(matrix) == 2 * n_parents * fanout
        assert frep_size(matrix) == n_parents + n_parents * fanout


class TestMultiHierarchyBound:
    @given(st.lists(st.integers(2, 8), min_size=2, max_size=5))
    def test_exponential_vs_additive(self, cards):
        hierarchies = [
            HierarchyPaths(f"h{i}", [f"A{i}"],
                           [(f"h{i}v{j}",) for j in range(c)])
            for i, c in enumerate(cards)]
        order = AttributeOrder(hierarchies)
        cols = [FeatureColumn(f"A{i}", f"f{i}",
                              {f"h{i}v{j}": 1.0 for j in range(c)})
                for i, c in enumerate(cards)]
        matrix = FactorizedMatrix(order, cols)
        product = 1
        for c in cards:
            product *= c
        assert matrix.n_rows == product
        assert frep_size(matrix) == sum(cards)
        # The compression ratio is the claim of Figure 7.
        assert dense_size(matrix) // frep_size(matrix) >= \
            product * len(cards) // (sum(cards) + 1) // 2
