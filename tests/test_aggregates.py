"""Tests for the distributive aggregate states and merge function G.

Includes hypothesis property tests of the Appendix A identities: merging
partial states of any partition must reproduce the statistics of the
concatenated data.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relational.aggregates import (AggState, AggregateError,
                                         decompose, evaluate_composite,
                                         merge_states)

values_lists = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
              allow_infinity=False),
    min_size=0, max_size=30)


class TestAggState:
    def test_of_values(self):
        s = AggState.of([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.sum == 6.0
        assert s.mean == 2.0
        assert s.std == pytest.approx(np.std([1, 2, 3], ddof=1))

    def test_empty(self):
        s = AggState()
        assert s.is_empty()
        assert s.mean == 0.0 and s.std == 0.0

    def test_singleton_has_zero_std(self):
        assert AggState.of([5.0]).std == 0.0

    def test_statistic_lookup(self):
        s = AggState.of([1.0, 3.0])
        assert s.statistic("mean") == 2.0
        assert s.statistic("count") == 2.0
        assert s.statistic("var") == pytest.approx(2.0)
        with pytest.raises(AggregateError):
            s.statistic("median")

    def test_from_stats_round_trip(self):
        s = AggState.of([2.0, 4.0, 9.0])
        back = AggState.from_stats(s.count, s.mean, s.std)
        assert back.count == s.count
        assert back.mean == pytest.approx(s.mean)
        assert back.std == pytest.approx(s.std)


class TestMergeG:
    def test_merge_two(self):
        left = AggState.of([1.0, 2.0])
        right = AggState.of([3.0])
        merged = left.merge(right)
        direct = AggState.of([1.0, 2.0, 3.0])
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.std == pytest.approx(direct.std)

    def test_add_operator(self):
        assert (AggState.of([1.0]) + AggState.of([2.0])).count == 2

    def test_remove_inverse(self):
        whole = AggState.of([1.0, 2.0, 3.0, 4.0])
        part = AggState.of([2.0, 4.0])
        rest = whole.remove(part)
        direct = AggState.of([1.0, 3.0])
        assert rest.count == direct.count
        assert rest.mean == pytest.approx(direct.mean)
        assert rest.std == pytest.approx(direct.std)

    def test_replace_is_eq3(self):
        whole = AggState.of([1.0, 2.0, 3.0])
        old = AggState.of([3.0])
        new = AggState.of([30.0])
        repaired = whole.replace(old, new)
        assert repaired.mean == pytest.approx(np.mean([1.0, 2.0, 30.0]))

    @given(values_lists, values_lists, values_lists)
    def test_g_matches_concatenation(self, a, b, c):
        """Appendix A: F(R) == G(F(R_1), ..., F(R_J)) for any partition."""
        merged = merge_states([AggState.of(a), AggState.of(b), AggState.of(c)])
        direct = AggState.of(a + b + c)
        assert merged.count == direct.count
        assert merged.sum == pytest.approx(direct.sum, rel=1e-9, abs=1e-7)
        if direct.count:
            assert merged.mean == pytest.approx(direct.mean, rel=1e-9,
                                                abs=1e-7)
        if direct.count > 1:
            assert merged.var == pytest.approx(direct.var, rel=1e-6,
                                               abs=1e-5)

    @given(values_lists, values_lists)
    def test_g_commutative(self, a, b):
        ab = AggState.of(a).merge(AggState.of(b))
        ba = AggState.of(b).merge(AggState.of(a))
        assert ab == ba

    @given(values_lists, values_lists, values_lists)
    def test_g_associative(self, a, b, c):
        sa, sb, sc = AggState.of(a), AggState.of(b), AggState.of(c)
        left = sa.merge(sb).merge(sc)
        right = sa.merge(sb.merge(sc))
        assert left.count == right.count
        assert left.total == pytest.approx(right.total, rel=1e-12, abs=1e-9)
        assert left.sumsq == pytest.approx(right.sumsq, rel=1e-12, abs=1e-9)


class TestRepairs:
    def test_repair_count_keeps_mean_std(self):
        s = AggState.of([4.0, 6.0, 8.0])
        repaired = s.with_statistic("count", 6.0)
        assert repaired.count == 6.0
        assert repaired.mean == pytest.approx(s.mean)
        assert repaired.std == pytest.approx(s.std)

    def test_repair_mean_keeps_count_std(self):
        s = AggState.of([4.0, 6.0, 8.0])
        repaired = s.with_statistic("mean", 10.0)
        assert repaired.mean == pytest.approx(10.0)
        assert repaired.count == 3.0
        assert repaired.std == pytest.approx(s.std)

    def test_repair_sum_adjusts_mean(self):
        s = AggState.of([1.0, 3.0])
        repaired = s.with_statistic("sum", 10.0)
        assert repaired.mean == pytest.approx(5.0)
        assert repaired.count == 2.0

    def test_repair_std(self):
        s = AggState.of([1.0, 5.0, 9.0])
        repaired = s.with_statistic("std", 1.0)
        assert repaired.std == pytest.approx(1.0)
        assert repaired.mean == pytest.approx(s.mean)

    def test_repair_negative_count_clamped(self):
        s = AggState.of([1.0])
        assert s.with_statistic("count", -3.0).count == 0.0

    def test_unknown_statistic(self):
        with pytest.raises(AggregateError):
            AggState.of([1.0]).with_statistic("mode", 1.0)

    @given(values_lists.filter(lambda v: len(v) > 1),
           st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_repaired_mean_exact(self, values, target):
        repaired = AggState.of(values).with_statistic("mean", target)
        assert repaired.mean == pytest.approx(target, abs=1e-6)


class TestComposites:
    def test_decompose(self):
        assert decompose("sum") == ("mean", "count")
        assert decompose("count") == ("count",)
        with pytest.raises(AggregateError):
            decompose("p99")

    def test_evaluate_sum(self):
        s = AggState.of([1.0, 2.0, 3.0])
        assert evaluate_composite("sum", s) == pytest.approx(6.0)
        assert evaluate_composite("mean", s) == pytest.approx(2.0)

    def test_sum_is_mean_times_count(self):
        """Footnote 3's identity."""
        s = AggState.of([2.0, 4.0, 9.0])
        assert evaluate_composite("sum", s) == pytest.approx(s.mean * s.count)

    def test_pooled_std_identity(self):
        """The G_std formula of Appendix A against numpy, explicitly."""
        a, b = [1.0, 2.0, 6.0], [4.0, 8.0]
        sa, sb = AggState.of(a), AggState.of(b)
        merged = sa.merge(sb)
        expected = math.sqrt(
            ((sa.count - 1) * sa.var + (sb.count - 1) * sb.var
             + sa.count * (merged.mean - sa.mean) ** 2
             + sb.count * (merged.mean - sb.mean) ** 2)
            / (merged.count - 1))
        assert merged.std == pytest.approx(expected)
        assert merged.std == pytest.approx(np.std(a + b, ddof=1))
