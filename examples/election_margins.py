"""Election margin analysis (Appendix N): auxiliary data explains outliers.

Complains that the focus state's Trump share is too low and compares the
per-county margin gains under two models:

* model 1 — default main-effect features only: flags plain share outliers;
* model 2 — plus the 2016 results as auxiliary features: counties whose
  low 2020 share matches their 2016 lean are *explained away*; the gains
  now track the 2020−2016 swing and the total-vote weight.

Run:  python examples/election_margins.py
"""

import numpy as np

from repro.experiments.vote import run_study


def main() -> None:
    study = run_study(seed=3, n_iterations=10)
    world = study.world
    state = world.focus_state
    swing = study.swing()
    print(f"Focus state {state}: {len(world.counties[state])} counties")

    print("\ncounty       share16  share20   swing    gain(m1)   gain(m2)")
    for county in sorted(world.counties[state]):
        print(f"{county:<12s} {world.share_2016[county]:7.3f} "
              f"{world.share_2020[county]:8.3f} {swing[county]:+8.3f}"
              f" {study.model1.margin_gain.get(county, 0.0):10.3f}"
              f" {study.model2.margin_gain.get(county, 0.0):10.3f}")

    print(f"\nmodel 1 top-3 recommendations: {study.model1.top(3)}")
    print(f"model 2 top-3 recommendations: {study.model2.top(3)}")
    print(f"corr(model-2 gain, negative swing): "
          f"{study.gain_swing_correlation():.3f}")

    print(f"\nAfter injecting missing ballot batches into "
          f"{study.missing_counties}:")
    shifts = []
    for county in study.missing_counties:
        before = study.model2.margin_gain.get(county, 0.0)
        after = study.model2_missing.margin_gain.get(county, 0.0)
        shifts.append(abs(after - before))
        print(f"  {county}: gain {before:8.3f} -> {after:.3f}")
    others = [abs(study.model2_missing.margin_gain.get(c, 0.0)
                  - study.model2.margin_gain.get(c, 0.0))
              for c in swing if c not in set(study.missing_counties)]
    print(f"mean |gain shift|: affected={np.mean(shifts):.3f} "
          f"vs others={np.mean(others):.3f} — the COUNT model notices the "
          f"missing records (Figure 18i).")


if __name__ == "__main__":
    main()
