"""Factorised matrix machinery in action (§3.4, §4.2).

Builds a multi-hierarchy factorised matrix, shows the size asymmetry
between the f-representation and the materialised matrix, verifies the
operators against numpy, and times gram-matrix computation both ways.

Run:  python examples/factorized_speedups.py
"""

import time

import numpy as np

from repro.datagen.perf import flat_hierarchies, random_feature_matrix
from repro.factorized import (AttributeOrder, DecomposedAggregates,
                              Factorizer, shared_plan)


def main() -> None:
    rng = np.random.default_rng(1)
    order = AttributeOrder(flat_hierarchies(5, 10))  # 10^5 rows, 5 columns
    matrix = random_feature_matrix(order, rng)
    n, m = matrix.shape
    print(f"Matrix shape: {n} x {m}")
    f_size = sum(len(matrix.domain_features(i)) for i in range(m))
    print(f"f-representation stores {f_size} feature values "
          f"vs {n * m} dense entries ({n * m / f_size:.0f}x smaller)")

    start = time.perf_counter()
    gram_f = matrix.gram()
    t_f = time.perf_counter() - start

    dense = matrix.materialize()
    start = time.perf_counter()
    gram_d = dense.T @ dense
    t_d = time.perf_counter() - start
    assert np.allclose(gram_f, gram_d)
    print(f"gram matrix: factorized {t_f * 1e3:.2f} ms vs "
          f"numpy-on-dense {t_d * 1e3:.2f} ms "
          f"({t_d / t_f:.0f}x, identical results)")

    # Decomposed aggregates: the counting structure behind every operator.
    agg = DecomposedAggregates(order)
    a0 = order.attributes[0]
    print(f"\nTOTAL_{a0} = {agg.total(a0):.0f}; "
          f"COUNT_{a0} has {len(agg.count(a0))} entries; "
          f"cross-hierarchy COFs stay rank-1 (never materialised).")

    plan = shared_plan(Factorizer(order))
    lazy = sum(1 for cof in plan.cofs.values()
               if type(cof).__name__ == "CrossCOF")
    print(f"The shared multi-query plan produced {len(plan.cofs)} COFs, "
          f"{lazy} of them lazy cartesian products.")


if __name__ == "__main__":
    main()
