"""FIST-style drought study: iterative drill-down with auxiliary data.

Recreates the §5.4 workflow on the simulated Ethiopia panel: a complaint
at the (region, year) level, a first drill-down to districts, then a
second complaint at the district level drilling to villages — with
satellite rainfall as the auxiliary predictive signal (§3.3.2).

Run:  python examples/drought_study.py
"""

import numpy as np

from repro import Complaint, Reptile, ReptileConfig
from repro.datagen.fist import (ScenarioKind, apply_scenario,
                                make_scenarios, make_world)


def main() -> None:
    rng = np.random.default_rng(42)
    world = make_world(rng)
    print(f"Simulated panel: {world.dataset}")
    print(f"Auxiliary datasets: {sorted(world.dataset.auxiliary)}")

    # Pick a misremembered-drought scenario: one district reported a severe
    # year as mild.
    scenario = next(s for s in make_scenarios(world, rng)
                    if s.kind is ScenarioKind.MISREMEMBER)
    dataset = apply_scenario(world, scenario, rng)
    print(f"\nInjected scenario: {scenario.kind.value} in "
          f"{scenario.district}, year {scenario.year} "
          f"(complaint: {scenario.aggregate} too {scenario.direction})")

    engine = Reptile(dataset, config=ReptileConfig(n_em_iterations=10))

    # --- Step 1: region-level complaint, drill to districts -------------
    session = engine.session(group_by=["region", "year"])
    coords = {"region": scenario.region, "year": scenario.year}
    complaint = Complaint.too_low(coords, "mean")
    rec = session.recommend(complaint, k=3)
    print(f"\nStep 1 — complaint at {coords}: recommend drilling "
          f"{rec.best_hierarchy!r}")
    for g in rec.ranked("geo"):
        print(f"  district={g.coordinates['district']:<10s} "
              f"observed mean={g.observed['mean']:5.2f} "
              f"expected={g.expected['mean']:5.2f} "
              f"margin gain={g.margin_gain:6.3f}")
    top_district = rec.best_group.coordinates["district"]
    assert top_district == scenario.district
    print(f"=> drill into district {top_district!r}")

    # --- Step 2: district-level complaint, drill to villages ------------
    session.drill("geo", coordinates=coords)
    session.filters["district"] = top_district
    complaint2 = Complaint.too_low(dict(coords, district=top_district),
                                   "mean")
    rec2 = session.recommend(complaint2, k=5)
    print(f"\nStep 2 — drilling {rec2.best_hierarchy!r} "
          f"(villages of {top_district}):")
    for g in rec2.ranked("geo"):
        print(f"  village={g.coordinates['village']:<14s} "
              f"observed mean={g.observed['mean']:5.2f} "
              f"expected={g.expected['mean']:5.2f} "
              f"margin gain={g.margin_gain:6.3f}")
    gains = [g.margin_gain for g in rec2.ranked("geo")]
    print(f"\nmax village-level margin gain: {max(gains):.3f} (vs "
          f"{rec.best_group.margin_gain:.3f} for the district in step 1)")
    print("No single village stands out once the district-year cluster is "
          "accounted for: the under-reporting is district-wide, exactly "
          "what the step-1 diagnosis said. The analyst fixes the survey "
          "year for the whole district.")


if __name__ == "__main__":
    main()
