"""COVID-19 data-quality triage: Reptile vs deletion/density baselines.

Simulates the §5.3 setting: a JHU-shaped daily-counts panel with one
injected reporting issue, a complaint about the national total on the
affected day, and lag features (1 and 7 days, Appendix L) as predictive
signals. Shows why deletion-based (Sensitivity) and density-based
(Support) explanations fail on under-reporting errors.

Run:  python examples/covid_explorer.py
"""

import numpy as np

from repro.baselines import SensitivityBaseline, SupportBaseline
from repro.core import Complaint, Reptile, ReptileConfig
from repro.datagen.covid import COMPLAINT_DAY, US_ISSUES, apply_issue, us_panel
from repro.experiments.covid import covid_feature_plan


def main() -> None:
    rng = np.random.default_rng(7)
    issue = US_ISSUES[5]  # "Montana missing reports" — a small state
    dataset = apply_issue(us_panel(rng), issue, "state")
    print(f"Injected issue {issue.issue_id}: {issue.description} "
          f"on day {COMPLAINT_DAY}")

    engine = Reptile(dataset, feature_plan=covid_feature_plan("state"),
                     config=ReptileConfig(n_em_iterations=10))
    session = engine.session(group_by=["day"])
    complaint = Complaint.too_low({"day": COMPLAINT_DAY}, "sum")
    print(f"Complaint: national total on day {COMPLAINT_DAY} is too low")

    rec = session.recommend(complaint, k=5)
    print("\nReptile's top states (repair-based ranking):")
    for g in rec.ranked("location"):
        print(f"  {g.coordinates['state']:<15s} observed="
              f"{g.observed['mean']:9.0f} expected={g.expected['mean']:9.0f}"
              f"  margin gain={g.margin_gain:10.0f}")
    top = rec.best_group.coordinates["state"]
    print(f"=> Reptile: {top!r} "
          f"({'correct' if top == issue.location else 'incorrect'})")

    drill_view = engine.cube.drilldown_view(
        session.group_by, "state", session.provenance(complaint))
    state_pos = drill_view.group_attrs.index("state")
    for name, baseline in (("Sensitivity (deletion)", SensitivityBaseline()),
                           ("Support (density)", SupportBaseline())):
        best = baseline.best(drill_view, complaint)
        verdict = "correct" if best[state_pos] == issue.location \
            else "incorrect"
        print(f"=> {name}: {best[state_pos]!r} ({verdict})")

    print("\nDeletion can only lower the national total further, so "
          "Sensitivity falls back to the least-harmful deletion (the "
          "smallest state); Support just returns the biggest state. "
          "Neither can express \"this state is missing records\" — "
          "which is exactly why repair-based ranking is needed.")


if __name__ == "__main__":
    main()
