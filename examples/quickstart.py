"""Quickstart: find a planted data error with one complaint.

Builds a small drought-survey dataset (Example 1's shape: districts →
villages × years), plants a systematic under-reporting error in one
village, submits a "mean severity is too low" complaint about the
affected district-year, and lets Reptile recommend where to drill.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (Complaint, HierarchicalDataset, Relation, Reptile,
                   ReptileConfig, Schema, dimension, measure)


def build_dataset(rng: np.random.Generator) -> HierarchicalDataset:
    """Farmer-reported severity per (district, village, year)."""
    villages = {"Ofla": ["Adishim", "Darube", "Dinka", "Fala", "Zata"],
                "Alaje": ["Bora", "Chelena", "Dela", "Emba"]}
    rows = []
    for district, names in villages.items():
        for village in names:
            for year in range(1984, 1990):
                drought = 3.0 if year == 1986 else 0.0
                level = 5.0 + drought + rng.normal(0, 0.3)
                for _ in range(int(rng.integers(6, 12))):
                    severity = float(np.clip(level + rng.normal(0, 0.8),
                                             1, 10))
                    # The planted error: Zata's 1986 reports are ~4 points
                    # too low (farmers misremembered the drought year).
                    if village == "Zata" and year == 1986:
                        severity = max(1.0, severity - 4.0)
                    rows.append((district, village, year, severity))
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    relation = Relation.from_rows(schema, rows)
    return HierarchicalDataset.build(
        relation, {"geo": ["district", "village"], "time": ["year"]},
        measure="severity")


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = build_dataset(rng)
    print(dataset)

    engine = Reptile(dataset, config=ReptileConfig(n_em_iterations=10))

    # The analyst looks at annual statistics for Ofla and notices 1986's
    # mean severity looks too low given the drought they remember.
    session = engine.session(group_by=["year"], filters={"district": "Ofla"})
    print("\nAnnual view for Ofla:")
    view = session.view()
    for key in sorted(view.groups):
        coords = view.coordinates(key)
        state = view.groups[key]
        print(f"  {coords['year']}: mean={state.mean:5.2f} "
              f"count={state.count:4.0f} std={state.std:4.2f}")

    complaint = Complaint.too_low({"year": 1986}, "mean")
    print(f"\nComplaint: {complaint}")

    recommendation = session.recommend(complaint, k=3)
    print(f"Recommended drill-down hierarchy: "
          f"{recommendation.best_hierarchy!r}")
    print("Top groups (score = complaint after repairing the group):")
    for group in recommendation.ranked():
        print(f"  {group.coordinates}  observed mean="
              f"{group.observed['mean']:5.2f}  expected="
              f"{group.expected['mean']:5.2f}  margin gain="
              f"{group.margin_gain:6.3f}")

    top = recommendation.best_group
    assert top.coordinates["village"] == "Zata", "should find the plant!"
    print(f"\n=> Reptile points at {top.coordinates['village']!r}, "
          f"the village with the planted error.")


if __name__ == "__main__":
    main()
