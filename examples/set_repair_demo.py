"""Multi-group repairs: resolving Appendix M's two-district failure.

One of the two FIST complaints the paper could not resolve involved two
districts corrupted together: repairing either one alone cannot lower the
region's standard deviation (with 2 of 3 siblings shifted identically, the
best *single* repair is in fact to move the clean district toward the
corrupted majority — the parabola trap). The set-repair extension searches
over small repair sets and recovers the true pair.

Run:  python examples/set_repair_demo.py
"""

import numpy as np

from repro.core import (Complaint, Reptile, ReptileConfig,
                        exhaustive_set_repair, greedy_set_repair)
from repro.core.ranker import score_drilldown
from repro.datagen.fist import (ScenarioKind, apply_scenario,
                                make_scenarios, make_world)
from repro.relational import Cube


def main() -> None:
    rng = np.random.default_rng(0)
    world = make_world(rng)
    scenario = next(s for s in make_scenarios(world, rng)
                    if s.kind is ScenarioKind.TWO_DISTRICT_STD)
    dataset = apply_scenario(world, scenario, rng)
    corrupted = {scenario.district, scenario.second_district}
    print(f"Corrupted districts (ground truth): {sorted(corrupted)}")

    engine = Reptile(dataset, config=ReptileConfig(n_em_iterations=8))
    cube = Cube(dataset)
    coords = {"region": scenario.region, "year": scenario.year}
    drill = cube.drilldown_view(("region", "year"), "district", coords)
    parallel = cube.parallel_view(("region", "year"), "district")
    repairer = engine.repairer_for(("region", "year", "district"))
    prediction = repairer.predict(parallel, ("region", "year"), "std")
    complaint = Complaint.too_high(coords, "std")

    base, scored = score_drilldown(drill, prediction, complaint)
    print(f"\nComplaint: std at {coords} is too high (std = {base:.3f})")
    print("Single-group repairs (the paper's ranker):")
    for g in scored:
        print(f"  {g.coordinates['district']}: margin gain "
              f"{g.margin_gain:.3f} "
              f"{'<- clean district!' if g.coordinates['district'] not in corrupted else ''}")
    print("The best single repair targets the CLEAN district — the "
          "Appendix M trap.")

    pair = exhaustive_set_repair(drill, prediction, complaint, max_size=2)
    pos = drill.group_attrs.index("district")
    found = sorted(key[pos] for key in pair.keys)
    print(f"\nExhaustive set repair (size <= 2): {found}")
    print(f"  std {pair.base_penalty:.3f} -> {pair.penalty:.3f} "
          f"(gain {pair.margin_gain:.3f})")
    assert set(found) == corrupted

    greedy = greedy_set_repair(drill, prediction, complaint, max_groups=2)
    print(f"greedy set repair picks {[k[pos] for k in greedy.keys]} "
          f"(std -> {greedy.penalty:.3f}) — greedy lacks optimality here "
          f"because std is not submodular (Appendix M).")


if __name__ == "__main__":
    main()
