"""Figure 20 (repro-only): delta ingestion vs full refresh.

Live-dashboard workloads receive a trickle of appends and corrections.
The delta-update engine threads each small batch through the relation,
the cube, the hierarchy paths and the serving cache incrementally;
the pre-delta alternative was ``Reptile.refresh()`` — rebuild the leaf
cube, re-hash the fingerprint, recompute every aggregate unit and throw
the whole cache generation away.

Protocol per scale: two identical warm engines in steady state — views,
§4.4 units, per-district repair predictions and fingerprints populated,
one prior delta absorbed. One then ingests a mixed batch confined to two
reporting districts (appends to existing leaves, appends opening new
leaf paths/domain values, retractions) via ``apply_delta``; the other
applies the same logical change and pays a full ``refresh()``. Both
re-answer the same warm query set: the delta engine patches the touched
entries and *retains* every untouched district's drill view and model
fit, while refresh recomputes all of them. In-run checks assert the two
engines' leaf states, roll-up views and decomposed aggregates are
*exactly* equal (integer-valued measure: float sums are
order-independent, so equality is bitwise). Acceptance floor: delta
apply ≥5× faster than full refresh at ≥1e5 leaf rows with 1e2-row
deltas.
"""

import time

import numpy as np
import pytest

from repro import Delta, HierarchicalDataset, Relation, Reptile, \
    ReptileConfig, Schema, dimension, measure
from repro.factorized.reference import assert_aggregate_sets_equal
from repro.serving import AggregateCache

from bench_utils import SMOKE, fmt, report, report_json, smoke

SIZES = smoke([2_000], [100_000, 300_000])
DELTA_ROWS = smoke(20, 100)
N_DISTRICTS = 40
VILLAGES_PER_DISTRICT = 50
N_YEARS = 25
FLOOR = 5.0

CONFIG = ReptileConfig(n_em_iterations=2)
#: The delta is confined to these districts — a batch of late reports
#: and corrections from one reporting region, the live-dashboard norm.
DELTA_DISTRICTS = ("d001", "d002")
#: Districts whose drill-down views (and repair-model predictions) the
#: dashboard holds warm. Only the first two intersect the delta: the
#: rest must survive an ingest untouched — refresh() refits all of them.
WARM_DISTRICTS = tuple(f"d{i:03d}" for i in range(1, 31))
#: The warm query set: coarse roll-ups plus per-district drill views.
VIEWS = [(("district", "year"), None),
         (("district",), None),
         (("year",), None),
         (("village",), {"year": 1984})] +         [(("village", "year"), {"district": d}) for d in WARM_DISTRICTS]


def _rows(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    d = rng.integers(0, N_DISTRICTS, n)
    v = d * VILLAGES_PER_DISTRICT \
        + rng.integers(0, VILLAGES_PER_DISTRICT, n)  # village → district FD
    districts = np.array([f"d{i:03d}" for i in range(N_DISTRICTS)])
    villages = np.array([f"v{i:05d}" for i in
                         range(N_DISTRICTS * VILLAGES_PER_DISTRICT)])
    return {
        "district": districts[d],
        "village": villages[v],
        "year": 1980 + rng.integers(0, N_YEARS, n),
        # Integer-valued: float sums are exact in any order, so the
        # delta-merged and rebuilt states must be identical.
        "severity": rng.integers(0, 100, n).astype(float)}


def _dataset(n: int, seed: int = 0) -> HierarchicalDataset:
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    return HierarchicalDataset.build(
        Relation(schema, _rows(n, seed)),
        {"geo": ["district", "village"], "time": ["year"]},
        "severity", validate=False)


def _make_delta(dataset: HierarchicalDataset, n_delta: int,
                seed: int = 1) -> Delta:
    """A mixed batch confined to :data:`DELTA_DISTRICTS`: appends to hot
    leaves, appends opening new paths/domain values, and retractions."""
    rng = np.random.default_rng(seed)
    relation = dataset.relation
    cols = {a: relation.column_values(a) for a in relation.schema.names}
    local = [i for i, d in enumerate(cols["district"])
             if d in DELTA_DISTRICTS]
    n_retract = n_delta // 5
    n_new = n_delta // 5
    n_hot = n_delta - n_retract - n_new
    appended = []
    for i in rng.choice(local, size=n_hot):
        appended.append((cols["district"][i], cols["village"][i],
                         cols["year"][i], float(rng.integers(0, 100))))
    for j in range(n_new):
        district = DELTA_DISTRICTS[j % len(DELTA_DISTRICTS)]
        # Namespace new villages per batch: the village → district FD
        # must hold across successive deltas.
        appended.append((district, f"newv-{seed}-{j:03d}",
                         1980 + N_YEARS + j % 3, float(rng.integers(0, 100))))
    retract_idx = rng.choice(local, size=n_retract, replace=False)
    retracted = [(cols["district"][i], cols["village"][i], cols["year"][i],
                  cols["severity"][i]) for i in retract_idx]
    return Delta.from_rows(relation.schema, appended, retracted)


def _warm_engine(n: int) -> tuple[Reptile, object]:
    # A session drilled to the village level: its geo unit is the
    # expensive O(t²·w) build over every village path — exactly the
    # derived state a refresh() throws away and a delta patch keeps.
    engine = Reptile(_dataset(n), config=CONFIG, cache=AggregateCache())
    session = engine.session(group_by=["district", "village", "year"])
    session.aggregates()
    for attrs, filters in VIEWS:
        engine.cube.view(attrs, filters)
    return engine, session


def _query_set(engine: Reptile, session) -> tuple:
    views = [engine.cube.view(attrs, filters) for attrs, filters in VIEWS]
    # Per-district repair predictions: the expensive model fits a warm
    # dashboard answers complaints from. After an ingest, fits for
    # untouched districts are served from retained cache entries; a
    # refresh() pays every one of them again.
    repairer = engine.repairer_for(("village", "year"))
    predictions = [
        repairer.predict(
            engine.cube.view(("village", "year"), {"district": d}),
            (), "mean")
        for d in WARM_DISTRICTS]
    return session.aggregates(), views, predictions


def _assert_engines_equal(a: Reptile, b: Reptile) -> None:
    assert dict(a.cube.leaf_states) == dict(b.cube.leaf_states), \
        "leaf states diverged between delta apply and full refresh"
    for attrs, filters in VIEWS:
        assert dict(a.cube.view(attrs, filters).groups) \
            == dict(b.cube.view(attrs, filters).groups), \
            f"view {attrs}/{filters} diverged"


def _apply_change_in_place(dataset: HierarchicalDataset,
                           delta: Delta) -> None:
    """The same logical change, as a wholesale relation swap (what a
    non-incremental deployment does before calling refresh())."""
    from repro.relational.delta import locate_rows
    relation = dataset.relation
    if len(delta.retracted):
        relation = relation.without_rows(locate_rows(relation,
                                                     delta.retracted))
    if len(delta.appended):
        relation = relation.with_rows_appended(delta.appended)
    dataset.relation = relation


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_figure20_series(benchmark):
    lines = ["n        delta  refresh(s)  delta-apply(s)  speedup  "
             "patched  retained"]
    json_rows = []
    floors = []
    for n in SIZES:
        best_delta, best_refresh = float("inf"), float("inf")
        patched = retained = 0
        for _ in range(smoke(1, 3)):
            inc_engine, inc_session = _warm_engine(n)
            ref_engine, ref_session = _warm_engine(n)
            # Steady state: dashboards ingest a *trickle* of batches, so
            # both engines absorb one warm-up delta (each via its own
            # mechanism) before the timed batch.
            warmup = _make_delta(inc_engine.dataset, DELTA_ROWS, seed=9)
            inc_engine.apply_delta(warmup)
            _query_set(inc_engine, inc_session)
            _apply_change_in_place(ref_engine.dataset, warmup)
            ref_engine.refresh()
            _query_set(ref_engine, ref_session)
            delta = _make_delta(inc_engine.dataset, DELTA_ROWS)

            _, t_delta = _timed(lambda: (
                inc_engine.apply_delta(delta),
                _query_set(inc_engine, inc_session)))

            _apply_change_in_place(ref_engine.dataset, delta)
            _, t_refresh = _timed(lambda: (
                ref_engine.refresh(),
                _query_set(ref_engine, ref_session)))

            best_delta = min(best_delta, t_delta)
            best_refresh = min(best_refresh, t_refresh)
            stats = inc_engine.cache.stats
            patched, retained = stats.patched, stats.retained

            # In-run exact-equality: both engines must agree bitwise.
            _assert_engines_equal(inc_engine, ref_engine)
            agg_inc, _, _ = _query_set(inc_engine, inc_session)
            agg_ref, _, _ = _query_set(ref_engine, ref_session)
            assert_aggregate_sets_equal(agg_inc, agg_ref)

        ratio = best_refresh / best_delta if best_delta > 0 else float("inf")
        lines.append(f"{n:<8d} {DELTA_ROWS:<6d} {fmt(best_refresh)}      "
                     f"{fmt(best_delta)}          {ratio:6.1f}x  "
                     f"{patched:<8d} {retained}")
        json_rows.append({"op": "ingest-vs-refresh", "scale": n,
                          "delta_rows": DELTA_ROWS, "cold": best_refresh,
                          "warm": best_delta, "speedup": ratio,
                          "cache_patched": patched,
                          "cache_retained": retained})
        if n >= 100_000:
            floors.append((n, ratio))
    report("fig20_ingest", lines)
    report_json("fig20_ingest", json_rows)
    if not SMOKE:
        for n, ratio in floors:
            assert ratio >= FLOOR, \
                f"delta apply at n={n}: {ratio:.1f}x < {FLOOR}x floor"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
