"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one paper table/figure. Besides the
pytest-benchmark timing table, each harness writes its series to
``benchmarks/out/<name>.txt`` (and prints it), so the rows survive output
capture and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import os

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def report(name: str, lines: list[str]) -> str:
    """Print a result table and persist it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    text = "\n".join([f"== {name} =="] + lines) + "\n"
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text)
    print("\n" + text)
    return path


def fmt(value: float, digits: int = 4) -> str:
    return f"{value:.{digits}f}"
