"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one paper table/figure. Besides the
pytest-benchmark timing table, each harness writes its series to
``benchmarks/out/<name>.txt`` (and prints it), so the rows survive output
capture and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import os

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Smoke mode (`make bench-smoke` / REPRO_BENCH_SMOKE=1): every harness
#: swaps its paper-scale parameters for tiny ones so the whole suite
#: executes in seconds — a does-it-still-run gate, not a measurement.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def smoke(small, full):
    """``small`` under REPRO_BENCH_SMOKE, ``full`` otherwise."""
    return small if SMOKE else full


def report(name: str, lines: list[str]) -> str:
    """Print a result table and persist it under benchmarks/out/.

    Smoke runs write to ``benchmarks/out/smoke/`` so they never clobber
    the full-scale figure series.
    """
    out_dir = os.path.join(OUT_DIR, "smoke") if SMOKE else OUT_DIR
    os.makedirs(out_dir, exist_ok=True)
    text = "\n".join([f"== {name} =="] + lines) + "\n"
    path = os.path.join(out_dir, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text)
    print("\n" + text)
    return path


def fmt(value: float, digits: int = 4) -> str:
    return f"{value:.{digits}f}"
