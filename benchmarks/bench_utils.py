"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one paper table/figure. Besides the
pytest-benchmark timing table, each harness writes its series to
``benchmarks/out/<name>.txt`` (and prints it), so the rows survive output
capture and can be pasted into EXPERIMENTS.md. Harnesses additionally
persist machine-readable rows to ``benchmarks/out/<name>.json`` via
:func:`report_json`, so the perf trajectory is trackable across PRs.
"""

from __future__ import annotations

import json
import os

try:
    import resource
except ImportError:  # non-POSIX platform
    resource = None

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Smoke mode (`make bench-smoke` / REPRO_BENCH_SMOKE=1): every harness
#: swaps its paper-scale parameters for tiny ones so the whole suite
#: executes in seconds — a does-it-still-run gate, not a measurement.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def smoke(small, full):
    """``small`` under REPRO_BENCH_SMOKE, ``full`` otherwise."""
    return small if SMOKE else full


def peak_rss_bytes() -> int:
    """This process's high-water resident set size, in bytes.

    ``getrusage(RUSAGE_SELF).ru_maxrss`` (kilobytes on Linux, bytes on
    macOS) with a ``/proc/self/status`` ``VmHWM`` fallback; ``0`` when
    neither source exists. Monotone per process — phase deltas attribute
    growth to the phase that caused it.
    """
    if resource is not None:
        maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if maxrss:
            unit = 1 if os.uname().sysname == "Darwin" else 1024
            return int(maxrss) * unit
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def report(name: str, lines: list[str]) -> str:
    """Print a result table and persist it under benchmarks/out/.

    Smoke runs write to ``benchmarks/out/smoke/`` so they never clobber
    the full-scale figure series.
    """
    out_dir = os.path.join(OUT_DIR, "smoke") if SMOKE else OUT_DIR
    os.makedirs(out_dir, exist_ok=True)
    text = "\n".join([f"== {name} =="] + lines) + "\n"
    path = os.path.join(out_dir, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text)
    print("\n" + text)
    return path


def fmt(value: float, digits: int = 4) -> str:
    return f"{value:.{digits}f}"


def report_json(name: str, rows: list[dict]) -> str:
    """Persist machine-readable benchmark rows next to the text table.

    ``rows`` is a list of flat dicts; timing rows use the shared keys
    ``op`` (operation name), ``scale`` (problem size), ``cold``/``warm``
    (seconds), and ``speedup`` where applicable, plus harness-specific
    extras. Every row is stamped with the harness process's
    ``peak_rss_bytes`` (unless the harness already set one) and with the
    machine's ``cpu_count``, so the perf trajectory tracks memory and
    parallel headroom alongside speed. Smoke runs land in
    ``benchmarks/out/smoke/`` like the text output — their timings are
    not measurements.
    """
    rss = peak_rss_bytes()
    cpus = os.cpu_count() or 1
    rows = [row if "peak_rss_bytes" in row
            else {**row, "peak_rss_bytes": rss} for row in rows]
    rows = [row if "cpu_count" in row
            else {**row, "cpu_count": cpus} for row in rows]
    out_dir = os.path.join(OUT_DIR, "smoke") if SMOKE else OUT_DIR
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.json")
    with open(path, "w") as f:
        json.dump({"name": name, "smoke": SMOKE, "rows": rows}, f,
                  indent=2, sort_keys=True)
        f.write("\n")
    return path


def oracle_rows(timings) -> list[dict]:
    """JSON rows for a list of ``OracleOpTiming`` results."""
    return [{"op": t.op, "scale": t.n_rows, "cold": t.cold_seconds,
             "warm": t.warm_seconds, "oracle": t.oracle_seconds,
             "speedup": t.speedup} for t in timings]
