"""§5.4: the FIST user study, replayed as 22 scripted complaints.

Paper shape: 20 of 22 complaints resolve; the two failures are the
inherently ambiguous complaint and the two-district standard-deviation
case of Appendix M.
"""

from repro.experiments.fist import run_study

from bench_utils import SMOKE, report, smoke


def test_fist_user_study(benchmark):
    summary = benchmark.pedantic(lambda: run_study(seed=0,
                                                   n_iterations=smoke(2, 8)),
                                 rounds=1, iterations=1)
    lines = [f"resolved {summary.n_resolved}/{summary.n_complaints} "
             f"complaints (paper: 20/22)",
             f"per-scenario agreement with the paper: "
             f"{summary.agreement_with_paper():.2f}",
             "",
             "scenario  kind                    agg    dir   ground truth"
             "      top district      resolved"]
    for r in summary.results:
        s = r.scenario
        lines.append(
            f"  #{s.scenario_id:<6d} {s.kind.value:<22s} {s.aggregate:<6s}"
            f" {s.direction:<5s} {str(s.district):<17s} "
            f"{str(r.top_district):<17s} {r.resolved}")
    report("fist_user_study", lines)

    if SMOKE:
        return
    assert summary.n_resolved >= 19
    assert summary.agreement_with_paper() >= 0.9
