"""Figure 9: drill-down aggregate maintenance — Static vs Dynamic vs Cache.

Paper shape: Dynamic beats Static by exploiting hierarchy independence
(O(1) rescaling of non-drilled hierarchies); adding the cache removes the
cost of re-evaluating the hierarchy that is never picked (2ndB/3rdB ≈ 0).
Setup as in §5.1.3: two 6-attribute hierarchies, A pre-drilled to depth 3,
B pre-drilled to depth n ∈ {3, 4, 5}; three invocations drilling A.
"""

import pytest

from repro.experiments.perf import run_drilldown

from bench_utils import fmt, report, smoke

MODES = ["static", "dynamic", "cache"]
DEPTHS = smoke([3], [3, 4, 5])
CARDINALITY = smoke(60, 1500)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("depth_b", DEPTHS)
def test_three_invocations(benchmark, mode, depth_b):
    result = benchmark.pedantic(
        lambda: run_drilldown(mode, depth_b, cardinality=CARDINALITY),
        rounds=1, iterations=1)
    assert len(result.invocation_seconds) == 3


def test_figure9_series(benchmark):
    def sweep():
        rows = []
        for mode in MODES:
            for depth in DEPTHS:
                rows.append(run_drilldown(mode, depth,
                                          cardinality=CARDINALITY))
        return rows

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["mode     depthB  inv1(s)   inv2(s)   inv3(s)   total(s)  "
             "unit-builds"]
    for t in timings:
        inv = [fmt(s) for s in t.invocation_seconds]
        lines.append(f"{t.mode:<8s} {t.depth_b:<7d} {inv[0]}    {inv[1]}    "
                     f"{inv[2]}    {fmt(t.total)}    {t.unit_computations}")
    report("fig09_drilldown", lines)
