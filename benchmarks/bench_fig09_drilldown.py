"""Figure 9: drill-down aggregate maintenance — Static vs Dynamic vs Cache.

Paper shape: Dynamic beats Static by exploiting hierarchy independence
(O(1) rescaling of non-drilled hierarchies); adding the cache removes the
cost of re-evaluating the hierarchy that is never picked (2ndB/3rdB ≈ 0).
Setup as in §5.1.3: two 6-attribute hierarchies, A pre-drilled to depth 3,
B pre-drilled to depth n ∈ {3, 4, 5}; three invocations drilling A.

The array-vs-oracle section runs the same dynamic drill loop twice — once
with the array-native unit builder/combiner, once with the frozen dict
pair from ``reference.py`` — asserts the evaluated aggregates exactly
equal, and holds a ≥5x floor on the incremental recompute at full scale.
"""

import pytest

from repro.experiments.perf import run_drilldown
from repro.factorized.drilldown import DrilldownEngine
from repro.factorized.reference import (assert_aggregate_sets_equal,
                                        reference_combine_units,
                                        reference_hierarchy_unit)

from bench_utils import SMOKE, fmt, report, report_json, smoke

MODES = ["static", "dynamic", "cache"]
DEPTHS = smoke([3], [3, 4, 5])
CARDINALITY = smoke(60, 1500)
#: The oracle-floor scenario runs deeper so per-invocation work dwarfs
#: timer noise; equality is still checked at every scale.
ORACLE_CARDINALITY = smoke(60, 4000)
ORACLE_FLOOR = 5.0


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("depth_b", DEPTHS)
def test_three_invocations(benchmark, mode, depth_b):
    result = benchmark.pedantic(
        lambda: run_drilldown(mode, depth_b, cardinality=CARDINALITY),
        rounds=1, iterations=1)
    assert len(result.invocation_seconds) == 3


def test_figure9_series(benchmark):
    def sweep():
        rows = []
        for mode in MODES:
            for depth in DEPTHS:
                rows.append(run_drilldown(mode, depth,
                                          cardinality=CARDINALITY))
        return rows

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["mode     depthB  inv1(s)   inv2(s)   inv3(s)   total(s)  "
             "unit-builds"]
    for t in timings:
        inv = [fmt(s) for s in t.invocation_seconds]
        lines.append(f"{t.mode:<8s} {t.depth_b:<7d} {inv[0]}    {inv[1]}    "
                     f"{inv[2]}    {fmt(t.total)}    {t.unit_computations}")
    report("fig09_drilldown", lines)
    # speedup = this mode's total vs the no-reuse Static baseline at the
    # same depth (Static itself reports 1.0): every JSON row across the
    # harnesses carries a speedup field, which `make bench-smoke`
    # enforces via benchmarks/check_smoke.py.
    static_total = {t.depth_b: t.total for t in timings
                    if t.mode == "static"}
    report_json("fig09_drilldown", [
        {"op": f"drill-{t.mode}", "scale": CARDINALITY,
         "depth_b": t.depth_b, "invocations": t.invocation_seconds,
         "total": t.total, "unit_builds": t.unit_computations,
         "speedup": static_total[t.depth_b] / t.total if t.total
         else float("inf")}
        for t in timings])


def test_figure9_array_vs_oracle(benchmark):
    """Incremental drill-down recompute: array-native vs the dict oracle.

    Dynamic mode isolates the §4.4 incremental step — per invocation, only
    the drilled hierarchy's unit is rebuilt and the recombination rescales
    the rest. Equality of the evaluated aggregates is asserted in-run at
    every scale; the ≥5x floor on the recompute applies at full scale.
    """
    oracle_kwargs = {"builder": reference_hierarchy_unit,
                     "combiner": reference_combine_units}

    def compare():
        # Best-of-2: per-invocation work is milliseconds, so one noisy
        # scheduler blip would otherwise dominate the ratio.
        arrays, oracles = [], []
        for _ in range(2):
            arrays.append(run_drilldown(
                "dynamic", 3, cardinality=ORACLE_CARDINALITY))
            oracles.append(run_drilldown(
                "dynamic", 3, cardinality=ORACLE_CARDINALITY,
                **oracle_kwargs))
        return (min(arrays, key=lambda t: t.total),
                min(oracles, key=lambda t: t.total))

    array, oracle = benchmark.pedantic(compare, rounds=1, iterations=1)

    # Exact equality of the evaluated candidate aggregates, both engines.
    from repro.datagen.perf import deep_hierarchies
    paths = deep_hierarchies(2, 6, ORACLE_CARDINALITY)
    depths = {paths[0].name: 3, paths[1].name: 3}
    a_eng = DrilldownEngine(paths, initial_depths=depths, mode="dynamic")
    o_eng = DrilldownEngine(paths, initial_depths=depths, mode="dynamic",
                            **oracle_kwargs)
    for name in a_eng.candidates():
        assert_aggregate_sets_equal(a_eng.evaluate_candidate(name),
                                    o_eng.evaluate_candidate(name))
    a_eng.drill(paths[0].name)
    o_eng.drill(paths[0].name)
    assert_aggregate_sets_equal(a_eng.current_aggregates(),
                                o_eng.current_aggregates())

    speedup = oracle.total / array.total if array.total else float("inf")
    lines = ["mode     cardinality  array(s)   oracle(s)  speedup",
             f"dynamic  {ORACLE_CARDINALITY:<12d} {fmt(array.total)}     "
             f"{fmt(oracle.total)}    {speedup:8.1f}x"]
    if not SMOKE:
        assert speedup >= ORACLE_FLOOR, \
            f"incremental recompute: {speedup:.1f}x < {ORACLE_FLOOR}x floor"
    report("fig09_array_vs_oracle", lines)
    report_json("fig09_array_vs_oracle", [
        {"op": "drilldown-recompute", "scale": ORACLE_CARDINALITY,
         "cold": array.invocation_seconds[0], "warm": array.total,
         "oracle": oracle.total, "speedup": speedup}])
