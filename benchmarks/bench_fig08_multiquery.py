"""Figure 8: work-sharing multi-query execution vs an LMFAO-style baseline.

Paper shape: the shared plan computes the full decomposed-aggregate family
(COUNT + the gram-matrix COFs) over 4× faster than independent per-query
execution, mostly thanks to the cross-hierarchy independence optimization
(lazy rank-1 COFs). We sweep attribute cardinality with the paper's
d = 3 hierarchies × t = 3 attributes.
"""

import pytest

from repro.datagen.perf import deep_hierarchies
from repro.experiments.perf import sweep_multiquery
from repro.factorized.factorizer import Factorizer
from repro.factorized.forder import AttributeOrder
from repro.factorized.multiquery import lmfao_plan, shared_plan

from bench_utils import fmt, report, smoke

CARDINALITIES = smoke([8], [20, 40, 80, 160])


def _factorizer(w):
    return Factorizer(AttributeOrder(deep_hierarchies(3, 3, w)))


@pytest.mark.parametrize("w", CARDINALITIES)
def test_shared_plan(benchmark, w):
    factorizer = _factorizer(w)
    benchmark(lambda: shared_plan(factorizer))


@pytest.mark.parametrize("w", CARDINALITIES)
def test_lmfao_plan(benchmark, w):
    factorizer = _factorizer(w)
    benchmark(lambda: lmfao_plan(factorizer))


def test_figure8_series(benchmark):
    timings = benchmark.pedantic(
        lambda: sweep_multiquery(tuple(CARDINALITIES)), rounds=1,
        iterations=1)
    lines = ["w     shared(s)   lmfao(s)   speedup"]
    for t in timings:
        lines.append(f"{t.cardinality:<5d} {fmt(t.shared_seconds)}     "
                     f"{fmt(t.lmfao_seconds)}    {t.speedup:6.1f}x")
    report("fig08_multiquery", lines)
