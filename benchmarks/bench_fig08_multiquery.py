"""Figure 8: work-sharing multi-query execution vs an LMFAO-style baseline.

Paper shape: the shared plan computes the full decomposed-aggregate family
(COUNT + the gram-matrix COFs) over 4× faster than independent per-query
execution, mostly thanks to the cross-hierarchy independence optimization
(lazy rank-1 COFs). We sweep attribute cardinality with the paper's
d = 3 hierarchies × t = 3 attributes.

The array-vs-oracle section compares the code-indexed array-native shared
plan against the frozen dict pipeline (``reference_shared_plan``) on a
hierarchy with ≥1e4 leaf paths, with in-run exact-equality checks and a
≥5x speedup floor at full scale.
"""

import pytest

from repro.datagen.perf import deep_hierarchies
from repro.experiments.perf import (run_multiquery_oracle, sweep_multiquery)
from repro.factorized.factorizer import Factorizer
from repro.factorized.forder import AttributeOrder
from repro.factorized.multiquery import lmfao_plan, shared_plan

from bench_utils import SMOKE, fmt, oracle_rows, report, report_json, smoke

CARDINALITIES = smoke([8], [20, 40, 80, 160])
#: Leaf paths per hierarchy for the array-vs-oracle floor (≥1e4 full scale).
ORACLE_LEAVES = smoke([50], [2_000, 12_000])
ORACLE_FLOOR = 5.0


def _factorizer(w):
    return Factorizer(AttributeOrder(deep_hierarchies(3, 3, w)))


@pytest.mark.parametrize("w", CARDINALITIES)
def test_shared_plan(benchmark, w):
    factorizer = _factorizer(w)
    benchmark(lambda: shared_plan(factorizer))


@pytest.mark.parametrize("w", CARDINALITIES)
def test_lmfao_plan(benchmark, w):
    factorizer = _factorizer(w)
    benchmark(lambda: lmfao_plan(factorizer))


def test_figure8_series(benchmark):
    timings = benchmark.pedantic(
        lambda: sweep_multiquery(tuple(CARDINALITIES)), rounds=1,
        iterations=1)
    lines = ["w     shared(s)   lmfao(s)   speedup"]
    for t in timings:
        lines.append(f"{t.cardinality:<5d} {fmt(t.shared_seconds)}     "
                     f"{fmt(t.lmfao_seconds)}    {t.speedup:6.1f}x")
    report("fig08_multiquery", lines)
    report_json("fig08_multiquery", [
        {"op": "shared_plan", "scale": t.cardinality,
         "shared": t.shared_seconds, "lmfao": t.lmfao_seconds,
         "speedup": t.speedup} for t in timings])


def test_figure8_array_vs_oracle(benchmark):
    """Array-native shared plan vs the frozen dict pipeline.

    ``run_multiquery_oracle`` asserts exact equality (same key sets,
    bitwise counts) in-run at every scale; the ≥5x floor applies at full
    scale only, where each hierarchy has ≥1e4 leaf paths.
    """
    def sweep():
        return [run_multiquery_oracle(n) for n in ORACLE_LEAVES]

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["rows       op           cold(s)    warm(s)    oracle(s)  "
             "speedup"]
    for t, n_leaves in zip(timings, ORACLE_LEAVES):
        lines.append(f"{t.n_rows:<10d} {t.op:<12s} {fmt(t.cold_seconds)}"
                     f"     {fmt(t.warm_seconds)}     "
                     f"{fmt(t.oracle_seconds)}    {t.speedup:8.1f}x")
        if not SMOKE and n_leaves >= 10_000:
            assert t.speedup >= ORACLE_FLOOR, \
                f"shared plan at {n_leaves} leaves: {t.speedup:.1f}x < " \
                f"{ORACLE_FLOOR}x floor"
    report("fig08_array_vs_oracle", lines)
    report_json("fig08_array_vs_oracle", oracle_rows(timings))
