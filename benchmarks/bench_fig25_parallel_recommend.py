"""Figure 25 (repro-only): parallel recommend path + out-of-core spill.

Two legs, in this order (peak RSS is a per-process high-water mark, so
the leg that must stay *below* a baseline runs first):

* **out-of-core spill build** — ``spill_build_from_chunks`` streams 1e8
  rows into per-shard on-disk column files and builds the leaf block
  shard-at-a-time over memory maps. The coordinator never holds more
  than one chunk plus one shard's decoded image plus the merged stats;
  the acceptance check is that the *1e7* all-in-one-image build, run
  afterwards, pushes the process high-water mark **above** the spill
  leg's — i.e. an out-of-core build 10x the rows costs less coordinator
  memory than one materialized image. A small spill build is also
  checked bitwise against the single-process ``Cube``.
* **parallel recommend** — the same ``HierarchicalDataset`` drives a
  serial ``Reptile`` engine and a sharded one
  (``ReptileConfig(shards=, workers=)``); the whole recommend pipeline
  (per-shard hierarchy units, cluster-Gram stacks, feature fill,
  rank-1 sweep) fans out over the worker pool. Every run asserts the
  sharded recommendation is **bitwise identical** to the serial one —
  per-hierarchy base penalties and every ranked group's key, score,
  observed/expected statistics and repaired value — and reports
  per-stage worker utilization from the shard executor's timings.

Dataset cardinality scales with the row count
(``villages_per_district = n / (64 * 25)``) so the recommend-path work —
which is *group*-bound, not row-bound — grows with the scale instead of
saturating at a fixed 80k-group cube.

Acceptance floors (full scale, ≥4 cpus and ≥4 workers only): sharded
end-to-end recommend ≥2.5x over serial at 1e7 rows, and the spill-leg
RSS ordering above at full scale.
"""

import os
import shutil
import tempfile
import time

import numpy as np

from repro.core.complaint import Complaint
from repro.core.session import Reptile, ReptileConfig
from repro.datagen.perf import (DROUGHT_HIERARCHIES, DROUGHT_MEASURE,
                                drought_chunks)
from repro.relational import (Cube, Relation, Schema, dataset_from_chunks,
                              dimension, measure, shutdown_worker_pools)
from repro.relational.shard import spill_build_from_chunks

from bench_utils import (SMOKE, fmt, peak_rss_bytes, report, report_json,
                         smoke)

SIZES = smoke([3_000], [1_000_000, 10_000_000])
CHUNK_ROWS = smoke(1_000, 1_000_000)
N_SHARDS = smoke(3, 8)
WORKERS = smoke(2, min(8, os.cpu_count() or 1))
REPS = smoke(1, 3)
#: End-to-end recommend floor (sharded vs serial), gated below.
FLOOR = 2.5
#: The recommend floor applies from this scale up.
FLOOR_SCALE = 10_000_000
#: Out-of-core leg: spill-mode rows vs the one-image RSS baseline rows.
SPILL_ROWS = smoke(6_000, 100_000_000)
BASELINE_ROWS = smoke(3_000, 10_000_000)
#: Scale of the spill-vs-Cube bitwise equality check (needs one image).
SPILL_ORACLE_ROWS = smoke(3_000, 1_000_000)

SCHEMA = Schema([dimension("district"), dimension("village"),
                 dimension("year"), measure(DROUGHT_MEASURE)])

_RSS_MARKS: dict[str, int] = {}


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _chunks(n, villages_per_district=50):
    return drought_chunks(n, CHUNK_ROWS, seed=0,
                          villages_per_district=villages_per_district)


def _scaled_vpd(n):
    """Villages per district such that leaf groups track the row count."""
    return max(50, n // (64 * 25))


def _one_image_build(n):
    """The all-columns-resident baseline the spill leg is measured against."""
    parts = {name: [] for name in SCHEMA.names}
    for chunk in _chunks(n):
        for name in SCHEMA.names:
            parts[name].append(np.asarray(chunk[name]))
    columns = {name: np.concatenate(arrs) for name, arrs in parts.items()}
    del parts
    relation = Relation(SCHEMA, columns)
    del columns
    from repro.relational import HierarchicalDataset
    dataset = HierarchicalDataset.build(relation, DROUGHT_HIERARCHIES,
                                        DROUGHT_MEASURE, validate=False)
    return Cube(dataset)


def _assert_recommendation_equal(sharded, serial, label):
    """Field-by-field bitwise equality of two recommendations."""
    assert set(sharded.per_hierarchy) == set(serial.per_hierarchy), label
    for name, ref in serial.per_hierarchy.items():
        got = sharded.per_hierarchy[name]
        assert got.attribute == ref.attribute, (label, name)
        assert got.base_penalty == ref.base_penalty, (label, name)
        assert len(got.groups) == len(ref.groups), (label, name)
        for a, b in zip(got.groups, ref.groups):
            assert a.key == b.key, (label, name, b.key)
            assert a.coordinates == b.coordinates, (label, name, b.key)
            assert a.score == b.score, (label, name, b.key)
            assert a.margin_gain == b.margin_gain, (label, name, b.key)
            assert a.repaired_value == b.repaired_value, (label, name, b.key)
            assert a.observed == b.observed, (label, name, b.key)
            assert a.expected == b.expected, (label, name, b.key)


def test_figure25_spill_build(benchmark):
    """1e8-row out-of-core build; RSS must stay below the 1e7 one-image
    baseline that runs after it (monotone high-water ⇒ the baseline must
    visibly *raise* the mark the spill leg left)."""
    lines = ["op               rows        wall(s)   rows/s     rss(MB)"]
    json_rows = []
    spill_dir = tempfile.mkdtemp(prefix="repro-fig25-spill-")
    try:
        # Bitwise gate first (small): spilled blocks == one-process Cube.
        oracle_n = SPILL_ORACLE_ROWS
        result = spill_build_from_chunks(
            _chunks(oracle_n), DROUGHT_HIERARCHIES, DROUGHT_MEASURE,
            spill_dir=spill_dir, n_shards=N_SHARDS, workers=WORKERS)
        cube = Cube(dataset_from_chunks(_chunks(oracle_n),
                                        DROUGHT_HIERARCHIES, DROUGHT_MEASURE,
                                        validate=False))
        assert np.array_equal(result.key_codes, cube._key_codes), \
            "spill build: key blocks differ from Cube"
        for stat in ("count", "total", "sumsq"):
            assert np.array_equal(getattr(result.stats, stat),
                                  getattr(cube.leaf_stats, stat)), \
                f"spill build: {stat} not bitwise-equal to Cube"

        # The out-of-core leg (runs before any one-image build).
        result, t_spill = _timed(lambda: spill_build_from_chunks(
            _chunks(SPILL_ROWS), DROUGHT_HIERARCHIES, DROUGHT_MEASURE,
            spill_dir=spill_dir, n_shards=N_SHARDS, workers=WORKERS))
        assert result.n_rows == SPILL_ROWS
        rss_spill = peak_rss_bytes()
        _RSS_MARKS["spill"] = rss_spill
        leftovers = os.listdir(spill_dir)
        assert not leftovers, f"spill files not reclaimed: {leftovers}"
        lines.append(f"spill-build      {SPILL_ROWS:<11d} {fmt(t_spill)}   "
                     f"{SPILL_ROWS / t_spill:9.0f}  {rss_spill / 1e6:9.1f}")

        # The one-image baseline at a tenth of the rows.
        _, t_image = _timed(lambda: _one_image_build(BASELINE_ROWS))
        rss_image = peak_rss_bytes()
        _RSS_MARKS["one-image"] = rss_image
        lines.append(f"one-image-build  {BASELINE_ROWS:<11d} {fmt(t_image)}   "
                     f"{BASELINE_ROWS / t_image:9.0f}  {rss_image / 1e6:9.1f}")

        # Per-row throughput of the spill build relative to the one-image
        # build (the two legs run at different scales).
        throughput_ratio = (SPILL_ROWS / t_spill) / (BASELINE_ROWS / t_image) \
            if t_spill and t_image else 0.0
        json_rows.append({
            "op": "spill-build", "scale": SPILL_ROWS, "cold": t_spill,
            "warm": t_spill, "speedup": throughput_ratio,
            "shards": N_SHARDS, "workers": WORKERS,
            "stream_s": result.timings.get("stream_s"),
            "build_wall_s": result.timings.get("build_wall_s"),
            "merge_s": result.timings.get("merge_s"),
            "fallback": result.timings.get("fallback"),
            "peak_rss_bytes": rss_spill})
        json_rows.append({
            "op": "one-image-build", "scale": BASELINE_ROWS, "cold": t_image,
            "warm": t_image,
            "speedup": rss_image / rss_spill if rss_spill else 0.0,
            "peak_rss_bytes": rss_image})
        if not SMOKE:
            assert rss_image > rss_spill, (
                f"one-image build at {BASELINE_ROWS} rows peaked at "
                f"{rss_image / 1e6:.0f}MB, not above the {SPILL_ROWS}-row "
                f"spill build's {rss_spill / 1e6:.0f}MB high-water mark")
    finally:
        shutdown_worker_pools()
        shutil.rmtree(spill_dir, ignore_errors=True)
    report("fig25_spill_build", lines)
    report_json("fig25_spill_build", json_rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_figure25_recommend_series(benchmark):
    lines = ["n         serial(s)  sharded(s)  speedup  "
             "util feat/gram/sweep      rss(MB)"]
    json_rows = []
    floors = []
    complaint = Complaint.too_low({"district": "d0003"}, "mean")
    try:
        for n in SIZES:
            vpd = _scaled_vpd(n)
            dataset = dataset_from_chunks(
                _chunks(n, villages_per_district=vpd), DROUGHT_HIERARCHIES,
                DROUGHT_MEASURE, validate=False)
            serial = Reptile(dataset, config=ReptileConfig())
            sharded = Reptile(dataset, config=ReptileConfig(
                shards=N_SHARDS, workers=WORKERS))

            ref, t_serial_cold = _timed(lambda: serial.recommend(
                complaint, group_by=("district",)))
            got, t_sharded_cold = _timed(lambda: sharded.recommend(
                complaint, group_by=("district",)))
            _assert_recommendation_equal(got, ref, f"n={n} cold")
            best_serial, best_sharded = t_serial_cold, t_sharded_cold
            for _ in range(REPS):
                ref, t_serial = _timed(lambda: serial.recommend(
                    complaint, group_by=("district",)))
                got, t_sharded = _timed(lambda: sharded.recommend(
                    complaint, group_by=("district",)))
                _assert_recommendation_equal(got, ref, f"n={n} warm")
                best_serial = min(best_serial, t_serial)
                best_sharded = min(best_sharded, t_sharded)

            util = sharded.sharder.utilization() \
                if sharded.sharder is not None else {}
            stage_util = "/".join(
                f"{util.get(stage, 0.0):4.2f}"
                for stage in ("features", "gram", "sweep"))
            speedup = best_serial / best_sharded if best_sharded else 0.0
            rss = peak_rss_bytes()
            lines.append(
                f"{n:<9d} {fmt(best_serial)}     {fmt(best_sharded)}      "
                f"{speedup:5.2f}x  {stage_util}        {rss / 1e6:9.1f}")
            json_rows.append({
                "op": "parallel-recommend", "scale": n,
                "cold": t_serial_cold, "warm": best_sharded,
                "serial_warm": best_serial, "speedup": speedup,
                "shards": N_SHARDS, "workers": WORKERS,
                "villages_per_district": vpd,
                "util_features": util.get("features"),
                "util_gram": util.get("gram"),
                "util_sweep": util.get("sweep"),
                "peak_rss_bytes": rss})
            if n >= FLOOR_SCALE and (os.cpu_count() or 1) >= 4 \
                    and WORKERS >= 4:
                floors.append((n, speedup))
    finally:
        shutdown_worker_pools()
    report("fig25_parallel_recommend", lines)
    report_json("fig25_parallel_recommend", json_rows)
    if not SMOKE:
        for n, speedup in floors:
            assert speedup >= FLOOR, (
                f"sharded recommend at n={n}: {speedup:.2f}x < {FLOOR}x "
                f"floor ({WORKERS} workers, {os.cpu_count()} cpus)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
