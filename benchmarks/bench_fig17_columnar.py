"""Figure 17 (repro-only): columnar core vs the row-at-a-time engine.

Measures the dictionary-encoded columnar kernels against the frozen
pre-refactor loops in ``repro.relational.rowref`` on identical data:

* **leaf cube build** — the one pass that turns the fact relation into
  per-leaf ``(count, sum, sumsq)`` states (eq. 2 of Problem 1);
* **group-by** — per-group sufficient statistics at a coarser level;
* **roll-up** — deriving a coarse view from the leaf states;
* **filtered roll-up** — the provenance-filtered drill-down view.

Every timed pair is also checked for *exact* result equality (the
measure is integer-valued, so float sums are order-independent and the
states must match bit for bit). Acceptance target: ≥5× for leaf-cube
build and group-by at ≥10⁵ rows. "cold" columnar timings rebuild the
dictionary encodings from scratch; "warm" reuses the relation's
interned code arrays, which is what every build after the first (and
every serving-layer rebuild) actually pays.
"""

import time

import numpy as np
import pytest

from repro.relational import (Cube, HierarchicalDataset, Relation, Schema,
                              dimension, measure)
from repro.relational import rowref

from bench_utils import fmt, report, smoke

SIZES = smoke([2_000], [100_000, 300_000])
N_DISTRICTS = 40
VILLAGES_PER_DISTRICT = 50
N_YEARS = 25


def _dataset(n: int, seed: int = 0) -> HierarchicalDataset:
    """A synthetic drought-style dataset with array-backed columns."""
    rng = np.random.default_rng(seed)
    d = rng.integers(0, N_DISTRICTS, n)
    v = d * VILLAGES_PER_DISTRICT \
        + rng.integers(0, VILLAGES_PER_DISTRICT, n)  # village → district FD
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    districts = np.array([f"d{i:03d}" for i in range(N_DISTRICTS)])
    villages = np.array([f"v{i:05d}" for i in
                         range(N_DISTRICTS * VILLAGES_PER_DISTRICT)])
    relation = Relation(schema, {
        "district": districts[d],
        "village": villages[v],
        "year": 1980 + rng.integers(0, N_YEARS, n),
        # Integer-valued measure: float sums are exact in any order, so
        # the naive and vectorized results must be *identical*.
        "severity": rng.integers(0, 100, n).astype(float)})
    return HierarchicalDataset.build(
        relation, {"geo": ["district", "village"], "time": ["year"]},
        "severity", validate=False)


def _assert_states_equal(naive: dict, columnar) -> None:
    assert len(naive) == len(columnar), \
        f"group count mismatch: {len(naive)} != {len(columnar)}"
    for key, state in naive.items():
        got = columnar[key]
        assert (got.count, got.total, got.sumsq) \
            == (state.count, state.total, state.sumsq), \
            f"state mismatch at {key}: {state} != {got}"


def _timed(fn, repeats: int = 3):
    """(result, best-of-N wall time) — best-of damps scheduler noise."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.mark.parametrize("n", SIZES)
def test_leaf_build_columnar(benchmark, n):
    dataset = _dataset(n)
    Cube(dataset)  # intern the encodings once; benchmark the warm build
    benchmark(lambda: Cube(dataset))


@pytest.mark.parametrize("n", SIZES)
def test_leaf_build_rows(benchmark, n):
    dataset = _dataset(n)
    benchmark(lambda: rowref.leaf_states(dataset))


@pytest.mark.parametrize("n", SIZES)
def test_group_by_columnar(benchmark, n):
    relation = _dataset(n).relation
    relation.group_stats(["district", "year"], "severity")
    benchmark(lambda: relation.group_stats(["district", "year"], "severity"))


@pytest.mark.parametrize("n", SIZES)
def test_group_by_rows(benchmark, n):
    relation = _dataset(n).relation
    benchmark(lambda: rowref.group_states(relation, ["district", "year"],
                                          "severity"))


def test_figure17_series(benchmark):
    """The full sweep: timings + exact-equality checks + speedup table."""
    lines = ["n        op               rows(s)    columnar(s)  cold(s)    "
             "speedup  speedup(cold)"]
    floors = []
    for n in SIZES:
        dataset = _dataset(n)
        # Cold: dictionary encodings are built inside the timed call
        # (the fresh dataset itself is generated outside it).
        fresh = _dataset(n)
        cold_cube, cold = _timed(lambda: Cube(fresh), repeats=1)
        naive_leaf, t_rows = _timed(lambda: rowref.leaf_states(dataset))
        cube, t_col = _timed(lambda: Cube(dataset))
        _assert_states_equal(naive_leaf, cube.leaf_states)

        relation = dataset.relation
        attrs = ["district", "year"]
        naive_group, g_rows = _timed(
            lambda: rowref.group_states(relation, attrs, "severity"))
        (keys, stats), g_col = _timed(
            lambda: relation.group_stats(attrs, "severity"))
        cold_rel = _dataset(n).relation
        _, g_cold = _timed(lambda: cold_rel.group_stats(attrs, "severity"),
                           repeats=1)
        from repro.relational.cube import StatesMap
        _assert_states_equal(naive_group, StatesMap(keys, stats))

        naive_roll, r_rows = _timed(lambda: rowref.rollup_view(
            naive_leaf, dataset.leaf_group_by(), ("district", "year")))
        view, r_col = _timed(lambda: cube.view(("district", "year")))
        _assert_states_equal(naive_roll, view.groups)

        filters = {"district": "d001"}
        naive_drill, f_rows = _timed(lambda: rowref.rollup_view(
            naive_leaf, dataset.leaf_group_by(), ("village", "year"),
            filters))
        drill, f_col = _timed(
            lambda: cube.view(("village", "year"), filters))
        _assert_states_equal(naive_drill, drill.groups)

        for op, t_r, t_c, t_cold in [
                ("leaf-cube build", t_rows, t_col, cold),
                ("group-by", g_rows, g_col, g_cold),
                ("roll-up", r_rows, r_col, r_col),
                ("filtered roll-up", f_rows, f_col, f_col)]:
            ratio = t_r / t_c if t_c > 0 else float("inf")
            ratio_cold = t_r / t_cold if t_cold > 0 else float("inf")
            lines.append(f"{n:<8d} {op:<16s} {fmt(t_r)}     {fmt(t_c)}      "
                         f"{fmt(t_cold)}    {ratio:6.1f}x  {ratio_cold:6.1f}x")
            if op in ("leaf-cube build", "group-by"):
                floors.append((n, op, ratio))
    report("fig17_columnar", lines)
    # The acceptance floor is on the interned-encoding path: codes are
    # interned once per relation (that is the design), so every cube
    # build and group-by the engine actually executes runs warm. Cold
    # numbers (encode + aggregate in one call) are reported alongside.
    if not smoke(True, False):
        for n, op, ratio in floors:
            assert ratio >= 5.0, \
                f"{op} at n={n}: columnar speedup {ratio:.1f}x < 5x"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
