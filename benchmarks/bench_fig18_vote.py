"""Figure 18 (Appendix N): the Vote case study's margin-gain maps.

Paper shape: model 1 (default features) flags plain share outliers;
model 2 (+2016 auxiliary) explains them away and its margin gains track
the 2020−2016 swing; injecting missing ballot records shifts the gains of
the affected counties.
"""

import numpy as np

from repro.experiments.vote import run_study

from bench_utils import SMOKE, fmt, report, smoke


def test_vote_case_study(benchmark):
    study = benchmark.pedantic(lambda: run_study(seed=0,
                                                 n_iterations=smoke(3, 10)),
                               rounds=1, iterations=1)
    swing = study.swing()
    m1, m2, m2m = (study.model1.margin_gain, study.model2.margin_gain,
                   study.model2_missing.margin_gain)
    miss = set(study.missing_counties)

    lines = ["county      swing20-16  gain(model1)  gain(model2)  "
             "gain(model2+missing)  missing?"]
    for county in sorted(swing):
        lines.append(
            f"{county:<11s} {swing[county]:>+9.3f}   {fmt(m1.get(county, 0), 3):>10s}"
            f"    {fmt(m2.get(county, 0), 3):>10s}    "
            f"{fmt(m2m.get(county, 0), 3):>14s}        "
            f"{'yes' if county in miss else ''}")
    corr = study.gain_swing_correlation()
    lines.append(f"corr(model2 gain, −swing) = {corr:.3f} "
                 f"(paper: Figure 18f tracks 18g)")
    shift_missing = np.mean([abs(m2m.get(c, 0.0) - m2.get(c, 0.0))
                             for c in miss])
    shift_other = np.mean([abs(m2m.get(c, 0.0) - m2.get(c, 0.0))
                           for c in swing if c not in miss])
    lines.append(f"mean |gain shift| after injection: missing={shift_missing:.3f}"
                 f" vs others={shift_other:.3f}")
    report("fig18_vote", lines)

    if SMOKE:
        return
    assert study.model1.ranking != study.model2.ranking
    assert shift_missing > shift_other
