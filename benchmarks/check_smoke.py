"""Gate for `make bench-smoke`: every smoke JSON row carries `speedup`,
`peak_rss_bytes`, and `cpu_count`.

The machine-readable rows under ``benchmarks/out/smoke/*.json`` are how
the perf trajectory is tracked across PRs; a row without its ``speedup``
field is invisible to that tracking, a row without ``peak_rss_bytes``
(stamped by ``bench_utils.report_json`` on every row) silently drops the
memory series, and a row without ``cpu_count`` (same stamp) makes
parallel speedups incomparable across machines — so the smoke job fails
loudly on any of the three. Also rejects an empty run (no JSON emitted
at all) and malformed files.

Usage: ``python benchmarks/check_smoke.py`` — exits non-zero with a
per-file report on any violation.
"""

from __future__ import annotations

import glob
import json
import os
import sys

SMOKE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "out", "smoke")


def check() -> int:
    paths = sorted(glob.glob(os.path.join(SMOKE_DIR, "*.json")))
    if not paths:
        print(f"check_smoke: no JSON rows found under {SMOKE_DIR} — "
              f"did the smoke run execute any harness?", file=sys.stderr)
        return 1
    failures = []
    total_rows = 0
    for path in paths:
        name = os.path.basename(path)
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            failures.append(f"{name}: unreadable ({exc})")
            continue
        rows = payload.get("rows")
        if not isinstance(rows, list) or not rows:
            failures.append(f"{name}: no rows")
            continue
        for i, row in enumerate(rows):
            total_rows += 1
            if not isinstance(row, dict):
                failures.append(f"{name}: row {i} is not an object")
                continue
            for field in ("speedup", "peak_rss_bytes", "cpu_count"):
                if field not in row:
                    failures.append(
                        f"{name}: row {i} ({row.get('op', '?')!r}) is "
                        f"missing its {field!r} field")
    if failures:
        print("check_smoke: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_smoke: OK — {total_rows} rows across {len(paths)} "
          f"files all carry 'speedup', 'peak_rss_bytes' and 'cpu_count'")
    return 0


if __name__ == "__main__":
    sys.exit(check())
