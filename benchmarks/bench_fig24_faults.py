"""Figure 24 (repro-only): availability and recovery under injected faults.

The fault-tolerance claim quantified: a serving stack that loses a shard
worker mid-rebuild and suffers an ingest-commit failure mid-traffic must
keep answering — reads from the last good snapshot, failures as degraded
503s, never a bare 5xx — and must return to full health on its own.

Protocol per scale: a baseline run (no faults) and a faulted run of the
identical mixed workload (80% one-shot recommends, 20% hot-leaf ingest
bursts from CLIENTS threads). Mid-way through the faulted run a
controller injects two one-shot ``ingest.commit`` failures and a
``worker.build=crash@once`` (an abrupt worker death), then POSTs a
``/refresh`` so the sharded rebuild actually crosses the crashing pool.
A monitor thread samples the dataset's health state at 2ms resolution;
``recovery_seconds`` is the span from the first degraded sample to the
first healthy sample after it (background auto-rebuild does the
recovering — the bench never calls ``try_rebuild`` itself).

Reported per scale: availability (fraction of 2xx responses) for both
runs, the recovery time, and ``speedup`` = baseline elapsed over faulted
elapsed for identical request totals (the throughput cost of surviving
the faults; ~1.0 means fault handling is off the hot path).

Acceptance (every run, smoke included): zero non-degraded 5xx — every
5xx response carries ``degraded: true`` or a ``retry_after`` — and the
post-recovery cube is bitwise-equal to the row-at-a-time rebuild oracle
over the final relation. Full scale adds floors: faulted-run
availability ≥ 0.90 and recovery within 10 s.
"""

import threading
import time

import numpy as np

from repro import HierarchicalDataset, Relation, ReptileConfig, Schema, \
    dimension, measure
import repro.robustness.faultinject as fi
from repro.relational import deltaref
from repro.relational.shard import leaked_segments, shutdown_worker_pools
from repro.serving import ExplanationService, ServerApp

from bench_utils import SMOKE, fmt, report, report_json, smoke

SIZES = smoke([2_000], [50_000])
CLIENTS = smoke(3, 6)
REQUESTS_PER_CLIENT = smoke(20, 120)
N_DISTRICTS = 20
VILLAGES_PER_DISTRICT = 25
N_YEARS = 10
AVAILABILITY_FLOOR = 0.90   # faulted run, full scale
RECOVERY_FLOOR_S = 10.0     # full scale

CONFIG = ReptileConfig(n_em_iterations=2, shards=2, workers=2)

RECOMMEND_BODY = {"aggregate": "mean", "direction": "too_low",
                  "coordinates": {"district": "d001"},
                  "group_by": ["district"], "k": 3}

_ALLOWED = {200, 400, 409, 503}


def _dataset(n: int, seed: int = 0) -> HierarchicalDataset:
    rng = np.random.default_rng(seed)
    d = rng.integers(0, N_DISTRICTS, n)
    v = d * VILLAGES_PER_DISTRICT \
        + rng.integers(0, VILLAGES_PER_DISTRICT, n)  # village → district FD
    districts = np.array([f"d{i:03d}" for i in range(N_DISTRICTS)])
    villages = np.array([f"v{i:05d}" for i in
                         range(N_DISTRICTS * VILLAGES_PER_DISTRICT)])
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    rows = {"district": districts[d], "village": villages[v],
            "year": 1980 + rng.integers(0, N_YEARS, n),
            # Integer-valued: sums are exact, so the bitwise oracle holds.
            "severity": rng.integers(0, 100, n).astype(float)}
    return HierarchicalDataset.build(
        Relation(schema, rows), {"geo": ["district", "village"],
                                 "time": ["year"]}, "severity",
        validate=False)


def _make_app(n: int) -> ServerApp:
    service = ExplanationService(config=CONFIG, auto_rebuild=True)
    service.register("data", _dataset(n))
    service.health.backoff_base = 0.05  # recover fast once faults clear
    service.health.backoff_cap = 0.5
    return ServerApp(service, max_concurrent=8, max_queue=256,
                     queue_timeout=30.0, request_timeout=30.0)


class _Run:
    """One execution of the mixed workload, optionally with faults."""

    def __init__(self, app: ServerApp, faulted: bool):
        self.app = app
        self.faulted = faulted
        self.responses: list[tuple[int, dict]] = []
        self._lock = threading.Lock()
        self._first_degraded: float | None = None
        self._recovered_at: float | None = None
        self._stop_monitor = threading.Event()

    def _client(self, i: int) -> None:
        rng = np.random.default_rng(100 + i)
        for j in range(REQUESTS_PER_CLIENT):
            if j % 5 == 4:
                village = int(rng.integers(0, VILLAGES_PER_DISTRICT))
                row = ["d001", f"v{VILLAGES_PER_DISTRICT + village:05d}",
                       int(1980 + rng.integers(0, N_YEARS)),
                       float(rng.integers(0, 100))]
                status, _, payload = self.app.dispatch(
                    "POST", "/datasets/data/ingest", {"rows": [row]})
            else:
                status, _, payload = self.app.dispatch(
                    "POST", "/datasets/data/recommend",
                    dict(RECOMMEND_BODY))
            with self._lock:
                self.responses.append((status, payload))

    def _monitor(self) -> None:
        health = self.app.service.health
        while not self._stop_monitor.is_set():
            now = time.perf_counter()
            if health.is_degraded("data"):
                if self._first_degraded is None:
                    self._first_degraded = now
                self._recovered_at = None
            elif self._first_degraded is not None \
                    and self._recovered_at is None:
                self._recovered_at = now
            time.sleep(0.002)

    def _controller(self, traffic_estimate_s: float) -> None:
        """Mid-bench fault burst: failed commits + a worker kill."""
        time.sleep(max(0.01, traffic_estimate_s * 0.15))
        fi.inject("ingest.commit", kind="error", once=True)
        fi.inject("ingest.commit", kind="error", once=True)
        fi.inject("worker.build", kind="crash", once=True)
        # Force the sharded rebuild across the now-crashing pool. The
        # response may be a clean 200 (pool respawned within budget) or
        # a degraded 503 (rebuild fell to the recovery loop) — both keep
        # the availability contract.
        status, _, payload = self.app.dispatch(
            "POST", "/datasets/data/refresh", {})
        with self._lock:
            self.responses.append((status, payload))

    def execute(self) -> float:
        monitor = threading.Thread(target=self._monitor, daemon=True)
        monitor.start()
        threads = [threading.Thread(target=self._client, args=(i,))
                   for i in range(CLIENTS)]
        extra = []
        start = time.perf_counter()
        for t in threads:
            t.start()
        if self.faulted:
            estimate = 0.2 if SMOKE else 2.0
            controller = threading.Thread(target=self._controller,
                                          args=(estimate,), daemon=True)
            controller.start()
            extra.append(controller)
        for t in threads + extra:
            t.join(600.0)
            assert not t.is_alive(), "benchmark traffic hung"
        elapsed = time.perf_counter() - start
        if self.faulted:
            fi.clear_faults()
            # Recovery is the background rebuild loop's job alone.
            deadline = time.monotonic() + 30.0
            while (self.app.service.health.is_degraded("data")
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert not self.app.service.health.is_degraded("data"), \
                "dataset never recovered after faults cleared"
        self._stop_monitor.set()
        monitor.join(5.0)
        return elapsed

    @property
    def availability(self) -> float:
        ok = sum(1 for status, _ in self.responses if status == 200)
        return ok / len(self.responses) if self.responses else 0.0

    @property
    def recovery_seconds(self) -> float:
        if self._first_degraded is None:
            return 0.0
        if self._recovered_at is None:
            return float("inf")
        return self._recovered_at - self._first_degraded

    def assert_no_bare_5xx(self) -> None:
        for status, payload in self.responses:
            assert status in _ALLOWED, (status, payload)
            if status >= 500:
                assert (payload.get("degraded") is True
                        or payload.get("retry_after") is not None), \
                    (status, payload)


def test_figure24_faults_series(benchmark):
    lines = ["n        clients  req   base(s)   fault(s)  avail-base  "
             "avail-fault  recover(s)  speedup"]
    json_rows = []
    total_requests = CLIENTS * REQUESTS_PER_CLIENT
    for n in SIZES:
        fi.clear_faults()
        baseline = _Run(_make_app(n), faulted=False)
        base_elapsed = baseline.execute()
        baseline.assert_no_bare_5xx()
        assert baseline.availability == 1.0, \
            f"baseline run was not fully available: {baseline.availability}"

        faulted = _Run(_make_app(n), faulted=True)
        fault_elapsed = faulted.execute()
        faulted.assert_no_bare_5xx()
        assert faulted.recovery_seconds != float("inf"), \
            "degraded state never recovered"

        # Bitwise oracle: the post-recovery cube equals a row-at-a-time
        # rebuild over the relation it serves.
        engine = faulted.app.service.engine("data")
        deltaref.assert_groups_equal(
            engine.cube.leaf_states,
            deltaref.rebuilt_leaf_states(engine.dataset))
        assert leaked_segments() == []

        speedup = base_elapsed / fault_elapsed if fault_elapsed else 0.0
        lines.append(
            f"{n:<8d} {CLIENTS:<8d} {total_requests:<5d} "
            f"{fmt(base_elapsed)}    {fmt(fault_elapsed)}    "
            f"{baseline.availability:10.3f}  {faulted.availability:11.3f}  "
            f"{faulted.recovery_seconds:10.3f}  {speedup:5.2f}x")
        json_rows.append({
            "op": "faulted-mixed-80-20", "scale": n, "clients": CLIENTS,
            "requests": total_requests, "cold": fault_elapsed,
            "warm": base_elapsed, "speedup": speedup,
            "availability_baseline": baseline.availability,
            "availability_faulted": faulted.availability,
            "recovery_seconds": faulted.recovery_seconds})
        if not SMOKE and n >= 50_000:
            assert faulted.availability >= AVAILABILITY_FLOOR, (
                f"availability {faulted.availability:.3f} < "
                f"{AVAILABILITY_FLOOR} floor at n={n}")
            assert faulted.recovery_seconds <= RECOVERY_FLOOR_S, (
                f"recovery took {faulted.recovery_seconds:.2f}s > "
                f"{RECOVERY_FLOOR_S}s floor at n={n}")
        shutdown_worker_pools()
    report("fig24_faults", lines)
    report_json("fig24_faults", json_rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
