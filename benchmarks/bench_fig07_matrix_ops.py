"""Figure 7: factorised matrix operations vs Lapack on the dense matrix.

Paper shape: materialization and gram matrix are exponential in the number
of hierarchies d for the dense implementation and ~linear for the
factorised one; left multiplication ≈5× and right ≈1.6× faster at large d.
We sweep d = 1..5 (w = 10 per attribute ⇒ up to 10⁵ dense rows; the
paper's d = 7 ⇒ 10⁷ rows is not feasible in pure Python, the trend is).
"""

import time

import numpy as np
import pytest

from repro.datagen.perf import flat_hierarchies, random_feature_matrix
from repro.experiments.perf import run_matrix_oracle, sweep_matrix_ops
from repro.factorized.forder import AttributeOrder
from repro.relational import Relation, Schema, dimension, measure
from repro.relational import rowref

from bench_utils import SMOKE, fmt, oracle_rows, report, report_json, smoke

DS = smoke([1, 2], [1, 2, 3, 4, 5])
CARDINALITY = 10
JOIN_SIZES = smoke([2_000], [50_000, 100_000])
JOIN_KEYS = 500
#: The array-vs-oracle floor scenario: d flat hierarchies ⇒ 10^d leaf
#: paths; the full-scale point has ≥1e4 rows, where the ≥5x floor applies.
ORACLE_DS = smoke([2], [4, 5])
ORACLE_FLOOR = 5.0


def _matrix(d, seed=0):
    rng = np.random.default_rng(seed)
    order = AttributeOrder(flat_hierarchies(d, CARDINALITY))
    return random_feature_matrix(order, rng), rng


@pytest.mark.parametrize("d", DS)
def test_gram_factorized(benchmark, d):
    matrix, _ = _matrix(d)
    benchmark(matrix.gram)


@pytest.mark.parametrize("d", DS)
def test_gram_dense(benchmark, d):
    matrix, _ = _matrix(d)
    x = matrix.materialize()
    benchmark(lambda: x.T @ x)


@pytest.mark.parametrize("d", DS)
def test_materialize_dense(benchmark, d):
    matrix, _ = _matrix(d)
    benchmark(matrix.materialize)


@pytest.mark.parametrize("d", DS)
def test_left_multiply_factorized(benchmark, d):
    matrix, rng = _matrix(d)
    a = rng.normal(size=(1, matrix.n_rows))
    benchmark(lambda: matrix.left_multiply(a))


@pytest.mark.parametrize("d", DS)
def test_left_multiply_dense(benchmark, d):
    matrix, rng = _matrix(d)
    a = rng.normal(size=(1, matrix.n_rows))
    x = matrix.materialize()
    benchmark(lambda: a @ x)


@pytest.mark.parametrize("d", DS)
def test_right_multiply_factorized(benchmark, d):
    matrix, rng = _matrix(d)
    b = rng.normal(size=(matrix.n_cols, 1))
    benchmark(lambda: matrix.right_multiply(b))


@pytest.mark.parametrize("d", DS)
def test_right_multiply_dense(benchmark, d):
    matrix, rng = _matrix(d)
    b = rng.normal(size=(matrix.n_cols, 1))
    x = matrix.materialize()
    benchmark(lambda: x @ b)


def _join_pair(n, seed=0):
    """A fact relation and a per-key lookup table joined on one attribute."""
    rng = np.random.default_rng(seed)
    keys = np.array([f"k{i:05d}" for i in range(JOIN_KEYS)])
    facts = Relation(Schema([dimension("k"), measure("x")]),
                     {"k": keys[rng.integers(0, JOIN_KEYS, n)],
                      "x": rng.normal(size=n)})
    lookup = Relation(Schema([dimension("k"), measure("w")]),
                      {"k": keys, "w": rng.normal(size=JOIN_KEYS)})
    return facts, lookup


@pytest.mark.parametrize("n", JOIN_SIZES)
def test_natural_join_encoded(benchmark, n):
    facts, lookup = _join_pair(n)
    facts.natural_join(lookup)  # intern the encodings once
    benchmark(lambda: facts.natural_join(lookup))


@pytest.mark.parametrize("n", JOIN_SIZES)
def test_natural_join_rows(benchmark, n):
    facts, lookup = _join_pair(n)
    benchmark(lambda: rowref.natural_join(facts, lookup))


def test_figure7_series(benchmark):
    """Regenerate the full Figure 7 sweep and record the series.

    Also records the natural-join regression series: the old O(n·m)
    tuple-building hash join vs the encoded sort-merge join, checked for
    bag equality.
    """
    timings = benchmark.pedantic(
        lambda: sweep_matrix_ops(max_hierarchies=max(DS),
                                 cardinality=CARDINALITY),
        rounds=1, iterations=1)
    lines = ["d  rows     op            dense(s)   factorized(s)  ratio"]
    for t in timings:
        for op in ("materialize", "gram", "left", "right"):
            dense = getattr(t, f"{op}_dense")
            fact = getattr(t, f"{op}_factorized")
            ratio = dense / fact if fact > 0 else float("inf")
            lines.append(f"{t.n_hierarchies}  {t.n_rows:<8d} {op:<13s} "
                         f"{fmt(dense)}     {fmt(fact)}        {ratio:8.1f}")
    json_rows = [{"op": op, "scale": t.n_rows,
                  "dense": getattr(t, f"{op}_dense"),
                  "array": getattr(t, f"{op}_factorized"),
                  "speedup": getattr(t, f"{op}_dense")
                  / getattr(t, f"{op}_factorized")
                  if getattr(t, f"{op}_factorized") > 0 else float("inf")}
                 for t in timings
                 for op in ("materialize", "gram", "left", "right")]
    lines.append("")
    lines.append("n        op            rows(s)    encoded(s)     ratio")
    for n in JOIN_SIZES:
        facts, lookup = _join_pair(n)
        facts.encoding("k"), lookup.encoding("k")  # interned once
        start = time.perf_counter()
        naive = rowref.natural_join(facts, lookup)
        t_rows = time.perf_counter() - start
        start = time.perf_counter()
        encoded = facts.natural_join(lookup)
        t_enc = time.perf_counter() - start
        assert len(naive) == len(encoded) == n
        assert encoded == naive  # bag equality, both orders
        ratio = t_rows / t_enc if t_enc > 0 else float("inf")
        lines.append(f"{n:<8d} natural-join  {fmt(t_rows)}     {fmt(t_enc)}"
                     f"        {ratio:8.1f}")
        json_rows.append({"op": "natural-join", "scale": n,
                          "baseline": t_rows, "array": t_enc,
                          "speedup": ratio})
    report("fig07_matrix_ops", lines)
    report_json("fig07_matrix_ops", json_rows)


def test_figure7_array_vs_oracle(benchmark):
    """Array-native matrix path vs the frozen reference.py oracle.

    In-run equality checks (bitwise vs the dict-path build, allclose vs
    the Appendix E pseudocode) always run — smoke mode included; the ≥5x
    speedup floor on gram/left/right applies at full scale only, where the
    matrix has ≥1e4 leaf paths.
    """
    def sweep():
        return [t for d in ORACLE_DS
                for t in run_matrix_oracle(d, CARDINALITY)]

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["rows     op     cold(s)    warm(s)    oracle(s)  speedup"]
    for t in timings:
        lines.append(f"{t.n_rows:<8d} {t.op:<6s} {fmt(t.cold_seconds)}     "
                     f"{fmt(t.warm_seconds)}     {fmt(t.oracle_seconds)}"
                     f"    {t.speedup:8.1f}x")
        if not SMOKE and t.n_rows >= 10_000 and t.op in ("gram", "left",
                                                         "right"):
            assert t.speedup >= ORACLE_FLOOR, \
                f"{t.op} at {t.n_rows} rows: {t.speedup:.1f}x < " \
                f"{ORACLE_FLOOR}x floor"
    report("fig07_array_vs_oracle", lines)
    report_json("fig07_array_vs_oracle", oracle_rows(timings))
