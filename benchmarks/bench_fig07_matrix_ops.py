"""Figure 7: factorised matrix operations vs Lapack on the dense matrix.

Paper shape: materialization and gram matrix are exponential in the number
of hierarchies d for the dense implementation and ~linear for the
factorised one; left multiplication ≈5× and right ≈1.6× faster at large d.
We sweep d = 1..5 (w = 10 per attribute ⇒ up to 10⁵ dense rows; the
paper's d = 7 ⇒ 10⁷ rows is not feasible in pure Python, the trend is).
"""

import numpy as np
import pytest

from repro.datagen.perf import flat_hierarchies, random_feature_matrix
from repro.experiments.perf import sweep_matrix_ops
from repro.factorized.forder import AttributeOrder

from bench_utils import fmt, report

DS = [1, 2, 3, 4, 5]
CARDINALITY = 10


def _matrix(d, seed=0):
    rng = np.random.default_rng(seed)
    order = AttributeOrder(flat_hierarchies(d, CARDINALITY))
    return random_feature_matrix(order, rng), rng


@pytest.mark.parametrize("d", DS)
def test_gram_factorized(benchmark, d):
    matrix, _ = _matrix(d)
    benchmark(matrix.gram)


@pytest.mark.parametrize("d", DS)
def test_gram_dense(benchmark, d):
    matrix, _ = _matrix(d)
    x = matrix.materialize()
    benchmark(lambda: x.T @ x)


@pytest.mark.parametrize("d", DS)
def test_materialize_dense(benchmark, d):
    matrix, _ = _matrix(d)
    benchmark(matrix.materialize)


@pytest.mark.parametrize("d", DS)
def test_left_multiply_factorized(benchmark, d):
    matrix, rng = _matrix(d)
    a = rng.normal(size=(1, matrix.n_rows))
    benchmark(lambda: matrix.left_multiply(a))


@pytest.mark.parametrize("d", DS)
def test_left_multiply_dense(benchmark, d):
    matrix, rng = _matrix(d)
    a = rng.normal(size=(1, matrix.n_rows))
    x = matrix.materialize()
    benchmark(lambda: a @ x)


@pytest.mark.parametrize("d", DS)
def test_right_multiply_factorized(benchmark, d):
    matrix, rng = _matrix(d)
    b = rng.normal(size=(matrix.n_cols, 1))
    benchmark(lambda: matrix.right_multiply(b))


@pytest.mark.parametrize("d", DS)
def test_right_multiply_dense(benchmark, d):
    matrix, rng = _matrix(d)
    b = rng.normal(size=(matrix.n_cols, 1))
    x = matrix.materialize()
    benchmark(lambda: x @ b)


def test_figure7_series(benchmark):
    """Regenerate the full Figure 7 sweep and record the series."""
    timings = benchmark.pedantic(
        lambda: sweep_matrix_ops(max_hierarchies=max(DS),
                                 cardinality=CARDINALITY),
        rounds=1, iterations=1)
    lines = ["d  rows     op            dense(s)   factorized(s)  ratio"]
    for t in timings:
        for op in ("materialize", "gram", "left", "right"):
            dense = getattr(t, f"{op}_dense")
            fact = getattr(t, f"{op}_factorized")
            ratio = dense / fact if fact > 0 else float("inf")
            lines.append(f"{t.n_hierarchies}  {t.n_rows:<8d} {op:<13s} "
                         f"{fmt(dense)}     {fmt(fact)}        {ratio:8.1f}")
    report("fig07_matrix_ops", lines)
