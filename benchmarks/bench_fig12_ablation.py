"""Figure 12: complaint ablation — Reptile vs the direction-blind Outlier.

Paper shape: with two true errors and one false positive imputed in the
opposite direction, Outlier hovers around 50–70% (it cannot tell the three
deviants apart; only two are correct), while Reptile approaches 100% as
the auxiliary correlation grows.
"""

import pytest

from repro.experiments.accuracy import ABLATION_CONDITIONS, run_ablation

from bench_utils import SMOKE, report, smoke

RHOS = smoke([1.0], [0.6, 0.8, 1.0])
N_TRIALS = smoke(2, 25)


@pytest.mark.parametrize("condition", list(ABLATION_CONDITIONS))
def test_ablation_accuracy(benchmark, condition):
    results = benchmark.pedantic(
        lambda: [run_ablation(condition, rho, n_trials=N_TRIALS,
                              seed=len(condition) + int(rho * 10),
                              n_iterations=8)
                 for rho in RHOS],
        rounds=1, iterations=1)
    lines = ["rho    reptile   outlier"]
    for res in results:
        lines.append(f"{res.rho:<5.1f}  {res.accuracy['reptile']:>7.2f}"
                     f"   {res.accuracy['outlier']:>7.2f}")
    safe = condition.replace(" ", "_").replace("(", "").replace(")", "")
    report(f"fig12_{safe}", lines)
    final = results[-1]
    if SMOKE:
        return
    assert final.accuracy["reptile"] >= final.accuracy["outlier"]
    assert final.accuracy["reptile"] >= 0.7
