"""Serving layer: cold vs warm recommend latency across drill depths.

The drill-down loop (complain → recommend → drill) is replayed over a
two-hierarchy dataset at depths 0, 1 and 2. "Cold" uses a fresh engine
with no cache; "warm" replays the identical path on a *new* engine that
shares an :class:`~repro.serving.cache.AggregateCache` already populated
by one prior run — the multi-user / replay scenario the serving layer
targets. The series asserts the two paths return exactly equal
recommendations and that the warm path is ≥2x faster at depth ≥2; the
``unit-builds`` column shows the §4.4 effect — the warm engine rebuilds
no :class:`~repro.factorized.multiquery.HierarchyAggregates` unit at all,
and even cold, each drill rebuilds only the drilled hierarchy's unit.
"""

import time

import numpy as np
import pytest

from repro import Complaint, HierarchicalDataset, Relation, Reptile, \
    ReptileConfig, Schema, dimension, measure
from repro.serving import AggregateCache

from bench_utils import SMOKE, fmt, report, smoke

N_DISTRICTS = smoke(3, 6)
N_VILLAGES = smoke(3, 8)
YEARS = range(1984, smoke(1987, 1990))
N_MONTHS = smoke(3, 12)
N_EM_ITERATIONS = smoke(2, 20)


def build_dataset() -> HierarchicalDataset:
    """geo: district → village, time: year → month; one planted error."""
    rng = np.random.default_rng(42)
    rows = []
    for d in range(N_DISTRICTS):
        district = f"d{d:02d}"
        for v in range(N_VILLAGES):
            village = f"d{d:02d}v{v:02d}"
            for year in YEARS:
                for m in range(1, N_MONTHS + 1):
                    month = f"{year}-{m:02d}"  # leaf must determine year
                    level = 5.0 + (3.0 if year == 1986 else 0.0)
                    value = float(level + rng.normal(0, 0.8))
                    if district == "d01" and v == 3 and year == 1986:
                        value -= 4.0  # the planted under-report
                    rows.append((district, village, year, month, value))
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), dimension("month"),
                     measure("severity")])
    relation = Relation.from_rows(schema, rows)
    return HierarchicalDataset.build(
        relation,
        {"geo": ["district", "village"], "time": ["year", "month"]},
        measure="severity")


def run_path(engine: Reptile):
    """Replay the drill loop; per-depth recommendations and latencies."""
    session = engine.session(group_by=["year"])
    complaint = Complaint.too_low({"year": 1986}, "mean")
    recommendations, seconds = [], []
    for depth in range(3):
        start = time.perf_counter()
        recommendation = session.recommend(complaint)
        session.aggregates()
        seconds.append(time.perf_counter() - start)
        recommendations.append(recommendation)
        if depth < 2:
            session.drill(recommendation.best_hierarchy)
    return recommendations, seconds, session.unit_computations


@pytest.fixture(scope="module")
def dataset() -> HierarchicalDataset:
    return build_dataset()


def _config() -> ReptileConfig:
    return ReptileConfig(n_em_iterations=N_EM_ITERATIONS)


def test_cold_path(benchmark, dataset):
    def cold():
        return run_path(Reptile(dataset, config=_config()))
    recommendations, _, _ = benchmark.pedantic(cold, rounds=1, iterations=1)
    assert len(recommendations) == 3


def test_warm_path(benchmark, dataset):
    cache = AggregateCache()
    run_path(Reptile(dataset, config=_config(), cache=cache))  # warm it

    def warm():
        return run_path(Reptile(dataset, config=_config(), cache=cache))
    recommendations, _, _ = benchmark.pedantic(warm, rounds=1, iterations=1)
    assert len(recommendations) == 3


def test_figure14_series(benchmark):
    def sweep():
        data = build_dataset()
        cold_engine = Reptile(data, config=_config())
        cold = run_path(cold_engine)
        cache = AggregateCache()
        first = Reptile(data, config=_config(), cache=cache)
        run_path(first)
        warm_engine = Reptile(data, config=_config(), cache=cache)
        warm = run_path(warm_engine)
        return cold, warm, cold_engine.unit_builds, warm_engine.unit_builds

    (cold, warm, cold_builds, warm_builds) = benchmark.pedantic(
        sweep, rounds=1, iterations=1)
    cold_recs, cold_seconds, _ = cold
    warm_recs, warm_seconds, warm_reuses = warm

    # Cached results must be exactly what the uncached engine computes.
    assert warm_recs == cold_recs
    # The warm engine never rebuilds a hierarchy unit; the cold one
    # rebuilds only the drilled hierarchy's unit per drill (1 unit at the
    # initial year-level state + 1 per drill = 3 builds, never a full
    # recompute of both hierarchies per invocation).
    assert warm_builds == 0
    assert cold_builds == 3
    assert warm_reuses == 3  # fetched 3 units, all served by the cache

    lines = ["depth  cold(s)   warm(s)   speedup"]
    for depth, (c, w) in enumerate(zip(cold_seconds, warm_seconds)):
        lines.append(f"{depth:<6d} {fmt(c)}    {fmt(w)}    "
                     f"{c / max(w, 1e-9):6.1f}x")
    total_cold, total_warm = sum(cold_seconds), sum(warm_seconds)
    lines.append(f"total  {fmt(total_cold)}    {fmt(total_warm)}    "
                 f"{total_cold / max(total_warm, 1e-9):6.1f}x")
    lines.append(f"unit-builds: cold={cold_builds} warm={warm_builds}")
    report("fig14_serving", lines)

    # Acceptance: ≥2x cold-vs-warm at drill depth ≥ 2.
    if SMOKE:
        return
    assert cold_seconds[2] >= 2.0 * warm_seconds[2], \
        f"depth-2 speedup below 2x: cold={cold_seconds[2]:.4f}s " \
        f"warm={warm_seconds[2]:.4f}s"
