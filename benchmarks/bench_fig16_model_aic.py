"""Figure 16 (Appendix K): ΔAIC comparison of the four model variants.

Paper shape: on FIST-like data the multi-level variants beat the linear
ones by ΔAIC in the hundreds-to-thousands; on Vote-like data the auxiliary
(2016) feature dominates and multilevel-f is best; ΔAIC > 10 is the
"substantially better" rule of thumb.
"""

from repro.experiments.model_quality import MODEL_NAMES, run_all

from bench_utils import SMOKE, report, smoke


def test_model_quality(benchmark):
    results = benchmark.pedantic(lambda: run_all(seed=0,
                                                 n_iterations=smoke(3, 12)),
                                 rounds=1, iterations=1)
    lines = ["dataset  " + "  ".join(f"{m:>13s}" for m in MODEL_NAMES)
             + "   (ΔAIC, 0 = best)"]
    for name, r in results.items():
        lines.append(f"{name:<8s} " + "  ".join(
            f"{r.deltas[m]:>13.1f}" for m in MODEL_NAMES))
    report("fig16_model_aic", lines)

    if SMOKE:
        return
    for r in results.values():
        assert r.best() == "multilevel-f"
        assert r.deltas["linear"] > 10.0  # substantially worse
