"""Figure 15 (Appendix F): per-cluster matrix operations vs a Lapack loop.

Paper shape: batched factorised per-cluster gram/left/right beat the
per-cluster LAPACK loop by 3×/5.8×/6.9× at d = 7 hierarchies; we sweep
d = 1..4 (3 attributes each, w = 10) and expect the same widening gap.
"""

import numpy as np
import pytest

from repro.datagen.perf import deep_hierarchies, random_feature_matrix
from repro.experiments.perf import sweep_cluster_ops
from repro.factorized.cluster_ops import ClusterOps
from repro.factorized.forder import AttributeOrder

from bench_utils import fmt, report, smoke

DS = smoke([1, 2], [1, 2, 3, 4])


def _ops(d, seed=0):
    rng = np.random.default_rng(seed)
    order = AttributeOrder(deep_hierarchies(d, 3, 10))
    matrix = random_feature_matrix(order, rng)
    return ClusterOps(matrix), matrix, rng


@pytest.mark.parametrize("d", DS)
def test_cluster_grams_factorized(benchmark, d):
    ops, _, _ = _ops(d)
    benchmark(ops.cluster_grams)


@pytest.mark.parametrize("d", DS)
def test_cluster_grams_dense_loop(benchmark, d):
    ops, matrix, _ = _ops(d)
    x = matrix.materialize()
    offsets = ops.offsets

    def loop():
        return [x[offsets[i]:offsets[i + 1]].T @ x[offsets[i]:offsets[i + 1]]
                for i in range(ops.n_clusters)]

    benchmark(loop)


@pytest.mark.parametrize("d", DS)
def test_cluster_right_factorized(benchmark, d):
    ops, matrix, rng = _ops(d)
    b = rng.normal(size=(ops.n_clusters, matrix.n_cols))
    benchmark(lambda: ops.cluster_right(b))


@pytest.mark.parametrize("d", DS)
def test_cluster_right_dense_loop(benchmark, d):
    ops, matrix, rng = _ops(d)
    b = rng.normal(size=(ops.n_clusters, matrix.n_cols))
    x = matrix.materialize()
    offsets = ops.offsets

    def loop():
        return [x[offsets[i]:offsets[i + 1]] @ b[i]
                for i in range(ops.n_clusters)]

    benchmark(loop)


def test_figure15_series(benchmark):
    timings = benchmark.pedantic(lambda: sweep_cluster_ops(max(DS)),
                                 rounds=1, iterations=1)
    lines = ["d  rows    clusters  op     dense-loop(s)  factorized(s)  ratio"]
    for t in timings:
        for op in ("gram", "left", "right"):
            dense = getattr(t, f"{op}_dense")
            fact = getattr(t, f"{op}_factorized")
            ratio = dense / fact if fact > 0 else float("inf")
            lines.append(f"{t.n_hierarchies}  {t.n_rows:<7d} "
                         f"{t.n_clusters:<9d} {op:<6s} {fmt(dense)}       "
                         f"{fmt(fact)}       {ratio:7.1f}")
    report("fig15_cluster_ops", lines)
