"""Figure 22 (repro-only): sharded parallel cube build at 1e6–1e7 rows.

The single-process cube tops out where one core (and one memory image)
does. This harness drives the sharding layer end to end at 1e6–1e7 rows:

* **chunked datagen** — ``drought_chunks`` streams ``{column: array}``
  chunks and ``dataset_from_chunks`` encodes them incrementally
  (per-chunk factorize + ``DictEncoding.merge``), so the coordinator
  never holds a row-object image or even full value arrays;
* **sharded build** — ``ShardedCube`` partitions by the hierarchy-prefix
  key, ships shard code columns through shared memory to a persistent
  worker pool, and k-way merges the per-shard blocks with
  ``merge_stats_blocks``;
* **in-run equality** — at every scale the sharded arrays (key codes,
  count/total/sumsq) must be *bitwise* identical to the single-process
  ``Cube`` built on the same dataset, and to a single-shard
  ``ShardedCube`` oracle at the largest scale that fits one image;
* **delta locality** — a batch confined to one district must patch
  exactly one shard block (patch counters prove it) while staying
  bitwise-equal to the single-process incremental path.

Reported per scale: single vs sharded build seconds, merge/pack seconds,
per-worker utilization, and the coordinator's peak RSS for the
chunked+sharded pipeline vs the all-in-one-image build (full value
columns materialized, cold encode). Acceptance floors (full scale only):
sharded build ≥3x over single-process at 1e6+ rows when ≥4 workers are
available, and at 1e7 rows the all-in-one image must push peak RSS well
above the chunked coordinator's high-water mark.
"""

import os
import time

import numpy as np

from repro.datagen.perf import (DROUGHT_HIERARCHIES, DROUGHT_MEASURE,
                                drought_chunks)
from repro.relational import (Cube, Delta, Relation, Schema, ShardedCube,
                              dataset_from_chunks, dimension, measure,
                              shutdown_worker_pools)

from bench_utils import (SMOKE, fmt, peak_rss_bytes, report, report_json,
                         smoke)

SIZES = smoke([3_000], [1_000_000, 10_000_000])
CHUNK_ROWS = smoke(1_000, 1_000_000)
N_SHARDS = smoke(3, 8)
WORKERS = smoke(2, min(8, os.cpu_count() or 1))
REPS = smoke(1, 3)
#: Largest scale at which the single-shard oracle build also runs.
ORACLE_MAX = smoke(3_000, 1_000_000)
#: The chunked-vs-one-image RSS floor applies from this scale up.
RSS_SCALE = 10_000_000
FLOOR = 3.0
DELTA_DISTRICT = "d0003"

SCHEMA = Schema([dimension("district"), dimension("village"),
                 dimension("year"), measure(DROUGHT_MEASURE)])


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _chunks(n):
    return drought_chunks(n, CHUNK_ROWS, seed=0)


def _assert_bitwise_equal(sharded, oracle, label):
    assert np.array_equal(sharded._key_codes, oracle._key_codes), \
        f"{label}: key blocks differ"
    for name in ("count", "total", "sumsq"):
        a = getattr(sharded.leaf_stats, name)
        b = getattr(oracle.leaf_stats, name)
        assert np.array_equal(a, b), f"{label}: {name} not bitwise-equal"


def _one_image_build(n):
    """The pre-sharding alternative: full value columns in one image.

    Materializes every column as one concatenated value array (what a
    non-streaming loader holds) and pays the cold whole-column encode —
    the memory shape the chunked coordinator is measured against.
    """
    parts = {name: [] for name in SCHEMA.names}
    for chunk in _chunks(n):
        for name in SCHEMA.names:
            parts[name].append(np.asarray(chunk[name]))
    columns = {name: np.concatenate(arrs) for name, arrs in parts.items()}
    del parts
    relation = Relation(SCHEMA, columns)
    del columns
    dataset = _as_dataset(relation)
    return Cube(dataset)


def _as_dataset(relation):
    from repro.relational import HierarchicalDataset
    return HierarchicalDataset.build(relation, DROUGHT_HIERARCHIES,
                                     DROUGHT_MEASURE, validate=False)


def _district_delta(dataset, seed=7):
    """A mixed batch confined to one district: the locality workload."""
    rng = np.random.default_rng(seed)
    appended = [(DELTA_DISTRICT, f"v{3 * 50 + int(v):06d}",
                 int(1980 + rng.integers(0, 25)),
                 float(rng.integers(0, 100)))
                for v in rng.integers(0, 50, 64)]
    appended += [(DELTA_DISTRICT, f"newv-{j}", 2010, float(j))
                 for j in range(8)]
    return Delta.from_rows(SCHEMA, appended)


def test_figure22_series(benchmark):
    lines = ["n         single(s)  sharded(s)  speedup  merge(s)  util   "
             "rss-chunked(MB)  rss-1image(MB)"]
    json_rows = []
    build_floors = []
    rss_floors = []
    try:
        for n in SIZES:
            # -- chunked + sharded coordinator --------------------------------
            dataset, t_encode = _timed(
                lambda: dataset_from_chunks(_chunks(n), DROUGHT_HIERARCHIES,
                                            DROUGHT_MEASURE, validate=False))
            best_single, best_sharded = float("inf"), float("inf")
            sharded = None
            for _ in range(REPS):
                cube, t_single = _timed(lambda: Cube(dataset))
                sharded, t_sharded = _timed(
                    lambda: ShardedCube(dataset, n_shards=N_SHARDS,
                                        workers=WORKERS))
                best_single = min(best_single, t_single)
                best_sharded = min(best_sharded, t_sharded)
            _assert_bitwise_equal(sharded, cube, f"n={n} vs Cube")
            if n <= ORACLE_MAX:
                oracle = ShardedCube(dataset, n_shards=1, workers=0)
                _assert_bitwise_equal(sharded, oracle,
                                      f"n={n} vs single-shard oracle")
            timings = sharded.timings
            busy = timings.get("worker_busy_s", [])
            wall = timings.get("build_wall_s", 0.0)
            eff_workers = min(WORKERS, max(len(busy), 1)) or 1
            utilization = (sum(busy) / (eff_workers * wall)) if wall else 0.0
            rss_chunked = peak_rss_bytes()

            # -- delta locality: one district, one shard ----------------------
            delta = _district_delta(dataset)
            cube_ref = Cube(dataset)
            before = list(sharded.shard_patches)
            _, t_apply = _timed(lambda: sharded.apply_delta(delta))
            cube_ref.apply_delta(delta)
            touched = [s for s, (a, b) in
                       enumerate(zip(before, sharded.shard_patches)) if b > a]
            assert len(touched) == 1, \
                f"district delta touched shards {touched}, expected one"
            _assert_bitwise_equal(sharded, cube_ref, f"n={n} post-delta")
            _, t_rebuild = _timed(
                lambda: ShardedCube(dataset, n_shards=N_SHARDS,
                                    workers=WORKERS))

            # -- the all-in-one-image alternative -----------------------------
            _, t_one_image = _timed(lambda: _one_image_build(n))
            rss_one_image = peak_rss_bytes()

            ratio = best_single / best_sharded if best_sharded else 0.0
            delta_ratio = t_rebuild / t_apply if t_apply else 0.0
            rss_ratio = rss_one_image / rss_chunked if rss_chunked else 0.0
            lines.append(
                f"{n:<9d} {fmt(best_single)}     {fmt(best_sharded)}      "
                f"{ratio:5.1f}x  {fmt(timings.get('merge_s', 0.0))}    "
                f"{utilization:4.2f}   {rss_chunked / 1e6:12.1f}     "
                f"{rss_one_image / 1e6:10.1f}")
            json_rows.append({
                "op": "sharded-build", "scale": n, "cold": best_single,
                "warm": best_sharded, "speedup": ratio,
                "shards": N_SHARDS, "workers": WORKERS,
                "encode_s": t_encode, "merge_s": timings.get("merge_s"),
                "pack_s": timings.get("pack_s"),
                "build_wall_s": wall, "utilization": utilization,
                "fallback": timings.get("fallback"),
                "peak_rss_bytes": rss_chunked})
            json_rows.append({
                "op": "delta-route", "scale": n, "cold": t_rebuild,
                "warm": t_apply, "speedup": delta_ratio,
                "shards_touched": touched,
                "peak_rss_bytes": rss_chunked})
            json_rows.append({
                "op": "one-image-build", "scale": n, "cold": t_one_image,
                "warm": best_sharded,
                "speedup": t_one_image / best_sharded if best_sharded
                else 0.0,
                "rss_ratio": rss_ratio,
                "peak_rss_bytes": rss_one_image})
            if n >= 1_000_000 and (os.cpu_count() or 1) >= 4 \
                    and WORKERS >= 4:
                build_floors.append((n, ratio))
            if n >= RSS_SCALE:
                rss_floors.append((n, rss_chunked, rss_one_image))
    finally:
        shutdown_worker_pools()
    report("fig22_sharded", lines)
    report_json("fig22_sharded", json_rows)
    if not SMOKE:
        for n, ratio in build_floors:
            assert ratio >= FLOOR, (
                f"sharded build at n={n}: {ratio:.1f}x < {FLOOR}x floor "
                f"({WORKERS} workers)")
        for n, rss_chunked, rss_one_image in rss_floors:
            assert rss_one_image >= 1.5 * rss_chunked, (
                f"n={n}: one-image peak RSS {rss_one_image / 1e6:.0f}MB is "
                f"not well above the chunked coordinator's "
                f"{rss_chunked / 1e6:.0f}MB high-water mark")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
