"""Collate the machine-readable benchmark rows into BENCH_HISTORY.json.

Every harness persists its series to ``benchmarks/out/<name>.json`` via
``bench_utils.report_json``. This script flattens those files into one
repo-root ``BENCH_HISTORY.json`` — one record per (figure, op, scale)
row with the fields the cross-PR perf tracking reads: ``fig`` (the
harness name), ``op``, ``scale``, ``speedup``, ``peak_rss_bytes`` and
``cpu_count``. Smoke rows (``benchmarks/out/smoke/``) are excluded —
their timings are a does-it-still-run gate, not measurements.

Usage::

    python benchmarks/collect_history.py           # rewrite BENCH_HISTORY.json
    python benchmarks/collect_history.py --check   # verify it parses, print a summary

Exits non-zero when no full-scale JSON series exist (nothing to track)
or a file is malformed.
"""

from __future__ import annotations

import glob
import json
import os
import sys

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
HISTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_HISTORY.json")

#: The fields every history record carries (missing values become None
#: rather than dropping the record — a hole in the series is visible,
#: a silently skipped row is not).
FIELDS = ("op", "scale", "speedup", "peak_rss_bytes", "cpu_count")


def collect() -> list[dict]:
    records: list[dict] = []
    for path in sorted(glob.glob(os.path.join(OUT_DIR, "*.json"))):
        name = os.path.splitext(os.path.basename(path))[0]
        with open(path) as f:
            payload = json.load(f)
        if payload.get("smoke"):
            continue
        for row in payload.get("rows", []):
            if not isinstance(row, dict):
                raise ValueError(f"{name}: non-object row {row!r}")
            record = {"fig": name}
            record.update({field: row.get(field) for field in FIELDS})
            records.append(record)
    return records


def main(argv: list[str]) -> int:
    try:
        records = collect()
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"collect_history: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(f"collect_history: no full-scale series under {OUT_DIR} — "
              f"run `make bench` first", file=sys.stderr)
        return 1
    figs = sorted({r["fig"] for r in records})
    if "--check" not in argv:
        with open(HISTORY_PATH, "w") as f:
            json.dump({"rows": records}, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"collect_history: wrote {len(records)} rows from "
              f"{len(figs)} figures to {os.path.normpath(HISTORY_PATH)}")
    else:
        print(f"collect_history: {len(records)} rows across {figs}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
