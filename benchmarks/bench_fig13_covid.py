"""Figure 13 + Tables 1–2: the COVID-19 case study.

Paper shape: Reptile identifies 21/30 issues (70%); Sensitivity 6.6% and
Support 3.3% (they just pick the largest location); Reptile's per-issue
failures are exactly the prevalent and subtle error categories. Mean
per-complaint runtime ≈ 0.5 s in the paper's C++; ours is reported
alongside.
"""

import pytest

from repro.experiments.covid import run_case_study

from bench_utils import SMOKE, fmt, report, smoke


def test_covid_case_study(benchmark):
    summary = benchmark.pedantic(
        lambda: run_case_study(seed=0, n_iterations=smoke(2, 10)), rounds=1,
        iterations=1)

    lines = ["approach      accuracy   (paper)"]
    paper = {"reptile": "0.70", "sensitivity": "0.066", "support": "0.033"}
    for approach in ("reptile", "sensitivity", "support"):
        lines.append(f"{approach:<13s} {summary.accuracy(approach):>7.3f}"
                     f"    ({paper[approach]})")
    lines.append(f"mean Reptile runtime: {fmt(summary.mean_runtime(), 3)}s "
                 f"(paper: ~0.5s in C++)")
    lines.append("")
    lines.append("Tables 1-2 — id, issue, RP, ST, SP (x = identified):")
    for issue_id, description, rp, st_, sp in summary.table_rows():
        marks = "".join("x" if hit else "." for hit in (rp, st_, sp))
        lines.append(f"  {issue_id:<6s} {description:<45s} {marks}")
    agreement = sum(
        r.hits["reptile"] == r.issue.expected_detected
        for r in summary.results) / len(summary.results)
    lines.append(f"per-issue agreement with the paper's RP column: "
                 f"{agreement:.2f}")
    report("fig13_covid", lines)

    if SMOKE:
        return
    assert summary.accuracy("reptile") >= 0.6
    assert summary.accuracy("reptile") > summary.accuracy("sensitivity")
    assert summary.accuracy("reptile") > summary.accuracy("support")
    assert agreement >= 0.85
