"""Figure 21 (repro-only): concurrent serving throughput and latency.

The serving front end multiplexes many analysts over shared datasets:
reads (session views, batched one-shot recommendations) hold a shared
per-dataset read lock while ingest bursts take the exclusive write lock.
This harness drives the real dispatch stack — locks, admission control,
cross-request batching, telemetry, JSON payload shaping; everything
above the socket — with a mixed 90/10 read/ingest workload from many
client threads and holds a throughput/latency floor.

Protocol per scale: CLIENTS threads each issue a fixed request sequence
against one ServerApp (90% reads — views with periodic batched
recommendations — 10% hot-leaf ingests). Every response is checked
in-run for snapshot consistency: its totals must match the cumulative
delta oracle at exactly the ``data_version`` it reports, so a response
mixing two versions fails the run. Afterwards the final served view is
compared bitwise against a *single-threaded oracle*: a fresh service
that applies the recorded deltas sequentially in version order
(integer-valued measure, so float sums are exact). The same workload
also runs single-threaded on its own service: the reported ``speedup``
is single-thread elapsed over concurrent elapsed for identical request
totals.

Acceptance floor (full scale, ≥1e5 rows): sustained throughput
≥ 200 req/s with read p99 ≤ 250 ms, zero rejected requests.
"""

import threading
import time

import numpy as np

from repro import HierarchicalDataset, Relation, ReptileConfig, Schema, \
    dimension, measure
from repro.serving import ExplanationService, ServerApp

from bench_utils import SMOKE, fmt, report, report_json, smoke

SIZES = smoke([2_000], [100_000])
CLIENTS = smoke(3, 8)
REQUESTS_PER_CLIENT = smoke(10, 250)
N_DISTRICTS = 40
VILLAGES_PER_DISTRICT = 50
N_YEARS = 25
#: Ingests are confined to these districts (late regional reports).
DELTA_DISTRICTS = ("d001", "d002")
THROUGHPUT_FLOOR = 200.0   # requests / second, mixed workload
READ_P99_FLOOR = 0.250     # seconds

CONFIG = ReptileConfig(n_em_iterations=2)


def _rows(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    d = rng.integers(0, N_DISTRICTS, n)
    v = d * VILLAGES_PER_DISTRICT \
        + rng.integers(0, VILLAGES_PER_DISTRICT, n)  # village → district FD
    districts = np.array([f"d{i:03d}" for i in range(N_DISTRICTS)])
    villages = np.array([f"v{i:05d}" for i in
                         range(N_DISTRICTS * VILLAGES_PER_DISTRICT)])
    return {
        "district": districts[d],
        "village": villages[v],
        "year": 1980 + rng.integers(0, N_YEARS, n),
        # Integer-valued: float sums are exact in any order, so the
        # concurrent run and the serialized oracle must agree bitwise.
        "severity": rng.integers(0, 100, n).astype(float)}


def _dataset(n: int, seed: int = 0) -> HierarchicalDataset:
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    return HierarchicalDataset.build(
        Relation(schema, _rows(n, seed)),
        {"geo": ["district", "village"], "time": ["year"]},
        "severity", validate=False)


def _ingest_bodies(dataset: HierarchicalDataset, client: int,
                   count: int) -> list[dict]:
    """Small append batches to hot leaves of the delta districts."""
    rng = np.random.default_rng(500 + client)
    relation = dataset.relation
    cols = {a: relation.column_values(a)
            for a in ("district", "village", "year")}
    local = [i for i, d in enumerate(cols["district"])
             if d in DELTA_DISTRICTS]
    bodies = []
    for _ in range(count):
        rows = []
        for i in rng.choice(local, size=3):
            rows.append({"district": cols["district"][i],
                         "village": cols["village"][i],
                         "year": int(cols["year"][i]),
                         "severity": float(rng.integers(0, 100))})
        bodies.append({"rows": rows})
    return bodies


RECOMMEND_BODY = {"aggregate": "mean", "direction": "too_low",
                  "coordinates": {"district": "d001"},
                  "group_by": ["district"], "k": 3}


def _client_plan(n_requests: int) -> list[str]:
    """The per-client request mix: 10% ingest, the rest views with a
    periodic batched one-shot recommend."""
    plan = []
    for j in range(n_requests):
        if j % 10 == 9:
            plan.append("ingest")
        elif j % 5 == 2:
            plan.append("recommend")
        else:
            plan.append("view")
    return plan


def _make_app(n: int) -> ServerApp:
    service = ExplanationService(config=CONFIG)
    service.register("data", _dataset(n))
    return ServerApp(service, max_concurrent=16, max_queue=256,
                     queue_timeout=30.0, batch_window_seconds=0.001)


class _Run:
    """One execution of the mixed workload against one app."""

    def __init__(self, app: ServerApp, concurrent: bool):
        self.app = app
        self.concurrent = concurrent
        dataset = app.service.engine("data").dataset
        self.base = (len(dataset.relation),
                     float(sum(dataset.relation.column_values("severity"))))
        self.plans = {i: _client_plan(REQUESTS_PER_CLIENT)
                      for i in range(CLIENTS)}
        self.bodies = {i: _ingest_bodies(dataset, i,
                                         sum(1 for op in self.plans[i]
                                             if op == "ingest"))
                       for i in range(CLIENTS)}
        self.deltas: dict[int, list[dict]] = {}
        self._deferred: list[tuple[int, tuple[int, float]]] = []
        self.failures: list[str] = []
        self._lock = threading.Lock()
        for i in range(CLIENTS):
            status, _, payload = app.dispatch(
                "POST", "/datasets/data/sessions",
                {"group_by": ["district"], "session_id": f"c{i}"})
            assert status == 201, payload
        # Steady state, matching the fig20 protocol: a live dashboard
        # serves from warm caches; one view + one recommendation + one
        # absorbed delta populate them. Telemetry is reset afterwards so
        # the quantiles measure serving, not first-touch construction.
        assert app.dispatch("GET", "/sessions/c0/view")[0] == 200
        assert app.dispatch("POST", "/datasets/data/recommend",
                            dict(RECOMMEND_BODY))[0] == 200
        warm = _ingest_bodies(dataset, 999, 1)[0]
        status, _, payload = app.dispatch("POST", "/datasets/data/ingest",
                                          warm)
        assert status == 200, payload
        self.deltas[payload["version"]] = warm["rows"]
        assert app.dispatch("POST", "/datasets/data/recommend",
                            dict(RECOMMEND_BODY))[0] == 200
        from repro.serving.concurrency import Telemetry
        app.telemetry = Telemetry()

    def _expected(self, version: int) -> tuple[int, float]:
        count, total = self.base
        with self._lock:
            for v, rows in self.deltas.items():
                if v <= version:
                    count += len(rows)
                    total += float(sum(r["severity"] for r in rows))
        return count, total

    def _check_view(self, payload: dict) -> None:
        got = (sum(g["count"] for g in payload["groups"]),
               float(sum(g["sum"] for g in payload["groups"])))
        version = payload["data_version"]
        if got != self._expected(version):
            # Not necessarily torn: the ingester that produced this
            # version may not have *recorded* its delta yet (it does so
            # after its dispatch returns). Re-verified post-join, when
            # the oracle is complete.
            with self._lock:
                self._deferred.append((version, got))

    def _client(self, i: int) -> None:
        ingests = iter(self.bodies[i])
        for op in self.plans[i]:
            if op == "ingest":
                body = next(ingests)
                status, _, payload = self.app.dispatch(
                    "POST", "/datasets/data/ingest", body)
                if status != 200:
                    self.failures.append(f"ingest -> {status}: {payload}")
                    return
                with self._lock:
                    self.deltas[payload["version"]] = body["rows"]
            elif op == "recommend":
                status, _, payload = self.app.dispatch(
                    "POST", "/datasets/data/recommend",
                    dict(RECOMMEND_BODY))
                if status != 200:
                    self.failures.append(f"recommend -> {status}: {payload}")
                    return
            else:
                status, _, payload = self.app.dispatch(
                    "GET", f"/sessions/c{i}/view")
                if status != 200:
                    self.failures.append(f"view -> {status}: {payload}")
                    return
                self._check_view(payload)

    def execute(self) -> float:
        """Run the workload; returns elapsed wall seconds."""
        if self.concurrent:
            threads = [threading.Thread(target=self._client, args=(i,),
                                        name=f"client-{i}")
                       for i in range(CLIENTS)]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join(600.0)
            elapsed = time.perf_counter() - start
            assert not any(t.is_alive() for t in threads), \
                "client threads hung"
        else:
            start = time.perf_counter()
            for i in range(CLIENTS):
                self._client(i)
            elapsed = time.perf_counter() - start
        assert not self.failures, self.failures[:10]
        # With every delta recorded the oracle is complete: any deferred
        # observation that still disagrees really was a torn read.
        torn = [(v, got) for v, got in self._deferred
                if got != self._expected(v)]
        assert not torn, f"torn reads: {torn[:10]}"
        return elapsed


def _oracle_final_view(run: _Run, n: int) -> dict:
    """The final district view from a fresh service that applies the
    concurrent run's deltas one at a time, in version order."""
    service = ExplanationService(config=CONFIG)
    service.register("data", _dataset(n))
    sid = service.open_session("data", group_by=["district"])
    for _, rows in sorted(run.deltas.items()):
        service.ingest("data", [tuple(r[a] for a in
                                      ("district", "village", "year",
                                       "severity"))
                                for r in rows])
    view, version = service.with_session(sid, lambda s: s.view())
    return {key: (state.count, state.total, state.sumsq)
            for key, state in view.groups.items()}, version


def test_figure21_server_series(benchmark):
    lines = ["n        clients  req   elapsed(s)  req/s    read-p99(ms)  "
             "ingest-p99(ms)  collapse  speedup"]
    json_rows = []
    total_requests = CLIENTS * REQUESTS_PER_CLIENT
    for n in SIZES:
        # Single-threaded reference: same request totals, one thread.
        st_run = _Run(_make_app(n), concurrent=False)
        st_elapsed = st_run.execute()

        app = _make_app(n)
        run = _Run(app, concurrent=True)
        elapsed = run.execute()
        throughput = total_requests / elapsed

        endpoints = app.telemetry.snapshot()
        read_p99 = max(endpoints[e]["p99_seconds"]
                       for e in ("view", "batch_recommend")
                       if e in endpoints)
        ingest_p99 = endpoints["ingest"]["p99_seconds"]
        admission = app.admission.stats()
        assert admission["rejected"] == 0 and admission["timed_out"] == 0, \
            f"admission shed load mid-benchmark: {admission}"

        # Equality vs the serialized oracle: the final served view must
        # match a fresh engine that ingested the same deltas one by one.
        status, _, final = app.dispatch("GET", "/sessions/c0/view")
        assert status == 200
        oracle_groups, oracle_version = _oracle_final_view(run, n)
        assert final["data_version"] == oracle_version
        served = {tuple(g["key"]): (float(g["count"]), g["sum"], g["sumsq"])
                  for g in final["groups"]}
        assert served == oracle_groups, "served view diverged from the " \
            "single-threaded oracle"

        collapse = app.batches.stats()["collapse_ratio"]
        speedup = st_elapsed / elapsed if elapsed > 0 else float("inf")
        lines.append(
            f"{n:<8d} {CLIENTS:<8d} {total_requests:<5d} {fmt(elapsed)}"
            f"      {throughput:7.1f}  {read_p99 * 1000:12.1f}  "
            f"{ingest_p99 * 1000:14.1f}  {collapse:8.2f}  {speedup:5.2f}x")
        json_rows.append({
            "op": "mixed-90-10", "scale": n, "clients": CLIENTS,
            "requests": total_requests, "cold": st_elapsed,
            "warm": elapsed, "speedup": speedup,
            "throughput_rps": throughput,
            "read_p99_seconds": read_p99,
            "ingest_p99_seconds": ingest_p99,
            "batch_collapse_ratio": collapse})
        if not SMOKE and n >= 100_000:
            assert throughput >= THROUGHPUT_FLOOR, (
                f"throughput {throughput:.1f} req/s < "
                f"{THROUGHPUT_FLOOR} req/s floor at n={n}")
            assert read_p99 <= READ_P99_FLOOR, (
                f"read p99 {read_p99 * 1000:.1f}ms > "
                f"{READ_P99_FLOOR * 1000:.0f}ms floor at n={n}")
    report("fig21_server", lines)
    report_json("fig21_server", json_rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
