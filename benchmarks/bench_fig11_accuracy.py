"""Figure 11: explanation accuracy vs baselines on synthetic errors.

Paper shape: Reptile is consistently the most accurate across all six
error conditions and exploits the auxiliary data even at weak correlation;
Sensitivity/Support are flat (no auxiliary use); Raw cannot detect
missing/duplicated rows; Support only does well under duplication.
"""

import pytest

from repro.datagen.errors import CONDITIONS
from repro.experiments.accuracy import run_condition

from bench_utils import SMOKE, report, smoke

RHOS = smoke([1.0], [0.6, 0.8, 1.0])
N_TRIALS = smoke(2, 30)
APPROACHES = ("reptile", "raw", "sensitivity", "support")


@pytest.mark.parametrize("condition", list(CONDITIONS))
def test_condition_accuracy(benchmark, condition):
    results = benchmark.pedantic(
        lambda: [run_condition(condition, rho, n_trials=N_TRIALS,
                               seed=hash(condition) % 1000 + int(rho * 10),
                               n_iterations=8)
                 for rho in RHOS],
        rounds=1, iterations=1)
    lines = ["rho   " + "  ".join(f"{a:>11s}" for a in APPROACHES)]
    for res in results:
        lines.append(f"{res.rho:<5.1f} " + "  ".join(
            f"{res.accuracy[a]:>11.2f}" for a in APPROACHES))
    safe = condition.replace(" ", "_").replace("(", "").replace(")", "")
    report(f"fig11_{safe}", lines)
    # Shape assertions: Reptile leads (with slack for trial noise).
    if SMOKE:
        return
    final = results[-1]  # rho = 1.0
    assert final.accuracy["reptile"] >= 0.6
    assert final.accuracy["reptile"] >= final.accuracy["raw"] - 0.1
    assert final.accuracy["reptile"] >= final.accuracy["support"] - 0.1
