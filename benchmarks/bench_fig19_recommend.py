"""Figure 19 (repro-only): array-native recommend path vs the dict path.

Measures one full ``rank_candidates`` invocation — drill-down view,
parallel view, per-statistic repair-model fits, and the eq. 3 scoring
sweep — through the array-native pipeline against the frozen
group-at-a-time reference in ``repro.core.rankref`` on identical cubes:

* **rank-candidates** — the whole §4.5 invocation (what
  ``ExplanationService`` runs per complaint);
* **score-sweep** — the eq. 3 scoring/ranking step alone, on a shared
  prediction;
* **top-k** — the serving configuration (only the analyst-visible groups
  are materialized).

Every timed pair is checked for *exact* result equality: same group keys,
same scores (bitwise), same ordering, same observed/expected statistics.
Acceptance target: ≥5× for rank-candidates at ≥10⁴ drill-down groups.
"""

import time

import numpy as np
import pytest

from repro.core import rankref
from repro.core.complaint import Complaint
from repro.core.ranker import rank_candidates, score_drilldown
from repro.core.repair import ModelRepairer
from repro.relational import (Cube, HierarchicalDataset, Relation, Schema,
                              dimension, measure)

from bench_utils import fmt, report, smoke

#: Drill-down group counts (items under the complained block).
SIZES = smoke([150], [2_000, 12_000])
N_BLOCKS = 2
N_YEARS = 3
ROWS_PER_ITEM = 3
TOP_K = 5


def _dataset(n_drill: int, seed: int = 0) -> HierarchicalDataset:
    """A block→item hierarchy with ``n_drill`` items per block."""
    rng = np.random.default_rng(seed)
    n_items = n_drill * N_BLOCKS
    n = n_items * ROWS_PER_ITEM
    # Every item occurs exactly ROWS_PER_ITEM times, so the drill-down
    # view under one block has exactly n_drill groups.
    item = rng.permutation(np.repeat(np.arange(n_items), ROWS_PER_ITEM))
    block = item // n_drill
    blocks = np.array([f"b{i}" for i in range(N_BLOCKS)])
    items = np.array([f"i{i:06d}" for i in range(n_items)])
    schema = Schema([dimension("block"), dimension("item"),
                     dimension("year"), measure("severity")])
    relation = Relation(schema, {
        "block": blocks[block],
        "item": items[item],
        "year": 2000 + rng.integers(0, N_YEARS, n),
        # Integer-valued measure: float sums are exact in any order.
        "severity": rng.integers(0, 100, n).astype(float)})
    return HierarchicalDataset.build(
        relation, {"cat": ["block", "item"], "time": ["year"]},
        "severity", validate=False)


def _timed(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _assert_groups_equal(array_groups, ref_groups) -> None:
    assert len(array_groups) == len(ref_groups), \
        f"group count mismatch: {len(array_groups)} != {len(ref_groups)}"
    for ga, gb in zip(array_groups, ref_groups):
        assert ga.key == gb.key, f"order mismatch: {ga.key} != {gb.key}"
        assert ga.score == gb.score, \
            f"score mismatch at {ga.key}: {ga.score} != {gb.score}"
        assert ga.observed == gb.observed and ga.expected == gb.expected, \
            f"statistics mismatch at {ga.key}"


def _recommend_args(cube: Cube, repairer: ModelRepairer):
    complaint = Complaint.too_low({"block": "b0"}, "sum")
    return (cube, ("block",), [("cat", "item")], complaint,
            {"block": "b0"}, repairer)


@pytest.mark.parametrize("n", SIZES)
def test_rank_candidates_array(benchmark, n):
    cube = Cube(_dataset(n))
    repairer = ModelRepairer(n_iterations=10)
    args = _recommend_args(cube, repairer)
    rank_candidates(*args, k=TOP_K)  # warm the interned encodings
    benchmark(lambda: rank_candidates(*args, k=TOP_K))


@pytest.mark.parametrize("n", SIZES)
def test_rank_candidates_ref(benchmark, n):
    cube = Cube(_dataset(n))
    repairer = ModelRepairer(n_iterations=10)
    args = _recommend_args(cube, repairer)
    benchmark.pedantic(lambda: rankref.rank_candidates_ref(*args),
                       rounds=1, iterations=1)


def test_figure19_series(benchmark):
    """The full sweep: timings + exact-equality checks + speedup table."""
    lines = ["n_drill  op                dicts(s)   arrays(s)  speedup"]
    floors = []
    for n in SIZES:
        dataset = _dataset(n)
        cube = Cube(dataset)
        repairer = ModelRepairer(n_iterations=10)
        args = _recommend_args(cube, repairer)

        ref_rec, t_ref = _timed(lambda: rankref.rank_candidates_ref(*args),
                                repeats=1)
        # The serving configuration (what ExplanationService runs per
        # complaint): the sweep covers every group, ScoredGroup records
        # materialize only for the top-k. The frozen dict path has no such
        # knob — it materializes everything, always.
        rec, t_arr = _timed(lambda: rank_candidates(*args, k=TOP_K))
        geo_a = rec.per_hierarchy["cat"]
        geo_r = ref_rec.per_hierarchy["cat"]
        assert geo_a.base_penalty == geo_r.base_penalty
        assert len(geo_r.groups) == n
        _assert_groups_equal(geo_a.groups, geo_r.groups[:TOP_K])
        # Full-list exact equality (every key, score, and rank) is
        # verified on the score sweep below, same run.
        rec_full, t_arr_full = _timed(lambda: rank_candidates(*args))
        _assert_groups_equal(rec_full.per_hierarchy["cat"].groups,
                             geo_r.groups)

        # The scoring sweep alone, over one shared prediction.
        complaint = args[3]
        drill = cube.drilldown_view(("block",), "item", {"block": "b0"})
        parallel = cube.parallel_view(("block",), "item")
        prediction = repairer.predict(parallel, ("block",), "sum")
        (_, ref_scored), t_score_ref = _timed(
            lambda: rankref.score_drilldown_ref(drill, prediction,
                                                complaint), repeats=1)
        (_, scored), t_score = _timed(
            lambda: score_drilldown(drill, prediction, complaint))
        _assert_groups_equal(scored, ref_scored)

        # Serving configuration: materialize only the top-k.
        (_, top), t_topk = _timed(
            lambda: score_drilldown(drill, prediction, complaint, k=TOP_K))
        _assert_groups_equal(top, ref_scored[:TOP_K])

        for op, t_r, t_c in [("rank-candidates", t_ref, t_arr),
                             ("rank-cand. full", t_ref, t_arr_full),
                             ("score-sweep", t_score_ref, t_score),
                             ("score-sweep top-k", t_score_ref, t_topk)]:
            ratio = t_r / t_c if t_c > 0 else float("inf")
            lines.append(f"{n:<8d} {op:<17s} {fmt(t_r)}     {fmt(t_c)}    "
                         f"{ratio:6.1f}x")
            if op == "rank-candidates":
                floors.append((n, ratio))
    report("fig19_recommend", lines)
    # Acceptance floor: the end-to-end recommend invocation must be ≥5x
    # faster than the frozen dict path at ≥1e4 drill-down groups, with
    # exact result equality (asserted above in the same run).
    if not smoke(True, False):
        for n, ratio in floors:
            if n >= 10_000:
                assert ratio >= 5.0, \
                    f"rank-candidates at n={n}: speedup {ratio:.1f}x < 5x"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
