"""Figure 23 (repro-only): the fused-kernel tier vs the plain tier.

Times the three registry-dispatched kernels of ``repro.kernels`` —
radix group-by (``group_codes``), scatter-probe join-multiply
(``join_multiply``), and the eq.-3 rank-1 score sweep
(``rank1_sweep``) — against the frozen plain tier on identical inputs,
for every fused backend present (the pure-NumPy tier always; numba only
when it imports). Reported per kernel:

* **cold** — first fused call (includes table allocation / JIT compile);
* **warm** — best of repeated calls, vs the plain tier's warm best;
* **bandwidth** — achieved memory traffic over a useful-bytes estimate,
  as a fraction of a STREAM-triad roofline measured in the same run.

Every timed pair is checked **bitwise** (``tobytes`` equality) against
the plain tier in-run, and each kernel is additionally pinned to a
frozen oracle at verification scale: ``np.unique`` row-encoding for the
group-by, ``rowref.countmap_join`` through a real ``CountMap.join`` for
the join, and ``rankref.score_drilldown_ref`` through a real
``score_drilldown`` for the sweep.

Acceptance floor (full scale only): the NumPy-fused tier is ≥2x over
plain at 1e6 keys for at least two of the three kernels; the same floor
applies to the numba tier when numba is installed.
"""

import time

import numpy as np
import pytest

from repro.core import rankref
from repro.core.complaint import Complaint
from repro.core.ranker import score_drilldown
from repro.core.repair import ModelRepairer
from repro.kernels import numba_backend, numpy_fused, plain
from repro.relational import (Cube, HierarchicalDataset, Relation, Schema,
                              dimension, measure)
from repro.relational.countmap import CountMap
from repro.relational.encoding import combine_codes
from repro.relational import rowref

from bench_utils import fmt, report, report_json, smoke

#: Number of composite keys / drill-down groups per kernel workload.
N_KEYS = smoke(20_000, 1_000_000)
#: Per-column cardinality for the group-by (3 columns).
CARDINALITY = smoke(16, 256)
#: Join key space (right side holds every key exactly once).
JOIN_RADIX = smoke(1 << 12, 1 << 20)
#: Floors: ≥2x on at least this many of the three kernels.
FLOOR_SPEEDUP = 2.0
FLOOR_KERNELS = 2

SWEEP_STATS = ("count", "mean", "std")


def _timed(fn, repeats: int = 3):
    """``(result, cold_seconds, warm_seconds)`` — warm is best-of-N."""
    start = time.perf_counter()
    result = fn()
    cold = time.perf_counter() - start
    warm = cold
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        warm = min(warm, time.perf_counter() - start)
    return result, cold, warm


def _stream_triad_gbps(n: int = N_KEYS) -> float:
    """Measured STREAM-triad roofline: a = b + s*c over n float64."""
    b = np.random.default_rng(0).random(n)
    c = np.random.default_rng(1).random(n)
    a = np.empty(n)

    def triad():
        np.multiply(c, 2.5, out=a)
        np.add(a, b, out=a)

    _, _, warm = _timed(triad, repeats=5)
    return 3 * 8 * n / warm / 1e9


# -- workloads -------------------------------------------------------------------

def _group_workload(rng):
    # Hierarchically-correlated code columns, the Reptile cube shape:
    # the radix space is wide (CARDINALITY³ composite codes — at full
    # scale 2^24, the np.unique band of the plain tier) but functional
    # dependencies between levels keep the *occupied* composites to
    # N_DISTINCT ≪ radix, so the counting tier's scatter footprint
    # stays cache-sized while the sort-based tier still pays the full
    # O(n log n) argsort.
    radix = CARDINALITY ** 3
    n_distinct = smoke(1 << 10, 1 << 16)
    keyset = rng.choice(radix, size=n_distinct, replace=False)
    combined = keyset[rng.integers(0, n_distinct, N_KEYS)]
    cols = [(combined // (CARDINALITY * CARDINALITY)).astype(np.int32),
            ((combined // CARDINALITY) % CARDINALITY).astype(np.int32),
            (combined % CARDINALITY).astype(np.int32)]
    sizes = [CARDINALITY] * 3
    # Useful-traffic estimate (lower bound): the combined keys read
    # twice + gids written once, plus the occupied/lookup tables.
    est_bytes = 24 * N_KEYS + 7 * radix
    return cols, sizes, combined, radix, est_bytes


def _join_workload(rng):
    combined_l = rng.integers(0, JOIN_RADIX, N_KEYS)
    combined_r = rng.permutation(JOIN_RADIX)   # every key once: unique
    left_counts = rng.integers(1, 100, N_KEYS).astype(float)
    right_counts = rng.integers(1, 100, JOIN_RADIX).astype(float)
    n_r = len(combined_r)
    est_bytes = 16 * n_r + 16 * JOIN_RADIX + 16 * N_KEYS + 24 * N_KEYS
    return combined_l, combined_r, left_counts, right_counts, est_bytes


def _sweep_workload(rng):
    n = N_KEYS
    count = rng.integers(2, 50, n).astype(float)
    total = rng.normal(50.0, 10.0, n) * count
    # sumsq ≥ total²/count keeps the sample variance non-negative.
    sumsq = total * total / count + rng.random(n) * count
    parent = (float(count.sum()), float(total.sum()), float(sumsq.sum()))
    k = len(SWEEP_STATS)
    values = np.column_stack([
        rng.integers(2, 50, n).astype(float),          # repaired count
        rng.normal(50.0, 10.0, n),                     # repaired mean
        rng.random(n) * 5.0])                          # repaired std
    valid = np.ones((n, k), dtype=bool)
    valid[:, 2] = rng.random(n) < 0.8   # partial column: where-merge path
    est_bytes = 8 * n * (12 * k + 6)
    return count, total, sumsq, parent, values, valid, est_bytes


# -- oracle pins (verification scale, always run) --------------------------------

def test_group_codes_oracle():
    """combine_codes (kernel-dispatched) == the frozen np.unique encoding."""
    rng = np.random.default_rng(7)
    cols = [rng.integers(0, 9, 700).astype(np.int32) for _ in range(3)]
    gids, key_codes = combine_codes(cols, [9, 9, 9], 700)
    ref_codes, ref_gids = np.unique(np.column_stack(cols), axis=0,
                                    return_inverse=True)
    assert np.array_equal(key_codes, ref_codes)
    assert np.array_equal(gids, ref_gids.reshape(-1))


def test_join_oracle():
    """CountMap.join (kernel-dispatched) == rowref.countmap_join."""
    rng = np.random.default_rng(11)
    left = CountMap(("A", "B"), {
        (f"a{rng.integers(0, 40)}", f"b{i}"): float(rng.integers(1, 5))
        for i in range(200)})
    right = CountMap(("A", "C"), {
        (f"a{i}", f"c{rng.integers(0, 6)}"): float(rng.integers(1, 5))
        for i in range(40)})
    assert left.join(right) == rowref.countmap_join(left, right)


def _small_cube():
    rng = np.random.default_rng(3)
    n_items, rows_per = 400, 3
    item = rng.permutation(np.repeat(np.arange(n_items), rows_per))
    schema = Schema([dimension("block"), dimension("item"),
                     measure("severity")])
    relation = Relation(schema, {
        "block": np.where(item < n_items // 2, "b0", "b1"),
        "item": np.array([f"i{i:05d}" for i in item]),
        "severity": rng.integers(0, 100, n_items * rows_per).astype(float)})
    dataset = HierarchicalDataset.build(
        relation, {"cat": ["block", "item"]}, "severity", validate=False)
    return Cube(dataset)


def test_rank1_sweep_oracle():
    """score_drilldown (kernel-dispatched) == rankref's frozen loop."""
    cube = _small_cube()
    complaint = Complaint.too_low({"block": "b0"}, "sum")
    drill = cube.drilldown_view(("block",), "item", {"block": "b0"})
    parallel = cube.parallel_view(("block",), "item")
    prediction = ModelRepairer(n_iterations=10).predict(
        parallel, ("block",), "sum")
    base, scored = score_drilldown(drill, prediction, complaint)
    ref_base, ref_scored = rankref.score_drilldown_ref(drill, prediction,
                                                       complaint)
    assert base == ref_base and len(scored) == len(ref_scored)
    for got, want in zip(scored, ref_scored):
        assert got.key == want.key and got.score == want.score
        assert got.repaired_value == want.repaired_value


# -- the timed series ------------------------------------------------------------

def _backends():
    tiers = [("numpy", numpy_fused)]
    if numba_backend.available():
        tiers.append(("numba", numba_backend))
    return tiers


def _run_group(backend_mod, workload):
    cols, sizes, combined, radix, est_bytes = workload
    plain_res, p_cold, p_warm = _timed(
        lambda: plain.group_codes(combined, radix))
    fused_res, cold, warm = _timed(
        lambda: backend_mod.group_codes(combined, radix))
    assert fused_res is not None, "guard declined at benchmark scale"
    for got, want in zip(fused_res, plain_res):
        assert got.tobytes() == want.tobytes(), "group_codes not bitwise"
    return p_warm, cold, warm, est_bytes


def _run_join(backend_mod, workload):
    combined_l, combined_r, left_counts, right_counts, est_bytes = workload
    plain_res, p_cold, p_warm = _timed(
        lambda: plain.join_multiply(combined_l, combined_r, left_counts,
                                    right_counts, JOIN_RADIX))
    fused_res, cold, warm = _timed(
        lambda: backend_mod.join_multiply(combined_l, combined_r,
                                          left_counts, right_counts,
                                          JOIN_RADIX))
    assert fused_res is not None, "guard declined at benchmark scale"
    for got, want in zip(fused_res, plain_res):
        assert got.tobytes() == want.tobytes(), "join_multiply not bitwise"
    return p_warm, cold, warm, est_bytes


def _run_sweep(backend_mod, workload):
    count, total, sumsq, parent, values, valid, est_bytes = workload
    args = (count, total, sumsq, parent[0], parent[1], parent[2],
            SWEEP_STATS, values, valid, "sum", SWEEP_STATS)
    plain_res, p_cold, p_warm = _timed(lambda: plain.rank1_sweep(*args))
    fused_res, cold, warm = _timed(lambda: backend_mod.rank1_sweep(*args))
    assert fused_res is not None, "guard declined at benchmark scale"
    for got, want in zip(fused_res, plain_res):
        assert got.tobytes() == want.tobytes(), "rank1_sweep not bitwise"
    return p_warm, cold, warm, est_bytes


def _sweep_bound_share(workload, warm: float) -> float:
    """Fraction of the fused sweep wall spent in its six mandatory
    ``float_power`` calls (two per ``from_stats_arrays``, one call per
    repaired statistic).

    Those calls are retained ops shared op-for-op with the plain tier:
    ``float_power(x, 2)`` is *not* bitwise-replaceable by ``x * x``
    (glibc pow lands 1 ulp off ``np.square`` on ~0.04% of float64
    inputs), so under the bitwise contract they bound how far the fused
    sweep can pull ahead — the kernel is compute-bound on mandatory
    arithmetic, not memory-bandwidth-bound (see ``bandwidth_frac``) and
    not materialization-bound.
    """
    count, total, sumsq = workload[0], workload[1], workload[2]
    mean = np.divide(total, count, out=np.zeros_like(total),
                     where=count != 0)
    _, _, t_pow = _timed(lambda: np.float_power(mean, 2))
    return 6 * t_pow / warm if warm > 0 else 0.0


def test_figure23_series(benchmark):
    """The full sweep: timings + bitwise checks + bandwidth fractions."""
    rng = np.random.default_rng(0)
    roofline = _stream_triad_gbps()
    workloads = {
        "group-codes": (_run_group, _group_workload(rng)),
        "join-multiply": (_run_join, _join_workload(rng)),
        "rank1-sweep": (_run_sweep, _sweep_workload(rng)),
    }
    lines = [f"stream-triad roofline: {roofline:.2f} GB/s "
             f"({N_KEYS} keys)",
             "backend  op             plain(s)   cold(s)    warm(s)   "
             "speedup  bw(GB/s)  bw-frac"]
    rows = []
    floors = {}
    for backend, backend_mod in _backends():
        for op, (runner, workload) in workloads.items():
            p_warm, cold, warm, est_bytes = runner(backend_mod, workload)
            speedup = p_warm / warm if warm > 0 else float("inf")
            gbps = est_bytes / warm / 1e9 if warm > 0 else 0.0
            frac = gbps / roofline if roofline > 0 else 0.0
            lines.append(
                f"{backend:<8s} {op:<14s} {fmt(p_warm)}     {fmt(cold)}   "
                f"{fmt(warm)}   {speedup:6.1f}x  {gbps:8.2f}  {frac:7.2f}")
            row = {"op": op, "backend": backend, "scale": N_KEYS,
                   "plain": p_warm, "cold": cold, "warm": warm,
                   "speedup": speedup, "bandwidth_gbps": gbps,
                   "bandwidth_frac": frac, "roofline_gbps": roofline}
            if op == "rank1-sweep" and speedup < FLOOR_SPEEDUP:
                # Below-floor justification (see _sweep_bound_share):
                # the sweep's wall is dominated by retained arithmetic
                # shared bitwise with the plain tier, so < 2x here is a
                # property of the contract, not a missing optimization.
                pow_share = _sweep_bound_share(workloads[op][1], warm)
                row["bound"] = "mandatory-arithmetic"
                row["pow_share_fused"] = pow_share
                lines.append(
                    f"         {'':<14s} rank1-sweep below {FLOOR_SPEEDUP}x"
                    f" by contract: {pow_share:.0%} of the fused wall is"
                    f" float_power retained ops (bitwise-shared with"
                    f" plain); bw-frac {frac:.2f} => compute-bound, not"
                    f" bandwidth/materialization-bound")
            rows.append(row)
            floors.setdefault(backend, []).append((op, speedup))
    report("fig23_kernels", lines)
    report_json("fig23_kernels", rows)
    # Acceptance floor: at full scale each present fused tier beats the
    # plain tier ≥2x on at least two of the three kernels.
    if not smoke(True, False):
        for backend, results in floors.items():
            passing = [op for op, s in results if s >= FLOOR_SPEEDUP]
            assert len(passing) >= FLOOR_KERNELS, \
                (f"{backend} tier: only {passing} reached "
                 f"{FLOOR_SPEEDUP}x of {[s for _, s in results]}")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.parametrize("backend_mod",
                         [m for _, m in _backends()],
                         ids=[name for name, _ in _backends()])
def test_group_codes_kernel(benchmark, backend_mod):
    workload = _group_workload(np.random.default_rng(0))
    combined, radix = workload[2], workload[3]
    backend_mod.group_codes(combined, radix)   # warm tables / JIT
    benchmark(lambda: backend_mod.group_codes(combined, radix))
