"""Figure 10: end-to-end runtime on absentee- and COMPAS-shaped workloads.

Paper shape: Reptile's factorised pipeline beats the Matlab/Lapack-style
baseline (materialised matrix + interpreted per-cluster EM loop) by >6×,
with the gap widening as drill-down deepens. A stronger vectorized-dense
baseline (our own extra ablation) is reported alongside.

Row counts are reduced from the published 179K/60.8K by default so the
whole benchmark suite stays minutes-scale; the group-level cross products
(which drive the cost) keep the published cardinalities. Set
REPRO_FULL_SCALE=1 to run the original sizes.
"""

import os

import pytest

from repro.experiments.endtoend import run_absentee, run_compas

from bench_utils import SMOKE, fmt, report, smoke

FULL = os.environ.get("REPRO_FULL_SCALE") == "1"
ABSENTEE_ROWS = smoke(3_000, None if FULL else 40_000)
COMPAS_ROWS = smoke(1_500, None if FULL else 20_000)
EM_ITERATIONS = smoke(2, 20)


def _describe(result):
    lines = [
        "invocation  candidates              fact(s)   dense(s)  matlab(s)"
        "  vs-matlab",
    ]
    for t in result.invocations:
        cands = ",".join(t.candidates)
        lines.append(
            f"{t.invocation:<11d} {cands:<23s} {fmt(t.factorized_seconds, 3)}"
            f"     {fmt(t.dense_seconds, 3)}     {fmt(t.matlab_seconds, 3)}"
            f"     {t.speedup:6.1f}x")
    lines.append(
        f"TOTAL fact={fmt(result.total_factorized, 3)}s "
        f"dense={fmt(result.total_dense, 3)}s "
        f"matlab={fmt(result.total_matlab, 3)}s "
        f"speedup={result.overall_speedup:.1f}x "
        f"(paper: >6x vs Matlab)")
    return lines


@pytest.mark.parametrize("dataset", ["absentee", "compas"])
def test_end_to_end(benchmark, dataset):
    runner = run_absentee if dataset == "absentee" else run_compas
    rows = ABSENTEE_ROWS if dataset == "absentee" else COMPAS_ROWS
    result = benchmark.pedantic(
        lambda: runner(n_rows=rows, n_iterations=EM_ITERATIONS),
        rounds=1, iterations=1)
    report(f"fig10_{dataset}", _describe(result))
    # The headline claim: factorised beats the Matlab-style baseline.
    if not SMOKE:  # tiny smoke sizes make the ratio meaningless
        assert result.overall_speedup > 1.0
