"""Micro-benchmark runners for §5.1 (Figures 7, 8, 9 and 15).

Each function returns structured timing rows so the pytest-benchmark
harnesses (and EXPERIMENTS.md) can print the same series the paper plots.
The dense comparison points use numpy — which *is* LAPACK-backed — over
the materialised matrix, mirroring the paper's Lapack baselines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..datagen.perf import (deep_hierarchies, flat_hierarchies,
                            random_feature_matrix)
from ..factorized.cluster_ops import ClusterOps
from ..factorized.drilldown import DrilldownEngine
from ..factorized.factorizer import Factorizer
from ..factorized.forder import AttributeOrder
from ..factorized.matrix import FactorizedMatrix, FeatureColumn
from ..factorized.multiquery import lmfao_plan, shared_plan
from ..factorized.reference import (assert_aggregate_sets_equal,
                                    dict_path_matrix, reference_gram,
                                    reference_left_multiply,
                                    reference_right_multiply,
                                    reference_shared_plan)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ---------------------------------------------------------------- Figure 7


@dataclass
class MatrixOpTiming:
    """One Figure 7 data point: factorized vs dense per operation."""

    n_hierarchies: int
    n_rows: int
    materialize_dense: float
    materialize_factorized: float
    gram_dense: float
    gram_factorized: float
    left_dense: float
    left_factorized: float
    right_dense: float
    right_factorized: float


def run_matrix_ops(n_hierarchies: int, cardinality: int = 10,
                   seed: int = 0) -> MatrixOpTiming:
    """Figure 7: one sweep point with d single-attribute hierarchies.

    Three feature columns per attribute reproduce the paper's
    10^d × 3·d matrix shape.
    """
    rng = np.random.default_rng(seed)
    order = AttributeOrder(flat_hierarchies(n_hierarchies, cardinality))
    matrix = random_feature_matrix(order, rng, columns_per_attribute=3)
    n, m = matrix.shape

    t_mat_f = _timed(
        lambda: random_feature_matrix(order, rng, columns_per_attribute=3))
    dense_holder = {}

    def materialize():
        dense_holder["x"] = matrix.materialize()

    t_mat_d = _timed(materialize)
    x = dense_holder["x"]

    t_gram_d = _timed(lambda: x.T @ x)
    t_gram_f = _timed(matrix.gram)

    a = rng.normal(size=(1, n))
    t_left_d = _timed(lambda: a @ x)
    t_left_f = _timed(lambda: matrix.left_multiply(a))

    b = rng.normal(size=(m, 1))
    t_right_d = _timed(lambda: x @ b)
    t_right_f = _timed(lambda: matrix.right_multiply(b))

    return MatrixOpTiming(n_hierarchies, n, t_mat_d, t_mat_f, t_gram_d,
                          t_gram_f, t_left_d, t_left_f, t_right_d, t_right_f)


def sweep_matrix_ops(max_hierarchies: int = 5, cardinality: int = 10,
                     seed: int = 0) -> list[MatrixOpTiming]:
    return [run_matrix_ops(d, cardinality, seed)
            for d in range(1, max_hierarchies + 1)]


@dataclass
class OracleOpTiming:
    """Array-native path vs the frozen reference-oracle implementation."""

    op: str
    n_rows: int
    cold_seconds: float    # array path, memo-less first run
    warm_seconds: float    # array path, memoized repeat run
    oracle_seconds: float  # frozen pre-array implementation

    @property
    def speedup(self) -> float:
        return self.oracle_seconds / self.warm_seconds \
            if self.warm_seconds else float("inf")


def run_matrix_oracle(n_hierarchies: int, cardinality: int = 10,
                      seed: int = 0) -> list[OracleOpTiming]:
    """Figure 7 extension: array-native ops vs the frozen oracle.

    For matrix *build*, cold constructs the feature arrays from scratch
    (fresh columns, no memo) and warm rebuilds from memoized columns; the
    oracle is the pre-array per-value loop build (``dict_path_matrix``),
    checked **bitwise** against the array build. For gram / left / right
    multiplication, the oracle is the Appendix E pseudocode
    (``reference_*``), checked with ``np.allclose`` (summation order
    differs); the array result must also match the dict-path build's
    result bitwise.
    """
    rng = np.random.default_rng(seed)
    order = AttributeOrder(flat_hierarchies(n_hierarchies, cardinality))
    matrix = random_feature_matrix(order, rng, columns_per_attribute=3)
    n = order.n_rows
    out: list[OracleOpTiming] = []

    def fresh_columns():
        return [FeatureColumn(c.attribute, c.name, c.mapping, c.default)
                for c in matrix.columns]

    cols = fresh_columns()
    t_build_cold = _timed(lambda: FactorizedMatrix(order, cols))
    t_build_warm = _timed(lambda: FactorizedMatrix(order, matrix.columns))
    clone_holder = {}

    def build_oracle():
        clone_holder["m"] = dict_path_matrix(matrix)

    t_build_oracle = _timed(build_oracle)
    clone = clone_holder["m"]
    for ci in range(matrix.n_cols):
        assert np.array_equal(matrix.domain_features(ci),
                              clone.domain_features(ci))
    for hi in range(len(order.hierarchies)):
        assert np.array_equal(matrix.leaf_features(hi),
                              clone.leaf_features(hi))
    out.append(OracleOpTiming("build", n, t_build_cold, t_build_warm,
                              t_build_oracle))

    a = rng.normal(size=(1, n))
    b = rng.normal(size=(matrix.n_cols, 1))
    cases = [
        ("gram", lambda m: m.gram(), lambda m: reference_gram(m)),
        ("left", lambda m: m.left_multiply(a),
         lambda m: reference_left_multiply(m, a)),
        ("right", lambda m: m.right_multiply(b),
         lambda m: reference_right_multiply(m, b)),
    ]
    for op, array_fn, oracle_fn in cases:
        cold_matrix = FactorizedMatrix(order, fresh_columns())
        t_cold = _timed(lambda: array_fn(cold_matrix))
        got_holder = {}
        t_warm = _timed(lambda: got_holder.setdefault("x", array_fn(matrix)))
        got = got_holder["x"]
        ref_holder = {}
        t_oracle = _timed(
            lambda: ref_holder.setdefault("x", oracle_fn(matrix)))
        # Bitwise vs the dict-path build; allclose vs the pseudocode oracle
        # (the incremental Algorithm 4 reference accumulates rounding over
        # n rows, so the tolerance is absolute-dominated).
        assert np.array_equal(got, array_fn(clone)), op
        assert np.allclose(got, ref_holder["x"], rtol=1e-7, atol=1e-9), op
        out.append(OracleOpTiming(op, n, t_cold, t_warm, t_oracle))
    return out


# ---------------------------------------------------------------- Figure 8


@dataclass
class MultiQueryTiming:
    """One Figure 8 data point: shared plan vs LMFAO-style baseline."""

    cardinality: int
    shared_seconds: float
    lmfao_seconds: float

    @property
    def speedup(self) -> float:
        return self.lmfao_seconds / self.shared_seconds \
            if self.shared_seconds else float("inf")


def run_multiquery(cardinality: int, n_hierarchies: int = 3,
                   n_attrs: int = 3) -> MultiQueryTiming:
    order = AttributeOrder(
        deep_hierarchies(n_hierarchies, n_attrs, cardinality))
    factorizer = Factorizer(order)
    t_shared = _timed(lambda: shared_plan(factorizer))
    t_lmfao = _timed(lambda: lmfao_plan(factorizer))
    return MultiQueryTiming(cardinality, t_shared, t_lmfao)


def sweep_multiquery(cardinalities=(20, 40, 80, 160)) -> list[MultiQueryTiming]:
    return [run_multiquery(w) for w in cardinalities]


def run_multiquery_oracle(n_leaves: int, n_hierarchies: int = 2,
                          n_attrs: int = 3) -> OracleOpTiming:
    """Figure 8 extension: array-native shared plan vs the frozen dict plan.

    Cold runs the first array plan (level encodings built on the fly),
    warm repeats it over the warmed structure; the oracle is
    ``reference_shared_plan`` — the pre-array dict pipeline — and the two
    results are asserted exactly equal in-run (same key sets, bitwise
    counts).
    """
    order = AttributeOrder(
        deep_hierarchies(n_hierarchies, n_attrs, n_leaves))
    factorizer = Factorizer(order)
    got_holder = {}
    t_cold = _timed(
        lambda: got_holder.setdefault("x", shared_plan(factorizer)))
    t_warm = _timed(lambda: shared_plan(factorizer))
    ref_holder = {}
    t_oracle = _timed(
        lambda: ref_holder.setdefault("x", reference_shared_plan(factorizer)))
    assert_aggregate_sets_equal(got_holder["x"], ref_holder["x"])
    return OracleOpTiming("shared_plan", order.n_rows, t_cold, t_warm,
                          t_oracle)


# ---------------------------------------------------------------- Figure 9


@dataclass
class DrilldownTiming:
    """One Figure 9 data point: three invocations under one mode."""

    mode: str
    depth_b: int
    invocation_seconds: list[float]
    unit_computations: int

    @property
    def total(self) -> float:
        return sum(self.invocation_seconds)


def run_drilldown(mode: str, depth_b: int, n_attrs: int = 6,
                  cardinality: int = 200,
                  n_invocations: int = 3, **engine_kwargs) -> DrilldownTiming:
    """Figure 9: drill A n_invocations times with B pre-drilled to depth_b.

    Hierarchy A starts at depth 3 (as in §5.1.3); the engine evaluates all
    candidates per invocation, then commits A. ``engine_kwargs`` pass
    through to :class:`DrilldownEngine` — the oracle benchmark swaps in the
    frozen dict ``builder``/``combiner`` pair.
    """
    paths = deep_hierarchies(2, n_attrs, cardinality)
    a, b = paths[0], paths[1]
    engine = DrilldownEngine([a, b],
                             initial_depths={a.name: 3, b.name: depth_b},
                             mode=mode, **engine_kwargs)
    times = []
    for _ in range(n_invocations):
        times.append(_timed(engine.evaluate_all))
        engine.drill(a.name)
    return DrilldownTiming(mode, depth_b, times, engine.unit_computations)


def sweep_drilldown(depths=(3, 4, 5), cardinality: int = 200
                    ) -> list[DrilldownTiming]:
    out = []
    for mode in ("static", "dynamic", "cache"):
        for depth in depths:
            out.append(run_drilldown(mode, depth, cardinality=cardinality))
    return out


# ---------------------------------------------------------------- Figure 15


@dataclass
class ClusterOpTiming:
    """One Figure 15 data point: per-cluster ops factorized vs dense loop."""

    n_hierarchies: int
    n_rows: int
    n_clusters: int
    gram_dense: float
    gram_factorized: float
    left_dense: float
    left_factorized: float
    right_dense: float
    right_factorized: float


def run_cluster_ops(n_hierarchies: int, n_attrs: int = 3,
                    cardinality: int = 10, seed: int = 0) -> ClusterOpTiming:
    """Figure 15: per-cluster gram / left / right multiplication."""
    rng = np.random.default_rng(seed)
    order = AttributeOrder(
        deep_hierarchies(n_hierarchies, n_attrs, cardinality))
    matrix = random_feature_matrix(order, rng)
    ops = ClusterOps(matrix)
    x = matrix.materialize()
    offsets = ops.offsets
    n_clusters = ops.n_clusters
    m = matrix.n_cols

    def dense_grams():
        return [x[offsets[i]:offsets[i + 1]].T @ x[offsets[i]:offsets[i + 1]]
                for i in range(n_clusters)]

    t_gram_d = _timed(dense_grams)
    t_gram_f = _timed(ops.cluster_grams)

    v = rng.normal(size=order.n_rows)

    def dense_left():
        return [x[offsets[i]:offsets[i + 1]].T @ v[offsets[i]:offsets[i + 1]]
                for i in range(n_clusters)]

    t_left_d = _timed(dense_left)
    t_left_f = _timed(lambda: ops.cluster_left(v))

    b = rng.normal(size=(n_clusters, m))

    def dense_right():
        return [x[offsets[i]:offsets[i + 1]] @ b[i]
                for i in range(n_clusters)]

    t_right_d = _timed(dense_right)
    t_right_f = _timed(lambda: ops.cluster_right(b))

    return ClusterOpTiming(n_hierarchies, order.n_rows, n_clusters, t_gram_d,
                           t_gram_f, t_left_d, t_left_f, t_right_d, t_right_f)


def sweep_cluster_ops(max_hierarchies: int = 4, **kw) -> list[ClusterOpTiming]:
    return [run_cluster_ops(d, **kw) for d in range(1, max_hierarchies + 1)]
