"""COVID-19 case study runner (§5.3, Figure 13, Tables 1–2).

For every issue of Tables 1–2: simulate the panel, inject the issue,
submit the complaint at the immediately higher geographical level on the
complaint day, and check whether each approach's top recommendation is the
erroneous location. Reptile uses 1-day and 7-day lag features (Appendix L)
on top of the default main effects.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines import SensitivityBaseline, SupportBaseline
from ..core.complaint import Complaint
from ..core.session import Reptile, ReptileConfig
from ..datagen.covid import (ALL_ISSUES, COMPLAINT_DAY, CovidIssue,
                             GLOBAL_ISSUES, US_ISSUES, apply_issue,
                             global_panel, us_panel)
from ..model.features import CustomFeature, FeaturePlan
from ..relational.cube import GroupView


def _lag_builder(location_attr: str, lag: int):
    """Custom feature: the location's value ``lag`` days earlier (App. L)."""

    def build(view: GroupView, target: str) -> dict:
        day_pos = view.group_attrs.index("day")
        loc_pos = view.group_attrs.index(location_attr)
        stat = {(k[loc_pos], k[day_pos]): view.groups[k].statistic(target)
                for k in view.groups}
        per_loc: dict = {}
        for (loc, _), v in stat.items():
            per_loc.setdefault(loc, []).append(v)
        loc_median = {loc: statistics.median(vs) for loc, vs in per_loc.items()}
        return {(loc, d): stat.get((loc, d - lag), loc_median[loc])
                for (loc, d) in stat}

    return build


def covid_feature_plan(location_attr: str) -> FeaturePlan:
    """Default main effects plus 1-day and 7-day lags (Appendix L)."""
    lags = [CustomFeature(f"lag{lag}_{location_attr}",
                          (location_attr, "day"),
                          _lag_builder(location_attr, lag))
            for lag in (1, 7)]
    return FeaturePlan(extra_specs=lags)


@dataclass
class IssueResult:
    """Per-issue outcome for every approach."""

    issue: CovidIssue
    hits: dict[str, bool] = field(default_factory=dict)
    reptile_seconds: float = 0.0


def run_issue(issue: CovidIssue, seed: int = 0,
              n_iterations: int = 10) -> IssueResult:
    """Simulate, corrupt, complain, and evaluate one issue."""
    rng = np.random.default_rng(seed)
    if issue.region is None:
        dataset = apply_issue(us_panel(rng), issue, "state")
        location_attr = "state"
        group_by = ["day"]
        coords = {"day": COMPLAINT_DAY}
    else:
        dataset = apply_issue(global_panel(rng), issue, "country")
        location_attr = "country"
        group_by = ["region", "day"]
        coords = {"region": issue.region, "day": COMPLAINT_DAY}
    complaint = (Complaint.too_low(coords, "sum")
                 if issue.direction == "low"
                 else Complaint.too_high(coords, "sum"))

    engine = Reptile(dataset, feature_plan=covid_feature_plan(location_attr),
                     config=ReptileConfig(n_em_iterations=n_iterations))
    session = engine.session(group_by=group_by)

    start = time.perf_counter()
    recommendation = session.recommend(complaint)
    elapsed = time.perf_counter() - start
    top = recommendation.per_hierarchy["location"].best
    result = IssueResult(issue, reptile_seconds=elapsed)
    result.hits["reptile"] = (
        top is not None
        and top.coordinates[location_attr] == issue.location)

    drill_view = engine.cube.drilldown_view(
        tuple(group_by), location_attr, session.provenance(complaint))
    loc_pos = drill_view.group_attrs.index(location_attr)
    for name, baseline in (("sensitivity", SensitivityBaseline()),
                           ("support", SupportBaseline())):
        best = baseline.best(drill_view, complaint)
        result.hits[name] = best[loc_pos] == issue.location
    return result


@dataclass
class CaseStudySummary:
    """Figure 13: accuracy and runtime per approach, plus per-issue rows."""

    results: list[IssueResult]

    def accuracy(self, approach: str) -> float:
        return sum(r.hits[approach] for r in self.results) / len(self.results)

    def mean_runtime(self) -> float:
        return sum(r.reptile_seconds for r in self.results) / len(self.results)

    def detected(self, approach: str = "reptile") -> list[str]:
        return [r.issue.issue_id for r in self.results if r.hits[approach]]

    def table_rows(self) -> list[tuple]:
        """(issue id, description, reptile, sensitivity, support) rows."""
        return [(r.issue.issue_id, r.issue.description,
                 r.hits["reptile"], r.hits["sensitivity"], r.hits["support"])
                for r in self.results]


def run_case_study(issues=ALL_ISSUES, seed: int = 0,
                   n_iterations: int = 10) -> CaseStudySummary:
    """Run every issue (Tables 1–2) and summarise (Figure 13)."""
    results = []
    for k, issue in enumerate(issues):
        results.append(run_issue(issue, seed=seed + k,
                                 n_iterations=n_iterations))
    return CaseStudySummary(results)


def run_us(seed: int = 0, **kw) -> CaseStudySummary:
    return run_case_study(US_ISSUES, seed=seed, **kw)


def run_global(seed: int = 0, **kw) -> CaseStudySummary:
    return run_case_study(GLOBAL_ISSUES, seed=seed, **kw)
