"""Synthetic accuracy experiments (§5.2, Figures 11 and 12).

For each trial a fresh dataset is generated, one (or more) groups are
corrupted, a complaint about the parent aggregate is submitted, and each
approach nominates its top group. Accuracy is the fraction of trials
whose nominated group is a true error.

* :func:`run_condition` — Figure 11: one corrupted group per trial, the
  six error conditions, approaches {Reptile, Raw, Sensitivity, Support}.
* :func:`run_ablation` — Figure 12: two true errors plus one
  false-positive group corrupted in the opposite direction, approaches
  {Reptile, Outlier}; shows the value of the complaint's direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines import (OutlierBaseline, RawBaseline, SensitivityBaseline,
                         SupportBaseline)
from ..core.complaint import Complaint
from ..core.repair import ModelRepairer
from ..core.ranker import score_drilldown
from ..datagen.errors import (CONDITIONS, ErrorKind, ErrorSpec, corrupt)
from ..datagen.synthetic import SyntheticConfig, make_auxiliary, make_dataset
from ..model.features import AuxiliaryFeature, FeaturePlan
from ..relational.cube import Cube
from ..relational.dataset import HierarchicalDataset

#: Statistic targeted by each error kind (for auxiliary-table generation).
_KIND_STAT = {
    ErrorKind.MISSING: "count",
    ErrorKind.DUPLICATION: "count",
    ErrorKind.DRIFT_UP: "mean",
    ErrorKind.DRIFT_DOWN: "mean",
}


def _complaint_for(aggregate: str, direction: str) -> Complaint:
    coords: dict = {}
    if direction == "high":
        return Complaint.too_high(coords, aggregate)
    return Complaint.too_low(coords, aggregate)


def _corrupted_dataset(base: HierarchicalDataset, specs, rng
                       ) -> HierarchicalDataset:
    report = corrupt(base.relation, specs, base.measure)
    corrupted = HierarchicalDataset.build(
        report.relation, {"dim": ["group"]}, "value", validate=False)
    for aux in base.auxiliary.values():
        corrupted.add_auxiliary(aux)
    return corrupted


def _reptile_plan(dataset: HierarchicalDataset) -> FeaturePlan:
    extra = [AuxiliaryFeature(aux, m)
             for aux in dataset.auxiliary.values() for m in aux.measures]
    return FeaturePlan(extra_specs=extra)


def reptile_top_group(dataset: HierarchicalDataset, complaint: Complaint,
                      model: str = "multilevel",
                      n_iterations: int = 10) -> tuple:
    """Reptile's top group for a one-level drill-down on ``dataset``."""
    cube = Cube(dataset)
    drill = cube.view(("group",))
    repairer = ModelRepairer(feature_plan=_reptile_plan(dataset), model=model,
                             n_iterations=n_iterations)
    prediction = repairer.predict(drill, cluster_attrs=(), aggregate=complaint.aggregate)
    _, scored = score_drilldown(drill, prediction, complaint)
    return scored[0].key


@dataclass
class ConditionResult:
    """Accuracy of every approach under one condition and correlation."""

    condition: str
    rho: float
    accuracy: dict[str, float] = field(default_factory=dict)


def run_condition(condition: str, rho: float, n_trials: int = 50,
                  seed: int = 0, n_iterations: int = 8,
                  approaches: tuple[str, ...] = ("reptile", "raw",
                                                 "sensitivity", "support"),
                  config: SyntheticConfig | None = None) -> ConditionResult:
    """Figure 11: accuracy of each approach for one (condition, ρ) cell."""
    kinds, (aggregate, direction) = CONDITIONS[condition]
    rng = np.random.default_rng(seed)
    hits = {a: 0 for a in approaches}
    for _ in range(n_trials):
        base = make_dataset(rng, config)
        stats_needed = sorted({_KIND_STAT[k] for k in kinds})
        for stat in stats_needed:
            base.add_auxiliary(make_auxiliary(base, stat, rho, rng))
        groups = sorted(set(base.relation.column_values("group")))
        bad = groups[int(rng.integers(len(groups)))]
        specs = [ErrorSpec(kind, {"group": bad}) for kind in kinds]
        dataset = _corrupted_dataset(base, specs, rng)
        complaint = _complaint_for(aggregate, direction)

        cube = Cube(dataset)
        drill = cube.view(("group",))
        if "reptile" in hits:
            top = reptile_top_group(dataset, complaint,
                                    n_iterations=n_iterations)
            hits["reptile"] += top == (bad,)
        if "raw" in hits:
            top = RawBaseline().best(dataset.relation, ("group",), "value",
                                     complaint)
            hits["raw"] += top == (bad,)
        if "sensitivity" in hits:
            top = SensitivityBaseline().best(drill, complaint)
            hits["sensitivity"] += top == (bad,)
        if "support" in hits:
            top = SupportBaseline().best(drill, complaint)
            hits["support"] += top == (bad,)
    return ConditionResult(condition, rho,
                           {a: hits[a] / n_trials for a in approaches})


#: Figure 12's three multi-error conditions:
#: name -> (true error kinds, false-positive kinds, complaint).
ABLATION_CONDITIONS = {
    "Missing+Duplication (count)": (
        (ErrorKind.MISSING,), (ErrorKind.DUPLICATION,), ("count", "low")),
    "Decrease+Increase (mean)": (
        (ErrorKind.DRIFT_DOWN,), (ErrorKind.DRIFT_UP,), ("mean", "low")),
    "All (sum)": (
        (ErrorKind.MISSING, ErrorKind.DRIFT_DOWN),
        (ErrorKind.DUPLICATION, ErrorKind.DRIFT_UP), ("sum", "low")),
}


def run_ablation(condition: str, rho: float, n_trials: int = 50,
                 seed: int = 0, n_iterations: int = 8,
                 config: SyntheticConfig | None = None) -> ConditionResult:
    """Figure 12: Reptile vs Outlier with 2 true errors + 1 false positive."""
    true_kinds, false_kinds, (aggregate, direction) = \
        ABLATION_CONDITIONS[condition]
    rng = np.random.default_rng(seed)
    hits = {"reptile": 0, "outlier": 0}
    for _ in range(n_trials):
        base = make_dataset(rng, config)
        stats_needed = sorted({_KIND_STAT[k]
                               for k in true_kinds + false_kinds})
        for stat in stats_needed:
            base.add_auxiliary(make_auxiliary(base, stat, rho, rng))
        groups = sorted(set(base.relation.column_values("group")))
        chosen = rng.choice(len(groups), size=3, replace=False)
        true_groups = [groups[int(chosen[0])], groups[int(chosen[1])]]
        false_group = groups[int(chosen[2])]
        specs = [ErrorSpec(kind, {"group": g})
                 for g in true_groups for kind in true_kinds]
        specs += [ErrorSpec(kind, {"group": false_group})
                  for kind in false_kinds]
        dataset = _corrupted_dataset(base, specs, rng)
        complaint = _complaint_for(aggregate, direction)

        cube = Cube(dataset)
        drill = cube.view(("group",))
        top = reptile_top_group(dataset, complaint, n_iterations=n_iterations)
        hits["reptile"] += top in {(g,) for g in true_groups}

        repairer = ModelRepairer(feature_plan=_reptile_plan(dataset),
                                 n_iterations=n_iterations)
        outlier = OutlierBaseline(repairer)
        top = outlier.best(drill, drill, cluster_attrs=(),
                           aggregate=aggregate)
        hits["outlier"] += top in {(g,) for g in true_groups}
    return ConditionResult(condition, rho,
                           {a: h / n_trials for a, h in hits.items()})
