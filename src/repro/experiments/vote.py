"""Vote case study (Appendix N, Figure 18) and its margin-gain analysis.

Complaint: the focus state's Trump share (a SUM-decomposed statistic over
ballot batches) is too low. For every county the ranker reports the
*margin gain* — how much repairing that county toward its model-expected
statistics moves the state aggregate toward the complaint's preference.

* **Model 1** uses only the default features → gains concentrate on plain
  outliers (Figure 18e).
* **Model 2** adds the 2016 results as auxiliary features → counties whose
  low share is *explained* by 2016 stop being recommended, and the gains
  track the 2020−2016 swing plus the total-vote signal (Figures 18f–g).
* Injecting missing ballot batches shifts the gains of the affected
  counties (Figures 18h–i).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.complaint import Complaint
from ..core.ranker import rank_candidate
from ..core.repair import ModelRepairer
from ..datagen.vote import VoteWorld, inject_missing_ballots, make_world
from ..model.features import AuxiliaryFeature, FeaturePlan
from ..relational.cube import Cube
from ..relational.dataset import HierarchicalDataset


@dataclass
class VoteAnalysis:
    """Margin gains per county under one model."""

    model: str
    margin_gain: dict[str, float] = field(default_factory=dict)
    ranking: list[str] = field(default_factory=list)

    def top(self, k: int = 5) -> list[str]:
        return self.ranking[:k]


def _analyse(dataset: HierarchicalDataset, state: str, with_aux: bool,
             n_iterations: int = 10) -> VoteAnalysis:
    cube = Cube(dataset)
    complaint = Complaint.too_low({"state": state}, "sum")
    if with_aux:
        aux = dataset.auxiliary["election_2016"]
        plan = FeaturePlan(extra_specs=[
            AuxiliaryFeature(aux, "share_2016"),
            AuxiliaryFeature(aux, "total_2016")])
        name = "model2"
    else:
        plan = FeaturePlan()
        name = "model1"
    repairer = ModelRepairer(feature_plan=plan, n_iterations=n_iterations)
    rec = rank_candidate(cube, ("state",), "county", "geo", complaint,
                         provenance={"state": state}, repairer=repairer)
    gains = {g.coordinates["county"]: g.margin_gain for g in rec.groups}
    ranking = [g.coordinates["county"] for g in rec.groups]
    return VoteAnalysis(name, gains, ranking)


@dataclass
class VoteStudy:
    """The full Appendix N artefact set."""

    world: VoteWorld
    model1: VoteAnalysis
    model2: VoteAnalysis
    model2_missing: VoteAnalysis
    missing_counties: list[str]

    def swing(self) -> dict[str, float]:
        """Share change 2020 − 2016 per focus-state county (Figure 18g)."""
        counties = self.world.counties[self.world.focus_state]
        return {c: self.world.share_2020[c] - self.world.share_2016[c]
                for c in counties}

    def gain_swing_correlation(self) -> float:
        """Model 2's gains should track the (negated) swing (Fig. 18f vs g)."""
        swing = self.swing()
        counties = [c for c in swing if c in self.model2.margin_gain]
        g = np.asarray([self.model2.margin_gain[c] for c in counties])
        s = np.asarray([swing[c] for c in counties])
        if g.std() < 1e-12 or s.std() < 1e-12:
            return 0.0
        return float(np.corrcoef(g, -s)[0, 1])


def run_study(seed: int = 0, n_iterations: int = 10,
              n_missing: int = 4) -> VoteStudy:
    """Generate the world and produce all Figure 18 series."""
    rng = np.random.default_rng(seed)
    world = make_world(rng)
    state = world.focus_state
    model1 = _analyse(world.dataset, state, with_aux=False,
                      n_iterations=n_iterations)
    model2 = _analyse(world.dataset, state, with_aux=True,
                      n_iterations=n_iterations)
    counties = world.counties[state]
    victims = [counties[i]
               for i in rng.choice(len(counties), size=n_missing,
                                   replace=False)]
    corrupted = inject_missing_ballots(world, victims)
    model2_missing = _analyse(corrupted, state, with_aux=True,
                              n_iterations=n_iterations)
    return VoteStudy(world, model1, model2, model2_missing, victims)
