"""End-to-end runtime experiment (§5.1.4, Figure 10).

Replays the paper's invocation sequences on dataset-shaped workloads:

* absentee-like — 4 invocations drilling county, party, week, gender;
* compas-like — 6 invocations drilling year, month, day, age range, race,
  charge degree.

Each invocation evaluates *every* remaining candidate hierarchy: it builds
the candidate's (factorised) feature matrix over all parallel groups —
including empty ones, the worst case the paper measures — and trains the
multi-level model for 20 EM iterations. The factorised pipeline is timed
against the dense Matlab/Lapack-style baseline on identical inputs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..datagen.workloads import absentee_like, compas_like
from ..factorized.forder import AttributeOrder
from ..model.pipeline import (feature_columns_from_view, train_dense,
                              train_factorized, train_matlab, y_vector)
from ..relational.cube import Cube
from ..relational.dataset import HierarchicalDataset

ABSENTEE_DRILL_ORDER = ("county", "party", "week", "gender")
COMPAS_DRILL_ORDER = ("time", "time", "time", "age", "race", "charge")


@dataclass
class InvocationTiming:
    """Per-invocation wall-clock cost of each backend."""

    invocation: int
    candidates: list[str]
    factorized_seconds: float
    dense_seconds: float
    matlab_seconds: float
    max_rows: int

    @property
    def speedup(self) -> float:
        """Reptile vs the paper's Matlab-style baseline."""
        if self.factorized_seconds <= 0:
            return float("inf")
        return self.matlab_seconds / self.factorized_seconds

    @property
    def dense_speedup(self) -> float:
        """Reptile vs the stronger vectorized-dense baseline."""
        if self.factorized_seconds <= 0:
            return float("inf")
        return self.dense_seconds / self.factorized_seconds


@dataclass
class EndToEndResult:
    dataset_name: str
    invocations: list[InvocationTiming] = field(default_factory=list)

    @property
    def total_factorized(self) -> float:
        return sum(t.factorized_seconds for t in self.invocations)

    @property
    def total_dense(self) -> float:
        return sum(t.dense_seconds for t in self.invocations)

    @property
    def total_matlab(self) -> float:
        return sum(t.matlab_seconds for t in self.invocations)

    @property
    def overall_speedup(self) -> float:
        """Reptile vs the Matlab-style baseline (the Figure 10 number)."""
        if self.total_factorized <= 0:
            return float("inf")
        return self.total_matlab / self.total_factorized

    @property
    def overall_dense_speedup(self) -> float:
        if self.total_factorized <= 0:
            return float("inf")
        return self.total_dense / self.total_factorized


def _hierarchy_order_names(dataset: HierarchicalDataset, committed: list[str],
                           candidate: str) -> list[str]:
    """Committed hierarchies in drill order, the candidate last (§3.4)."""
    seen = []
    for name in committed:
        if name not in seen:
            seen.append(name)
    others = [n for n in seen if n != candidate]
    return others + [candidate]


def run_invocations(dataset: HierarchicalDataset, drill_order: tuple,
                    statistic: str = "count", n_iterations: int = 20,
                    run_dense: bool = True, run_matlab: bool = True,
                    name: str = "dataset") -> EndToEndResult:
    """Time the full invocation sequence on one dataset."""
    cube = Cube(dataset)
    depths: dict[str, int] = {h.name: 0 for h in dataset.dimensions}
    committed: list[str] = []
    result = EndToEndResult(name)

    for step, chosen in enumerate(drill_order):
        candidates = [h.name for h in dataset.dimensions
                      if depths[h.name] < len(dataset.dimensions[h.name])]
        fact_total = 0.0
        dense_total = 0.0
        matlab_total = 0.0
        max_rows = 0
        for cand in candidates:
            cand_depths = dict(depths)
            cand_depths[cand] += 1
            order_names = _hierarchy_order_names(dataset, committed + [cand],
                                                 cand)
            order = AttributeOrder.from_dataset(
                dataset, hierarchy_order=order_names, depths=cand_depths)
            view = cube.view(order.attributes)
            max_rows = max(max_rows, order.n_rows)
            # Features and y are shared inputs; the timed region is matrix
            # construction + EM training, where the backends differ.
            columns = feature_columns_from_view(order, view, statistic)
            y = y_vector(order, view, statistic)

            start = time.perf_counter()
            train_factorized(order, view, statistic,
                             n_iterations=n_iterations, columns=columns, y=y)
            fact_total += time.perf_counter() - start

            if run_dense:
                start = time.perf_counter()
                train_dense(order, view, statistic,
                            n_iterations=n_iterations, columns=columns, y=y)
                dense_total += time.perf_counter() - start

            if run_matlab:
                start = time.perf_counter()
                train_matlab(order, view, statistic,
                             n_iterations=n_iterations, columns=columns, y=y)
                matlab_total += time.perf_counter() - start

        result.invocations.append(InvocationTiming(
            step, candidates, fact_total, dense_total, matlab_total,
            max_rows))
        depths[chosen] += 1
        committed.append(chosen)
    return result


def run_absentee(seed: int = 0, n_rows: int | None = None,
                 **kw) -> EndToEndResult:
    rng = np.random.default_rng(seed)
    dataset = absentee_like(rng) if n_rows is None else \
        absentee_like(rng, n_rows=n_rows)
    return run_invocations(dataset, ABSENTEE_DRILL_ORDER, name="absentee",
                           **kw)


def run_compas(seed: int = 0, n_rows: int | None = None,
               **kw) -> EndToEndResult:
    rng = np.random.default_rng(seed)
    dataset = compas_like(rng) if n_rows is None else \
        compas_like(rng, n_rows=n_rows)
    return run_invocations(dataset, COMPAS_DRILL_ORDER, name="compas", **kw)
