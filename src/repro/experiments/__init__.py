"""Experiment runners: one module per paper table/figure family."""
