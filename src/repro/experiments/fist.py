"""FIST user-study harness (§5.4, Appendix M).

Replays the 22 scripted complaints against the simulated drought panel.
A complaint is *resolved* when Reptile's recommended drill-down hierarchy
is geography and the top-ranked district is the scenario's injected ground
truth. The two designed failure scenarios (ambiguous region-wide drift and
the symmetric two-district std corruption) have no single correct answer;
the harness records whether Reptile — like the paper's system — fails to
resolve them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.complaint import Complaint
from ..core.session import Reptile, ReptileConfig
from ..datagen.fist import (FistScenario, FistWorld, ScenarioKind,
                            apply_scenario, make_scenarios, make_world)


@dataclass
class ScenarioResult:
    scenario: FistScenario
    recommended_hierarchy: str
    top_district: str | None
    resolved: bool

    @property
    def matches_paper(self) -> bool:
        """Did resolution match the paper's outcome for this scenario type?"""
        return self.resolved == self.scenario.expected_resolved


@dataclass
class StudySummary:
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def n_resolved(self) -> int:
        return sum(r.resolved for r in self.results)

    @property
    def n_complaints(self) -> int:
        return len(self.results)

    def agreement_with_paper(self) -> float:
        return sum(r.matches_paper for r in self.results) / len(self.results)


def run_scenario(world: FistWorld, scenario: FistScenario,
                 rng: np.random.Generator,
                 n_iterations: int = 8) -> ScenarioResult:
    """Submit one scripted complaint and check the recommendation."""
    dataset = apply_scenario(world, scenario, rng)
    engine = Reptile(dataset,
                     config=ReptileConfig(n_em_iterations=n_iterations))
    session = engine.session(group_by=["region", "year"])
    coords = {"region": scenario.region, "year": scenario.year}
    complaint = (Complaint.too_high(coords, scenario.aggregate)
                 if scenario.direction == "high"
                 else Complaint.too_low(coords, scenario.aggregate))
    recommendation = session.recommend(complaint)
    geo = recommendation.per_hierarchy.get("geo")
    top = geo.best if geo else None
    top_district = top.coordinates.get("district") if top else None
    hierarchy = recommendation.best_hierarchy
    if scenario.kind is ScenarioKind.TWO_DISTRICT_STD:
        # Appendix M: repairing one of the two districts cannot reduce the
        # std; a complaint only counts as resolved when the repair moves
        # the statistic materially toward the expectation.
        material = abs(geo.base_penalty) * 0.05 if geo else 0.0
        resolved = (hierarchy == "geo" and top is not None
                    and top.margin_gain > material
                    and top_district in (scenario.district,
                                         scenario.second_district))
    elif scenario.district is None:
        # Ambiguous scenario: any single district the system highlights is
        # at best a partial answer — the experts disagreed on the cause.
        resolved = False
    else:
        resolved = hierarchy == "geo" and top_district == scenario.district
    return ScenarioResult(scenario, hierarchy, top_district, resolved)


def run_study(seed: int = 0, n_iterations: int = 8) -> StudySummary:
    """Run all 22 complaints (paper outcome: 20/22 resolved)."""
    rng = np.random.default_rng(seed)
    world = make_world(rng)
    scenarios = make_scenarios(world, rng)
    summary = StudySummary()
    for scenario in scenarios:
        summary.results.append(
            run_scenario(world, scenario, rng, n_iterations=n_iterations))
    return summary
