"""Model-quality evaluation via ΔAIC (Appendix K, Figure 16).

Compares Linear / Linear-f / Multi-level / Multi-level-f on the two
Appendix K datasets (FIST drought panel, county election panel). The
expected shape: multi-level variants dominate on FIST (strong cluster
structure), and auxiliary features dominate on Vote (2016 strongly
predicts 2020); ΔAIC > 10 marks a substantial difference [7].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datagen.fist import make_world as make_fist_world
from ..datagen.vote import make_world as make_vote_world
from ..model.features import AuxiliaryFeature
from ..model.selection import ModelScore, compare_models, delta_aic
from ..relational.cube import Cube

MODEL_NAMES = ("linear", "linear-f", "multilevel", "multilevel-f")


@dataclass
class QualityResult:
    """ΔAIC of the four variants on one dataset (one Figure 16 group)."""

    dataset: str
    scores: dict[str, ModelScore]
    deltas: dict[str, float]

    def best(self) -> str:
        return min(self.scores, key=lambda k: self.scores[k].aic)


def run_fist(seed: int = 0, n_iterations: int = 10) -> QualityResult:
    """FIST: estimate village-year mean severity; clusters = districts."""
    rng = np.random.default_rng(seed)
    world = make_fist_world(rng)
    cube = Cube(world.dataset)
    view = cube.view(("region", "district", "village", "year"))
    aux = world.dataset.auxiliary["sensing_village"]
    scores = compare_models(
        view, "mean", cluster_attrs=("region", "district"),
        auxiliary_specs=[AuxiliaryFeature(aux, "rainfall")],
        n_iterations=n_iterations)
    return QualityResult("fist", scores, delta_aic(scores))


def run_vote(seed: int = 0, n_iterations: int = 10) -> QualityResult:
    """Vote: estimate county share; clusters = states; aux = 2016 share."""
    rng = np.random.default_rng(seed)
    world = make_vote_world(rng)
    cube = Cube(world.dataset)
    view = cube.view(("state", "county"))
    aux = world.dataset.auxiliary["election_2016"]
    scores = compare_models(
        view, "mean", cluster_attrs=("state",),
        auxiliary_specs=[AuxiliaryFeature(aux, "share_2016")],
        n_iterations=n_iterations)
    return QualityResult("vote", scores, delta_aic(scores))


def run_all(seed: int = 0, n_iterations: int = 10) -> dict[str, QualityResult]:
    return {"fist": run_fist(seed, n_iterations),
            "vote": run_vote(seed, n_iterations)}
