"""Dictionary encoding: the columnar substrate under the relational layer.

Every dimension column is stored (or lazily interned) as a pair
``(codes, domain)``: an ``int32`` numpy array of per-row codes plus the
ordered list of distinct values, so ``domain[codes[i]]`` is row ``i``'s
value. All hot relational operations — group-by, provenance filters,
natural join, distinct, sort — then reduce to integer-array kernels
(``np.unique`` / ``argsort`` / ``bincount`` / ``searchsorted``) instead of
per-row Python loops, which is what lets the roll-up cube and the serving
layer scale to 10⁵–10⁶ rows.

Two factorization paths keep semantics identical to the old row engine:

* numpy-backed columns go through ``np.unique`` (C speed, sorted domain);
* Python-list columns go through a dict factorizer that preserves the
  *original* value objects in the domain, so decoded rows are
  indistinguishable from the pre-columnar representation.

Multi-attribute keys are combined with a mixed-radix encoding into a
single ``int64`` per row (falling back to row-wise ``np.unique(axis=0)``
if the radix would overflow), which makes composite group-by a single
``np.unique`` call.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

from .. import kernels

#: dtype kinds that the typed (np.unique) factorization path accepts.
_TYPED_KINDS = "biufUS"

#: Mixed-radix composite keys must fit comfortably in int64.
_RADIX_LIMIT = 1 << 62


class EncodingError(ValueError):
    """Raised when a column cannot be dictionary-encoded (e.g. unhashable
    cell values); callers fall back to the row-at-a-time path."""


def digest_parts(*parts: bytes) -> bytes:
    """The one column-fingerprint recipe: blake2b-16 over the parts."""
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(part)
    return digest.digest()


class DictEncoding:
    """One column as ``int32`` codes plus an ordered value domain.

    ``domain`` is a plain Python list (index = code). ``domain_sorted``
    records whether the domain is in ascending value order — when true,
    code order equals value order and sorting by codes is sorting by
    values.
    """

    __slots__ = ("codes", "domain", "domain_sorted", "lossy", "_objects",
                 "_positions", "_token", "_sort_friendly")

    def __init__(self, codes: np.ndarray, domain: list,
                 domain_sorted: bool, objects: np.ndarray | None = None,
                 lossy: bool = False):
        self.codes = codes
        self.domain = domain
        self.domain_sorted = domain_sorted
        self._sort_friendly: bool | None = None
        #: True when decoding may not reproduce the original row objects:
        #: the dict factorizer merges ==-equal values of different types
        #: (1/True, 2/2.0) under one code, keeping the first-seen value
        #: as the domain representative. Grouping/filtering semantics are
        #: unaffected (the row engine's dict keys merged the same way),
        #: but operators that must return the *original* values take the
        #: row path instead of decoding.
        self.lossy = lossy
        self._objects = objects
        self._positions: dict | None = None
        self._token: bytes | None = None

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def cardinality(self) -> int:
        return len(self.domain)

    @property
    def objects(self) -> np.ndarray:
        """Domain as an object array (for C-speed ``take`` decoding)."""
        if self._objects is None:
            arr = np.empty(len(self.domain), dtype=object)
            arr[:] = self.domain
            self._objects = arr
        return self._objects

    def decode(self, codes: np.ndarray | None = None) -> list:
        """Values for ``codes`` (default: the whole column) as a list."""
        if codes is None:
            codes = self.codes
        if not len(self.domain):
            return []
        return self.objects[codes].tolist()

    def code_of(self, value) -> int | None:
        """Code of ``value``, or None if it is not in the domain.

        Matches the ``v == value`` semantics of the old per-row filter:
        NaN never matches anything (a dict lookup would match it by
        object identity), and unhashable values fall back to a linear
        ``==`` scan.
        """
        try:
            if value != value:  # NaN: v == value is False for every row
                return None
        except (TypeError, ValueError):
            pass  # objects with exotic __ne__ (e.g. arrays): fall through
        if self._positions is None:
            self._positions = {v: i for i, v in enumerate(self.domain)}
        try:
            return self._positions.get(value)
        except TypeError:
            for i, v in enumerate(self.domain):
                if v == value:
                    return i
            return None

    def sort_friendly(self) -> bool:
        """Whether code order equals ``(type name, value)`` sort order.

        True when the domain is value-sorted, single-typed, and NaN-free —
        exactly the conditions under which an ``np.lexsort`` over codes
        reproduces the design builder's Python key sort bit for bit.
        Memoized (O(cardinality) on first call).
        """
        if self._sort_friendly is None:
            ok = self.domain_sorted
            if ok and self.domain:
                first = type(self.domain[0])
                for v in self.domain:
                    if type(v) is not first or (isinstance(v, float)
                                                and v != v):
                        ok = False
                        break
            self._sort_friendly = bool(ok)
        return self._sort_friendly

    def take(self, indices: np.ndarray) -> "DictEncoding":
        """Row subset sharing this encoding's domain (no value copies)."""
        enc = DictEncoding(self.codes[indices], self.domain,
                           self.domain_sorted, self._objects, self.lossy)
        enc._positions = self._positions
        enc._sort_friendly = self._sort_friendly
        return enc

    def concat(self, other: "DictEncoding") -> "DictEncoding":
        """Concatenated rows under a merged domain."""
        if other.domain is self.domain:
            enc = DictEncoding(np.concatenate([self.codes, other.codes]),
                               self.domain, self.domain_sorted, self._objects,
                               self.lossy)
            enc._positions = self._positions
            return enc
        merged = list(self.domain)
        positions = {v: i for i, v in enumerate(merged)}
        remap = np.empty(len(other.domain), dtype=np.int32)
        lossy = self.lossy or other.lossy
        for j, v in enumerate(other.domain):
            code = positions.get(v)
            if code is None:
                code = len(merged)
                positions[v] = code
                merged.append(v)
            elif type(merged[code]) is not type(v):
                # ==-equal cross-type merge (1 vs 1.0): decoding would
                # return the left side's representative.
                lossy = True
            remap[j] = code
        codes = np.concatenate([self.codes, remap[other.codes]])
        enc = _sort_domain(codes, merged)
        enc.lossy = lossy
        return enc

    def extend_domain(self, values: Sequence
                      ) -> tuple["DictEncoding", np.ndarray]:
        """Encode ``values`` against this domain, appending unseen ones.

        Returns ``(extended, codes)``: ``extended`` re-wraps *this*
        column's code array over the extended domain — the old domain is
        a prefix of the new one, so every stored code (here, in the cube,
        in cached views) stays valid without a re-encode — and ``codes``
        encodes ``values``. New values get fresh codes past the old
        cardinality with dict semantics (``==``-equal values of another
        type merge under the existing code and flag the result lossy;
        NaN matches only by object identity, so each new NaN object is
        its own code, exactly like :func:`factorize`'s dict path).
        """
        positions: dict = dict(self._positions) if self._positions is not None \
            else {v: i for i, v in enumerate(self.domain)}
        domain = list(self.domain)
        codes = np.empty(len(values), dtype=np.int32)
        lossy = self.lossy
        grew = False
        try:
            for i, v in enumerate(values):
                code = positions.setdefault(v, len(domain))
                codes[i] = code
                if code == len(domain):
                    domain.append(v)
                    grew = True
                elif not lossy and type(domain[code]) is not type(v):
                    lossy = True
        except TypeError as exc:
            raise EncodingError(
                f"appended value is not hashable: {exc}") from exc
        extended = DictEncoding(self.codes, domain,
                                self.domain_sorted and not grew,
                                lossy=lossy)
        extended._positions = positions
        return extended, codes

    @classmethod
    def merge(cls, encodings: Sequence["DictEncoding"]
              ) -> tuple["DictEncoding", list[np.ndarray]]:
        """Union the domains of ``encodings``; return per-input remaps.

        The shard-merge primitive: ``merged`` carries the *first* input's
        code array over the union domain (the first domain is a prefix of
        the union, so shard 0's codes survive verbatim), and ``remaps[i]``
        maps input ``i``'s codes into the union — ``remaps[i][enc.codes]``
        re-expresses any shard's column in the shared code space.
        Built on :meth:`extend_domain`, so values merge with dict-key
        semantics: ``==``-equal values of another type collapse under the
        first-seen code (flagging the result lossy) and NaN matches only
        by object identity.
        """
        if not encodings:
            raise ValueError("merge() needs at least one encoding")
        acc = encodings[0]
        remaps = [np.arange(acc.cardinality, dtype=np.int32)]
        for other in encodings[1:]:
            acc, remap = acc.extend_domain(other.domain)
            acc.lossy = acc.lossy or other.lossy
            remaps.append(remap)
        return acc, remaps

    def hash_token(self) -> bytes:
        """A stable digest of this column's contents (codes + domain).

        Memoized: serving fingerprints reuse it instead of re-hashing
        (or even materializing) the value column.
        """
        if self._token is None:
            self._token = digest_parts(
                repr(self.domain).encode(),
                np.ascontiguousarray(self.codes).tobytes())
        return self._token


def _sort_domain(codes: np.ndarray, domain: list) -> DictEncoding:
    """Remap an insertion-ordered factorization to a sorted domain."""
    try:
        order = sorted(range(len(domain)), key=domain.__getitem__)
    except TypeError:
        return DictEncoding(codes, domain, domain_sorted=False)
    if order != list(range(len(domain))):
        perm = np.empty(len(domain), dtype=np.int32)
        perm[np.asarray(order, dtype=np.int32)] = \
            np.arange(len(domain), dtype=np.int32)
        codes = perm[codes]
        domain = [domain[i] for i in order]
    return DictEncoding(codes, domain, domain_sorted=True)


def factorize(values) -> DictEncoding:
    """Dictionary-encode one column.

    numpy arrays of scalar dtype use ``np.unique`` (domain decoded to
    Python scalars); anything else goes through a dict factorizer that
    keeps the original value objects, so nothing observable changes for
    relations built from Python rows.
    """
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise EncodingError("only 1-D columns can be encoded")
        if values.dtype.kind in _TYPED_KINDS \
                and not (values.dtype.kind == "f"
                         and np.isnan(values).any()):
            # np.unique would merge NaNs (equal_nan) into one domain
            # entry; the row engine kept every NaN its own group
            # (nan != nan), so NaN-bearing floats take the dict path.
            domain_arr, inverse = np.unique(values, return_inverse=True)
            codes = inverse.astype(np.int32, copy=False).reshape(-1)
            return DictEncoding(codes, domain_arr.tolist(), domain_sorted=True)
        values = values.tolist()
    table: dict = {}
    domain: list = []
    codes = np.empty(len(values), dtype=np.int32)
    lossy = False
    try:
        for i, v in enumerate(values):
            code = table.setdefault(v, len(table))
            codes[i] = code
            if code == len(domain):
                domain.append(v)
            elif not lossy and type(domain[code]) is not type(v):
                # An ==-equal value of another type (1/True, 2/2.0) was
                # merged under this code; decoding would return the
                # first-seen representative, not this row's object. Flag
                # it so value-preserving operators use the row path.
                lossy = True
    except TypeError as exc:
        raise EncodingError(f"column value is not hashable: {exc}") from exc
    enc = _sort_domain(codes, domain)
    enc.lossy = lossy
    return enc


def combine_radix(code_columns: Sequence[np.ndarray],
                  sizes: Sequence[int]) -> np.ndarray:
    """Mixed-radix combine of code columns into one ``int64`` key per row.

    The caller is responsible for checking the radix fits (see
    :data:`_RADIX_LIMIT`).
    """
    combined = code_columns[0].astype(np.int64, copy=True)
    for col, size in zip(code_columns[1:], sizes[1:]):
        combined *= max(int(size), 1)
        combined += col
    return combined


def combine_codes(code_columns: Sequence[np.ndarray],
                  sizes: Sequence[int], n_rows: int
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Composite group ids over several code columns.

    Returns ``(gids, key_codes)``: a per-row ``int64`` group id in
    ``[0, n_groups)`` and the ``(n_groups, k)`` matrix of distinct key
    codes, ordered lexicographically by column (which, with sorted
    domains, is lexicographic value order).
    """
    k = len(code_columns)
    if k == 0:
        gids = np.zeros(n_rows, dtype=np.int64)
        return (gids[:0] if n_rows == 0 else gids,
                np.empty((1 if n_rows else 0, 0), dtype=np.int32))
    radix = 1
    for size in sizes:
        radix *= max(int(size), 1)
    if radix >= _RADIX_LIMIT:
        stacked = np.column_stack(
            [np.asarray(c, dtype=np.int32) for c in code_columns])
        key_codes, inverse = np.unique(stacked, axis=0, return_inverse=True)
        return inverse.reshape(-1).astype(np.int64, copy=False), key_codes
    combined = combine_radix(code_columns, sizes)
    gids, uniq = kernels.group_codes(combined, radix)
    key_codes = np.empty((len(uniq), k), dtype=np.int32)
    rem = uniq
    for j in range(k - 1, 0, -1):
        size = max(int(sizes[j]), 1)
        key_codes[:, j] = rem % size
        rem = rem // size
    key_codes[:, 0] = rem
    return gids.reshape(-1).astype(np.int64, copy=False), key_codes


def comparable_keys(left_cols: Sequence[np.ndarray],
                    right_cols: Sequence[np.ndarray],
                    sizes: Sequence[int]
                    ) -> tuple[np.ndarray, np.ndarray]:
    """One comparable ``int64`` key per row for two aligned code blocks.

    Both blocks are code columns over the *same* domains (``sizes``).
    Uses the mixed-radix combine when it fits; otherwise densely
    re-encodes the occupied key combinations with one row-wise unique
    over both sides, so equal code tuples always map to equal ids.
    """
    radix = 1
    for s in sizes:
        radix *= max(int(s), 1)
    if radix < _RADIX_LIMIT:
        return (combine_radix(left_cols, sizes) if left_cols
                else np.zeros(0, dtype=np.int64),
                combine_radix(right_cols, sizes) if right_cols
                else np.zeros(0, dtype=np.int64))
    stacked = np.vstack([
        np.column_stack([np.asarray(c, dtype=np.int64) for c in left_cols]),
        np.column_stack([np.asarray(c, dtype=np.int64) for c in right_cols])])
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)
    n_left = len(left_cols[0]) if left_cols else 0
    return inverse[:n_left], inverse[n_left:]


class GroupIndex:
    """Composite-key grouping of ``n`` rows over several encoded columns."""

    __slots__ = ("gids", "key_codes", "encodings")

    def __init__(self, encodings: Sequence[DictEncoding], n_rows: int):
        self.encodings = tuple(encodings)
        self.gids, self.key_codes = combine_codes(
            [e.codes for e in self.encodings],
            [e.cardinality for e in self.encodings], n_rows)

    @property
    def n_groups(self) -> int:
        return len(self.key_codes)

    def keys(self) -> list[tuple]:
        """Distinct group keys as value tuples, in group-id order."""
        return decode_keys(self.key_codes, self.encodings)

    def group_indices(self) -> list[np.ndarray]:
        """Per-group row-index arrays (ascending), in group-id order."""
        order = np.argsort(self.gids, kind="stable")
        counts = np.bincount(self.gids, minlength=self.n_groups)
        return np.split(order, np.cumsum(counts)[:-1])


def decode_keys(key_codes: np.ndarray,
                encodings: Sequence[DictEncoding]) -> list[tuple]:
    """Turn a ``(u, k)`` code matrix back into value tuples."""
    if key_codes.shape[1] == 0:
        return [()] * len(key_codes)
    columns = [enc.objects[key_codes[:, j]]
               for j, enc in enumerate(encodings)]
    return list(zip(*columns))


def align_domains(target: DictEncoding, source: DictEncoding) -> np.ndarray:
    """Map ``source`` codes into ``target``'s code space (-1 = absent)."""
    remap = np.full(source.cardinality, -1, dtype=np.int64)
    if target._positions is None:
        target._positions = {v: i for i, v in enumerate(target.domain)}
    positions = target._positions
    for j, v in enumerate(source.domain):
        try:
            code = positions.get(v)
        except TypeError:
            code = None
        if code is not None:
            remap[j] = code
    return remap


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for every (start, count) pair."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    return np.repeat(starts.astype(np.int64, copy=False), counts) + within


def merge_join_indices(left_encs: Sequence[DictEncoding],
                       right_encs: Sequence[DictEncoding]
                       ) -> tuple[np.ndarray, np.ndarray] | None:
    """Matching row-index pairs of an equi-join over encoded key columns.

    The shared kernel behind ``Relation.natural_join`` and the counted
    relations' join-multiply: right codes are aligned into the left
    domains, both sides collapse to one mixed-radix ``int64`` per row,
    and a stable sort-merge emits ``(left_idx, right_idx)`` with left
    rows in order and, within one left row, right matches in their
    original order. Returns None when the radix would overflow (callers
    fall back to their row paths).
    """
    sizes = [e.cardinality for e in left_encs]
    radix = 1
    for s in sizes:
        radix *= max(s, 1)
    if radix >= _RADIX_LIMIT:
        return None
    n_right = len(right_encs[0]) if right_encs else 0
    valid = np.ones(n_right, dtype=bool)
    right_codes = []
    for le, re in zip(left_encs, right_encs):
        remapped = align_domains(le, re)[re.codes]
        valid &= remapped >= 0
        right_codes.append(remapped)
    ridx0 = np.flatnonzero(valid)
    combined_l = combine_radix([e.codes for e in left_encs], sizes)
    combined_r = combine_radix([c[ridx0] for c in right_codes], sizes)
    l_idx, r_pos = kernels.join_probe(combined_l, combined_r, radix)
    r_idx = ridx0[r_pos]
    return l_idx, r_idx
