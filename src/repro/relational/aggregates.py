"""Distributive aggregation functions and their merge function ``G``.

Reptile (§3.1, Appendix A) requires that the complained aggregate be a
*distributive set* of functions: given a partition of ``R`` into subsets
``R_1..R_J``, there must exist ``G`` with ``F(R) = G(F(R_1), ..., F(R_J))``.

We represent each group's aggregate by a compact sufficient-statistics state
``(count, sum, sumsq)`` from which COUNT, SUM, MEAN, STD (and VAR) are all
derived. Merging states implements ``G`` exactly as spelled out in
Appendix A:

* ``G_count = Σ count_j``
* ``G_mean  = Σ count_j · mean_j / Σ count_j``
* ``G_std`` via the pooled-variance identity.

The engine uses these states everywhere: the roll-up cube, complaint
evaluation, and the "repair one group then recompute the parent" step of
Problem 1 (eq. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

#: Names of the base statistics every AggState exposes.
BASE_STATISTICS = ("count", "sum", "mean", "std", "var")

#: Aggregates that are composites of base statistics (footnote 3: e.g.
#: SUM = MEAN × COUNT). Maps name -> the base statistics it decomposes into.
COMPOSITE_STATISTICS: dict[str, tuple[str, ...]] = {
    "count": ("count",),
    "sum": ("mean", "count"),
    "mean": ("mean",),
    "std": ("std",),
    "var": ("std",),
}


class AggregateError(ValueError):
    """Raised for unknown statistics or invalid aggregate states."""


@dataclass(frozen=True)
class AggState:
    """Sufficient statistics of one group: ``(count, sum, sumsq)``.

    All distributive statistics used in the paper are derived from these
    three numbers. States are immutable; updates create new states.
    """

    count: float = 0.0
    total: float = 0.0
    sumsq: float = 0.0

    # -- constructors -----------------------------------------------------------
    @classmethod
    def of(cls, values: Sequence[float] | np.ndarray) -> "AggState":
        """State of a leaf group holding ``values``."""
        arr = np.asarray(values, dtype=float)
        return cls(float(arr.size), float(arr.sum()),
                   float(np.square(arr).sum()))

    @classmethod
    def from_stats(cls, count: float, mean: float, std: float = 0.0) -> "AggState":
        """Build a state from (count, mean, std) — the inverse of summaries.

        Uses the population-style identity ``sumsq = count·(std² + mean²)``
        adjusted for the sample std convention used by :meth:`std`.
        """
        count = float(count)
        total = count * float(mean)
        if count > 1:
            sumsq = (count - 1) * float(std) ** 2 + count * float(mean) ** 2
        else:
            sumsq = count * float(mean) ** 2
        return cls(count, total, sumsq)

    # -- derived statistics -------------------------------------------------------
    @property
    def sum(self) -> float:
        return self.total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def var(self) -> float:
        """Sample variance (ddof=1); 0 for groups of size ≤ 1."""
        if self.count <= 1:
            return 0.0
        v = (self.sumsq - self.total * self.total / self.count) / (self.count - 1)
        return max(v, 0.0)

    @property
    def std(self) -> float:
        return math.sqrt(self.var)

    def statistic(self, name: str) -> float:
        """Value of the named statistic (one of :data:`BASE_STATISTICS`)."""
        if name not in BASE_STATISTICS:
            raise AggregateError(f"unknown statistic {name!r}")
        return float(getattr(self, name))

    def is_empty(self) -> bool:
        return self.count == 0

    # -- algebra (this is G) ------------------------------------------------------
    def merge(self, other: "AggState") -> "AggState":
        """``G`` applied to two partial states (associative, commutative)."""
        return AggState(self.count + other.count,
                        self.total + other.total,
                        self.sumsq + other.sumsq)

    def __add__(self, other: "AggState") -> "AggState":
        return self.merge(other)

    def remove(self, other: "AggState") -> "AggState":
        """Inverse merge: subtract a child state from an aggregate state.

        Used by the deletion-based Sensitivity baseline and by the ranker's
        incremental "replace one group" update.
        """
        return AggState(self.count - other.count,
                        self.total - other.total,
                        self.sumsq - other.sumsq)

    def replace(self, old: "AggState", new: "AggState") -> "AggState":
        """State after swapping child ``old`` for ``new`` (eq. 3 of Problem 1)."""
        return self.remove(old).merge(new)

    # -- repairs ------------------------------------------------------------------
    def with_statistic(self, name: str, value: float) -> "AggState":
        """A repaired copy with one statistic set to ``value``.

        * ``count``: rescale count, keeping mean and std.
        * ``mean``:  shift values, keeping count and std.
        * ``sum``:   adjust mean, keeping count and std.
        * ``std``/``var``: rescale spread around the mean.
        """
        if name == "count":
            return AggState.from_stats(max(value, 0.0), self.mean, self.std)
        if name == "mean":
            return AggState.from_stats(self.count, value, self.std)
        if name == "sum":
            mean = value / self.count if self.count else 0.0
            return AggState.from_stats(self.count, mean, self.std)
        if name == "std":
            return AggState.from_stats(self.count, self.mean, max(value, 0.0))
        if name == "var":
            return AggState.from_stats(self.count, self.mean,
                                       math.sqrt(max(value, 0.0)))
        raise AggregateError(f"unknown statistic {name!r}")


class GroupStats:
    """Sufficient statistics of *many* groups, struct-of-arrays.

    The columnar counterpart of a ``{key: AggState}`` map: three aligned
    float arrays (``count``, ``total``, ``sumsq``) indexed by group id.
    Leaf-cube construction fills one with three ``np.bincount`` calls and
    a roll-up to a coarser level is three more — ``G`` applied to whole
    levels at once. :meth:`state` exposes one group as an ordinary
    :class:`AggState`, which is how the public Mapping views keep the old
    object-per-group API alive on top of this layout.
    """

    __slots__ = ("count", "total", "sumsq")

    def __init__(self, count: np.ndarray, total: np.ndarray,
                 sumsq: np.ndarray):
        self.count = count
        self.total = total
        self.sumsq = sumsq

    @classmethod
    def from_groups(cls, gids: np.ndarray, n_groups: int,
                    values: np.ndarray) -> "GroupStats":
        """Leaf states of ``n_groups`` groups: one bincount per statistic."""
        values = np.asarray(values, dtype=float)
        return cls(
            np.bincount(gids, minlength=n_groups).astype(float),
            np.bincount(gids, weights=values, minlength=n_groups),
            np.bincount(gids, weights=values * values, minlength=n_groups))

    def __len__(self) -> int:
        return len(self.count)

    def state(self, i: int) -> AggState:
        """Group ``i`` as an :class:`AggState` (a cheap scalar view)."""
        return AggState(float(self.count[i]), float(self.total[i]),
                        float(self.sumsq[i]))

    def select(self, indices: np.ndarray) -> "GroupStats":
        """Row subset (boolean mask or index array)."""
        return GroupStats(self.count[indices], self.total[indices],
                          self.sumsq[indices])

    def merge_by(self, gids: np.ndarray, n_groups: int) -> "GroupStats":
        """``G`` over groups-of-groups: gids maps each row to its parent."""
        return GroupStats(
            np.bincount(gids, weights=self.count, minlength=n_groups),
            np.bincount(gids, weights=self.total, minlength=n_groups),
            np.bincount(gids, weights=self.sumsq, minlength=n_groups))

    def total_state(self) -> AggState:
        """``G`` over every group — the parent aggregate."""
        return AggState(float(self.count.sum()), float(self.total.sum()),
                        float(self.sumsq.sum()))

    def sequential_total(self) -> AggState:
        """``G`` over every group, accumulated left to right.

        Bitwise-identical to ``merge_states(states)`` over the same groups
        in order (``np.cumsum`` adds sequentially; ``np.sum`` pairs), which
        is what the array ranker needs to reproduce the dict path exactly.
        """
        if not len(self.count):
            return AggState()
        return AggState(float(np.cumsum(self.count)[-1]),
                        float(np.cumsum(self.total)[-1]),
                        float(np.cumsum(self.sumsq)[-1]))

    def statistic_array(self, name: str) -> np.ndarray:
        """Per-group values of one base statistic, vectorized.

        Element ``i`` is bitwise-equal to ``self.state(i).statistic(name)``.
        """
        if name == "count":
            return self.count
        if name == "sum":
            return self.total
        if name == "mean":
            return mean_array(self.count, self.total)
        if name == "var":
            return var_array(self.count, self.total, self.sumsq)
        if name == "std":
            return np.sqrt(var_array(self.count, self.total, self.sumsq))
        raise AggregateError(f"unknown statistic {name!r}")

    def __repr__(self) -> str:
        return f"GroupStats(n={len(self)})"


# -- array kernels (the vectorized counterparts of AggState) -------------------
#
# Every function here is an elementwise transliteration of the scalar
# AggState method of the same name. The array ranker relies on them being
# *bitwise* identical per element: each IEEE operation appears in the same
# order as the scalar code, squares go through ``np.float_power`` (C pow,
# matching Python's ``**``; numpy's ``arr ** 2`` lowers to a multiply that
# can differ in the last ulp), and guarded divisions reproduce the
# ``if count`` fallbacks with masked ``np.divide``.


def mean_array(count: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Vectorized :attr:`AggState.mean` (0 where the count is 0)."""
    return np.divide(total, count, out=np.zeros_like(total),
                     where=count != 0)


def var_array(count: np.ndarray, total: np.ndarray,
              sumsq: np.ndarray) -> np.ndarray:
    """Vectorized :attr:`AggState.var` (sample variance, 0 for n ≤ 1)."""
    big = count > 1
    safe = np.where(big, count, 1.0)
    v = (sumsq - total * total / safe) / np.where(big, count - 1, 1.0)
    return np.where(big, np.maximum(v, 0.0), 0.0)


def from_stats_arrays(count: np.ndarray, mean: np.ndarray, std: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :meth:`AggState.from_stats`: ``(count, total, sumsq)``."""
    count = np.asarray(count, dtype=float)
    total = count * mean
    sq_mean = np.float_power(mean, 2)
    sumsq = np.where(count > 1,
                     (count - 1) * np.float_power(std, 2) + count * sq_mean,
                     count * sq_mean)
    return count, total, sumsq


def with_statistic_arrays(count: np.ndarray, total: np.ndarray,
                          sumsq: np.ndarray, name: str, values: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :meth:`AggState.with_statistic` over whole levels.

    The fused-kernel tier carries bitwise-synced variants of this chain
    (``kernels.numpy_fused._with_statistic_lean`` skips the dead
    mean/std preamble per branch; the numba backend transliterates it to
    scalars) — a change to any branch here must land in both, or the
    kernel property suite's fused-vs-plain equality gate will fail.
    """
    mean = mean_array(count, total)
    std = np.sqrt(var_array(count, total, sumsq))
    if name == "count":
        return from_stats_arrays(np.maximum(values, 0.0), mean, std)
    if name == "mean":
        return from_stats_arrays(count, values, std)
    if name == "sum":
        new_mean = np.divide(values, count, out=np.zeros_like(total),
                             where=count != 0)
        return from_stats_arrays(count, new_mean, std)
    if name == "std":
        return from_stats_arrays(count, mean, np.maximum(values, 0.0))
    if name == "var":
        return from_stats_arrays(count, mean,
                                 np.sqrt(np.maximum(values, 0.0)))
    raise AggregateError(f"unknown statistic {name!r}")


def evaluate_composite_arrays(statistic: str, count: np.ndarray,
                              total: np.ndarray, sumsq: np.ndarray
                              ) -> np.ndarray:
    """Vectorized :func:`evaluate_composite` over ``(count, total, sumsq)``."""
    decompose(statistic)  # validates the name
    if statistic == "count":
        return count
    if statistic == "sum":
        return total
    if statistic == "mean":
        return mean_array(count, total)
    if statistic == "var":
        return var_array(count, total, sumsq)
    if statistic == "std":
        return np.sqrt(var_array(count, total, sumsq))
    raise AggregateError(f"unknown composite statistic {statistic!r}")


def merge_states(states: Iterable[AggState]) -> AggState:
    """``G`` over an arbitrary collection of partial states."""
    out = AggState()
    for s in states:
        out = out.merge(s)
    return out


def state_of_relation(values: Sequence[float] | np.ndarray) -> AggState:
    """Alias of :meth:`AggState.of` reading naturally at call sites."""
    return AggState.of(values)


def decompose(statistic: str) -> tuple[str, ...]:
    """Base statistics a (possibly composite) aggregate decomposes into.

    Footnote 4: when the complaint's aggregate is composite (e.g. SUM),
    Reptile fits one model per base statistic.
    """
    try:
        return COMPOSITE_STATISTICS[statistic]
    except KeyError:
        raise AggregateError(f"unknown statistic {statistic!r}") from None


def evaluate_composite(statistic: str, state: AggState) -> float:
    """Value of a possibly-composite statistic on a state."""
    decompose(statistic)  # validates the name
    return state.statistic(statistic) if statistic in BASE_STATISTICS \
        else _composite_value(statistic, state)


def _composite_value(statistic: str, state: AggState) -> float:
    if statistic == "sum":
        return state.mean * state.count
    raise AggregateError(f"unknown composite statistic {statistic!r}")
