"""Row-at-a-time rebuild-from-scratch reference for the delta engine.

This module freezes the *semantics* of applying a delta: retract the
earliest ``==``-matching base rows (bag multiplicity, every column must
match, NaN never matches), then append the new rows, then rebuild every
derived structure from the resulting rows as if the engine had been
constructed on them. The property tests assert that the incremental
path — ``Relation.with_rows_appended`` / ``Cube.apply_delta`` /
``Reptile.apply_delta`` and the serving cache patches — produces exactly
what these loops produce (bitwise on counts and, for exactly-representable
measure sums, on totals and sums of squares).

Nothing in the engine calls into this module; do not "optimize" it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .dataset import HierarchicalDataset
from .delta import Delta, DeltaError
from .relation import Relation
from . import rowref

Key = tuple


def apply_delta_rows(relation: Relation, delta: Delta) -> Relation:
    """The delta applied by per-row Python loops on materialized tuples."""
    if delta.schema.names != relation.schema.names:
        raise DeltaError("delta schema does not match the relation")
    rows = [tuple(r) for r in relation.rows()]
    taken: set[int] = set()
    for target in delta.retracted.rows():
        for i, row in enumerate(rows):
            if i in taken:
                continue
            try:
                hit = len(row) == len(target) and all(
                    a == b for a, b in zip(row, target))
            except (TypeError, ValueError):
                hit = False
            if hit:
                taken.add(i)
                break
        else:
            raise DeltaError(
                f"retracted row {tuple(target)!r} matches no base row")
    rows = [row for i, row in enumerate(rows) if i not in taken]
    rows.extend(tuple(r) for r in delta.appended.rows())
    return Relation.from_rows(relation.schema, rows)


def rebuilt_dataset(dataset: HierarchicalDataset,
                    deltas: Iterable[Delta]) -> HierarchicalDataset:
    """A fresh dataset over the rows after applying ``deltas`` in order.

    Hierarchy validation runs (a delta violating the leaf → ancestors
    FD makes the rebuild raise, mirroring the delta path's rejection).
    """
    relation = dataset.relation
    for delta in deltas:
        relation = apply_delta_rows(relation, delta)
    return HierarchicalDataset(relation, dataset.dimensions,
                               dataset.measure,
                               auxiliary=list(dataset.auxiliary.values()))


def rebuilt_leaf_states(dataset: HierarchicalDataset) -> dict:
    """Leaf states rebuilt from scratch with the pre-columnar loops."""
    return rowref.leaf_states(dataset)


def rebuilt_view(dataset: HierarchicalDataset, group_attrs: Sequence[str],
                 filters=None) -> dict:
    """One group-by view rebuilt from scratch (loops all the way down)."""
    return rowref.rollup_view(rowref.leaf_states(dataset),
                              dataset.leaf_group_by(), tuple(group_attrs),
                              filters)


def state_signature(state) -> tuple:
    """An AggState as a hashable, bitwise-exact triple."""
    return (state.count, state.total, state.sumsq)


def group_signature(groups) -> dict:
    """A ``{key: AggState}``-like mapping as comparable signatures.

    Keys are rendered through ``repr`` so NaN-bearing keys (equal only
    by identity) can be compared across independently built mappings:
    two sides agree iff they hold the same multiset of
    ``(repr(key), (count, total, sumsq))`` pairs.
    """
    out: dict = {}
    for key, state in groups.items():
        sig = (repr(key), state_signature(state))
        out[sig] = out.get(sig, 0) + 1
    return out


def assert_groups_equal(incremental, rebuilt) -> None:
    """Exact group-level equality, tolerant of NaN keys and key order."""
    a, b = group_signature(incremental), group_signature(rebuilt)
    assert a == b, (
        f"group mismatch: only-incremental="
    f"{sorted(set(a) - set(b))[:5]} only-rebuilt={sorted(set(b) - set(a))[:5]}")
