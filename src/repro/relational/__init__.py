"""Relational substrate: relations, hierarchies, distributive aggregates.

Everything Reptile needs from a database is implemented here from scratch:
column-oriented relations, counted relations with the f-representation
operators of §2.2, hierarchy/FD metadata, and the distributive roll-up cube.
"""

from .aggregates import (AggState, AggregateError, BASE_STATISTICS,
                         COMPOSITE_STATISTICS, GroupStats, decompose,
                         evaluate_composite, merge_states, state_of_relation)
from .countmap import (CountMap, CountMapError, EncodedCountMap,
                       aggregate_query, aggregate_query_early, join_all)
from .cube import Cube, CubeDelta, GroupView, StatesMap
from .delta import Delta, DeltaError, locate_rows
from .encoding import DictEncoding, EncodingError, factorize
from .dataset import AuxiliaryDataset, DatasetError, HierarchicalDataset
from .hierarchy import (Dimensions, DrillState, Hierarchy, HierarchyError)
from .relation import Relation
from .schema import (Attribute, AttributeKind, Schema, SchemaError, dimension,
                     measure)
from .shard import (ShardedCube, ShardError, ShardWorkerPool,
                    dataset_from_chunks, encode_columns_chunked,
                    merge_shard_blocks, shutdown_worker_pools, worker_pool)

__all__ = [
    "AggState", "AggregateError", "BASE_STATISTICS", "COMPOSITE_STATISTICS",
    "GroupStats", "decompose", "evaluate_composite", "merge_states",
    "state_of_relation", "CountMap", "CountMapError", "EncodedCountMap",
    "aggregate_query",
    "aggregate_query_early", "join_all", "Cube", "CubeDelta", "GroupView",
    "StatesMap", "Delta", "DeltaError", "locate_rows",
    "DictEncoding", "EncodingError", "factorize", "AuxiliaryDataset",
    "DatasetError", "HierarchicalDataset", "Dimensions", "DrillState",
    "Hierarchy", "HierarchyError", "Relation", "Attribute", "AttributeKind",
    "Schema", "SchemaError", "dimension", "measure",
    "ShardedCube", "ShardError", "ShardWorkerPool", "dataset_from_chunks",
    "encode_columns_chunked", "merge_shard_blocks", "shutdown_worker_pools",
    "worker_pool",
]
