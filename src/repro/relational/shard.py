"""Sharded parallel cube build: partition, fan out, k-way merge.

The single-process :class:`~repro.relational.cube.Cube` tops out at the
largest relation one core can scan in acceptable time. This module scales
the leaf-cube build across processes without changing a single observable
bit of the result:

* the relation is partitioned by a **hierarchy-prefix partition key** (by
  default the root attribute of the first hierarchy). The partition
  attribute is part of every leaf key, so each leaf group lives wholly in
  exactly one shard — per-shard ``np.bincount`` accumulates the same
  values in the same row order as the global pass, making per-group stats
  bitwise identical;
* each shard's ``int32`` code columns (plus the ``float64`` measure) are
  packed into one :mod:`multiprocessing.shared_memory` segment — or a
  memory-mapped temp file when shared memory is unavailable — so the
  persistent worker pool attaches without pickling a byte of column data;
* per-shard ``(key_codes, GroupStats)`` blocks come back small (one row
  per distinct leaf) and fold together through the existing
  :func:`~repro.relational.cube.merge_stats_blocks` kernel; a final
  ``np.lexsort`` restores the exact lexicographic key order the
  single-process ``combine_codes`` pass produces.

Deltas route to the **owning shard**: the partition attribute is in every
delta key, so ``code % n_shards`` names the one shard block a batch
touches, and ingest cost scales with shard size, not relation size.
``ShardedCube.shard_patches`` counts per-shard patches so tests (and the
fig22 bench) can prove locality.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..robustness.faultinject import fault_point
from .aggregates import GroupStats
from .cube import Cube, CubeDelta, merge_stats_blocks
from .dataset import HierarchicalDataset
from .delta import Delta
from .encoding import DictEncoding, combine_codes, factorize
from .relation import Relation
from .schema import Schema, dimension, measure as measure_attr


class ShardError(ValueError):
    """Raised for invalid shard configuration (bad counts, non-leaf
    partition attribute, mismatched block layouts)."""


# ---------------------------------------------------------------------------
# Shared-memory column blocks


@dataclass(frozen=True)
class BlockHandle:
    """A picklable reference to one packed column block.

    ``kind`` is ``"shm"`` (POSIX shared memory), ``"mmap"`` (one packed
    temp file) or ``"spill"`` (one streamed file per array, written by
    :class:`ShardSpillWriter`; ``name`` is the path prefix and the byte
    offset in ``layout`` is unused). ``layout`` lists
    ``(name, dtype_str, length, byte_offset)`` per array.
    """

    kind: str
    name: str
    size: int
    layout: tuple[tuple[str, str, int, int], ...]


def _spill_path(prefix: str, array_name: str) -> str:
    return f"{prefix}.{array_name}.bin"


# Every segment the coordinator packs is registered here until its owner
# releases it. A worker crash cannot leak silently: the name stays in the
# registry, tests assert it empty after recovery, and the atexit sweep
# unlinks stragglers eagerly instead of leaving /dev/shm litter.
_SEGMENTS_LOCK = threading.Lock()
_LIVE_SEGMENTS: dict[str, str] = {}  # segment name -> "shm" | "mmap"


def _register_segment(handle: BlockHandle) -> None:
    with _SEGMENTS_LOCK:
        _LIVE_SEGMENTS[handle.name] = handle.kind


def _unregister_segment(handle: BlockHandle) -> None:
    with _SEGMENTS_LOCK:
        _LIVE_SEGMENTS.pop(handle.name, None)


def leaked_segments() -> list[tuple[str, str]]:
    """``(name, kind)`` of every packed-but-unreleased segment."""
    with _SEGMENTS_LOCK:
        return sorted(_LIVE_SEGMENTS.items())


def purge_leaked_segments() -> list[str]:
    """Unlink every registered segment still alive; returns their names.

    Only safe when no build is in flight (shutdown, test teardown): a
    healthy build's segments are registered too, between pack and
    release.
    """
    purged: list[str] = []
    for name, kind in leaked_segments():
        try:
            if kind == "shm":
                seg = _attach_shm(name)
                seg.close()
                seg.unlink()
            elif kind == "spill":
                import glob
                for path in glob.glob(name + ".*.bin"):
                    os.unlink(path)
            else:
                os.unlink(name)
        except (OSError, FileNotFoundError):
            pass
        with _SEGMENTS_LOCK:
            _LIVE_SEGMENTS.pop(name, None)
        purged.append(name)
    return purged


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker side effects.

    Python < 3.13 registers *attached* segments with the resource tracker
    as if this process owned them; ``track=False`` (3.13+) keeps ownership
    with the packer. On older versions forked workers share the parent's
    tracker, so the duplicate register is a set no-op — the coordinator's
    unlink still balances it — and no workaround is needed.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class SharedCodes:
    """Named 1-D arrays packed into one shared (or memmapped) segment.

    The coordinator ``pack()``s a shard's code columns + measure once;
    workers ``attach()`` by handle and see zero-copy numpy views. The
    packer owns the segment: ``release()`` on the owner unlinks it.
    """

    def __init__(self, handle: BlockHandle, arrays: dict[str, np.ndarray],
                 shm: shared_memory.SharedMemory | None = None,
                 mmap_arr: np.memmap | None = None, owner: bool = False):
        self.handle = handle
        self.arrays: dict[str, np.ndarray] | None = arrays
        self._shm = shm
        self._mm = mmap_arr
        self._owner = owner

    @staticmethod
    def _layout(arrays: Mapping[str, np.ndarray]
                ) -> tuple[dict[str, np.ndarray], list, int]:
        prepared: dict[str, np.ndarray] = {}
        layout: list[tuple[str, str, int, int]] = []
        offset = 0
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            prepared[name] = arr
            layout.append((name, arr.dtype.str, len(arr), offset))
            # 64-byte alignment keeps every view aligned for numpy kernels.
            offset = -(-(offset + arr.nbytes) // 64) * 64
        return prepared, layout, max(offset, 1)

    @classmethod
    def pack(cls, arrays: Mapping[str, np.ndarray],
             directory: str | None = None, *,
             spill: bool = False) -> "SharedCodes":
        """Pack arrays into one segment workers can attach.

        With ``spill=True`` (the out-of-core tier, ``--spill-dir``) the
        block always goes to a memory-mapped file under ``directory``
        instead of ``/dev/shm``: the resident budget is then whatever the
        page cache keeps warm, not the full block, so coordinator RSS
        stays bounded while workers still get zero-pickle views.
        """
        prepared, layout, size = cls._layout(arrays)
        if spill:
            return cls._pack_mmap(prepared, layout, size, directory)
        try:
            shm = shared_memory.SharedMemory(create=True, size=size)
        except OSError:
            return cls._pack_mmap(prepared, layout, size, directory)
        views: dict[str, np.ndarray] = {}
        for name, dtype, length, off in layout:
            view = np.ndarray((length,), dtype=dtype, buffer=shm.buf,
                              offset=off)
            view[:] = prepared[name]
            views[name] = view
        handle = BlockHandle("shm", shm.name, size, tuple(layout))
        _register_segment(handle)
        return cls(handle, views, shm=shm, owner=True)

    @classmethod
    def _pack_mmap(cls, prepared: dict[str, np.ndarray], layout: list,
                   size: int, directory: str | None) -> "SharedCodes":
        fd, path = tempfile.mkstemp(prefix="repro-shard-", suffix=".bin",
                                    dir=directory)
        os.close(fd)
        mm = np.memmap(path, dtype=np.uint8, mode="w+", shape=(size,))
        views: dict[str, np.ndarray] = {}
        for name, dtype, length, off in layout:
            view = np.ndarray((length,), dtype=dtype, buffer=mm, offset=off)
            view[:] = prepared[name]
            views[name] = view
        mm.flush()
        handle = BlockHandle("mmap", path, size, tuple(layout))
        _register_segment(handle)
        return cls(handle, views, mmap_arr=mm, owner=True)

    @classmethod
    def attach(cls, handle: BlockHandle) -> "SharedCodes":
        fault_point("shm.attach", name=handle.name, kind=handle.kind)
        if handle.kind == "shm":
            shm = _attach_shm(handle.name)
            buf = shm.buf
            views = {name: np.ndarray((length,), dtype=dtype, buffer=buf,
                                      offset=off)
                     for name, dtype, length, off in handle.layout}
            return cls(handle, views, shm=shm)
        if handle.kind == "spill":
            views = {}
            for name, dtype, length, _ in handle.layout:
                if length:
                    views[name] = np.memmap(_spill_path(handle.name, name),
                                            dtype=dtype, mode="r",
                                            shape=(length,))
                else:
                    # An empty file cannot be memory-mapped; an empty
                    # shard's columns are plain empty arrays.
                    views[name] = np.empty(0, dtype=dtype)
            return cls(handle, views)
        mm = np.memmap(handle.name, dtype=np.uint8, mode="r",
                       shape=(handle.size,))
        views = {name: np.ndarray((length,), dtype=dtype, buffer=mm,
                                  offset=off)
                 for name, dtype, length, off in handle.layout}
        return cls(handle, views, mmap_arr=mm)

    def release(self) -> None:
        """Drop the views and close/unlink the segment (owner only)."""
        self.arrays = None
        if self.handle.kind == "spill":
            if self._owner:
                for name, _, length, _ in self.handle.layout:
                    if length:
                        try:
                            os.unlink(_spill_path(self.handle.name, name))
                        except OSError:
                            pass
                _unregister_segment(self.handle)
                self._owner = False
            return
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                pass  # a caller still holds a view; the map stays until GC
            if self._owner:
                try:
                    self._shm.unlink()
                except FileNotFoundError:
                    pass
                _unregister_segment(self.handle)
            self._shm = None
        if self._mm is not None:
            path = self.handle.name if self._owner else None
            self._mm = None
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass
                _unregister_segment(self.handle)


def shared_arrays(source) -> tuple[dict, "Callable[[], None]"]:
    """Resolve a task's array source to ``(arrays, release)``.

    Shard-compute tasks accept either a :class:`BlockHandle` (pool mode —
    the worker attaches the shared segment) or a plain ``{name: array}``
    dict (serial in-process mode — no packing, no copies). The returned
    ``release`` drops any attached views; it never unlinks (only the
    packer owns the segment).
    """
    if isinstance(source, BlockHandle):
        block = SharedCodes.attach(source)
        return dict(block.arrays), block.release
    return source, lambda: None


class ShardSpillWriter:
    """Stream rows into per-shard on-disk column files (the spill tier).

    ``append(shard, arrays)`` appends each named array to that shard's
    per-column file, preserving append order — callers feed rows in
    global row order, so each shard's columns come out exactly as the
    in-memory ``codes[shard_rows]`` gather would produce them. The
    coordinator's resident cost is one chunk, never a shard image.

    ``finish()`` returns one ``kind="spill"`` :class:`BlockHandle` per
    shard; :meth:`SharedCodes.attach` memory-maps the files read-only.
    The handles are registered like any packed segment — release the
    returned owner blocks (or :func:`purge_leaked_segments`) to unlink.
    """

    def __init__(self, directory: str, n_shards: int):
        if n_shards < 1:
            raise ShardError(f"n_shards must be >= 1, got {n_shards}")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.n_shards = int(n_shards)
        fd, marker = tempfile.mkstemp(prefix="repro-spill-", suffix=".dir",
                                      dir=directory)
        os.close(fd)
        os.unlink(marker)
        self._prefix = marker[:-len(".dir")]
        self._files: dict[tuple[int, str], object] = {}
        self._meta: list[dict[str, tuple[str, int]]] = [
            {} for _ in range(self.n_shards)]
        self._finished = False

    def _shard_prefix(self, shard: int) -> str:
        return f"{self._prefix}-s{shard}"

    def append(self, shard: int, arrays: Mapping[str, np.ndarray]) -> None:
        if self._finished:
            raise ShardError("spill writer already finished")
        if not 0 <= shard < self.n_shards:
            raise ShardError(f"shard {shard} out of range")
        meta = self._meta[shard]
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            dtype_str, length = meta.get(name, (arr.dtype.str, 0))
            if dtype_str != arr.dtype.str:
                raise ShardError(
                    f"spill column {name!r} changed dtype from {dtype_str} "
                    f"to {arr.dtype.str}")
            f = self._files.get((shard, name))
            if f is None:
                f = self._files[(shard, name)] = open(
                    _spill_path(self._shard_prefix(shard), name), "wb")
            arr.tofile(f)
            meta[name] = (dtype_str, length + len(arr))

    def finish(self) -> list[SharedCodes]:
        """Close the files; one owner :class:`SharedCodes` per shard."""
        if self._finished:
            raise ShardError("spill writer already finished")
        self._finished = True
        for f in self._files.values():
            f.close()
        self._files.clear()
        blocks: list[SharedCodes] = []
        for shard, meta in enumerate(self._meta):
            layout = tuple((name, dtype_str, length, 0)
                           for name, (dtype_str, length) in meta.items())
            size = sum(np.dtype(d).itemsize * n for _, d, n, _ in layout)
            handle = BlockHandle("spill", self._shard_prefix(shard),
                                 max(size, 1), layout)
            _register_segment(handle)
            block = SharedCodes.attach(handle)
            block._owner = True
            blocks.append(block)
        return blocks


# ---------------------------------------------------------------------------
# Per-shard build kernel (runs in workers and in the serial fallback)


def _build_block_arrays(code_columns: Sequence[np.ndarray],
                        measure_values: np.ndarray, sizes: Sequence[int]
                        ) -> tuple[np.ndarray, GroupStats, float]:
    """One shard's leaf block: the exact single-process kernel on a slice.

    Uses the same ``combine_codes`` + ``GroupStats.from_groups`` pair as
    ``Cube._build`` so per-group results are bitwise identical to the
    global pass restricted to this shard's rows.
    """
    t0 = time.perf_counter()
    gids, key_codes = combine_codes(list(code_columns), list(sizes),
                                    len(measure_values))
    stats = GroupStats.from_groups(gids, len(key_codes), measure_values)
    return key_codes, stats, time.perf_counter() - t0


def _worker_build(handle: BlockHandle, k: int, sizes: Sequence[int]
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                             float, int]:
    """Worker entry: attach, aggregate, detach. Returns plain arrays."""
    fault_point("worker.build", block=handle.name)
    block = SharedCodes.attach(handle)
    try:
        arrays = block.arrays
        cols = [arrays[f"c{j}"] for j in range(k)]
        key_codes, stats, busy = _build_block_arrays(cols, arrays["m"], sizes)
        del cols, arrays
        return (key_codes, stats.count, stats.total, stats.sumsq, busy,
                os.getpid())
    finally:
        block.release()


# ---------------------------------------------------------------------------
# Persistent worker pool


class PoolFailure(RuntimeError):
    """The supervised pool exhausted its retry budget.

    Carries the per-attempt failure history so the serial fallback record
    in ``timings["fallback"]`` says *why* the pool gave up.
    """

    def __init__(self, message: str, failures: Sequence[str] = ()):
        super().__init__(message)
        self.failures = list(failures)


class ShardWorkerPool:
    """A supervised, lazily-started, reusable process pool for shard builds.

    Kept alive across rebuilds (and across cubes, via :func:`worker_pool`)
    so repeated builds pay process start-up once. On top of the bare
    executor it supervises every task (the chaos suite drives each path
    through :mod:`repro.robustness`):

    * **per-task deadline** — ``task_timeout`` seconds per result wait; a
      stuck worker is terminated and its task retried instead of hanging
      the coordinator forever;
    * **crash detection** — an abruptly dead worker (segfault, OOM kill,
      injected ``os._exit``) surfaces as ``BrokenProcessPool``; the
      executor is torn down and respawned with capped exponential backoff
      (``backoff_base * 2**attempt``, capped at ``backoff_cap``);
    * **retry budget** — shard builds are pure functions of the packed
      blocks, so resubmitting a failed task is always safe; after
      ``retry_budget`` extra rounds :class:`PoolFailure` propagates and
      :class:`ShardedCube` falls back to the bitwise-identical serial
      path;
    * **partial-result salvage** — results collected before a crash are
      kept; only the failed tasks re-run.
    """

    def __init__(self, workers: int, *, task_timeout: float | None = None,
                 retry_budget: int = 2, backoff_base: float = 0.05,
                 backoff_cap: float = 1.0):
        if workers < 1:
            raise ShardError(f"worker pool needs >= 1 worker, got {workers}")
        if retry_budget < 0:
            raise ShardError(f"retry budget must be >= 0, got {retry_budget}")
        self.workers = int(workers)
        self.task_timeout = task_timeout
        self.retry_budget = int(retry_budget)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.respawns = 0
        self.retried_tasks = 0
        self.tasks_ok = 0
        self.task_failures = 0
        self.last_error: str | None = None
        self.leaked_at_shutdown: list[str] = []
        self._executor: ProcessPoolExecutor | None = None
        self._sleep = time.sleep  # injectable: chaos tests skip real waits

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def alive(self) -> bool:
        """True when an executor exists and is not broken."""
        executor = self._executor
        return executor is not None and not getattr(executor, "_broken",
                                                    False)

    def _respawn(self) -> None:
        """Tear the executor down hard; the next round starts fresh.

        ``shutdown(wait=False)`` alone leaves a deadline-overrunning
        worker running, so live processes are terminated first.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        self.respawns += 1

    def run_tasks(self, fn, argtuples: Iterable[tuple], *,
                  timeout: float | None = None) -> list:
        """Run ``fn(*args)`` for each tuple; results in submission order.

        Pure-task contract: ``fn`` must be safe to re-execute, because
        failed tasks are retried on a respawned pool.
        """
        args = list(argtuples)
        timeout = self.task_timeout if timeout is None else timeout
        results: list = [None] * len(args)
        pending = list(range(len(args)))
        failures: list[str] = []
        for attempt in range(self.retry_budget + 1):
            if not pending:
                break
            if attempt:
                self._sleep(min(self.backoff_cap,
                                self.backoff_base * 2 ** (attempt - 1)))
            broken = False
            futures: dict[int, object] = {}
            try:
                executor = self._ensure()
                for i in pending:
                    fault_point("pool.submit", task=i, attempt=attempt)
                    futures[i] = executor.submit(fn, *args[i])
            except Exception as exc:
                failures.append(f"submit: {type(exc).__name__}: {exc}")
                broken = isinstance(exc, BrokenProcessPool)
            failed: list[int] = [i for i in pending if i not in futures]
            for i, future in futures.items():
                try:
                    fault_point("pool.result", task=i, attempt=attempt)
                    value = future.result(timeout=timeout)
                except FutureTimeout:
                    failures.append(f"task[{i}]: deadline of {timeout}s "
                                    f"exceeded")
                    failed.append(i)
                    broken = True  # the worker is stuck: kill and respawn
                except BrokenProcessPool as exc:
                    failures.append(f"task[{i}]: worker died "
                                    f"({exc or 'process pool broken'})")
                    failed.append(i)
                    broken = True
                except Exception as exc:
                    failures.append(f"task[{i}]: {type(exc).__name__}: {exc}")
                    failed.append(i)
                else:
                    results[i] = value
                    self.tasks_ok += 1
            pending = sorted(failed)
            if pending:
                self.task_failures += len(pending)
                self.last_error = failures[-1] if failures else None
                if attempt < self.retry_budget:
                    self.retried_tasks += len(pending)
                if broken or not self.alive():
                    self._respawn()
        if pending:
            raise PoolFailure(
                f"{len(pending)} shard task(s) failed after "
                f"{self.retry_budget + 1} attempt(s): {failures[-1]}",
                failures)
        return results

    def map_tasks(self, fn, argtuples: Iterable[tuple]) -> list:
        """Back-compat name for :meth:`run_tasks`."""
        return self.run_tasks(fn, argtuples)

    def stats(self) -> dict:
        """Supervision counters, shaped for ``/healthz``."""
        return {
            "workers": self.workers,
            "alive": self.alive(),
            "respawns": self.respawns,
            "retried_tasks": self.retried_tasks,
            "tasks_ok": self.tasks_ok,
            "task_failures": self.task_failures,
            "retry_budget": self.retry_budget,
            "task_timeout": self.task_timeout,
            "last_error": self.last_error,
        }

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        # Leak gate: with no build in flight, every packed segment must
        # have been released. Tests assert this list is empty.
        self.leaked_at_shutdown = [name for name, _ in leaked_segments()]


_POOLS: dict[int, ShardWorkerPool] = {}


def worker_pool(workers: int) -> ShardWorkerPool:
    """The shared persistent pool for ``workers`` processes."""
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = ShardWorkerPool(workers)
    return pool


def shutdown_worker_pools() -> None:
    """Stop every shared pool (atexit, and explicit in tests/benches).

    With every pool stopped no build can be in flight, so any segment
    still registered is a leak — sweep it eagerly rather than leaving
    ``/dev/shm`` litter for the OS.
    """
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()
    purge_leaked_segments()


atexit.register(shutdown_worker_pools)


# ---------------------------------------------------------------------------
# The general shard-compute tier


class ShardExecutor:
    """Range-partitioned fan-out of pure array tasks over the worker pool.

    The cube build taught :class:`ShardWorkerPool` one task shape; the
    executor generalises it so the whole recommend pipeline — hierarchy
    units, design-matrix row blocks, cluster Grams, the rank-1 score
    sweep — runs through the same supervised pool with the same
    guarantees:

    * **contiguous ranges** — :meth:`ranges` splits ``n`` items into
      ``n_parts`` near-equal contiguous ``[lo, hi)`` slices (empty slices
      allowed), so every stage's partition respects the global sort order
      and per-range results concatenate back bitwise;
    * **shared inputs** — :meth:`run_shared` packs the stage's arrays
      once (shared memory, or spill files under ``spill_dir``) and ships
      only the :class:`BlockHandle` plus scalars per task; with no pool
      the same task functions run in-process on the un-packed arrays;
    * **serial fallback** — a :class:`PoolFailure` degrades to the
      in-process path (results are bitwise-identical either way) and is
      recorded in ``timings[stage]["fallback"]``;
    * **utilization accounting** — every task returns
      ``(payload, busy_seconds, pid)``; per-stage wall/busy/pids land in
      ``timings`` for the fig25 utilization report.
    """

    def __init__(self, n_parts: int, *, pool: ShardWorkerPool | None = None,
                 spill_dir: str | None = None):
        if n_parts < 1:
            raise ShardError(f"n_parts must be >= 1, got {n_parts}")
        self.n_parts = int(n_parts)
        self.pool = pool
        self.spill_dir = spill_dir
        #: Per-stage accounting: ``{stage: {wall_s, busy_s, pids, calls}}``.
        self.timings: dict[str, dict] = {}

    def ranges(self, n: int) -> list[tuple[int, int]]:
        """``n_parts`` contiguous near-equal ``[lo, hi)`` slices of ``n``."""
        if n < 0:
            raise ShardError(f"cannot partition {n} items")
        base, rem = divmod(n, self.n_parts)
        out: list[tuple[int, int]] = []
        lo = 0
        for s in range(self.n_parts):
            hi = lo + base + (1 if s < rem else 0)
            out.append((lo, hi))
            lo = hi
        return out

    def _record(self, stage: str, wall: float, busy: Sequence[float],
                pids: Sequence[int], fallback: str | None) -> None:
        rec = self.timings.setdefault(
            stage, {"wall_s": 0.0, "busy_s": [], "pids": [], "calls": 0})
        rec["wall_s"] += wall
        rec["busy_s"].extend(busy)
        rec["pids"].extend(pids)
        rec["calls"] += 1
        if fallback is not None:
            rec["fallback"] = fallback

    def run(self, fn, argtuples: Sequence[tuple], *, stage: str) -> list:
        """Run ``fn(*args)`` per tuple; payloads in submission order.

        ``fn`` must be pure (retry-safe) and return
        ``(payload, busy_seconds, pid)``.
        """
        args = list(argtuples)
        t0 = time.perf_counter()
        fallback = None
        if self.pool is not None and args:
            try:
                raw = self.pool.run_tasks(fn, args)
            except PoolFailure as exc:
                fallback = f"{type(exc).__name__}: {exc}"
                raw = [fn(*a) for a in args]
        else:
            raw = [fn(*a) for a in args]
        payloads = [r[0] for r in raw]
        self._record(stage, time.perf_counter() - t0,
                     [r[1] for r in raw], [r[2] for r in raw], fallback)
        return payloads

    def run_shared(self, fn, arrays: Mapping[str, np.ndarray],
                   argtuples: Sequence[tuple], *, stage: str) -> list:
        """:meth:`run` with ``arrays`` packed once and prepended per task.

        Pool mode packs into one segment (spilled to ``spill_dir`` when
        set) and prepends its handle; serial mode prepends the dict
        itself — :func:`shared_arrays` resolves either inside the task.
        """
        if self.pool is None:
            source: object = dict(arrays)
            return self.run(fn, [(source, *t) for t in argtuples],
                            stage=stage)
        block = SharedCodes.pack(arrays, directory=self.spill_dir,
                                 spill=self.spill_dir is not None)
        try:
            return self.run(fn, [(block.handle, *t) for t in argtuples],
                            stage=stage)
        finally:
            block.release()

    def utilization(self) -> dict[str, float]:
        """Per-stage ``sum(busy) / (distinct workers × wall)`` in [0, 1]."""
        out: dict[str, float] = {}
        for stage, rec in self.timings.items():
            eff = max(len(set(rec["pids"])), 1)
            wall = rec["wall_s"]
            out[stage] = (sum(rec["busy_s"]) / (eff * wall)) if wall else 0.0
        return out


# ---------------------------------------------------------------------------
# Merge


def merge_shard_blocks(blocks: Sequence[tuple[np.ndarray, GroupStats]],
                       sizes: Sequence[int]
                       ) -> tuple[np.ndarray, GroupStats]:
    """Fold per-shard blocks into one canonical leaf block.

    Shards hold disjoint key sets, so the fold through
    :func:`merge_stats_blocks` only ever appends; the final ``lexsort``
    restores the exact key order ``combine_codes`` produces in the
    single-process build, making the merged arrays bitwise comparable.
    """
    if not blocks:
        raise ShardError("merge_shard_blocks() needs at least one block")
    key_codes, stats = blocks[0]
    for delta_codes, delta_stats in blocks[1:]:
        if not len(delta_codes):
            continue
        key_codes, stats, _, _, _ = merge_stats_blocks(
            key_codes, stats, delta_codes, delta_stats, sizes)
    n, k = key_codes.shape
    if n and k:
        order = np.lexsort(tuple(key_codes[:, j]
                                 for j in range(k - 1, -1, -1)))
        if not np.array_equal(order, np.arange(n)):
            key_codes = np.ascontiguousarray(key_codes[order])
            stats = stats.select(order)
    return key_codes, stats


# ---------------------------------------------------------------------------
# Chunked encoding: build relations without a row-object image


def encode_columns_chunked(chunks: Iterable[Mapping[str, np.ndarray]],
                           attrs: Sequence[str], measure_name: str
                           ) -> tuple[dict, int]:
    """Stream ``{name: array}`` chunks into encoded columns.

    Each chunk is factorized independently, then the per-chunk domains are
    unioned with :meth:`DictEncoding.merge` (chunk 0's codes survive
    verbatim) and the remapped code chunks concatenated. The coordinator
    holds only ``int32`` codes plus the ``float64`` measure — never a
    full value-object image. Returns ``(columns, n_rows)`` ready for
    :meth:`Relation.from_encoded`.
    """
    chunk_encs: dict[str, list[DictEncoding]] = {a: [] for a in attrs}
    measure_parts: list[np.ndarray] = []
    for chunk in chunks:
        for a in attrs:
            chunk_encs[a].append(factorize(np.asarray(chunk[a])))
        measure_parts.append(np.asarray(chunk[measure_name], dtype=float))
    columns: dict = {}
    for a in attrs:
        encs = chunk_encs[a]
        if not encs:
            columns[a] = DictEncoding(np.empty(0, dtype=np.int32), [],
                                      domain_sorted=True)
            continue
        merged, remaps = DictEncoding.merge(encs)
        codes = np.concatenate(
            [remap[enc.codes] for remap, enc in zip(remaps, encs)])
        column = DictEncoding(codes.astype(np.int32, copy=False),
                              merged.domain, merged.domain_sorted,
                              lossy=merged.lossy)
        column._positions = merged._positions
        columns[a] = column
    measure_col = (np.concatenate(measure_parts) if measure_parts
                   else np.empty(0))
    columns[measure_name] = measure_col
    return columns, int(len(measure_col))


def dataset_from_chunks(chunks: Iterable[Mapping[str, np.ndarray]],
                        hierarchies: Mapping[str, Sequence[str]],
                        measure_name: str, *, validate: bool = True
                        ) -> HierarchicalDataset:
    """A :class:`HierarchicalDataset` streamed from column chunks."""
    attrs = [a for hier in hierarchies.values() for a in hier]
    columns, _ = encode_columns_chunked(chunks, attrs, measure_name)
    schema = Schema([dimension(a) for a in attrs]
                    + [measure_attr(measure_name)])
    relation = Relation.from_encoded(schema, columns)
    return HierarchicalDataset.build(relation, dict(hierarchies),
                                     measure_name, validate=validate)


@dataclass
class SpillBuildResult:
    """Leaf block of an out-of-core build: same arrays as a cube's.

    ``key_codes``/``stats`` are bitwise-equal to what
    ``ShardedCube(dataset_from_chunks(...))`` produces over the same
    chunks; ``encodings`` carry the union domains (with empty code
    columns — the out-of-core path never materialises a row image).
    """

    key_codes: np.ndarray
    stats: GroupStats
    encodings: tuple[DictEncoding, ...]
    attrs: tuple[str, ...]
    n_rows: int
    shard_rows: list[int]
    timings: dict


def spill_build_from_chunks(chunks: Iterable[Mapping[str, np.ndarray]],
                            hierarchies: Mapping[str, Sequence[str]],
                            measure_name: str, *, spill_dir: str,
                            n_shards: int = 2, workers: int = 0,
                            partition_attr: str | None = None,
                            pool: ShardWorkerPool | None = None
                            ) -> SpillBuildResult:
    """Stream chunks straight into spilled shard blocks, then build.

    The 1e8-row tier: each chunk is factorized, folded into the running
    union encoding (an incremental :meth:`DictEncoding.merge` — old codes
    never change because :meth:`DictEncoding.extend_domain` appends, so
    the streamed codes are bitwise-identical to the batch encoder's), and
    its rows are routed to their owning shard's on-disk column files in
    global row order. The coordinator's residency is one chunk plus the
    union domains plus the merged leaf block — never a full column, never
    more than one shard's decoded image (the per-shard build kernel's
    working set). Workers (or the serial one-shard-at-a-time loop)
    memory-map the spill files read-only.
    """
    attrs = [a for hier in hierarchies.values() for a in hier]
    if partition_attr is None:
        partition_attr = next(iter(hierarchies.values()))[0]
    if partition_attr not in attrs:
        raise ShardError(
            f"partition attribute {partition_attr!r} is not a leaf "
            f"attribute of {attrs}")
    part_pos = attrs.index(partition_attr)
    k = len(attrs)
    timings: dict = {"n_shards": n_shards, "workers": workers}

    t0 = time.perf_counter()
    writer = ShardSpillWriter(spill_dir, n_shards)
    accs: dict[str, DictEncoding | None] = {a: None for a in attrs}
    n_rows = 0
    shard_rows = [0] * n_shards
    for chunk in chunks:
        chunk_codes: list[np.ndarray] = []
        for a in attrs:
            enc = factorize(np.asarray(chunk[a]))
            acc = accs[a]
            if acc is None:
                # Chunk 0 seeds the union; its codes survive verbatim
                # (DictEncoding.merge's remaps[0] is the identity).
                accs[a] = DictEncoding(np.empty(0, dtype=np.int32),
                                       enc.domain, enc.domain_sorted,
                                       lossy=enc.lossy)
                accs[a]._positions = enc._positions
                codes = enc.codes
            else:
                acc, remap = acc.extend_domain(enc.domain)
                acc.lossy = acc.lossy or enc.lossy
                accs[a] = acc
                codes = remap[enc.codes]
            chunk_codes.append(codes.astype(np.int32, copy=False))
        m = np.asarray(chunk[measure_name], dtype=float)
        assign = chunk_codes[part_pos].astype(np.int64) % n_shards
        for s in range(n_shards):
            sel = np.flatnonzero(assign == s)
            if not len(sel):
                continue
            arrays = {f"c{j}": chunk_codes[j][sel] for j in range(k)}
            arrays["m"] = m[sel]
            writer.append(s, arrays)
            shard_rows[s] += len(sel)
        n_rows += len(m)
    blocks = writer.finish()
    timings["stream_s"] = time.perf_counter() - t0

    encodings = tuple(
        accs[a] if accs[a] is not None
        else DictEncoding(np.empty(0, dtype=np.int32), [],
                          domain_sorted=True)
        for a in attrs)
    sizes = [e.cardinality for e in encodings]
    jobs = [s for s in range(n_shards) if shard_rows[s]]
    try:
        results: dict[int, tuple[np.ndarray, GroupStats]] | None = None
        if pool is None and workers > 0:
            pool = worker_pool(min(workers, max(n_shards, 1)))
        if pool is not None and jobs:
            t1 = time.perf_counter()
            try:
                raw = pool.run_tasks(
                    _worker_build,
                    [(blocks[s].handle, k, list(sizes)) for s in jobs])
            except PoolFailure as exc:
                timings["fallback"] = f"{type(exc).__name__}: {exc}"
            else:
                results = {}
                busy, pids = [], []
                for s, (key_codes, count, total, sumsq, elapsed,
                        pid) in zip(jobs, raw):
                    results[s] = (key_codes, GroupStats(count, total, sumsq))
                    busy.append(elapsed)
                    pids.append(pid)
                timings["build_wall_s"] = time.perf_counter() - t1
                timings["worker_busy_s"] = busy
                timings["worker_pids"] = pids
        if results is None:
            # Serial out-of-core loop: exactly one shard's decoded image
            # is live at a time (the memmapped views page in on demand
            # and drop with the block's temporaries).
            t1 = time.perf_counter()
            results = {}
            busy = []
            for s in jobs:
                arrays = blocks[s].arrays
                cols = [arrays[f"c{j}"] for j in range(k)]
                key_codes, stats, elapsed = _build_block_arrays(
                    cols, np.asarray(arrays["m"]), sizes)
                results[s] = (key_codes, stats)
                busy.append(elapsed)
            timings["build_wall_s"] = time.perf_counter() - t1
            timings["worker_busy_s"] = busy
            timings["worker_pids"] = [os.getpid()] * len(jobs)
    finally:
        for block in blocks:
            block.release()

    empty_block = (np.empty((0, k), dtype=np.int32),
                   GroupStats(np.zeros(0), np.zeros(0), np.zeros(0)))
    t2 = time.perf_counter()
    all_blocks = [results.get(s, empty_block) for s in range(n_shards)]
    key_codes, stats = merge_shard_blocks(all_blocks, sizes)
    timings["merge_s"] = time.perf_counter() - t2
    return SpillBuildResult(key_codes, stats, encodings, tuple(attrs),
                            n_rows, shard_rows, timings)


# ---------------------------------------------------------------------------
# The sharded cube


class ShardedCube(Cube):
    """A :class:`Cube` built shard-parallel, bitwise-equal to the original.

    Parameters
    ----------
    dataset:
        The hierarchical dataset to summarize.
    n_shards:
        Number of partitions of the relation. Shards are assigned by
        ``partition_code % n_shards``; empty shards are fine.
    workers:
        Worker processes for the build. ``0`` (default) runs the sharded
        pipeline serially in-process — same blocks, no pool — which is
        the deterministic mode tests use. With ``workers > 0`` a
        persistent process pool builds shards concurrently; any pool
        failure falls back to the serial path (recorded in
        ``timings["fallback"]``).
    partition_attr:
        The leaf attribute to partition on. Defaults to the root of the
        first hierarchy — the hierarchy-prefix partition key, guaranteed
        to be part of every leaf group key.
    pool:
        Inject a :class:`ShardWorkerPool` (tests); defaults to the shared
        module pool for ``min(workers, n_shards)``.
    spill_dir:
        When set, packed shard blocks go to memory-mapped files under
        this directory instead of ``/dev/shm`` (the out-of-core tier):
        worker inputs are paged from disk on demand and the coordinator
        never holds the packed images resident.
    """

    def __init__(self, dataset: HierarchicalDataset, *, n_shards: int = 2,
                 workers: int = 0, partition_attr: str | None = None,
                 pool: ShardWorkerPool | None = None,
                 spill_dir: str | None = None):
        if n_shards < 1:
            raise ShardError(f"n_shards must be >= 1, got {n_shards}")
        if workers < 0:
            raise ShardError(f"workers must be >= 0, got {workers}")
        self.n_shards = int(n_shards)
        self.workers = int(workers)
        self.partition_attr = partition_attr
        self._pool = pool
        self.spill_dir = spill_dir
        #: Cumulative per-shard patch counts: proof of delta locality.
        self.shard_patches: list[int] = [0] * self.n_shards
        self.timings: dict = {}
        super().__init__(dataset)

    # -- build ------------------------------------------------------------------
    def _resolve_pool(self) -> ShardWorkerPool | None:
        if self._pool is not None:
            return self._pool
        if self.workers > 0:
            return worker_pool(min(self.workers, self.n_shards))
        return None

    def _build(self) -> None:
        dataset = self.dataset
        attrs = list(self.leaf_attrs)
        if self.partition_attr is None:
            first = next(iter(dataset.dimensions))
            self.partition_attr = first.attributes[0]
        if self.partition_attr not in attrs:
            raise ShardError(
                f"partition attribute {self.partition_attr!r} is not a "
                f"leaf attribute of {attrs}")
        self._part_pos = attrs.index(self.partition_attr)
        relation = dataset.relation
        encodings = tuple(relation.encoding(a) for a in attrs)
        sizes = [e.cardinality for e in encodings]
        measure_values = relation.measure_array(dataset.measure)
        k = len(attrs)
        timings: dict = {"n_shards": self.n_shards, "workers": self.workers}

        t0 = time.perf_counter()
        assign = (encodings[self._part_pos].codes.astype(np.int64)
                  % self.n_shards)
        shard_rows = [np.flatnonzero(assign == s)
                      for s in range(self.n_shards)]
        timings["partition_s"] = time.perf_counter() - t0

        jobs = [s for s in range(self.n_shards) if len(shard_rows[s])]
        pool = self._resolve_pool()
        results: dict[int, tuple[np.ndarray, GroupStats]] | None = None
        if pool is not None and jobs:
            try:
                results = self._pool_build(pool, jobs, encodings,
                                           measure_values, shard_rows,
                                           sizes, timings)
            except Exception as exc:
                timings["fallback"] = f"{type(exc).__name__}: {exc}"
                results = None
        if results is None:
            t1 = time.perf_counter()
            results = {}
            busy = []
            for s in jobs:
                rows = shard_rows[s]
                cols = [enc.codes[rows] for enc in encodings]
                key_codes, stats, elapsed = _build_block_arrays(
                    cols, measure_values[rows], sizes)
                results[s] = (key_codes, stats)
                busy.append(elapsed)
            timings["build_wall_s"] = time.perf_counter() - t1
            timings["worker_busy_s"] = busy
            timings["worker_pids"] = [os.getpid()] * len(jobs)

        empty_block = (np.empty((0, k), dtype=np.int32),
                       GroupStats(np.zeros(0), np.zeros(0), np.zeros(0)))
        blocks = [results.get(s, empty_block) for s in range(self.n_shards)]
        t2 = time.perf_counter()
        key_codes, stats = merge_shard_blocks(blocks, sizes)
        timings["merge_s"] = time.perf_counter() - t2

        self._shard_blocks = blocks
        self._encodings = encodings
        self._key_codes = key_codes
        self._stats = stats
        self._keys = None
        self.timings = timings

    def _pool_build(self, pool: ShardWorkerPool, jobs: list[int],
                    encodings: Sequence[DictEncoding],
                    measure_values: np.ndarray,
                    shard_rows: list[np.ndarray], sizes: list[int],
                    timings: dict) -> dict[int, tuple[np.ndarray, GroupStats]]:
        k = len(encodings)
        packed: list[SharedCodes] = []
        t0 = time.perf_counter()
        try:
            tasks = []
            for s in jobs:
                rows = shard_rows[s]
                arrays = {f"c{j}": enc.codes[rows]
                          for j, enc in enumerate(encodings)}
                arrays["m"] = measure_values[rows]
                block = SharedCodes.pack(arrays, directory=self.spill_dir,
                                         spill=self.spill_dir is not None)
                packed.append(block)
                tasks.append((block.handle, k, list(sizes)))
            timings["pack_s"] = time.perf_counter() - t0
            t1 = time.perf_counter()
            raw = pool.map_tasks(_worker_build, tasks)
            timings["build_wall_s"] = time.perf_counter() - t1
        finally:
            for block in packed:
                block.release()
        results: dict[int, tuple[np.ndarray, GroupStats]] = {}
        busy, pids = [], []
        for s, (key_codes, count, total, sumsq, elapsed, pid) in zip(jobs,
                                                                     raw):
            results[s] = (key_codes, GroupStats(count, total, sumsq))
            busy.append(elapsed)
            pids.append(pid)
        timings["worker_busy_s"] = busy
        timings["worker_pids"] = pids
        return results

    # -- deltas -----------------------------------------------------------------
    def apply_delta(self, delta: Delta) -> CubeDelta:
        """Merge a delta batch, patching only the owning shard blocks.

        The partition attribute is part of every delta leaf key, so
        ``code % n_shards`` names each touched group's home shard. The
        global leaf arrays are patched with the exact single-process
        kernel call (bitwise-identical to ``Cube.apply_delta``), and each
        owning shard's block absorbs its slice of the delta, keeping the
        invariant *merge(shard blocks) == global block*. Untouched shard
        blocks are not even read.
        """
        new_encs, delta_codes, delta_stats, sizes = self._delta_blocks(delta)
        key_codes, stats, _, added, removed = merge_stats_blocks(
            self._key_codes, self._stats, delta_codes, delta_stats, sizes)
        assign = (delta_codes[:, self._part_pos].astype(np.int64)
                  % self.n_shards)
        patched: list[tuple[int, np.ndarray, GroupStats]] = []
        for s in np.unique(assign):
            s = int(s)
            sel = np.flatnonzero(assign == s)
            block_codes, block_stats = self._shard_blocks[s]
            merged_codes, merged_stats, _, _, _ = merge_stats_blocks(
                block_codes, block_stats, delta_codes[sel],
                delta_stats.select(sel), sizes)
            patched.append((s, merged_codes, merged_stats))
        # All merges validated: commit shard blocks and globals together.
        for s, merged_codes, merged_stats in patched:
            self._shard_blocks[s] = (merged_codes, merged_stats)
            self.shard_patches[s] += 1
        self._encodings = new_encs
        self._key_codes = key_codes
        self._stats = stats
        self._keys = None
        return CubeDelta(delta_codes, delta_stats, self._encodings,
                         added, removed)

    # -- introspection ----------------------------------------------------------
    @property
    def shard_blocks(self) -> list[tuple[np.ndarray, GroupStats]]:
        """Per-shard ``(key_codes, stats)`` blocks (read-only view)."""
        return list(self._shard_blocks)

    def shard_sizes(self) -> list[int]:
        """Distinct leaf groups per shard."""
        return [len(codes) for codes, _ in self._shard_blocks]

    def pool_health(self) -> dict | None:
        """Supervision counters of this cube's pool (None when serial)."""
        pool = self._resolve_pool()
        if pool is None:
            return None
        health = pool.stats()
        if "fallback" in self.timings:
            health["last_build_fallback"] = self.timings["fallback"]
        return health
