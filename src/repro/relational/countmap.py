"""Counted relations and the f-representation operators of §2.2.

A :class:`CountMap` is a relation annotated with multiplicities: a mapping
from tuple to count, ``{(v1, ..., vk): c}``. Section 2.2 of the paper defines
two operators over counted relations, which we implement verbatim:

* **join-multiply** ``(R ⨝ T)[t] = R[π_S1(t)] · T[π_S2(t)]`` — counts of
  matching tuples multiply through a natural join;
* **marginalize** ``(⊕_X R)[t] = Σ { R[t1] | π_{S1∖{X}}(t1) = t }`` — sum the
  counts of tuples that agree on everything but ``X``.

Early marginalization (Example 5) — pushing ``⊕`` through ``⨝`` when the
marginalized attribute is not referenced later — is a rewrite the multi-query
planner applies; the operators here just provide the algebra.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from .. import kernels
from .encoding import (EncodingError, _RADIX_LIMIT, combine_codes,
                       combine_radix, comparable_keys, decode_keys,
                       factorize, merge_join_indices)

Key = tuple

#: Counted relations below this size keep the plain dict loops: the
#: vectorized kernels have fixed numpy overhead that only pays off at scale.
#: (:class:`EncodedCountMap` never dispatches on this — its operators are
#: array kernels at every size.)
_VECTOR_MIN = 64


class CountMapError(ValueError):
    """Raised on schema mismatches between counted relations."""


class CountMap:
    """A counted relation: schema + ``{tuple: multiplicity}``.

    Tuples follow the schema's attribute order. Counts are floats so the
    drill-down optimizer's scalar "zoom" rescaling (Appendix J) composes
    cleanly with exact integer counts.
    """

    __slots__ = ("schema", "data")

    def __init__(self, schema: Iterable[str], data: Mapping[Key, float] | None = None):
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise CountMapError(f"duplicate attributes in schema {self.schema}")
        self.data: dict[Key, float] = dict(data or {})

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_pairs(cls, schema: Iterable[str],
                   pairs: Iterable[tuple[Key, float]]) -> "CountMap":
        out = cls(schema)
        for key, count in pairs:
            out.add(key, count)
        return out

    @classmethod
    def unary(cls, attribute: str, values: Iterable, count: float = 1.0) -> "CountMap":
        """``{(v): count}`` for every value — the paper's unary relation."""
        return cls((attribute,), {(v,): count for v in values})

    @classmethod
    def from_rows(cls, schema: Iterable[str], rows: Iterable[Key]) -> "CountMap":
        """Counted relation from a bag of rows (count = multiplicity)."""
        out = cls(schema)
        for row in rows:
            out.add(tuple(row), 1.0)
        return out

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Key]:
        return iter(self.data)

    def __getitem__(self, key: Key) -> float:
        return self.data.get(tuple(key), 0.0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountMap):
            return NotImplemented
        if set(self.schema) != set(other.schema):
            return False
        # Compare under a common attribute order.
        other_aligned = other.reorder(self.schema)
        a = {k: v for k, v in self.data.items() if v != 0}
        b = {k: v for k, v in other_aligned.data.items() if v != 0}
        return a == b

    def __repr__(self) -> str:
        return f"CountMap({list(self.schema)}, n={len(self.data)})"

    def add(self, key: Key, count: float) -> None:
        key = tuple(key)
        if len(key) != len(self.schema):
            raise CountMapError(
                f"tuple width {len(key)} does not match schema {self.schema}")
        self.data[key] = self.data.get(key, 0.0) + count

    def total(self) -> float:
        """Sum of all multiplicities (marginalize everything)."""
        return float(sum(self.data.values()))

    def reorder(self, schema: Iterable[str]) -> "CountMap":
        """Same counted relation under a different attribute order."""
        schema = tuple(schema)
        if set(schema) != set(self.schema):
            raise CountMapError(
                f"cannot reorder {self.schema} as {schema}")
        pos = [self.schema.index(a) for a in schema]
        return CountMap(schema,
                        {tuple(k[p] for p in pos): v for k, v in self.data.items()})

    # -- operators (§2.2) -----------------------------------------------------------
    def _columns(self) -> tuple[list[Key], list[tuple], np.ndarray]:
        """Keys, per-attribute value columns and the aligned count vector."""
        keys = list(self.data)
        counts = np.fromiter(self.data.values(), dtype=float, count=len(keys))
        cols = list(zip(*keys)) if keys else [() for _ in self.schema]
        return keys, cols, counts

    def join(self, other: "CountMap") -> "CountMap":
        """Join-multiply ``self ⨝ other``.

        Counts multiply on matching join keys. With disjoint schemas this
        is the (counted) cartesian product. Large maps run the vectorized
        sort-merge kernel over dictionary-encoded key columns; small maps
        keep the plain dict loops.
        """
        shared = tuple(a for a in self.schema if a in other.schema)
        out_schema = self.schema + tuple(
            a for a in other.schema if a not in shared)
        if max(len(self.data), len(other.data)) >= _VECTOR_MIN:
            out = self._join_vectorized(other, shared, out_schema)
            if out is not None:
                return out
        out = CountMap(out_schema)
        if not shared:
            for lk, lc in self.data.items():
                for rk, rc in other.data.items():
                    out.add(lk + rk, lc * rc)
            return out
        left_pos = [self.schema.index(a) for a in shared]
        right_pos = [other.schema.index(a) for a in shared]
        right_rest = [i for i in range(len(other.schema)) if i not in right_pos]
        index: dict[Key, list[tuple[Key, float]]] = {}
        for rk, rc in other.data.items():
            jk = tuple(rk[p] for p in right_pos)
            rest = tuple(rk[p] for p in right_rest)
            index.setdefault(jk, []).append((rest, rc))
        for lk, lc in self.data.items():
            jk = tuple(lk[p] for p in left_pos)
            for rest, rc in index.get(jk, ()):
                out.add(lk + rest, lc * rc)
        return out

    def _join_vectorized(self, other: "CountMap", shared: tuple[str, ...],
                         out_schema: tuple[str, ...]) -> "CountMap | None":
        """Encoded-key join kernel; None = fall back to the dict loops.

        Output tuples are unique by construction (both inputs have unique
        keys), so the result dict is assembled with one ``dict(zip(...))``
        instead of per-pair ``add`` calls.
        """
        left_keys, left_cols, left_counts = self._columns()
        right_keys, right_cols, right_counts = other._columns()
        right_rest = [i for i, a in enumerate(other.schema)
                      if a not in shared]
        if not shared:
            counts = np.outer(left_counts, right_counts).ravel()
            keys = [lk + rk for lk in left_keys for rk in right_keys]
            return CountMap(out_schema, dict(zip(keys, counts.tolist())))
        try:
            left_encs = [factorize(left_cols[self.schema.index(a)])
                         for a in shared]
            right_encs = [factorize(right_cols[other.schema.index(a)])
                          for a in shared]
        except EncodingError:
            return None
        indices = merge_join_indices(left_encs, right_encs)
        if indices is None:  # radix overflow
            return None
        l_idx, r_idx = indices
        out_counts = left_counts[l_idx] * right_counts[r_idx]
        rest_keys = [tuple(k[p] for p in right_rest) for k in right_keys]
        out_keys = [left_keys[i] + rest_keys[j]
                    for i, j in zip(l_idx.tolist(), r_idx.tolist())]
        return CountMap(out_schema, dict(zip(out_keys, out_counts.tolist())))

    def marginalize(self, attribute: str) -> "CountMap":
        """``⊕_attribute self``: sum counts over one attribute."""
        if attribute not in self.schema:
            raise CountMapError(
                f"attribute {attribute!r} not in schema {self.schema}")
        drop = self.schema.index(attribute)
        out_schema = tuple(a for i, a in enumerate(self.schema) if i != drop)
        if len(self.data) >= _VECTOR_MIN:
            out = self._marginalize_vectorized(drop, out_schema)
            if out is not None:
                return out
        out = CountMap(out_schema)
        for key, count in self.data.items():
            out.add(key[:drop] + key[drop + 1:], count)
        return out

    def _marginalize_vectorized(self, drop: int,
                                out_schema: tuple[str, ...]
                                ) -> "CountMap | None":
        """Group-by over the kept code columns plus one weighted bincount."""
        _, cols, counts = self._columns()
        kept = [i for i in range(len(self.schema)) if i != drop]
        try:
            encs = [factorize(cols[i]) for i in kept]
        except EncodingError:
            return None
        gids, key_codes = combine_codes(
            [e.codes for e in encs], [e.cardinality for e in encs],
            len(counts))
        sums = np.bincount(gids, weights=counts, minlength=len(key_codes))
        keys = decode_keys(key_codes, encs)
        return CountMap(out_schema, dict(zip(keys, sums.tolist())))

    def marginalize_all(self, attributes: Iterable[str]) -> "CountMap":
        """Marginalize a set of attributes (order-insensitive)."""
        out = self
        for a in attributes:
            out = out.marginalize(a)
        return out

    def project_keep(self, attributes: Iterable[str]) -> "CountMap":
        """Marginalize everything *except* ``attributes``."""
        keep = set(attributes)
        return self.marginalize_all([a for a in self.schema if a not in keep])

    def scale(self, factor: float) -> "CountMap":
        """All multiplicities times a scalar — the O(1) "zoom" of Appendix J.

        (The caller is expected to keep the scalar symbolic where possible;
        this method materializes it when a concrete map is required.)
        """
        return CountMap(self.schema, {k: v * factor for k, v in self.data.items()})

    def as_unary_dict(self) -> dict:
        """For unary maps: ``{value: count}``."""
        if len(self.schema) != 1:
            raise CountMapError(f"not a unary count map: schema {self.schema}")
        return {k[0]: v for k, v in self.data.items()}


class EncodedCountMap:
    """A counted relation in code-indexed array form (§4.2–§4.4 hot path).

    Keys are stored as one ``int32`` code column per attribute (codes index
    into a shared, ordered ``domain`` list) plus one aligned float count
    vector — a COO layout. Unary maps whose codes are ``0..|dom|-1`` are the
    dense per-attribute vectors the factorized aggregate family consists
    of; binary COFs stay sparse code-pair arrays. Unlike :class:`CountMap`,
    every operator here is an array kernel (``searchsorted`` merge joins,
    ``bincount`` marginalization) at *every* size — there is no dict
    round-trip and no ``_VECTOR_MIN`` dispatch on this path.

    Invariants: code tuples are distinct (inputs with unique keys stay
    unique through join/marginalize), and ``domains`` entries are plain
    Python lists shared by reference — two maps over the same attribute of
    one :class:`~repro.factorized.forder.HierarchyPaths` share the *same*
    list object, so joins skip domain alignment entirely.
    """

    __slots__ = ("schema", "domains", "key_codes", "counts", "_positions",
                 "_index")

    def __init__(self, schema: Iterable[str], domains: Sequence[list],
                 key_codes: Sequence[np.ndarray], counts: np.ndarray):
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise CountMapError(f"duplicate attributes in schema {self.schema}")
        self.domains: tuple[list, ...] = tuple(domains)
        self.key_codes: tuple[np.ndarray, ...] = tuple(
            np.asarray(c, dtype=np.int32).reshape(-1) for c in key_codes)
        self.counts: np.ndarray = np.asarray(counts, dtype=float).reshape(-1)
        if len(self.domains) != len(self.schema) \
                or len(self.key_codes) != len(self.schema):
            raise CountMapError(
                f"schema {self.schema} needs one domain and one code column "
                f"per attribute")
        for c in self.key_codes:
            if len(c) != len(self.counts):
                raise CountMapError("code columns misaligned with counts")
        self._positions: list[dict | None] = [None] * len(self.schema)
        self._index: dict | None = None

    # -- constructors -------------------------------------------------------------
    @classmethod
    def _make(cls, schema: tuple[str, ...], domains: tuple[list, ...],
              key_codes: tuple[np.ndarray, ...],
              counts: np.ndarray) -> "EncodedCountMap":
        """Trusted constructor for kernel outputs (invariants hold by
        construction; skips the public constructor's validation passes)."""
        out = object.__new__(cls)
        out.schema = schema
        out.domains = domains
        out.key_codes = key_codes
        out.counts = counts
        out._positions = [None] * len(schema)
        out._index = None
        return out

    @classmethod
    def dense_unary(cls, attribute: str, domain: list,
                    counts: np.ndarray | None = None) -> "EncodedCountMap":
        """``{domain[k]: counts[k]}`` with codes ``0..|dom|-1`` (dense)."""
        n = len(domain)
        if counts is None:
            counts = np.ones(n)
        return cls._make((attribute,), (domain,),
                         (np.arange(n, dtype=np.int32),),
                         np.asarray(counts, dtype=float))

    @classmethod
    def from_countmap(cls, cm: CountMap,
                      domains: Sequence[list]) -> "EncodedCountMap":
        """Encode a dict counted relation against the given domains."""
        positions = [{v: i for i, v in enumerate(d)} for d in domains]
        n = len(cm.data)
        codes = [np.empty(n, dtype=np.int32) for _ in cm.schema]
        counts = np.empty(n)
        for row, (key, count) in enumerate(cm.data.items()):
            for j, v in enumerate(key):
                try:
                    codes[j][row] = positions[j][v]
                except KeyError:
                    raise CountMapError(
                        f"value {v!r} not in domain of "
                        f"{cm.schema[j]!r}") from None
            counts[row] = count
        return cls(cm.schema, domains, codes, counts)

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.counts)

    def __iter__(self) -> Iterator[Key]:
        return iter(self.keys())

    def __repr__(self) -> str:
        return f"EncodedCountMap({list(self.schema)}, n={len(self.counts)})"

    def _position_of(self, j: int, value) -> int | None:
        if self._positions[j] is None:
            self._positions[j] = {v: i for i, v in enumerate(self.domains[j])}
        return self._positions[j].get(value)

    def __getitem__(self, key: Key) -> float:
        key = tuple(key)
        if len(key) != len(self.schema):
            raise CountMapError(
                f"tuple width {len(key)} does not match schema {self.schema}")
        codes = []
        for j, v in enumerate(key):
            code = self._position_of(j, v)
            if code is None:
                return 0.0
            codes.append(code)
        if self._index is None:
            self._index = {k: i for i, k in enumerate(
                zip(*[c.tolist() for c in self.key_codes]))} \
                if self.schema else {(): 0 for _ in self.counts[:1]}
        row = self._index.get(tuple(codes))
        return 0.0 if row is None else float(self.counts[row])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EncodedCountMap):
            return self.to_countmap() == other.to_countmap()
        if isinstance(other, CountMap):
            return self.to_countmap() == other
        return NotImplemented

    # -- decoding -----------------------------------------------------------------
    def keys(self) -> list[Key]:
        """Decoded key tuples, in storage order."""
        if not self.schema:
            return [()] * len(self.counts)
        columns = []
        for domain, codes in zip(self.domains, self.key_codes):
            arr = np.empty(len(domain), dtype=object)
            arr[:] = domain
            columns.append(arr[codes])
        return list(zip(*columns))

    def items(self) -> Iterator[tuple[Key, float]]:
        return zip(self.keys(), self.counts.tolist())

    def to_countmap(self) -> CountMap:
        """Decode to the dict form (interop / equality checks)."""
        return CountMap(self.schema, dict(self.items()))

    def as_unary_dict(self) -> dict:
        """For unary maps: ``{value: count}``."""
        if len(self.schema) != 1:
            raise CountMapError(f"not a unary count map: schema {self.schema}")
        return dict(zip((self.domains[0][c] for c in self.key_codes[0]),
                        self.counts.tolist()))

    def dense_counts(self) -> np.ndarray:
        """For unary maps: counts scattered over the full domain."""
        if len(self.schema) != 1:
            raise CountMapError(f"not a unary count map: schema {self.schema}")
        out = np.zeros(len(self.domains[0]))
        out[self.key_codes[0]] = self.counts
        return out

    # -- operators (§2.2, array kernels) --------------------------------------------
    def total(self) -> float:
        return float(self.counts.sum())

    def scale(self, factor: float) -> "EncodedCountMap":
        """All multiplicities times a scalar (Appendix J zoom)."""
        return EncodedCountMap._make(self.schema, self.domains,
                                     self.key_codes, self.counts * factor)

    def reorder(self, schema: Iterable[str]) -> "EncodedCountMap":
        schema = tuple(schema)
        if set(schema) != set(self.schema):
            raise CountMapError(f"cannot reorder {self.schema} as {schema}")
        pos = [self.schema.index(a) for a in schema]
        return EncodedCountMap._make(
            schema, tuple(self.domains[p] for p in pos),
            tuple(self.key_codes[p] for p in pos), self.counts)

    def join(self, other: "EncodedCountMap") -> "EncodedCountMap":
        """Join-multiply ``self ⨝ other`` as a sort-merge over codes."""
        shared = tuple(a for a in self.schema if a in other.schema)
        rest = [i for i, a in enumerate(other.schema) if a not in shared]
        out_schema = self.schema + tuple(other.schema[i] for i in rest)
        out_domains = self.domains + tuple(other.domains[i] for i in rest)
        if not shared:
            nl, nr = len(self.counts), len(other.counts)
            counts = np.repeat(self.counts, nr) * np.tile(other.counts, nl)
            codes = tuple([np.repeat(c, nr) for c in self.key_codes]
                          + [np.tile(other.key_codes[i], nl) for i in rest])
            return EncodedCountMap._make(out_schema, out_domains, codes,
                                         counts)
        left_pos = [self.schema.index(a) for a in shared]
        right_pos = [other.schema.index(a) for a in shared]
        sizes = [len(self.domains[p]) for p in left_pos]
        valid = np.ones(len(other.counts), dtype=bool)
        right_shared = []
        for lp, rp in zip(left_pos, right_pos):
            if self.domains[lp] is other.domains[rp]:
                right_shared.append(other.key_codes[rp].astype(np.int64))
                continue
            # Distinct domain objects: remap right codes into left space.
            remap = np.empty(len(other.domains[rp]), dtype=np.int64)
            for j, v in enumerate(other.domains[rp]):
                code = self._position_of(lp, v)
                remap[j] = -1 if code is None else code
            mapped = remap[other.key_codes[rp]]
            valid &= mapped >= 0
            right_shared.append(mapped)
        ridx0 = np.flatnonzero(valid)
        radix = 1
        for s in sizes:
            radix *= max(int(s), 1)
        if radix < _RADIX_LIMIT:
            combined_l = combine_radix(
                [self.key_codes[p] for p in left_pos], sizes)
            combined_r = combine_radix(
                [c[ridx0] for c in right_shared], sizes)
            key_space = radix
        else:
            # Mixed-radix would overflow int64: re-encode the occupied key
            # combinations densely with one row-wise unique over both sides
            # (ids < nl + nr, so the merge below is unaffected).
            stacked = np.vstack(
                [np.column_stack([self.key_codes[p].astype(np.int64)
                                  for p in left_pos]),
                 np.column_stack([c[ridx0] for c in right_shared])])
            _, inverse = np.unique(stacked, axis=0, return_inverse=True)
            inverse = inverse.reshape(-1)
            combined_l = inverse[:len(self.counts)]
            combined_r = inverse[len(self.counts):]
            key_space = len(self.counts) + len(ridx0)
        l_idx, r_pos, counts = kernels.join_multiply(
            combined_l, combined_r, self.counts,
            other.counts[ridx0], key_space)
        r_idx = ridx0[r_pos]
        codes = tuple([c[l_idx] for c in self.key_codes]
                      + [other.key_codes[i][r_idx] for i in rest])
        return EncodedCountMap._make(out_schema, out_domains, codes, counts)

    def merge_delta(self, delta: "EncodedCountMap",
                    domains: Sequence[list] | None = None
                    ) -> "EncodedCountMap":
        """Counts of a small ``delta`` map merged in; zero keys dropped.

        The delta-maintenance kernel: one ``searchsorted`` of the sorted
        delta keys into this map's stored code columns — matched keys add
        their counts in place, unseen keys append, keys whose count
        reaches exactly zero drop out (retraction). ``domains`` (default:
        this map's own) must extend each stored domain as a *prefix*, so
        the stored codes stay valid without a re-encode; delta codes are
        remapped by value when their domain object differs. Unlike
        :meth:`join`/:meth:`marginalize` this mutates nothing — a new map
        shares the untouched column arrays where possible.
        """
        if delta.schema != self.schema:
            raise CountMapError(
                f"delta schema {delta.schema} does not match {self.schema}")
        target = tuple(domains) if domains is not None else self.domains
        if len(target) != len(self.schema):
            raise CountMapError("one target domain per attribute required")
        delta_codes: list[np.ndarray] = []
        positions: list[dict | None] = [None] * len(target)
        for j, dom in enumerate(target):
            if len(dom) < len(self.domains[j]):
                raise CountMapError(
                    f"target domain of {self.schema[j]!r} does not extend "
                    f"the stored domain")
            if delta.domains[j] is dom:
                delta_codes.append(delta.key_codes[j].astype(np.int64))
                continue
            if positions[j] is None:
                positions[j] = {v: i for i, v in enumerate(dom)}
            table = positions[j]
            remap = np.empty(len(delta.domains[j]), dtype=np.int64)
            for i, v in enumerate(delta.domains[j]):
                code = table.get(v)
                if code is None:
                    raise CountMapError(
                        f"delta value {v!r} missing from the target domain "
                        f"of {self.schema[j]!r}")
                remap[i] = code
            delta_codes.append(remap[delta.key_codes[j]])
        sizes = [len(d) for d in target]
        if self.schema:
            base_keys, dkeys = comparable_keys(
                [c for c in self.key_codes], delta_codes, sizes)
        else:
            base_keys = np.zeros(len(self.counts), dtype=np.int64)
            dkeys = np.zeros(len(delta.counts), dtype=np.int64)
        u = len(base_keys)
        order = np.argsort(base_keys, kind="stable")
        pos = np.searchsorted(base_keys[order], dkeys)
        matched = pos < u
        if matched.any():
            matched[matched] = base_keys[order][pos[matched]] \
                == dkeys[matched]
        rows = order[pos[matched]]
        counts = self.counts.copy()
        counts[rows] += delta.counts[matched]
        fresh = ~matched
        keep = counts != 0
        out_codes = [c for c in self.key_codes]
        if not keep.all():
            idx = np.flatnonzero(keep)
            counts = counts[idx]
            out_codes = [c[idx] for c in out_codes]
        if fresh.any():
            counts = np.concatenate([counts, delta.counts[fresh]])
            out_codes = [
                np.concatenate([c, d[fresh].astype(np.int32)])
                for c, d in zip(out_codes, delta_codes)]
        return EncodedCountMap._make(self.schema, target,
                                     tuple(out_codes), counts)

    def marginalize(self, attribute: str) -> "EncodedCountMap":
        """``⊕_attribute self`` via composite group ids + one bincount."""
        if attribute not in self.schema:
            raise CountMapError(
                f"attribute {attribute!r} not in schema {self.schema}")
        drop = self.schema.index(attribute)
        kept = [i for i in range(len(self.schema)) if i != drop]
        out_schema = tuple(self.schema[i] for i in kept)
        out_domains = tuple(self.domains[i] for i in kept)
        if not kept:
            if not len(self.counts):
                return EncodedCountMap._make((), (), (), np.empty(0))
            return EncodedCountMap._make((), (), (),
                                         np.asarray([self.counts.sum()]))
        gids, key_codes = combine_codes(
            [self.key_codes[i] for i in kept],
            [len(self.domains[i]) for i in kept], len(self.counts))
        sums = np.bincount(gids, weights=self.counts,
                           minlength=len(key_codes))
        return EncodedCountMap._make(
            out_schema, out_domains,
            tuple(key_codes[:, j] for j in range(len(kept))), sums)

    def marginalize_all(self, attributes: Iterable[str]) -> "EncodedCountMap":
        out = self
        for a in attributes:
            out = out.marginalize(a)
        return out

    def project_keep(self, attributes: Iterable[str]) -> "EncodedCountMap":
        keep = set(attributes)
        return self.marginalize_all([a for a in self.schema if a not in keep])


def join_all(maps: Iterable[CountMap]) -> CountMap:
    """Left-deep join-multiply of several counted relations."""
    maps = list(maps)
    if not maps:
        raise CountMapError("join_all of zero relations")
    out = maps[0]
    for m in maps[1:]:
        out = out.join(m)
    return out


def aggregate_query(relations: Iterable[CountMap],
                    group_by: Iterable[str]) -> CountMap:
    """``γ_{group_by, COUNT}(R_1 ⋈ ... ⋈ R_n)`` — the naive plan.

    Joins everything, then marginalizes attributes not in ``group_by``.
    Used as the no-optimization reference that the multi-query planner and
    the factorized closed forms are validated against.
    """
    joined = join_all(relations)
    keep = set(group_by)
    return joined.marginalize_all([a for a in joined.schema if a not in keep])


def aggregate_query_early(relations: Iterable[CountMap],
                          group_by: Iterable[str]) -> CountMap:
    """Same query with early marginalization (Example 5).

    Before and after each join, marginalizes attributes that are not
    grouped, not a pending join key (shared with the accumulator or any
    later relation), and therefore dead — the classic aggregation
    push-down.
    """
    relations = list(relations)
    keep = set(group_by)

    def live_later(position: int) -> set[str]:
        out: set[str] = set()
        for r in relations[position:]:
            out |= set(r.schema)
        return out

    def prune(rel: CountMap, position: int, partner: CountMap | None = None
              ) -> CountMap:
        alive = keep | live_later(position)
        if partner is not None:
            alive |= set(partner.schema)
        dead = [a for a in rel.schema if a not in alive]
        return rel.marginalize_all(dead)

    out = prune(relations[0], 1)
    for i, rel in enumerate(relations[1:], start=1):
        out = out.join(prune(rel, i + 1, partner=out))
        out = prune(out, i + 1)
    return out
