"""Counted relations and the f-representation operators of §2.2.

A :class:`CountMap` is a relation annotated with multiplicities: a mapping
from tuple to count, ``{(v1, ..., vk): c}``. Section 2.2 of the paper defines
two operators over counted relations, which we implement verbatim:

* **join-multiply** ``(R ⨝ T)[t] = R[π_S1(t)] · T[π_S2(t)]`` — counts of
  matching tuples multiply through a natural join;
* **marginalize** ``(⊕_X R)[t] = Σ { R[t1] | π_{S1∖{X}}(t1) = t }`` — sum the
  counts of tuples that agree on everything but ``X``.

Early marginalization (Example 5) — pushing ``⊕`` through ``⨝`` when the
marginalized attribute is not referenced later — is a rewrite the multi-query
planner applies; the operators here just provide the algebra.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from .encoding import (EncodingError, combine_codes, decode_keys, factorize,
                       merge_join_indices)

Key = tuple

#: Counted relations below this size keep the plain dict loops: the
#: vectorized kernels have fixed numpy overhead that only pays off at scale.
_VECTOR_MIN = 64


class CountMapError(ValueError):
    """Raised on schema mismatches between counted relations."""


class CountMap:
    """A counted relation: schema + ``{tuple: multiplicity}``.

    Tuples follow the schema's attribute order. Counts are floats so the
    drill-down optimizer's scalar "zoom" rescaling (Appendix J) composes
    cleanly with exact integer counts.
    """

    __slots__ = ("schema", "data")

    def __init__(self, schema: Iterable[str], data: Mapping[Key, float] | None = None):
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise CountMapError(f"duplicate attributes in schema {self.schema}")
        self.data: dict[Key, float] = dict(data or {})

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_pairs(cls, schema: Iterable[str],
                   pairs: Iterable[tuple[Key, float]]) -> "CountMap":
        out = cls(schema)
        for key, count in pairs:
            out.add(key, count)
        return out

    @classmethod
    def unary(cls, attribute: str, values: Iterable, count: float = 1.0) -> "CountMap":
        """``{(v): count}`` for every value — the paper's unary relation."""
        return cls((attribute,), {(v,): count for v in values})

    @classmethod
    def from_rows(cls, schema: Iterable[str], rows: Iterable[Key]) -> "CountMap":
        """Counted relation from a bag of rows (count = multiplicity)."""
        out = cls(schema)
        for row in rows:
            out.add(tuple(row), 1.0)
        return out

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Key]:
        return iter(self.data)

    def __getitem__(self, key: Key) -> float:
        return self.data.get(tuple(key), 0.0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountMap):
            return NotImplemented
        if set(self.schema) != set(other.schema):
            return False
        # Compare under a common attribute order.
        other_aligned = other.reorder(self.schema)
        a = {k: v for k, v in self.data.items() if v != 0}
        b = {k: v for k, v in other_aligned.data.items() if v != 0}
        return a == b

    def __repr__(self) -> str:
        return f"CountMap({list(self.schema)}, n={len(self.data)})"

    def add(self, key: Key, count: float) -> None:
        key = tuple(key)
        if len(key) != len(self.schema):
            raise CountMapError(
                f"tuple width {len(key)} does not match schema {self.schema}")
        self.data[key] = self.data.get(key, 0.0) + count

    def total(self) -> float:
        """Sum of all multiplicities (marginalize everything)."""
        return float(sum(self.data.values()))

    def reorder(self, schema: Iterable[str]) -> "CountMap":
        """Same counted relation under a different attribute order."""
        schema = tuple(schema)
        if set(schema) != set(self.schema):
            raise CountMapError(
                f"cannot reorder {self.schema} as {schema}")
        pos = [self.schema.index(a) for a in schema]
        return CountMap(schema,
                        {tuple(k[p] for p in pos): v for k, v in self.data.items()})

    # -- operators (§2.2) -----------------------------------------------------------
    def _columns(self) -> tuple[list[Key], list[tuple], np.ndarray]:
        """Keys, per-attribute value columns and the aligned count vector."""
        keys = list(self.data)
        counts = np.fromiter(self.data.values(), dtype=float, count=len(keys))
        cols = list(zip(*keys)) if keys else [() for _ in self.schema]
        return keys, cols, counts

    def join(self, other: "CountMap") -> "CountMap":
        """Join-multiply ``self ⨝ other``.

        Counts multiply on matching join keys. With disjoint schemas this
        is the (counted) cartesian product. Large maps run the vectorized
        sort-merge kernel over dictionary-encoded key columns; small maps
        keep the plain dict loops.
        """
        shared = tuple(a for a in self.schema if a in other.schema)
        out_schema = self.schema + tuple(
            a for a in other.schema if a not in shared)
        if max(len(self.data), len(other.data)) >= _VECTOR_MIN:
            out = self._join_vectorized(other, shared, out_schema)
            if out is not None:
                return out
        out = CountMap(out_schema)
        if not shared:
            for lk, lc in self.data.items():
                for rk, rc in other.data.items():
                    out.add(lk + rk, lc * rc)
            return out
        left_pos = [self.schema.index(a) for a in shared]
        right_pos = [other.schema.index(a) for a in shared]
        right_rest = [i for i in range(len(other.schema)) if i not in right_pos]
        index: dict[Key, list[tuple[Key, float]]] = {}
        for rk, rc in other.data.items():
            jk = tuple(rk[p] for p in right_pos)
            rest = tuple(rk[p] for p in right_rest)
            index.setdefault(jk, []).append((rest, rc))
        for lk, lc in self.data.items():
            jk = tuple(lk[p] for p in left_pos)
            for rest, rc in index.get(jk, ()):
                out.add(lk + rest, lc * rc)
        return out

    def _join_vectorized(self, other: "CountMap", shared: tuple[str, ...],
                         out_schema: tuple[str, ...]) -> "CountMap | None":
        """Encoded-key join kernel; None = fall back to the dict loops.

        Output tuples are unique by construction (both inputs have unique
        keys), so the result dict is assembled with one ``dict(zip(...))``
        instead of per-pair ``add`` calls.
        """
        left_keys, left_cols, left_counts = self._columns()
        right_keys, right_cols, right_counts = other._columns()
        right_rest = [i for i, a in enumerate(other.schema)
                      if a not in shared]
        if not shared:
            counts = np.outer(left_counts, right_counts).ravel()
            keys = [lk + rk for lk in left_keys for rk in right_keys]
            return CountMap(out_schema, dict(zip(keys, counts.tolist())))
        try:
            left_encs = [factorize(left_cols[self.schema.index(a)])
                         for a in shared]
            right_encs = [factorize(right_cols[other.schema.index(a)])
                          for a in shared]
        except EncodingError:
            return None
        indices = merge_join_indices(left_encs, right_encs)
        if indices is None:  # radix overflow
            return None
        l_idx, r_idx = indices
        out_counts = left_counts[l_idx] * right_counts[r_idx]
        rest_keys = [tuple(k[p] for p in right_rest) for k in right_keys]
        out_keys = [left_keys[i] + rest_keys[j]
                    for i, j in zip(l_idx.tolist(), r_idx.tolist())]
        return CountMap(out_schema, dict(zip(out_keys, out_counts.tolist())))

    def marginalize(self, attribute: str) -> "CountMap":
        """``⊕_attribute self``: sum counts over one attribute."""
        if attribute not in self.schema:
            raise CountMapError(
                f"attribute {attribute!r} not in schema {self.schema}")
        drop = self.schema.index(attribute)
        out_schema = tuple(a for i, a in enumerate(self.schema) if i != drop)
        if len(self.data) >= _VECTOR_MIN:
            out = self._marginalize_vectorized(drop, out_schema)
            if out is not None:
                return out
        out = CountMap(out_schema)
        for key, count in self.data.items():
            out.add(key[:drop] + key[drop + 1:], count)
        return out

    def _marginalize_vectorized(self, drop: int,
                                out_schema: tuple[str, ...]
                                ) -> "CountMap | None":
        """Group-by over the kept code columns plus one weighted bincount."""
        _, cols, counts = self._columns()
        kept = [i for i in range(len(self.schema)) if i != drop]
        try:
            encs = [factorize(cols[i]) for i in kept]
        except EncodingError:
            return None
        gids, key_codes = combine_codes(
            [e.codes for e in encs], [e.cardinality for e in encs],
            len(counts))
        sums = np.bincount(gids, weights=counts, minlength=len(key_codes))
        keys = decode_keys(key_codes, encs)
        return CountMap(out_schema, dict(zip(keys, sums.tolist())))

    def marginalize_all(self, attributes: Iterable[str]) -> "CountMap":
        """Marginalize a set of attributes (order-insensitive)."""
        out = self
        for a in attributes:
            out = out.marginalize(a)
        return out

    def project_keep(self, attributes: Iterable[str]) -> "CountMap":
        """Marginalize everything *except* ``attributes``."""
        keep = set(attributes)
        return self.marginalize_all([a for a in self.schema if a not in keep])

    def scale(self, factor: float) -> "CountMap":
        """All multiplicities times a scalar — the O(1) "zoom" of Appendix J.

        (The caller is expected to keep the scalar symbolic where possible;
        this method materializes it when a concrete map is required.)
        """
        return CountMap(self.schema, {k: v * factor for k, v in self.data.items()})

    def as_unary_dict(self) -> dict:
        """For unary maps: ``{value: count}``."""
        if len(self.schema) != 1:
            raise CountMapError(f"not a unary count map: schema {self.schema}")
        return {k[0]: v for k, v in self.data.items()}


def join_all(maps: Iterable[CountMap]) -> CountMap:
    """Left-deep join-multiply of several counted relations."""
    maps = list(maps)
    if not maps:
        raise CountMapError("join_all of zero relations")
    out = maps[0]
    for m in maps[1:]:
        out = out.join(m)
    return out


def aggregate_query(relations: Iterable[CountMap],
                    group_by: Iterable[str]) -> CountMap:
    """``γ_{group_by, COUNT}(R_1 ⋈ ... ⋈ R_n)`` — the naive plan.

    Joins everything, then marginalizes attributes not in ``group_by``.
    Used as the no-optimization reference that the multi-query planner and
    the factorized closed forms are validated against.
    """
    joined = join_all(relations)
    keep = set(group_by)
    return joined.marginalize_all([a for a in joined.schema if a not in keep])


def aggregate_query_early(relations: Iterable[CountMap],
                          group_by: Iterable[str]) -> CountMap:
    """Same query with early marginalization (Example 5).

    Before and after each join, marginalizes attributes that are not
    grouped, not a pending join key (shared with the accumulator or any
    later relation), and therefore dead — the classic aggregation
    push-down.
    """
    relations = list(relations)
    keep = set(group_by)

    def live_later(position: int) -> set[str]:
        out: set[str] = set()
        for r in relations[position:]:
            out |= set(r.schema)
        return out

    def prune(rel: CountMap, position: int, partner: CountMap | None = None
              ) -> CountMap:
        alive = keep | live_later(position)
        if partner is not None:
            alive |= set(partner.schema)
        dead = [a for a in rel.schema if a not in alive]
        return rel.marginalize_all(dead)

    out = prune(relations[0], 1)
    for i, rel in enumerate(relations[1:], start=1):
        out = out.join(prune(rel, i + 1, partner=out))
        out = prune(out, i + 1)
    return out
