"""Schema metadata for the in-memory relational substrate.

A :class:`Schema` is an ordered collection of named, typed attributes. It is
deliberately small: Reptile only needs dimension attributes (categorical,
hashable values) and measure attributes (floats), so the type system
distinguishes just those two kinds plus a generic fallback.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator


class AttributeKind(enum.Enum):
    """Role an attribute plays in a hierarchical dataset."""

    DIMENSION = "dimension"
    MEASURE = "measure"
    OTHER = "other"


@dataclass(frozen=True)
class Attribute:
    """A single named attribute.

    Parameters
    ----------
    name:
        Attribute name, unique within its schema.
    kind:
        Whether the attribute is a dimension (categorical, groupable),
        a measure (numeric, aggregatable), or neither.
    """

    name: str
    kind: AttributeKind = AttributeKind.OTHER

    def is_dimension(self) -> bool:
        return self.kind is AttributeKind.DIMENSION

    def is_measure(self) -> bool:
        return self.kind is AttributeKind.MEASURE


class SchemaError(ValueError):
    """Raised for malformed schemas or schema mismatches."""


class Schema:
    """An ordered, duplicate-free list of :class:`Attribute`.

    Schemas are immutable; all "mutating" operations return new schemas.
    """

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute | str]):
        attrs: list[Attribute] = []
        for a in attributes:
            if isinstance(a, str):
                a = Attribute(a)
            attrs.append(a)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._attributes = tuple(attrs)
        self._index = {a.name: i for i, a in enumerate(attrs)}

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, str):
            try:
                return self._attributes[self._index[key]]
            except KeyError:
                raise SchemaError(f"no attribute named {key!r}") from None
        return self._attributes[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(a.name for a in self._attributes)
        return f"Schema([{inner}])"

    # -- accessors ----------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(a.name for a in self._attributes)

    def position(self, name: str) -> int:
        """Index of attribute ``name`` in schema order."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def dimensions(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes if a.is_dimension())

    def measures(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes if a.is_measure())

    # -- algebra ------------------------------------------------------------------
    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names`` (kept in the order given)."""
        return Schema([self[n] for n in names])

    def union(self, other: "Schema") -> "Schema":
        """Concatenation of two schemas with disjoint attribute names."""
        overlap = set(self.names) & set(other.names)
        if overlap:
            raise SchemaError(f"schemas overlap on {sorted(overlap)}")
        return Schema(list(self._attributes) + list(other._attributes))

    def intersection(self, other: "Schema") -> tuple[str, ...]:
        """Names common to both schemas, in this schema's order."""
        other_names = set(other.names)
        return tuple(n for n in self.names if n in other_names)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with attributes renamed according to ``mapping``."""
        out = []
        for a in self._attributes:
            out.append(Attribute(mapping.get(a.name, a.name), a.kind))
        return Schema(out)


def dimension(name: str) -> Attribute:
    """Shorthand constructor for a dimension attribute."""
    return Attribute(name, AttributeKind.DIMENSION)


def measure(name: str) -> Attribute:
    """Shorthand constructor for a measure attribute."""
    return Attribute(name, AttributeKind.MEASURE)
