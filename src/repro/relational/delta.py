"""Deltas: append/retract batches threaded through every engine layer.

A :class:`Delta` is a pair of small relations over the base schema —
rows to append and rows to retract. The delta-update engine applies one
to every derived structure *incrementally* instead of rebuilding:

* the relation extends its encoded columns (old codes untouched);
* the cube bincounts only the delta batch and merges the leaf stats,
  retractions entering as negative counts;
* hierarchy paths extend with the delta's new root-to-leaf paths;
* the serving cache patches or retains entries instead of dropping a
  whole fingerprint generation.

Retraction semantics: each retracted row must match an existing base row
on **every** column (``==`` per cell; NaN never matches, so rows with
NaN dimension values cannot be retracted). Duplicate rows are a bag —
retracting removes the earliest matches in storage order. A retraction
that cannot be matched raises :class:`DeltaError` before anything is
mutated. The frozen row-at-a-time counterpart of this contract lives in
:mod:`repro.relational.deltaref`; property tests assert both agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .encoding import EncodingError, comparable_keys
from .relation import Relation
from .schema import Schema


class DeltaError(ValueError):
    """Raised for malformed deltas or unmatchable retractions."""


@dataclass(frozen=True)
class Delta:
    """Appended and retracted leaf rows, both over the base schema."""

    appended: Relation
    retracted: Relation

    @classmethod
    def from_rows(cls, schema: Schema | Sequence,
                  appended: Iterable[Sequence] = (),
                  retracted: Iterable[Sequence] = ()) -> "Delta":
        """Build a delta from plain row tuples."""
        return cls(Relation.from_rows(schema, appended),
                   Relation.from_rows(schema, retracted))

    def __post_init__(self) -> None:
        if self.appended.schema.names != self.retracted.schema.names:
            raise DeltaError("append and retract schemas differ")

    @property
    def schema(self) -> Schema:
        return self.appended.schema

    def is_empty(self) -> bool:
        return not len(self.appended) and not len(self.retracted)

    def check_against(self, schema: Schema) -> None:
        """Raise unless this delta targets ``schema``."""
        if self.schema.names != schema.names:
            raise DeltaError(
                f"delta schema {list(self.schema.names)} does not match "
                f"relation schema {list(schema.names)}")


def locate_rows(relation: Relation, retracted: Relation) -> np.ndarray:
    """Base row indices matching each retracted row (bag semantics).

    Matches on every column; for duplicated rows the *earliest* matching
    base rows in storage order are taken, one per retracted occurrence.
    Two-phase: the columns the engine has already interned (the
    dimensions) narrow the candidate rows with one composite-key
    membership pass; the cold columns (typically the measure) are then
    compared per candidate — so retraction never dictionary-encodes a
    measure column just to throw the encoding away. Falls back to a
    per-row ``==`` scan when nothing is interned and a column resists
    encoding. Raises :class:`DeltaError` when any retraction finds no
    row left.
    """
    if not len(retracted):
        return np.empty(0, dtype=np.int64)
    names = list(relation.schema.names)
    keyed = [n for n in names
             if relation.interned_encoding(n) is not None]
    if not keyed:
        try:
            for n in names:  # intern everything; small/cold relations
                relation.encoding(n)
        except EncodingError:
            return _locate_rows_python(relation, retracted)
        keyed = names
    rest = [n for n in names if n not in keyed]
    base_encs = [relation.interned_encoding(n) for n in keyed]
    # Retracted values are looked up per column: a value absent from the
    # base domain (or NaN, which code_of never matches) cannot identify
    # any base row.
    n_ret = len(retracted)
    ret_codes = []
    missing = np.zeros(n_ret, dtype=bool)
    for enc, name in zip(base_encs, keyed):
        codes = np.zeros(n_ret, dtype=np.int64)
        for i, value in enumerate(retracted.column_values(name)):
            code = enc.code_of(value)
            if code is None:
                missing[i] = True
            else:
                codes[i] = code
        ret_codes.append(codes)
    if missing.any():
        i = int(np.flatnonzero(missing)[0])
        raise DeltaError(
            f"retracted row {retracted.row(i)!r} matches no base row")
    sizes = [e.cardinality for e in base_encs]
    base_keys, ret_keys = comparable_keys(
        [e.codes for e in base_encs], ret_codes, sizes)
    # One linear membership pass instead of sorting the whole base: the
    # candidate set is tiny (rows whose keyed columns a retraction
    # names), and flatnonzero leaves it in ascending row order —
    # earliest-match bag semantics for free.
    candidates = np.flatnonzero(np.isin(base_keys, ret_keys))
    by_key: dict[int, list[int]] = {}
    for idx, key in zip(candidates.tolist(),
                        base_keys[candidates].tolist()):
        by_key.setdefault(key, []).append(idx)
    rest_values = {n: dict(zip(candidates.tolist(),
                               relation.cell_values(n, candidates)))
                   for n in rest}
    taken: set[int] = set()
    out: list[int] = []
    ret_rest = {n: retracted.column_values(n) for n in rest}
    for i, key in enumerate(ret_keys.tolist()):
        hit = None
        exhausted = False
        for idx in by_key.get(key, ()):
            ok = True
            for n in rest:
                try:
                    ok = rest_values[n][idx] == ret_rest[n][i]
                except (TypeError, ValueError):
                    ok = False
                if not ok:
                    break
            if ok:
                if idx in taken:
                    exhausted = True  # a copy exists but is spoken for
                    continue
                hit = idx
                break
        if hit is None:
            raise DeltaError(
                f"retracted row {retracted.row(i)!r} "
                + ("exceeds the base multiplicity" if exhausted
                   else "matches no base row"))
        taken.add(hit)
        out.append(hit)
    return np.sort(np.asarray(out, dtype=np.int64))


def _locate_rows_python(relation: Relation,
                        retracted: Relation) -> np.ndarray:
    """Per-row ``==`` fallback for unencodable columns."""
    rows = list(relation.rows())
    taken = set()
    out = []
    for target in retracted.rows():
        for i, row in enumerate(rows):
            if i in taken:
                continue
            try:
                hit = all(a == b for a, b in zip(row, target))
            except (TypeError, ValueError):
                hit = False
            if hit:
                taken.add(i)
                out.append(i)
                break
        else:
            raise DeltaError(
                f"retracted row {tuple(target)!r} matches no base row")
    return np.sort(np.asarray(out, dtype=np.int64))
