"""Distributive roll-up cube over a hierarchical dataset.

Reptile repeatedly evaluates group-by views at different drill-down levels
(eq. 2 of Problem 1). Because all supported aggregates are distributive
(Appendix A), every view can be derived from a single pass over the data.

The cube is columnar end to end: one vectorized composite-key pass over
the encoded dimension columns assigns every record a *leaf* group id, and
three ``np.bincount`` calls fill a struct-of-arrays
:class:`~repro.relational.aggregates.GroupStats` with each leaf's
``(count, sum, sumsq)``. Rolling up to a coarser level is another
composite-key pass over the leaf key codes plus one ``GroupStats.merge_by``
— ``G`` applied to whole levels at once — and provenance filtering
(``drilldown`` replaces R with the provenance of the complaint tuple) is a
boolean mask over the leaf code matrix. The public API is unchanged:
views still expose a ``{key: AggState}`` mapping, materialized lazily as a
view into the stats arrays (:class:`StatesMap`).
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from .aggregates import AggState, GroupStats, merge_states
from .dataset import HierarchicalDataset
from .delta import Delta, DeltaError
from .encoding import (DictEncoding, combine_codes, comparable_keys,
                       decode_keys)

Key = tuple


class StatesMap(MappingABC):
    """A read-only ``{key: AggState}`` view into :class:`GroupStats`.

    Keeps the object-per-group API of the row engine without storing one
    object per group: ``AggState`` instances are created on access from
    the underlying stats arrays.
    """

    __slots__ = ("_keys", "_stats", "_pos")

    def __init__(self, keys: list[Key], stats: GroupStats):
        self._keys = keys
        self._stats = stats
        self._pos: dict[Key, int] | None = None

    @property
    def stats(self) -> GroupStats:
        """The underlying struct-of-arrays block."""
        return self._stats

    @property
    def key_list(self) -> list[Key]:
        """The decoded group keys, in group-id (= array row) order."""
        return self._keys

    def _positions(self) -> dict[Key, int]:
        if self._pos is None:
            self._pos = {k: i for i, k in enumerate(self._keys)}
        return self._pos

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Key]:
        return iter(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._positions()

    def __getitem__(self, key: Key) -> AggState:
        return self._stats.state(self._positions()[key])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MappingABC):
            return dict(self) == dict(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"StatesMap(n={len(self)})"


@dataclass(frozen=True)
class GroupView:
    """A group-by view: attribute names + per-group aggregate states.

    The result of ``γ_{group_attrs, F}(σ_filters(R))`` with all base
    statistics available per group.

    Cube-built views additionally carry the *array-backed form*: the
    ``(n_groups, k)`` matrix of encoded key codes plus the per-attribute
    :class:`~repro.relational.encoding.DictEncoding` objects, aligned with
    the :class:`GroupStats` rows behind ``groups``. The recommend path
    (design build, repair prediction, ranking) operates on these arrays
    directly; the ``{key: AggState}`` mapping stays the compatibility API.
    Hand-built views (plain dict ``groups``) leave them ``None``.
    """

    group_attrs: tuple[str, ...]
    groups: Mapping[Key, AggState]
    key_codes: "np.ndarray | None" = field(default=None, compare=False,
                                           repr=False)
    encodings: "tuple[DictEncoding, ...] | None" = field(
        default=None, compare=False, repr=False)

    @property
    def stats(self) -> GroupStats | None:
        """The struct-of-arrays stats block, or None for dict-built views."""
        groups = self.groups
        return groups.stats if isinstance(groups, StatesMap) else None

    @property
    def key_list(self) -> list[Key]:
        """Group keys in array-row order (= ``groups`` iteration order)."""
        groups = self.groups
        if isinstance(groups, StatesMap):
            return groups.key_list
        return list(groups)

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[Key]:
        return iter(self.groups)

    def state(self, key: Key) -> AggState:
        return self.groups.get(tuple(key), AggState())

    def statistic(self, key: Key, name: str) -> float:
        return self.state(key).statistic(name)

    def total(self) -> AggState:
        """``G`` over all groups — the parent aggregate."""
        if isinstance(self.groups, StatesMap):
            return self.groups.stats.total_state()
        return merge_states(self.groups.values())

    def keys_matching(self, conditions: Mapping[str, object]) -> list[Key]:
        """Group keys consistent with equality conditions on view attrs."""
        checks = [(self.group_attrs.index(a), v) for a, v in conditions.items()
                  if a in self.group_attrs]
        return [k for k in self.groups
                if all(k[i] == v for i, v in checks)]

    def coordinates(self, key: Key) -> dict[str, object]:
        """The group key as an ``{attribute: value}`` mapping."""
        return dict(zip(self.group_attrs, key))


@dataclass(frozen=True, eq=False)
class CubeDelta:
    """One applied delta, summarized in the cube's (extended) code space.

    ``key_codes``/``stats`` are the distinct touched leaf keys with their
    *signed* stat deltas (retractions enter as negative counts) — exactly
    what the serving layer needs to patch cached views without seeing the
    raw rows. ``added``/``removed`` are the leaf keys that appeared in /
    vanished from the cube, for hierarchy-path maintenance.
    """

    key_codes: np.ndarray
    stats: GroupStats
    encodings: tuple[DictEncoding, ...]
    added: np.ndarray
    removed: np.ndarray

    def matching_mask(self, positions_values: list[tuple[int, object]]
                      ) -> np.ndarray:
        """Which delta leaves satisfy ``leaf_attr[i] == value`` filters."""
        mask = np.ones(len(self.key_codes), dtype=bool)
        for i, value in positions_values:
            code = self.encodings[i].code_of(value)
            if code is None:
                return np.zeros(len(self.key_codes), dtype=bool)
            mask &= self.key_codes[:, i] == code
        return mask


def merge_stats_blocks(key_codes: np.ndarray, stats: GroupStats,
                       delta_codes: np.ndarray, delta_stats: GroupStats,
                       sizes: Sequence[int]
                       ) -> tuple[np.ndarray, GroupStats, np.ndarray | None,
                                  np.ndarray, np.ndarray]:
    """Merge signed delta groups into an aligned (key block, stats) pair.

    The shared kernel behind ``Cube.apply_delta`` and the serving layer's
    cached-view patching: matched keys add their deltas in place, unseen
    keys append at the end, keys whose count reaches zero are dropped.
    Raises :class:`~repro.relational.delta.DeltaError` — before touching
    anything — if a count would go negative (retraction of rows that are
    not there). Returns ``(codes, stats, kept, added, removed)`` where
    ``kept`` indexes the surviving old rows (None when all survive in
    place) and ``added``/``removed`` are key-code blocks of groups that
    appeared/vanished.
    """
    u, k = key_codes.shape
    if k == 0:
        # The grand-total view: every row (at most one per side — the
        # delta grouping already collapsed on the empty key) shares the
        # () key. comparable_keys would return length-0 key arrays here
        # and silently drop the delta.
        base_keys = np.zeros(u, dtype=np.int64)
        dkeys = np.zeros(len(delta_codes), dtype=np.int64)
    else:
        base_keys, dkeys = comparable_keys(
            [key_codes[:, j] for j in range(k)],
            [delta_codes[:, j] for j in range(k)], sizes)
    order = np.argsort(base_keys)  # keys are distinct: any sort kind
    sorted_keys = base_keys[order]
    pos = np.searchsorted(sorted_keys, dkeys)
    matched = (pos < u)
    if matched.any():
        matched[matched] = sorted_keys[pos[matched]] == dkeys[matched]
    rows = order[pos[matched]]
    fresh = ~matched
    if (delta_stats.count[fresh] < 0).any():
        raise DeltaError("retraction of leaf rows that are not present")
    # astype(float): an all-filtered-out view's bincounts can come back
    # integer-typed; the merged block is float like every other stats
    # block.
    count = stats.count.astype(float, copy=True)
    count[rows] += delta_stats.count[matched]
    if (count < 0).any():
        raise DeltaError("retraction exceeds a leaf group's row count")
    total = stats.total.astype(float, copy=True)
    sumsq = stats.sumsq.astype(float, copy=True)
    total[rows] += delta_stats.total[matched]
    sumsq[rows] += delta_stats.sumsq[matched]
    add_mask = fresh & (delta_stats.count > 0)
    added = delta_codes[add_mask]
    dropped = count == 0
    removed = key_codes[dropped]
    kept: np.ndarray | None = None
    if dropped.any():
        kept = np.flatnonzero(~dropped)
        key_codes = key_codes[kept]
        count, total, sumsq = count[kept], total[kept], sumsq[kept]
    if len(added):
        key_codes = np.concatenate([key_codes, added])
        count = np.concatenate([count, delta_stats.count[add_mask]])
        total = np.concatenate([total, delta_stats.total[add_mask]])
        sumsq = np.concatenate([sumsq, delta_stats.sumsq[add_mask]])
    return key_codes, GroupStats(count, total, sumsq), kept, added, removed


class Cube:
    """Leaf-level aggregate states with distributive roll-up.

    Parameters
    ----------
    dataset:
        The hierarchical dataset to summarize. One vectorized pass over
        its relation computes the leaf stats block; every view after that
        is an array roll-up.
    """

    def __init__(self, dataset: HierarchicalDataset):
        self.dataset = dataset
        self.leaf_attrs: tuple[str, ...] = dataset.leaf_group_by()
        self._build()

    def _build(self) -> None:
        """One vectorized pass over the relation into the leaf stats block.

        Subclasses (the sharded build) override this; everything else in
        the cube only touches the ``_encodings``/``_key_codes``/``_stats``
        arrays this produces.
        """
        relation = self.dataset.relation
        gidx = relation.group_index(list(self.leaf_attrs))
        self._encodings: tuple[DictEncoding, ...] = gidx.encodings
        self._key_codes = gidx.key_codes
        self._stats = GroupStats.from_groups(
            gidx.gids, gidx.n_groups,
            relation.measure_array(self.dataset.measure))
        self._keys: list[Key] | None = None

    def rebuild(self) -> None:
        """Recompute the leaf block from the current relation, in place.

        The refresh path: after the dataset's relation is swapped the cube
        re-derives everything while keeping its identity (sessions and
        serving engines hold references to the cube object).
        """
        self.leaf_attrs = self.dataset.leaf_group_by()
        self._build()

    def __len__(self) -> int:
        return len(self._key_codes)

    def leaf_keys(self) -> list[Key]:
        """Distinct leaf keys, decoded once and cached."""
        if self._keys is None:
            self._keys = decode_keys(self._key_codes, self._encodings)
        return self._keys

    @property
    def leaf_stats(self) -> GroupStats:
        """The leaf-level struct-of-arrays stats block."""
        return self._stats

    @property
    def leaf_states(self) -> Mapping[Key, AggState]:
        return StatesMap(self.leaf_keys(), self._stats)

    def apply_delta(self, delta: Delta) -> CubeDelta:
        """Merge a delta batch into the leaf stats — no full rebuild.

        Only the delta rows are encoded and bincounted: the dimension
        encodings extend their domains (old codes stay valid), the small
        signed stats block merges into the leaf arrays via one
        searchsorted pass, groups whose count reaches zero drop out.
        Retraction granularity is the leaf group: a retraction must not
        drive any group's count negative, else :class:`DeltaError` is
        raised with the cube untouched. Returns the :class:`CubeDelta`
        summary the upper layers patch themselves with.
        """
        new_encs, delta_codes, delta_stats, sizes = self._delta_blocks(delta)
        key_codes, stats, _, added, removed = merge_stats_blocks(
            self._key_codes, self._stats, delta_codes, delta_stats, sizes)
        self._encodings = tuple(new_encs)
        self._key_codes = key_codes
        self._stats = stats
        self._keys = None  # decoded-key cache is stale
        return CubeDelta(delta_codes, delta_stats, self._encodings,
                         added, removed)

    def _delta_blocks(self, delta: Delta
                      ) -> tuple[tuple[DictEncoding, ...], np.ndarray,
                                 GroupStats, list[int]]:
        """Validate ``delta`` and collapse it to signed leaf-group stats.

        Shared by the single-process and sharded apply paths: returns the
        extended encodings, the distinct touched leaf key codes, their
        signed stat deltas (retractions as negative counts), and the
        extended per-attribute domain sizes. Nothing on the cube is
        mutated.
        """
        delta.check_against(self.dataset.relation.schema)
        appended, retracted = delta.appended, delta.retracted
        n_app, n_ret = len(appended), len(retracted)
        # Extend each leaf attribute's encoding with the delta's values.
        new_encs: list[DictEncoding] = []
        columns: list[np.ndarray] = []
        for i, attr in enumerate(self.leaf_attrs):
            enc = self._encodings[i]
            ext, app_codes = enc.extend_domain(
                appended.column_values(attr) if n_app else ())
            ext, ret_codes = ext.extend_domain(
                retracted.column_values(attr) if n_ret else ())
            new_encs.append(ext)
            columns.append(np.concatenate([app_codes, ret_codes]))
        sizes = [e.cardinality for e in new_encs]
        sign = np.concatenate([np.ones(n_app), -np.ones(n_ret)])
        values = np.concatenate([
            appended.measure_array(self.dataset.measure) if n_app
            else np.empty(0),
            retracted.measure_array(self.dataset.measure) if n_ret
            else np.empty(0)])
        gids, delta_codes = combine_codes(columns, sizes, n_app + n_ret)
        delta_stats = GroupStats(
            np.bincount(gids, weights=sign, minlength=len(delta_codes)),
            np.bincount(gids, weights=sign * values,
                        minlength=len(delta_codes)),
            np.bincount(gids, weights=sign * values * values,
                        minlength=len(delta_codes)))
        return tuple(new_encs), delta_codes, delta_stats, sizes

    def hierarchy_paths(self, attributes: Sequence[str]) -> list[tuple]:
        """Distinct projections of the current leaf keys onto ``attributes``.

        O(leaf groups): the delta path uses this to recompute one
        hierarchy's root-to-leaf paths after a retraction emptied leaf
        groups, without rescanning the relation.
        """
        positions = [self.leaf_attrs.index(a) for a in attributes]
        uniq = np.unique(self._key_codes[:, positions], axis=0)
        return decode_keys(uniq, [self._encodings[p] for p in positions])

    def vanished_keys(self, positions: Sequence[int],
                      codes: np.ndarray) -> np.ndarray:
        """Rows of ``codes`` with no surviving leaf projecting onto them.

        ``codes`` is a small ``(r, k)`` block over the leaf-attr columns
        ``positions``; one sorted-membership pass over the current leaf
        keys decides which of its rows lost their last witness — the
        O(leaf groups + r log r) retraction check of the path patcher.
        """
        sizes = [self._encodings[p].cardinality for p in positions]
        survivors, candidates = comparable_keys(
            [self._key_codes[:, p] for p in positions],
            [codes[:, j] for j in range(len(positions))], sizes)
        radix = 1
        for s in sizes:
            radix *= max(int(s), 1)
        if 0 < radix <= max(8 * len(survivors), 1 << 16):
            # Dense radix: a scatter table beats sorting the leaf keys.
            occupied = np.zeros(radix, dtype=bool)
            occupied[survivors] = True
            return codes[~occupied[candidates]]
        survivors = np.sort(survivors)
        pos = np.searchsorted(survivors, candidates)
        found = pos < len(survivors)
        if found.any():
            found[found] = survivors[pos[found]] == candidates[found]
        return codes[~found]

    def view(self, group_attrs: Sequence[str],
             filters: Mapping[str, object] | None = None) -> GroupView:
        """Roll up to ``group_attrs``, keeping only leaves matching ``filters``.

        ``filters`` may reference any dimension attribute (not only grouped
        ones) — that is exactly the provenance filter of a drill-down on a
        complaint tuple.
        """
        group_attrs = tuple(group_attrs)
        positions = [self.leaf_attrs.index(a) for a in group_attrs]
        key_codes, stats = self._key_codes, self._stats
        mask: np.ndarray | None = None
        for attr, value in (filters or {}).items():
            i = self.leaf_attrs.index(attr)
            code = self._encodings[i].code_of(value)
            if code is None:
                hit = np.zeros(len(key_codes), dtype=bool)
            else:
                hit = key_codes[:, i] == code
            mask = hit if mask is None else mask & hit
        if mask is not None:
            idx = np.flatnonzero(mask)
            key_codes = key_codes[idx]
            stats = stats.select(idx)
        encs = [self._encodings[p] for p in positions]
        gids, out_codes = combine_codes(
            [key_codes[:, p] for p in positions],
            [e.cardinality for e in encs], len(key_codes))
        out_stats = stats.merge_by(gids, len(out_codes))
        keys = decode_keys(out_codes, encs)
        return GroupView(group_attrs, StatesMap(keys, out_stats),
                         key_codes=out_codes, encodings=tuple(encs))

    def group_state(self, coordinates: Mapping[str, object]) -> AggState:
        """Aggregate state of the single group identified by ``coordinates``."""
        attrs = tuple(coordinates)
        view = self.view(attrs)
        return view.state(tuple(coordinates[a] for a in attrs))

    def drilldown_view(self, group_attrs: Sequence[str], next_attr: str,
                       complaint_coords: Mapping[str, object]) -> GroupView:
        """The paper's ``drilldown(V, t, H)`` (Example 7).

        Adds ``next_attr`` to the group-by and restricts the input to the
        provenance of the complaint tuple (its coordinate filter).
        """
        attrs = tuple(group_attrs) + (next_attr,)
        return self.view(attrs, filters=dict(complaint_coords))

    def parallel_view(self, group_attrs: Sequence[str], next_attr: str
                      ) -> GroupView:
        """All parallel groups at the drilled level (§3.2, training data)."""
        return self.view(tuple(group_attrs) + (next_attr,))
