"""Distributive roll-up cube over a hierarchical dataset.

Reptile repeatedly evaluates group-by views at different drill-down levels
(eq. 2 of Problem 1). Because all supported aggregates are distributive
(Appendix A), every view can be derived from a single pass over the data.

The cube is columnar end to end: one vectorized composite-key pass over
the encoded dimension columns assigns every record a *leaf* group id, and
three ``np.bincount`` calls fill a struct-of-arrays
:class:`~repro.relational.aggregates.GroupStats` with each leaf's
``(count, sum, sumsq)``. Rolling up to a coarser level is another
composite-key pass over the leaf key codes plus one ``GroupStats.merge_by``
— ``G`` applied to whole levels at once — and provenance filtering
(``drilldown`` replaces R with the provenance of the complaint tuple) is a
boolean mask over the leaf code matrix. The public API is unchanged:
views still expose a ``{key: AggState}`` mapping, materialized lazily as a
view into the stats arrays (:class:`StatesMap`).
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from .aggregates import AggState, GroupStats, merge_states
from .dataset import HierarchicalDataset
from .encoding import DictEncoding, combine_codes, decode_keys

Key = tuple


class StatesMap(MappingABC):
    """A read-only ``{key: AggState}`` view into :class:`GroupStats`.

    Keeps the object-per-group API of the row engine without storing one
    object per group: ``AggState`` instances are created on access from
    the underlying stats arrays.
    """

    __slots__ = ("_keys", "_stats", "_pos")

    def __init__(self, keys: list[Key], stats: GroupStats):
        self._keys = keys
        self._stats = stats
        self._pos: dict[Key, int] | None = None

    @property
    def stats(self) -> GroupStats:
        """The underlying struct-of-arrays block."""
        return self._stats

    @property
    def key_list(self) -> list[Key]:
        """The decoded group keys, in group-id (= array row) order."""
        return self._keys

    def _positions(self) -> dict[Key, int]:
        if self._pos is None:
            self._pos = {k: i for i, k in enumerate(self._keys)}
        return self._pos

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Key]:
        return iter(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._positions()

    def __getitem__(self, key: Key) -> AggState:
        return self._stats.state(self._positions()[key])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MappingABC):
            return dict(self) == dict(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"StatesMap(n={len(self)})"


@dataclass(frozen=True)
class GroupView:
    """A group-by view: attribute names + per-group aggregate states.

    The result of ``γ_{group_attrs, F}(σ_filters(R))`` with all base
    statistics available per group.

    Cube-built views additionally carry the *array-backed form*: the
    ``(n_groups, k)`` matrix of encoded key codes plus the per-attribute
    :class:`~repro.relational.encoding.DictEncoding` objects, aligned with
    the :class:`GroupStats` rows behind ``groups``. The recommend path
    (design build, repair prediction, ranking) operates on these arrays
    directly; the ``{key: AggState}`` mapping stays the compatibility API.
    Hand-built views (plain dict ``groups``) leave them ``None``.
    """

    group_attrs: tuple[str, ...]
    groups: Mapping[Key, AggState]
    key_codes: "np.ndarray | None" = field(default=None, compare=False,
                                           repr=False)
    encodings: "tuple[DictEncoding, ...] | None" = field(
        default=None, compare=False, repr=False)

    @property
    def stats(self) -> GroupStats | None:
        """The struct-of-arrays stats block, or None for dict-built views."""
        groups = self.groups
        return groups.stats if isinstance(groups, StatesMap) else None

    @property
    def key_list(self) -> list[Key]:
        """Group keys in array-row order (= ``groups`` iteration order)."""
        groups = self.groups
        if isinstance(groups, StatesMap):
            return groups.key_list
        return list(groups)

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[Key]:
        return iter(self.groups)

    def state(self, key: Key) -> AggState:
        return self.groups.get(tuple(key), AggState())

    def statistic(self, key: Key, name: str) -> float:
        return self.state(key).statistic(name)

    def total(self) -> AggState:
        """``G`` over all groups — the parent aggregate."""
        if isinstance(self.groups, StatesMap):
            return self.groups.stats.total_state()
        return merge_states(self.groups.values())

    def keys_matching(self, conditions: Mapping[str, object]) -> list[Key]:
        """Group keys consistent with equality conditions on view attrs."""
        checks = [(self.group_attrs.index(a), v) for a, v in conditions.items()
                  if a in self.group_attrs]
        return [k for k in self.groups
                if all(k[i] == v for i, v in checks)]

    def coordinates(self, key: Key) -> dict[str, object]:
        """The group key as an ``{attribute: value}`` mapping."""
        return dict(zip(self.group_attrs, key))


class Cube:
    """Leaf-level aggregate states with distributive roll-up.

    Parameters
    ----------
    dataset:
        The hierarchical dataset to summarize. One vectorized pass over
        its relation computes the leaf stats block; every view after that
        is an array roll-up.
    """

    def __init__(self, dataset: HierarchicalDataset):
        self.dataset = dataset
        self.leaf_attrs: tuple[str, ...] = dataset.leaf_group_by()
        relation = dataset.relation
        gidx = relation.group_index(list(self.leaf_attrs))
        self._encodings: tuple[DictEncoding, ...] = gidx.encodings
        self._key_codes = gidx.key_codes
        self._stats = GroupStats.from_groups(
            gidx.gids, gidx.n_groups,
            relation.measure_array(dataset.measure))
        self._keys: list[Key] | None = None

    def __len__(self) -> int:
        return len(self._key_codes)

    def leaf_keys(self) -> list[Key]:
        """Distinct leaf keys, decoded once and cached."""
        if self._keys is None:
            self._keys = decode_keys(self._key_codes, self._encodings)
        return self._keys

    @property
    def leaf_stats(self) -> GroupStats:
        """The leaf-level struct-of-arrays stats block."""
        return self._stats

    @property
    def leaf_states(self) -> Mapping[Key, AggState]:
        return StatesMap(self.leaf_keys(), self._stats)

    def view(self, group_attrs: Sequence[str],
             filters: Mapping[str, object] | None = None) -> GroupView:
        """Roll up to ``group_attrs``, keeping only leaves matching ``filters``.

        ``filters`` may reference any dimension attribute (not only grouped
        ones) — that is exactly the provenance filter of a drill-down on a
        complaint tuple.
        """
        group_attrs = tuple(group_attrs)
        positions = [self.leaf_attrs.index(a) for a in group_attrs]
        key_codes, stats = self._key_codes, self._stats
        mask: np.ndarray | None = None
        for attr, value in (filters or {}).items():
            i = self.leaf_attrs.index(attr)
            code = self._encodings[i].code_of(value)
            if code is None:
                hit = np.zeros(len(key_codes), dtype=bool)
            else:
                hit = key_codes[:, i] == code
            mask = hit if mask is None else mask & hit
        if mask is not None:
            idx = np.flatnonzero(mask)
            key_codes = key_codes[idx]
            stats = stats.select(idx)
        encs = [self._encodings[p] for p in positions]
        gids, out_codes = combine_codes(
            [key_codes[:, p] for p in positions],
            [e.cardinality for e in encs], len(key_codes))
        out_stats = stats.merge_by(gids, len(out_codes))
        keys = decode_keys(out_codes, encs)
        return GroupView(group_attrs, StatesMap(keys, out_stats),
                         key_codes=out_codes, encodings=tuple(encs))

    def group_state(self, coordinates: Mapping[str, object]) -> AggState:
        """Aggregate state of the single group identified by ``coordinates``."""
        attrs = tuple(coordinates)
        view = self.view(attrs)
        return view.state(tuple(coordinates[a] for a in attrs))

    def drilldown_view(self, group_attrs: Sequence[str], next_attr: str,
                       complaint_coords: Mapping[str, object]) -> GroupView:
        """The paper's ``drilldown(V, t, H)`` (Example 7).

        Adds ``next_attr`` to the group-by and restricts the input to the
        provenance of the complaint tuple (its coordinate filter).
        """
        attrs = tuple(group_attrs) + (next_attr,)
        return self.view(attrs, filters=dict(complaint_coords))

    def parallel_view(self, group_attrs: Sequence[str], next_attr: str
                      ) -> GroupView:
        """All parallel groups at the drilled level (§3.2, training data)."""
        return self.view(tuple(group_attrs) + (next_attr,))
