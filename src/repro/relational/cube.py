"""Distributive roll-up cube over a hierarchical dataset.

Reptile repeatedly evaluates group-by views at different drill-down levels
(eq. 2 of Problem 1). Because all supported aggregates are distributive
(Appendix A), every view can be derived from a single pass over the data:
we compute :class:`AggState` for each *leaf* group (all dimension
attributes) once, then roll up to any coarser level by merging states with
``G``. Provenance filtering (``drilldown`` replaces R with the provenance
of the complaint tuple) becomes a key filter on the leaf map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from .aggregates import AggState, merge_states
from .dataset import HierarchicalDataset

Key = tuple


@dataclass(frozen=True)
class GroupView:
    """A group-by view: attribute names + per-group aggregate states.

    The result of ``γ_{group_attrs, F}(σ_filters(R))`` with all base
    statistics available per group.
    """

    group_attrs: tuple[str, ...]
    groups: Mapping[Key, AggState]

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[Key]:
        return iter(self.groups)

    def state(self, key: Key) -> AggState:
        return self.groups.get(tuple(key), AggState())

    def statistic(self, key: Key, name: str) -> float:
        return self.state(key).statistic(name)

    def total(self) -> AggState:
        """``G`` over all groups — the parent aggregate."""
        return merge_states(self.groups.values())

    def keys_matching(self, conditions: Mapping[str, object]) -> list[Key]:
        """Group keys consistent with equality conditions on view attrs."""
        checks = [(self.group_attrs.index(a), v) for a, v in conditions.items()
                  if a in self.group_attrs]
        return [k for k in self.groups
                if all(k[i] == v for i, v in checks)]

    def coordinates(self, key: Key) -> dict[str, object]:
        """The group key as an ``{attribute: value}`` mapping."""
        return dict(zip(self.group_attrs, key))


class Cube:
    """Leaf-level aggregate states with distributive roll-up.

    Parameters
    ----------
    dataset:
        The hierarchical dataset to summarize. One pass over its relation
        computes the leaf states; every view after that is a roll-up.
    """

    def __init__(self, dataset: HierarchicalDataset):
        self.dataset = dataset
        self.leaf_attrs: tuple[str, ...] = dataset.leaf_group_by()
        measure = dataset.relation.measure_array(dataset.measure)
        groups = dataset.relation.group_rows(list(self.leaf_attrs))
        self._leaf: dict[Key, AggState] = {
            key: AggState.of(measure[idx]) for key, idx in groups.items()}

    def __len__(self) -> int:
        return len(self._leaf)

    @property
    def leaf_states(self) -> Mapping[Key, AggState]:
        return self._leaf

    def view(self, group_attrs: Sequence[str],
             filters: Mapping[str, object] | None = None) -> GroupView:
        """Roll up to ``group_attrs``, keeping only leaves matching ``filters``.

        ``filters`` may reference any dimension attribute (not only grouped
        ones) — that is exactly the provenance filter of a drill-down on a
        complaint tuple.
        """
        group_attrs = tuple(group_attrs)
        positions = [self.leaf_attrs.index(a) for a in group_attrs]
        checks = []
        for attr, value in (filters or {}).items():
            checks.append((self.leaf_attrs.index(attr), value))
        out: dict[Key, AggState] = {}
        for leaf_key, state in self._leaf.items():
            if any(leaf_key[i] != v for i, v in checks):
                continue
            key = tuple(leaf_key[p] for p in positions)
            prev = out.get(key)
            out[key] = state if prev is None else prev.merge(state)
        return GroupView(group_attrs, out)

    def group_state(self, coordinates: Mapping[str, object]) -> AggState:
        """Aggregate state of the single group identified by ``coordinates``."""
        attrs = tuple(coordinates)
        view = self.view(attrs)
        return view.state(tuple(coordinates[a] for a in attrs))

    def drilldown_view(self, group_attrs: Sequence[str], next_attr: str,
                       complaint_coords: Mapping[str, object]) -> GroupView:
        """The paper's ``drilldown(V, t, H)`` (Example 7).

        Adds ``next_attr`` to the group-by and restricts the input to the
        provenance of the complaint tuple (its coordinate filter).
        """
        attrs = tuple(group_attrs) + (next_attr,)
        return self.view(attrs, filters=dict(complaint_coords))

    def parallel_view(self, group_attrs: Sequence[str], next_attr: str
                      ) -> GroupView:
        """All parallel groups at the drilled level (§3.2, training data)."""
        return self.view(tuple(group_attrs) + (next_attr,))
