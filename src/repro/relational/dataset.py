"""The hierarchical dataset abstraction Reptile is initialized with (§2.1).

A :class:`HierarchicalDataset` bundles the base fact relation, its dimension
hierarchies, the measure attribute(s), and any auxiliary datasets the user
registers (§3.3.2). Auxiliary datasets join to the facts on a subset of
dimension attributes and contribute extra predictive measures (e.g. the
satellite rainfall estimates of Example 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .encoding import EncodingError
from .hierarchy import Dimensions, HierarchyError
from .relation import Relation


class DatasetError(ValueError):
    """Raised for inconsistent dataset definitions."""


@dataclass(frozen=True)
class AuxiliaryDataset:
    """An auxiliary dataset registration (§3.3.2).

    Parameters
    ----------
    name:
        Identifier used for the derived feature columns.
    relation:
        The auxiliary relation itself.
    join_on:
        Dimension attributes of the base dataset that the auxiliary data
        keys on. The auxiliary measures become applicable once the current
        drill-down level includes all of ``join_on``.
    measures:
        The auxiliary relation's measure attributes to use as features.
    """

    name: str
    relation: Relation
    join_on: tuple[str, ...]
    measures: tuple[str, ...]

    def __init__(self, name: str, relation: Relation,
                 join_on: Sequence[str], measures: Sequence[str]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "join_on", tuple(join_on))
        object.__setattr__(self, "measures", tuple(measures))
        for a in self.join_on + self.measures:
            if a not in relation.schema:
                raise DatasetError(
                    f"auxiliary dataset {name!r} lacks attribute {a!r}")

    def lookup(self) -> dict[tuple, dict[str, float]]:
        """Map join key -> {measure: value}, averaging duplicate keys.

        Built once from the encoded join-key code columns (one bincount
        per measure instead of a per-row Python accumulation loop) and
        memoized on the registration: auxiliary datasets are immutable
        (the caching layer's ``spec_signature`` already relies on this),
        so every feature build after the first reuses the same mapping
        instead of re-materializing ``{tuple: dict}`` over full row
        dicts on each access. Mixed-type/unencodable join keys keep the
        row-path fallback (also memoized).
        """
        cached = self.__dict__.get("_lookup_cache")
        if cached is not None:
            return cached
        try:
            gidx = self.relation.group_index(list(self.join_on))
        except EncodingError:
            result = self._lookup_rows()
        else:
            counts = np.bincount(gidx.gids, minlength=gidx.n_groups)
            means = {m: np.bincount(gidx.gids,
                                    weights=self.relation.measure_array(m),
                                    minlength=gidx.n_groups) / counts
                     for m in self.measures}
            result = {key: {m: float(means[m][i]) for m in self.measures}
                      for i, key in enumerate(gidx.keys())}
        object.__setattr__(self, "_lookup_cache", result)
        return result

    def _lookup_rows(self) -> dict[tuple, dict[str, float]]:
        """Row-at-a-time fallback for unencodable join keys."""
        sums: dict[tuple, dict[str, float]] = {}
        counts: dict[tuple, int] = {}
        keys = self.relation.key_tuples(list(self.join_on))
        cols = {m: self.relation.column_values(m) for m in self.measures}
        for i, key in enumerate(keys):
            acc = sums.setdefault(key, {m: 0.0 for m in self.measures})
            for m in self.measures:
                acc[m] += float(cols[m][i])
            counts[key] = counts.get(key, 0) + 1
        return {key: {m: acc[m] / counts[key] for m in self.measures}
                for key, acc in sums.items()}


class HierarchicalDataset:
    """Base relation + hierarchies + measures + auxiliary data.

    This is the object passed to :class:`repro.core.session.Reptile`.
    """

    def __init__(self, relation: Relation, dimensions: Dimensions,
                 measure: str, *, validate: bool = True,
                 auxiliary: Sequence[AuxiliaryDataset] = ()):
        self.relation = relation
        self.dimensions = dimensions
        self.measure = measure
        self.auxiliary: dict[str, AuxiliaryDataset] = {}
        if measure not in relation.schema:
            raise DatasetError(f"measure {measure!r} not in relation schema")
        for a in dimensions.attributes():
            if a not in relation.schema:
                raise DatasetError(
                    f"hierarchy attribute {a!r} not in relation schema")
        if validate:
            try:
                dimensions.validate(relation)
            except HierarchyError as exc:
                raise DatasetError(str(exc)) from exc
        for aux in auxiliary:
            self.add_auxiliary(aux)

    @classmethod
    def build(cls, relation: Relation,
              hierarchies: Mapping[str, Sequence[str]], measure: str,
              **kwargs) -> "HierarchicalDataset":
        """Convenience constructor from a plain hierarchy mapping."""
        return cls(relation, Dimensions.from_mapping(hierarchies), measure,
                   **kwargs)

    # -- auxiliary data -------------------------------------------------------------
    def add_auxiliary(self, aux: AuxiliaryDataset) -> None:
        """Register an auxiliary dataset (§3.3.2)."""
        if aux.name in self.auxiliary:
            raise DatasetError(f"duplicate auxiliary dataset {aux.name!r}")
        for a in aux.join_on:
            try:
                self.dimensions.hierarchy_of(a)
            except HierarchyError:
                raise DatasetError(
                    f"auxiliary dataset {aux.name!r} joins on {a!r}, which is "
                    f"not a dimension attribute") from None
        self.auxiliary[aux.name] = aux

    def applicable_auxiliary(self, group_by: Sequence[str]
                             ) -> list[AuxiliaryDataset]:
        """Auxiliary datasets whose join keys are all in ``group_by``."""
        grouped = set(group_by)
        return [aux for aux in self.auxiliary.values()
                if set(aux.join_on) <= grouped]

    # -- navigation helpers -----------------------------------------------------------
    def attribute_domain(self, attribute: str) -> list:
        """Distinct values of a dimension attribute, sorted.

        Served from the relation's interned dictionary encoding — the
        domain is already the distinct value set, and is shared with the
        cube and the serving fingerprints.
        """
        try:
            enc = self.relation.encoding(attribute)
        except EncodingError:
            return sorted(set(self.relation.column_values(attribute)))
        present = np.unique(enc.codes)
        if len(present) == enc.cardinality:
            domain = list(enc.domain)
        else:
            # Derived relations can share a domain wider than their rows;
            # report only the values actually present.
            domain = enc.decode(present)
        return domain if enc.domain_sorted else sorted(domain)

    def leaf_group_by(self) -> tuple[str, ...]:
        """The most specific group-by: every hierarchy fully drilled."""
        return self.dimensions.attributes()

    def __repr__(self) -> str:
        dims = {h.name: list(h.attributes) for h in self.dimensions}
        return (f"HierarchicalDataset(n={len(self.relation)}, dims={dims}, "
                f"measure={self.measure!r})")
