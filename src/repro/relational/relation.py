"""A small in-memory, column-oriented relation.

This is the storage substrate for Reptile's input data: raw survey records,
auxiliary sensing datasets, and the like. It supports the handful of
relational operations the engine needs — project, filter, sort, group-by,
natural join, distinct — with plain Python containers for dimension columns
and numpy arrays for measures where convenient.

The design goal is clarity over generality: columns are Python lists, rows
are materialized lazily, and every operation returns a fresh relation.
"""

from __future__ import annotations

import csv
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .schema import Attribute, AttributeKind, Schema, SchemaError

Row = tuple
Key = tuple


class Relation:
    """An in-memory relation with named columns.

    Parameters
    ----------
    schema:
        Column names/types; a :class:`Schema` or iterable of names.
    columns:
        Mapping from attribute name to a sequence of values. All columns
        must have equal length. Missing columns raise.
    """

    __slots__ = ("schema", "_columns", "_n")

    def __init__(self, schema: Schema | Iterable[Attribute | str],
                 columns: Mapping[str, Sequence[Any]]):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        cols: dict[str, list] = {}
        n: int | None = None
        for name in schema.names:
            if name not in columns:
                raise SchemaError(f"missing column {name!r}")
            col = list(columns[name])
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise SchemaError(
                    f"column {name!r} has length {len(col)}, expected {n}")
            cols[name] = col
        self._columns = cols
        self._n = n if n is not None else 0

    # -- constructors --------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema | Iterable[Attribute | str],
                  rows: Iterable[Sequence[Any]]) -> "Relation":
        """Build a relation from an iterable of row tuples."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        names = schema.names
        cols: dict[str, list] = {n: [] for n in names}
        for row in rows:
            if len(row) != len(names):
                raise SchemaError(
                    f"row of width {len(row)} does not match schema width {len(names)}")
            for name, value in zip(names, row):
                cols[name].append(value)
        return cls(schema, cols)

    @classmethod
    def from_csv(cls, path: str, schema: Schema,
                 converters: Mapping[str, Callable[[str], Any]] | None = None
                 ) -> "Relation":
        """Load a relation from a CSV file with a header row.

        Measures are converted to ``float`` by default; pass ``converters``
        to override per-column parsing.
        """
        converters = dict(converters or {})
        for attr in schema:
            if attr.kind is AttributeKind.MEASURE and attr.name not in converters:
                converters[attr.name] = float
        with open(path, newline="") as f:
            reader = csv.DictReader(f)
            rows = []
            for rec in reader:
                rows.append(tuple(
                    converters.get(n, lambda s: s)(rec[n]) for n in schema.names))
        return cls.from_rows(schema, rows)

    def to_csv(self, path: str) -> None:
        """Write the relation to a CSV file with a header row."""
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(self.schema.names)
            for row in self.rows():
                writer.writerow(row)

    # -- container protocol ----------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __repr__(self) -> str:
        return f"Relation({list(self.schema.names)}, n={self._n})"

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema and same multiset of rows."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.names != other.schema.names:
            return False
        return sorted(map(repr, self.rows())) == sorted(map(repr, other.rows()))

    # -- accessors ---------------------------------------------------------------
    def column(self, name: str) -> list:
        """The raw column list for ``name`` (do not mutate)."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def measure_array(self, name: str) -> np.ndarray:
        """Column ``name`` as a float numpy array."""
        return np.asarray(self._columns[name], dtype=float)

    def rows(self) -> Iterator[Row]:
        """Iterate rows as tuples in storage order."""
        cols = [self._columns[n] for n in self.schema.names]
        return zip(*cols) if cols else iter(() for _ in range(self._n))

    def row(self, i: int) -> Row:
        return tuple(self._columns[n][i] for n in self.schema.names)

    def key_tuples(self, names: Sequence[str]) -> list[Key]:
        """Rows projected to ``names``, as a list of tuples (with duplicates)."""
        cols = [self._columns[n] for n in names]
        if not cols:
            return [() for _ in range(self._n)]
        return list(zip(*cols))

    # -- relational operators ------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Relation":
        """Projection (keeps duplicates)."""
        schema = self.schema.project(names)
        return Relation(schema, {n: self._columns[n] for n in names})

    def distinct(self, names: Sequence[str] | None = None) -> "Relation":
        """Duplicate-free projection onto ``names`` (default: all columns)."""
        names = list(names if names is not None else self.schema.names)
        seen: dict[Key, None] = {}
        for key in self.key_tuples(names):
            seen.setdefault(key, None)
        return Relation.from_rows(self.schema.project(names), list(seen))

    def filter(self, predicate: Callable[[dict], bool]) -> "Relation":
        """Rows for which ``predicate(row_dict)`` is true."""
        names = self.schema.names
        keep = [i for i, row in enumerate(self.rows())
                if predicate(dict(zip(names, row)))]
        return self._take(keep)

    def filter_equals(self, conditions: Mapping[str, Any]) -> "Relation":
        """Rows matching every ``attr == value`` condition (fast path)."""
        if not conditions:
            return self
        keep = None
        for name, value in conditions.items():
            col = self.column(name)
            matches = {i for i, v in enumerate(col) if v == value}
            keep = matches if keep is None else keep & matches
        return self._take(sorted(keep or ()))

    def _take(self, indices: Sequence[int]) -> "Relation":
        cols = {n: [c[i] for i in indices] for n, c in self._columns.items()}
        return Relation(self.schema, cols)

    def sort(self, names: Sequence[str] | None = None) -> "Relation":
        """Rows sorted lexicographically by ``names`` (default: all)."""
        names = list(names if names is not None else self.schema.names)
        order = sorted(range(self._n),
                       key=lambda i: tuple(self._columns[n][i] for n in names))
        return self._take(order)

    def extend(self, name: str, values: Sequence[Any],
               kind: AttributeKind = AttributeKind.OTHER) -> "Relation":
        """Relation with one additional column appended."""
        if len(values) != self._n:
            raise SchemaError(
                f"new column {name!r} has length {len(values)}, expected {self._n}")
        schema = Schema(list(self.schema) + [Attribute(name, kind)])
        cols = dict(self._columns)
        cols[name] = list(values)
        return Relation(schema, cols)

    def concat(self, other: "Relation") -> "Relation":
        """Bag union of two relations with identical schemas."""
        if self.schema.names != other.schema.names:
            raise SchemaError("concat requires identical schemas")
        cols = {n: self._columns[n] + other._columns[n] for n in self.schema.names}
        return Relation(self.schema, cols)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural (equi-)join on the shared attribute names.

        A hash join: the smaller relation is built into a hash table on the
        join key; output schema is ``self ⋈ other`` with ``other``'s
        non-shared attributes appended.
        """
        shared = list(self.schema.intersection(other.schema))
        other_only = [n for n in other.schema.names if n not in shared]
        out_schema = Schema(
            list(self.schema)
            + [other.schema[n] for n in other_only])
        if not shared:
            # Cartesian product.
            rows = []
            other_rows = [tuple(r) for r in other.project(other_only).rows()] \
                if other_only else [()] * len(other)
            for left in self.rows():
                for right in other_rows:
                    rows.append(left + right)
            return Relation.from_rows(out_schema, rows)

        table: dict[Key, list[tuple]] = {}
        other_keys = other.key_tuples(shared)
        other_rest = other.key_tuples(other_only)
        for key, rest in zip(other_keys, other_rest):
            table.setdefault(key, []).append(rest)
        rows = []
        self_keys = self.key_tuples(shared)
        for left, key in zip(self.rows(), self_keys):
            for rest in table.get(key, ()):
                rows.append(tuple(left) + rest)
        return Relation.from_rows(out_schema, rows)

    # -- grouping -------------------------------------------------------------------
    def group_rows(self, names: Sequence[str]) -> dict[Key, list[int]]:
        """Map each distinct key of ``names`` to the row indices in that group."""
        groups: dict[Key, list[int]] = {}
        for i, key in enumerate(self.key_tuples(names)):
            groups.setdefault(key, []).append(i)
        return groups

    def group_measure(self, names: Sequence[str], measure: str
                      ) -> dict[Key, np.ndarray]:
        """Map each group key to the numpy array of its measure values."""
        col = self.measure_array(measure)
        return {key: col[idx] for key, idx in self.group_rows(names).items()}
