"""A small in-memory, column-oriented relation.

This is the storage substrate for Reptile's input data: raw survey records,
auxiliary sensing datasets, and the like. It supports the handful of
relational operations the engine needs — project, filter, sort, group-by,
natural join, distinct — on top of a dictionary-encoded columnar core
(:mod:`repro.relational.encoding`): each column is interned once into an
``int32`` code array plus a value domain, and every hot operation runs as a
vectorized composite-key kernel instead of a per-row Python loop.

The public API is unchanged from the row-oriented engine. ``column()``
still hands out a live Python list (materialized lazily from the codes),
``rows()`` still yields tuples, and operations still return fresh
relations; columns produced by encoded operators stay in code form until
someone actually asks for the values. Columns whose list has been handed
out are treated as externally mutable and drop their cached encodings.
One observable difference: key-producing operators (``distinct``,
``group_rows``, ``group_measure``) iterate in lexicographic key order —
the order the composite-key kernels produce — rather than the row
engine's first-occurrence order; results are equal as bags/mappings.
"""

from __future__ import annotations

import csv
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .aggregates import GroupStats
from .encoding import (DictEncoding, EncodingError, GroupIndex, digest_parts,
                       factorize, merge_join_indices)
from .schema import Attribute, AttributeKind, Schema, SchemaError

Row = tuple
Key = tuple


class _Column:
    """One column in exactly one canonical form: list, typed array or codes.

    * ``list`` — as handed to the constructor (value objects preserved);
    * ``array`` — a typed 1-D numpy array (fast path for bulk data);
    * ``encoding`` — codes + domain, produced by encoded operators.

    Derived representations (the encoding of a list column, the list of an
    encoded column) are cached. :meth:`live_list` — backing the public
    ``Relation.column`` — marks the column *escaped*: the caller may mutate
    the returned list in place, so every cached derivative is dropped and
    nothing is cached from then on.
    """

    __slots__ = ("_values", "_array", "_enc", "_token", "_escaped",
                 "_shared")

    def __init__(self, values: list | None = None,
                 array: np.ndarray | None = None,
                 enc: DictEncoding | None = None):
        self._values = values
        self._array = array
        self._enc = enc
        self._token: bytes | None = None
        self._escaped = False
        # True when this column's list object may be referenced by
        # another relation (project/extend share storage); live_list()
        # then copies before escaping so mutations stay local.
        self._shared = False

    @classmethod
    def from_input(cls, values) -> "_Column":
        """Owning column from caller-supplied data (copies, like the old
        list() constructor did)."""
        if isinstance(values, np.ndarray) and values.ndim == 1 \
                and values.dtype.kind in "biufUS":
            return cls(array=values.copy())
        return cls(values=list(values))

    def __len__(self) -> int:
        if self._values is not None:
            return len(self._values)
        if self._array is not None:
            return len(self._array)
        return len(self._enc.codes)

    # -- representations ---------------------------------------------------------
    def peek_list(self) -> list:
        """The values as a list for read-only use (cached, no escape)."""
        if self._values is None:
            if self._array is not None:
                values = self._array.tolist()
            else:
                values = self._enc.decode()
            if self._escaped:
                return values
            self._values = values
        return self._values

    def live_list(self) -> list:
        """The canonical, mutable list (public ``column()`` contract).

        The caller may mutate it in place and expects later computations
        *on this relation* to observe the change, so all cached
        derivatives are invalidated and caching is disabled for this
        column. A list shared with another relation (via project/extend)
        is copied first — derived relations stay isolated, exactly as
        when the old engine copied every column up front.
        """
        values = self.peek_list()
        if self._shared:
            values = list(values)
            self._shared = False
        self._values = values
        self._array = None
        self._enc = None
        self._token = None
        self._escaped = True
        return values

    def fork(self) -> "_Column":
        """A column for a derived relation sharing this one's storage.

        Immutable representations (typed array, encoding) are shared
        outright; a canonical list is shared but flagged on both sides
        so whichever relation escapes it first copies it.
        """
        if self._escaped:
            # The live list can mutate under us: snapshot now.
            return _Column(values=list(self._values))
        clone = _Column(values=self._values, array=self._array,
                        enc=self._enc)
        clone._token = self._token
        if self._values is not None:
            self._shared = True
            clone._shared = True
        return clone

    def encoding(self) -> DictEncoding:
        """Dictionary encoding (cached unless the column has escaped)."""
        if self._enc is not None:
            return self._enc
        if self._array is not None:
            enc = factorize(self._array)
        else:
            enc = factorize(self._values)
        if not self._escaped:
            self._enc = enc
        return enc

    def float_array(self) -> np.ndarray:
        """The column as a fresh float array (measure accessor)."""
        if self._array is not None:
            return self._array.astype(float)
        if self._values is None and self._enc is not None:
            try:
                return np.asarray(self._enc.objects,
                                  dtype=float)[self._enc.codes]
            except (TypeError, ValueError):
                pass
        return np.asarray(self.peek_list(), dtype=float)

    # -- derivation --------------------------------------------------------------
    def take(self, indices: np.ndarray, index_list: list | None = None
             ) -> "_Column":
        """Row subset; stays in code/array form whenever possible.

        A lossy encoding (==-equal values of mixed numeric types merged
        under one code) cannot reproduce the original row objects, so
        the subset is taken from the value list instead.
        """
        if self._enc is not None \
                and not (self._enc.lossy and self._values is not None):
            return _Column(enc=self._enc.take(indices))
        if self._array is not None:
            return _Column(array=self._array[indices])
        values = self._values
        idx = index_list if index_list is not None else indices.tolist()
        return _Column(values=[values[i] for i in idx])

    def takes_list_path(self) -> bool:
        """True when :meth:`take` will subset the Python value list
        (callers then precompute the shared index list once)."""
        if self._enc is not None \
                and not (self._enc.lossy and self._values is not None):
            return False
        return self._array is None

    def appended(self, other: "_Column") -> "_Column":
        """This column with ``other``'s rows appended (delta ingestion).

        Unlike :meth:`concat`, an interned encoding is *extended*: the
        old domain stays a prefix of the new one and the old codes are
        concatenated untouched — no re-encode, no domain re-sort — which
        is what keeps delta ingestion O(delta) on the encoded columns.
        Falls back to :meth:`concat` when this column has no clean
        cached encoding or the extension would merge ==-equal values of
        another type (decoding must keep returning the original objects).
        """
        if self._enc is not None and not self._escaped \
                and not (self._enc.lossy and self._values is not None):
            try:
                extended, codes = self._enc.extend_domain(other.peek_list())
            except EncodingError:
                return self.concat(other)
            if not (extended.lossy and not self._enc.lossy):
                return _Column(enc=DictEncoding(
                    np.concatenate([self._enc.codes, codes]),
                    extended.domain, extended.domain_sorted,
                    lossy=extended.lossy))
        if self._array is not None and other._array is None \
                and not other._escaped:
            # Keep a typed array typed: a small row-built delta must not
            # demote the whole column to a Python list (every later
            # take/append would then pay an O(rows) loop).
            arr = np.asarray(other.peek_list())
            if arr.ndim == 1 and arr.dtype.kind == self._array.dtype.kind:
                return _Column(array=np.concatenate([self._array, arr]))
        return self.concat(other)

    def concat(self, other: "_Column") -> "_Column":
        if self._values is not None and other._values is not None:
            return _Column(values=self._values + other._values)
        if self._array is not None and other._array is not None \
                and self._array.dtype.kind == other._array.dtype.kind:
            # Same dtype kind only: np.concatenate would otherwise
            # silently promote (ints to strings/floats) instead of
            # preserving values like the list path does.
            return _Column(array=np.concatenate([self._array, other._array]))
        if self._enc is not None and other._enc is not None \
                and not (self._enc.lossy or other._enc.lossy):
            merged = self._enc.concat(other._enc)
            if not merged.lossy:  # cross-type merge across the domains
                return _Column(enc=merged)
        return _Column(values=self.peek_list() + other.peek_list())

    # -- fingerprints ------------------------------------------------------------
    def hash_token(self) -> bytes:
        """Stable content digest; reuses the interned encoding's hash.

        Deterministic per canonical representation: a typed array hashes
        its raw bytes, everything else hashes (domain, codes). Cached
        until the column escapes; escaped columns re-hash on every call
        because the list may have been mutated in place.
        """
        if self._token is not None:
            return self._token
        if self._array is not None:
            token = digest_parts(str(self._array.dtype).encode(),
                                 np.ascontiguousarray(self._array).tobytes())
        else:
            try:
                enc = self.encoding()
            except EncodingError:
                enc = None
            if enc is not None and not enc.lossy:
                token = enc.hash_token()
            else:
                # Unencodable or lossy ([1, True] and [1, 1] share codes
                # and domain): hash the values themselves so different
                # contents never share a fingerprint.
                token = digest_parts(repr(self.peek_list()).encode())
        if not self._escaped:
            self._token = token
        return token


class Relation:
    """An in-memory relation with named columns.

    Parameters
    ----------
    schema:
        Column names/types; a :class:`Schema` or iterable of names.
    columns:
        Mapping from attribute name to a sequence of values. All columns
        must have equal length. Missing columns raise. numpy arrays of
        scalar dtype are stored as typed arrays (the zero-copy columnar
        fast path); any other sequence is copied into a list exactly as
        before.
    """

    __slots__ = ("schema", "_cols", "_n")

    def __init__(self, schema: Schema | Iterable[Attribute | str],
                 columns: Mapping[str, Sequence[Any]]):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        cols: dict[str, _Column] = {}
        n: int | None = None
        for name in schema.names:
            if name not in columns:
                raise SchemaError(f"missing column {name!r}")
            col = _Column.from_input(columns[name])
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise SchemaError(
                    f"column {name!r} has length {len(col)}, expected {n}")
            cols[name] = col
        self._cols = cols
        self._n = n if n is not None else 0

    @classmethod
    def _from_cols(cls, schema: Schema, cols: dict[str, _Column],
                   n: int) -> "Relation":
        """Internal constructor: adopt ready-made columns without copying."""
        rel = cls.__new__(cls)
        rel.schema = schema
        rel._cols = cols
        rel._n = n
        return rel

    # -- constructors --------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema | Iterable[Attribute | str],
                  rows: Iterable[Sequence[Any]]) -> "Relation":
        """Build a relation from an iterable of row tuples."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        names = schema.names
        cols: dict[str, list] = {n: [] for n in names}
        for row in rows:
            if len(row) != len(names):
                raise SchemaError(
                    f"row of width {len(row)} does not match schema width {len(names)}")
            for name, value in zip(names, row):
                cols[name].append(value)
        return cls(schema, cols)

    @classmethod
    def from_encoded(cls, schema: Schema | Iterable[Attribute | str],
                     columns: Mapping[str, "DictEncoding | np.ndarray | Sequence[Any]"]
                     ) -> "Relation":
        """Adopt pre-encoded / pre-typed columns **without copying**.

        The out-of-core ingestion entry: a :class:`DictEncoding` column is
        installed as-is (codes + domain, no value materialization) and a
        typed 1-D numpy array is adopted directly, so a coordinator that
        streamed and encoded chunks never pays for a row-object image of
        the data. The caller transfers ownership — mutating a passed
        array afterwards corrupts the relation.
        """
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        cols: dict[str, _Column] = {}
        n: int | None = None
        for name in schema.names:
            if name not in columns:
                raise SchemaError(f"missing column {name!r}")
            value = columns[name]
            if isinstance(value, DictEncoding):
                col = _Column(enc=value)
            elif isinstance(value, np.ndarray) and value.ndim == 1 \
                    and value.dtype.kind in "biufUS":
                col = _Column(array=value)
            else:
                col = _Column(values=list(value))
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise SchemaError(
                    f"column {name!r} has length {len(col)}, expected {n}")
            cols[name] = col
        return cls._from_cols(schema, cols, n if n is not None else 0)

    @classmethod
    def from_csv(cls, path: str, schema: Schema,
                 converters: Mapping[str, Callable[[str], Any]] | None = None
                 ) -> "Relation":
        """Load a relation from a CSV file with a header row.

        Measures are converted to ``float`` by default; pass ``converters``
        to override per-column parsing.
        """
        converters = dict(converters or {})
        for attr in schema:
            if attr.kind is AttributeKind.MEASURE and attr.name not in converters:
                converters[attr.name] = float
        with open(path, newline="") as f:
            reader = csv.DictReader(f)
            rows = []
            for rec in reader:
                rows.append(tuple(
                    converters.get(n, lambda s: s)(rec[n]) for n in schema.names))
        return cls.from_rows(schema, rows)

    def to_csv(self, path: str) -> None:
        """Write the relation to a CSV file with a header row."""
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(self.schema.names)
            for row in self.rows():
                writer.writerow(row)

    # -- container protocol ----------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __repr__(self) -> str:
        return f"Relation({list(self.schema.names)}, n={self._n})"

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema and same multiset of rows."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.names != other.schema.names:
            return False
        return sorted(map(repr, self.rows())) == sorted(map(repr, other.rows()))

    # -- accessors ---------------------------------------------------------------
    def column(self, name: str) -> list:
        """The raw column list for ``name`` (live: mutations are seen)."""
        try:
            return self._cols[name].live_list()
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def column_values(self, name: str) -> list:
        """Column values for read-only use — do **not** mutate.

        Unlike :meth:`column`, this does not disable the column's cached
        encoding and hash token, so hot paths stay warm. Mutating the
        returned list leaves those caches silently stale; callers that
        need to write go through :meth:`column`.
        """
        try:
            return self._cols[name].peek_list()
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def encoding(self, name: str) -> DictEncoding:
        """The interned dictionary encoding of column ``name``.

        Raises :class:`~repro.relational.encoding.EncodingError` when the
        column holds unhashable values; callers fall back to row paths.
        """
        try:
            return self._cols[name].encoding()
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def interned_encoding(self, name: str) -> DictEncoding | None:
        """The already-cached encoding of ``name``, or None — never encodes.

        The delta path uses this to key retraction matching on the
        columns the engine has interned anyway (the dimensions), leaving
        cold columns (typically the measure) to a per-candidate check.
        """
        try:
            col = self._cols[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None
        return col._enc if (col._enc is not None
                            and not col._escaped) else None

    def cell_values(self, name: str, indices: Sequence[int] | np.ndarray
                    ) -> list:
        """Values of one column at the given rows, cheapest form first
        (no full-column materialization for array/encoded columns)."""
        try:
            col = self._cols[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None
        idx = np.asarray(indices, dtype=np.int64)
        if col._values is not None:
            return [col._values[i] for i in idx.tolist()]
        if col._array is not None:
            return col._array[idx].tolist()
        enc = col._enc
        return enc.decode(enc.codes[idx])

    def content_token(self, name: str) -> bytes:
        """A stable content digest of one column (no value copies)."""
        try:
            return self._cols[name].hash_token()
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def measure_array(self, name: str) -> np.ndarray:
        """Column ``name`` as a float numpy array."""
        try:
            return self._cols[name].float_array()
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def rows(self) -> Iterator[Row]:
        """Iterate rows as tuples in storage order."""
        cols = [self._cols[n].peek_list() for n in self.schema.names]
        return zip(*cols) if cols else iter(() for _ in range(self._n))

    def row(self, i: int) -> Row:
        return tuple(self._cols[n].peek_list()[i] for n in self.schema.names)

    def key_tuples(self, names: Sequence[str]) -> list[Key]:
        """Rows projected to ``names``, as a list of tuples (with duplicates)."""
        cols = [self._cols[n].peek_list() for n in names]
        if not cols:
            return [() for _ in range(self._n)]
        return list(zip(*cols))

    # -- encoded-key plumbing ------------------------------------------------------
    def _encodings(self, names: Sequence[str]) -> list[DictEncoding] | None:
        """Encodings for ``names``, or None if any column resists encoding."""
        try:
            return [self.encoding(n) for n in names]
        except EncodingError:
            return None

    def group_index(self, names: Sequence[str]) -> GroupIndex:
        """Composite-key grouping over the encoded columns of ``names``."""
        return GroupIndex([self.encoding(n) for n in names], self._n)

    # -- relational operators ------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Relation":
        """Projection (keeps duplicates; shares column storage)."""
        schema = self.schema.project(names)
        return Relation._from_cols(
            schema, {n: self._cols[n].fork() for n in names}, self._n)

    def distinct(self, names: Sequence[str] | None = None) -> "Relation":
        """Duplicate-free projection onto ``names`` (default: all columns)."""
        names = list(names if names is not None else self.schema.names)
        encs = self._encodings(names)
        if encs is None or any(e.lossy for e in encs):
            # Unencodable, or decoding would substitute ==-equal values
            # of another type for the originals: keep the row path.
            seen: dict[Key, None] = {}
            for key in self.key_tuples(names):
                seen.setdefault(key, None)
            return Relation.from_rows(self.schema.project(names), list(seen))
        gidx = GroupIndex(encs, self._n)
        cols = {name: _Column(enc=DictEncoding(
                    gidx.key_codes[:, j].astype(np.int32, copy=False),
                    enc.domain, enc.domain_sorted, enc._objects))
                for j, (name, enc) in enumerate(zip(names, encs))}
        return Relation._from_cols(self.schema.project(names), cols,
                                   gidx.n_groups)

    def filter(self, predicate: Callable[[dict], bool]) -> "Relation":
        """Rows for which ``predicate(row_dict)`` is true."""
        names = self.schema.names
        keep = [i for i, row in enumerate(self.rows())
                if predicate(dict(zip(names, row)))]
        return self._take(keep)

    def filter_equals(self, conditions: Mapping[str, Any]) -> "Relation":
        """Rows matching every ``attr == value`` condition (fast path)."""
        if not conditions:
            return self
        encs = self._encodings(list(conditions))
        if encs is None:
            keep = None
            for name, value in conditions.items():
                col = self._cols[name].peek_list()
                matches = {i for i, v in enumerate(col) if v == value}
                keep = matches if keep is None else keep & matches
            return self._take(sorted(keep or ()))
        mask: np.ndarray | None = None
        for enc, value in zip(encs, conditions.values()):
            code = enc.code_of(value)
            if code is None:
                return self._take(np.empty(0, dtype=np.int64))
            hit = enc.codes == code
            mask = hit if mask is None else mask & hit
        return self._take(np.flatnonzero(mask))

    def _take(self, indices: Sequence[int] | np.ndarray) -> "Relation":
        if not isinstance(indices, np.ndarray):
            indices = np.asarray(indices, dtype=np.int64)
        index_list: list | None = None
        cols: dict[str, _Column] = {}
        for name, col in self._cols.items():
            if index_list is None and col.takes_list_path():
                index_list = indices.tolist()
            cols[name] = col.take(indices, index_list)
        return Relation._from_cols(self.schema, cols, int(len(indices)))

    def sort(self, names: Sequence[str] | None = None) -> "Relation":
        """Rows sorted lexicographically by ``names`` (default: all)."""
        names = list(names if names is not None else self.schema.names)
        encs = self._encodings(names)
        if encs is not None and all(e.domain_sorted for e in encs):
            if not names:
                return self._take(np.arange(self._n, dtype=np.int64))
            order = np.lexsort([e.codes for e in reversed(encs)])
            return self._take(order)
        order = sorted(range(self._n),
                       key=lambda i: tuple(self._cols[n].peek_list()[i]
                                           for n in names))
        return self._take(order)

    def extend(self, name: str, values: Sequence[Any],
               kind: AttributeKind = AttributeKind.OTHER) -> "Relation":
        """Relation with one additional column appended."""
        if len(values) != self._n:
            raise SchemaError(
                f"new column {name!r} has length {len(values)}, expected {self._n}")
        schema = Schema(list(self.schema) + [Attribute(name, kind)])
        cols = {n: c.fork() for n, c in self._cols.items()}
        cols[name] = _Column.from_input(values)
        return Relation._from_cols(schema, cols, self._n)

    def concat(self, other: "Relation") -> "Relation":
        """Bag union of two relations with identical schemas."""
        if self.schema.names != other.schema.names:
            raise SchemaError("concat requires identical schemas")
        cols = {n: self._cols[n].concat(other._cols[n])
                for n in self.schema.names}
        return Relation._from_cols(self.schema, cols, self._n + other._n)

    def with_rows_appended(self, other: "Relation") -> "Relation":
        """Bag union optimized for small appends (delta ingestion).

        Same contract as :meth:`concat`, but interned encodings are
        extended in place of a re-encode: old codes survive verbatim
        under a domain whose old entries keep their positions, so every
        structure indexed by those codes (cube leaves, cached views)
        stays valid after the append.
        """
        if self.schema.names != other.schema.names:
            raise SchemaError("append requires identical schemas")
        cols = {n: self._cols[n].appended(other._cols[n])
                for n in self.schema.names}
        return Relation._from_cols(self.schema, cols, self._n + other._n)

    def without_rows(self, indices: Sequence[int] | np.ndarray) -> "Relation":
        """Relation with the given row indices removed (delta retraction)."""
        mask = np.ones(self._n, dtype=bool)
        mask[np.asarray(indices, dtype=np.int64)] = False
        return self._take(np.flatnonzero(mask))

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural (equi-)join on the shared attribute names.

        A vectorized sort-merge join over the encoded composite key: the
        right side's codes are aligned into the left side's domains, both
        sides collapse their key to one ``int64`` per row, and matching
        row-index pairs come out of ``searchsorted`` + range expansion.
        Output schema is ``self ⋈ other`` with ``other``'s non-shared
        attributes appended; falls back to the row-at-a-time hash join
        when a key column cannot be encoded.
        """
        shared = list(self.schema.intersection(other.schema))
        other_only = [n for n in other.schema.names if n not in shared]
        out_schema = Schema(
            list(self.schema)
            + [other.schema[n] for n in other_only])
        if not shared:
            # Cartesian product.
            l_idx = np.repeat(np.arange(self._n, dtype=np.int64), other._n)
            r_idx = np.tile(np.arange(other._n, dtype=np.int64), self._n)
            return self._assemble_join(other, other_only, out_schema,
                                       l_idx, r_idx)
        left_encs = self._encodings(shared)
        right_encs = other._encodings(shared)
        if left_encs is None or right_encs is None:
            return self._natural_join_rows(other, shared, other_only,
                                           out_schema)
        indices = merge_join_indices(left_encs, right_encs)
        if indices is None:  # radix overflow
            return self._natural_join_rows(other, shared, other_only,
                                           out_schema)
        l_idx, r_idx = indices
        return self._assemble_join(other, other_only, out_schema,
                                   l_idx, r_idx)

    def _assemble_join(self, other: "Relation", other_only: Sequence[str],
                       out_schema: Schema, l_idx: np.ndarray,
                       r_idx: np.ndarray) -> "Relation":
        cols: dict[str, _Column] = {}
        l_list: list | None = None
        r_list: list | None = None
        for name in self.schema.names:
            col = self._cols[name]
            if l_list is None and col.takes_list_path():
                l_list = l_idx.tolist()
            cols[name] = col.take(l_idx, l_list)
        for name in other_only:
            col = other._cols[name]
            if r_list is None and col.takes_list_path():
                r_list = r_idx.tolist()
            cols[name] = col.take(r_idx, r_list)
        return Relation._from_cols(out_schema, cols, int(len(l_idx)))

    def _natural_join_rows(self, other: "Relation", shared: Sequence[str],
                           other_only: Sequence[str],
                           out_schema: Schema) -> "Relation":
        """The pre-columnar hash join (fallback for unencodable keys)."""
        table: dict[Key, list[tuple]] = {}
        other_keys = other.key_tuples(shared)
        other_rest = other.key_tuples(other_only)
        for key, rest in zip(other_keys, other_rest):
            table.setdefault(key, []).append(rest)
        rows = []
        self_keys = self.key_tuples(shared)
        for left, key in zip(self.rows(), self_keys):
            for rest in table.get(key, ()):
                rows.append(tuple(left) + rest)
        return Relation.from_rows(out_schema, rows)

    # -- grouping -------------------------------------------------------------------
    def group_rows(self, names: Sequence[str]) -> dict[Key, list[int]]:
        """Map each distinct key of ``names`` to the row indices in that group."""
        encs = self._encodings(names)
        if encs is None:
            groups: dict[Key, list[int]] = {}
            for i, key in enumerate(self.key_tuples(names)):
                groups.setdefault(key, []).append(i)
            return groups
        gidx = GroupIndex(encs, self._n)
        return {key: idx.tolist()
                for key, idx in zip(gidx.keys(), gidx.group_indices())}

    def group_measure(self, names: Sequence[str], measure: str
                      ) -> dict[Key, np.ndarray]:
        """Map each group key to the numpy array of its measure values."""
        col = self.measure_array(measure)
        encs = self._encodings(names)
        if encs is None:
            return {key: col[idx]
                    for key, idx in self.group_rows(names).items()}
        gidx = GroupIndex(encs, self._n)
        return {key: col[idx]
                for key, idx in zip(gidx.keys(), gidx.group_indices())}

    def group_stats(self, names: Sequence[str], measure: str
                    ) -> tuple[list[Key], GroupStats]:
        """Per-group sufficient statistics in one vectorized pass.

        Returns the distinct keys (lexicographic order) and the aligned
        :class:`~repro.relational.aggregates.GroupStats` arrays — the
        columnar equivalent of ``{key: AggState.of(values)}``.
        """
        gidx = self.group_index(names)
        stats = GroupStats.from_groups(gidx.gids, gidx.n_groups,
                                       self.measure_array(measure))
        return gidx.keys(), stats
