"""Row-at-a-time reference implementations of the hot relational kernels.

This module freezes the pre-columnar semantics of the engine: every
function here is the per-row Python-loop implementation that
:class:`~repro.relational.relation.Relation`,
:class:`~repro.relational.cube.Cube` and
:class:`~repro.relational.countmap.CountMap` used before the
dictionary-encoded core landed. They exist for two reasons:

* **ground truth** — the property tests assert that the vectorized
  kernels produce exactly the results these loops produce on random
  inputs;
* **benchmarking** — ``benchmarks/bench_fig17_columnar.py`` measures the
  columnar speedup against these loops on identical data.

Nothing in the engine itself calls into this module; do not "optimize"
it.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from .aggregates import AggState
from .countmap import CountMap
from .relation import Key, Relation
from .schema import Schema


def group_rows(relation: Relation, names: Sequence[str]
               ) -> dict[Key, list[int]]:
    """Per-row loop building ``{key: [row indices]}``."""
    groups: dict[Key, list[int]] = {}
    for i, key in enumerate(relation.key_tuples(list(names))):
        groups.setdefault(key, []).append(i)
    return groups


def group_measure(relation: Relation, names: Sequence[str], measure: str
                  ) -> dict[Key, np.ndarray]:
    col = relation.measure_array(measure)
    return {key: col[idx]
            for key, idx in group_rows(relation, names).items()}


def group_states(relation: Relation, names: Sequence[str], measure: str
                 ) -> dict[Key, AggState]:
    """One :class:`AggState` object per group, the old leaf-cube pass."""
    col = relation.measure_array(measure)
    return {key: AggState.of(col[idx])
            for key, idx in group_rows(relation, names).items()}


def leaf_states(dataset) -> dict[Key, AggState]:
    """The pre-columnar ``Cube.__init__`` body."""
    return group_states(dataset.relation, list(dataset.leaf_group_by()),
                        dataset.measure)


def rollup_view(leaf: Mapping[Key, AggState], leaf_attrs: Sequence[str],
                group_attrs: Sequence[str],
                filters: Mapping[str, Any] | None = None
                ) -> dict[Key, AggState]:
    """The pre-columnar ``Cube.view`` loop over leaf states."""
    leaf_attrs = tuple(leaf_attrs)
    positions = [leaf_attrs.index(a) for a in group_attrs]
    checks = [(leaf_attrs.index(a), v) for a, v in (filters or {}).items()]
    out: dict[Key, AggState] = {}
    for leaf_key, state in leaf.items():
        if any(leaf_key[i] != v for i, v in checks):
            continue
        key = tuple(leaf_key[p] for p in positions)
        prev = out.get(key)
        out[key] = state if prev is None else prev.merge(state)
    return out


def filter_equals(relation: Relation, conditions: Mapping[str, Any]
                  ) -> Relation:
    """Per-row equality scan."""
    if not conditions:
        return relation
    keep = None
    for name, value in conditions.items():
        col = relation.key_tuples([name])
        matches = {i for i, (v,) in enumerate(col) if v == value}
        keep = matches if keep is None else keep & matches
    rows = [relation.row(i) for i in sorted(keep or ())]
    return Relation.from_rows(relation.schema, rows)


def distinct(relation: Relation, names: Sequence[str] | None = None
             ) -> Relation:
    names = list(names if names is not None else relation.schema.names)
    seen: dict[Key, None] = {}
    for key in relation.key_tuples(names):
        seen.setdefault(key, None)
    return Relation.from_rows(relation.schema.project(names), list(seen))


def sort(relation: Relation, names: Sequence[str] | None = None) -> Relation:
    names = list(names if names is not None else relation.schema.names)
    keys = relation.key_tuples(names)
    order = sorted(range(len(relation)), key=keys.__getitem__)
    return Relation.from_rows(relation.schema,
                              [relation.row(i) for i in order])


def natural_join(left: Relation, right: Relation) -> Relation:
    """The pre-columnar tuple-building hash join."""
    shared = list(left.schema.intersection(right.schema))
    other_only = [n for n in right.schema.names if n not in shared]
    out_schema = Schema(list(left.schema)
                        + [right.schema[n] for n in other_only])
    if not shared:
        rows = []
        right_rows = [tuple(r) for r in right.project(other_only).rows()] \
            if other_only else [()] * len(right)
        for lrow in left.rows():
            for rrow in right_rows:
                rows.append(lrow + rrow)
        return Relation.from_rows(out_schema, rows)
    table: dict[Key, list[tuple]] = {}
    for key, rest in zip(right.key_tuples(shared),
                         right.key_tuples(other_only)):
        table.setdefault(key, []).append(rest)
    rows = []
    for lrow, key in zip(left.rows(), left.key_tuples(shared)):
        for rest in table.get(key, ()):
            rows.append(tuple(lrow) + rest)
    return Relation.from_rows(out_schema, rows)


def countmap_join(left: CountMap, right: CountMap) -> CountMap:
    """The pre-columnar join-multiply dict loops."""
    shared = tuple(a for a in left.schema if a in right.schema)
    out_schema = left.schema + tuple(
        a for a in right.schema if a not in shared)
    out = CountMap(out_schema)
    if not shared:
        for lk, lc in left.data.items():
            for rk, rc in right.data.items():
                out.add(lk + rk, lc * rc)
        return out
    left_pos = [left.schema.index(a) for a in shared]
    right_pos = [right.schema.index(a) for a in shared]
    right_rest = [i for i in range(len(right.schema)) if i not in right_pos]
    index: dict[Key, list[tuple[Key, float]]] = {}
    for rk, rc in right.data.items():
        jk = tuple(rk[p] for p in right_pos)
        rest = tuple(rk[p] for p in right_rest)
        index.setdefault(jk, []).append((rest, rc))
    for lk, lc in left.data.items():
        jk = tuple(lk[p] for p in left_pos)
        for rest, rc in index.get(jk, ()):
            out.add(lk + rest, lc * rc)
    return out


def countmap_marginalize(cm: CountMap, attribute: str) -> CountMap:
    """The pre-columnar marginalize dict loop."""
    drop = cm.schema.index(attribute)
    out_schema = tuple(a for i, a in enumerate(cm.schema) if i != drop)
    out = CountMap(out_schema)
    for key, count in cm.data.items():
        out.add(key[:drop] + key[drop + 1:], count)
    return out
