"""Dimension hierarchies (§3.1) and their functional-dependency structure.

A dimension's hierarchy ``H = [A1, ..., Ak]`` is an ordered attribute list
where every more specific attribute functionally determines every less
specific one (``An → Am`` for ``m < n``): a village determines its district,
a day determines its month. :class:`Hierarchy` records the order;
:class:`Dimensions` holds all hierarchies of a dataset and answers
navigation queries (next drill-down attribute, ancestors, prefixes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from .encoding import EncodingError
from .relation import Relation


class HierarchyError(ValueError):
    """Raised for malformed hierarchies or FD violations."""


@dataclass(frozen=True)
class Hierarchy:
    """An ordered list of attributes, least to most specific.

    ``Hierarchy("geo", ["district", "village"])`` means
    ``village → district`` (each village belongs to exactly one district).
    """

    name: str
    attributes: tuple[str, ...]

    def __init__(self, name: str, attributes: Sequence[str]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(attributes))
        if not self.attributes:
            raise HierarchyError(f"hierarchy {name!r} has no attributes")
        if len(set(self.attributes)) != len(self.attributes):
            raise HierarchyError(
                f"hierarchy {name!r} repeats attributes: {self.attributes}")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    @property
    def root(self) -> str:
        """Least specific attribute."""
        return self.attributes[0]

    @property
    def leaf(self) -> str:
        """Most specific attribute."""
        return self.attributes[-1]

    def level(self, attribute: str) -> int:
        """0-based depth of ``attribute`` (0 = least specific)."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise HierarchyError(
                f"{attribute!r} is not in hierarchy {self.name!r}") from None

    def prefix(self, depth: int) -> tuple[str, ...]:
        """The ``depth`` least-specific attributes (depth may be 0)."""
        if not 0 <= depth <= len(self.attributes):
            raise HierarchyError(
                f"depth {depth} out of range for hierarchy {self.name!r}")
        return self.attributes[:depth]

    def next_attribute(self, depth: int) -> str | None:
        """Attribute revealed by drilling from ``depth`` to ``depth+1``."""
        if depth < len(self.attributes):
            return self.attributes[depth]
        return None

    def more_specific(self, a: str, b: str) -> bool:
        """True iff ``a`` is strictly more specific than ``b``."""
        return self.level(a) > self.level(b)

    def validate_fds(self, relation: Relation) -> None:
        """Check ``A_{i+1} → A_i`` holds in ``relation`` for all levels.

        Raises :class:`HierarchyError` on the first violated dependency.
        The check runs over the encoded code arrays — the FD holds iff
        the number of distinct (child, parent) pairs equals the number of
        distinct child values; the per-row loop only runs to reconstruct
        the exact error message once a violation is detected.
        """
        for parent, child in zip(self.attributes, self.attributes[1:]):
            try:
                pe = relation.encoding(parent)
                ce = relation.encoding(child)
                if not len(ce.codes):
                    continue  # empty relation: nothing to violate
                pairs = ce.codes.astype(np.int64) * pe.cardinality + pe.codes
                # Compare against the child values actually present: a
                # derived relation may share a domain wider than its rows.
                if len(np.unique(pairs)) == len(np.unique(ce.codes)):
                    continue
            except EncodingError:
                pass  # unencodable column: validate row by row
            seen: dict = {}
            for p, c in zip(relation.column_values(parent),
                            relation.column_values(child)):
                if c in seen and seen[c] != p:
                    raise HierarchyError(
                        f"FD {child} → {parent} violated: {c!r} maps to both "
                        f"{seen[c]!r} and {p!r}")
                seen[c] = p


class Dimensions:
    """All hierarchies of a dataset, with navigation helpers."""

    def __init__(self, hierarchies: Iterable[Hierarchy]):
        self._hierarchies: dict[str, Hierarchy] = {}
        owner: dict[str, str] = {}
        for h in hierarchies:
            if h.name in self._hierarchies:
                raise HierarchyError(f"duplicate hierarchy name {h.name!r}")
            for a in h.attributes:
                if a in owner:
                    raise HierarchyError(
                        f"attribute {a!r} appears in hierarchies "
                        f"{owner[a]!r} and {h.name!r}")
                owner[a] = h.name
            self._hierarchies[h.name] = h
        self._owner = owner

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Sequence[str]]) -> "Dimensions":
        """``Dimensions({"geo": ["district", "village"], "time": ["year"]})``."""
        return cls(Hierarchy(name, attrs) for name, attrs in mapping.items())

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._hierarchies)

    def __iter__(self) -> Iterator[Hierarchy]:
        return iter(self._hierarchies.values())

    def __contains__(self, name: str) -> bool:
        return name in self._hierarchies

    def __getitem__(self, name: str) -> Hierarchy:
        try:
            return self._hierarchies[name]
        except KeyError:
            raise HierarchyError(f"no hierarchy named {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._hierarchies)

    def attributes(self) -> tuple[str, ...]:
        """Every dimension attribute, grouped by hierarchy in order."""
        out: list[str] = []
        for h in self:
            out.extend(h.attributes)
        return tuple(out)

    def hierarchy_of(self, attribute: str) -> Hierarchy:
        """The hierarchy that owns ``attribute``."""
        try:
            return self._hierarchies[self._owner[attribute]]
        except KeyError:
            raise HierarchyError(
                f"attribute {attribute!r} belongs to no hierarchy") from None

    def validate(self, relation: Relation) -> None:
        """Validate every hierarchy's FDs against ``relation``."""
        for h in self:
            h.validate_fds(relation)


@dataclass
class DrillState:
    """How far each hierarchy has been drilled into.

    ``depths[name]`` counts revealed attributes of hierarchy ``name``.
    The group-by attribute set of the current view is the union of all
    hierarchy prefixes.
    """

    dimensions: Dimensions
    depths: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for h in self.dimensions:
            self.depths.setdefault(h.name, 0)
        for name, depth in self.depths.items():
            if not 0 <= depth <= len(self.dimensions[name]):
                raise HierarchyError(
                    f"depth {depth} out of range for hierarchy {name!r}")

    @classmethod
    def from_groupby(cls, dimensions: Dimensions,
                     group_by: Sequence[str]) -> "DrillState":
        """Infer drill depths from a group-by attribute list.

        The attributes of each hierarchy that appear in ``group_by`` must
        form a prefix of that hierarchy (you cannot group by village without
        district in a strict drill-down workflow).
        """
        depths: dict[str, int] = {h.name: 0 for h in dimensions}
        for a in group_by:
            h = dimensions.hierarchy_of(a)
            depths[h.name] = max(depths[h.name], h.level(a) + 1)
        state = cls(dimensions, depths)
        grouped = set(group_by)
        for h in dimensions:
            for a in h.prefix(depths[h.name]):
                if a not in grouped:
                    raise HierarchyError(
                        f"group-by {sorted(grouped)} skips {a!r}; drill-down "
                        f"prefixes must be contiguous")
        return state

    def group_by(self) -> tuple[str, ...]:
        """Current group-by attributes (hierarchy prefixes, in order)."""
        out: list[str] = []
        for h in self.dimensions:
            out.extend(h.prefix(self.depths[h.name]))
        return tuple(out)

    def candidates(self) -> list[tuple[Hierarchy, str]]:
        """Hierarchies that can still drill down, with their next attribute."""
        out = []
        for h in self.dimensions:
            nxt = h.next_attribute(self.depths[h.name])
            if nxt is not None:
                out.append((h, nxt))
        return out

    def drill(self, hierarchy: str) -> "DrillState":
        """A new state one level deeper along ``hierarchy``."""
        h = self.dimensions[hierarchy]
        depth = self.depths[h.name]
        if h.next_attribute(depth) is None:
            raise HierarchyError(f"hierarchy {hierarchy!r} is fully drilled")
        depths = dict(self.depths)
        depths[h.name] = depth + 1
        return DrillState(self.dimensions, depths)
