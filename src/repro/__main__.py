"""``python -m repro`` — experiment runner entry point."""

import sys

from .cli import main

sys.exit(main())
