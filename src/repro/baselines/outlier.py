"""Outlier baseline: model deviation without the complaint (§5.2.3).

Uses the *same* multi-level model and features as Reptile but ranks groups
purely by how far their observed statistics deviate from the model's
expectation, ignoring the complaint's direction. The ablation of Figure 12
shows why this caps out: with two true errors and one false positive
imputed in opposite directions, a direction-blind ranker cannot tell them
apart (accuracy bounded by ~66%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.repair import ModelRepairer
from ..relational.cube import GroupView


@dataclass
class OutlierBaseline:
    """|observed − expected| ranking over the repair model's predictions."""

    repairer: ModelRepairer = field(default_factory=ModelRepairer)
    name: str = "outlier"

    def rank(self, drill_view: GroupView, parallel: GroupView,
             cluster_attrs: Sequence[str], aggregate: str) -> list[tuple]:
        """Group keys ranked by normalized deviation, largest first."""
        prediction = self.repairer.predict(parallel, cluster_attrs, aggregate)
        stats = self.repairer.statistics_for(aggregate)
        spreads = {}
        for stat in stats:
            values = [s.statistic(stat) for s in parallel.groups.values()]
            centered = sorted(values)
            mid = centered[len(centered) // 2] if centered else 0.0
            mad = sorted(abs(v - mid) for v in values)[len(values) // 2] \
                if values else 1.0
            spreads[stat] = mad if mad > 1e-12 else 1.0
        scored = []
        for key, state in drill_view.groups.items():
            expected = prediction.expected(key)
            deviation = sum(
                abs(state.statistic(stat) - expected.get(stat,
                                                         state.statistic(stat)))
                / spreads[stat]
                for stat in stats)
            scored.append((-deviation, key))
        scored.sort(key=lambda pair: pair[0])
        return [key for _, key in scored]

    def best(self, drill_view: GroupView, parallel: GroupView,
             cluster_attrs: Sequence[str], aggregate: str) -> tuple:
        return self.rank(drill_view, parallel, cluster_attrs, aggregate)[0]
