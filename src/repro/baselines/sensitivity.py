"""Sensitivity baseline: deletion-based interventions (Scorpion [57]).

Ranks each drill-down group by how much *deleting all of its rows* would
resolve the complaint: ``score(t) = f_comp(G(V' ∖ {t}))``. This is the
intervention model of the complaint-based explanation literature
[1, 46, 57]; it cannot express repairs that add records or shift values,
which is exactly the failure mode §5.2.2 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.complaint import Complaint
from ..relational.cube import GroupView
from ..relational.aggregates import merge_states


@dataclass
class SensitivityBaseline:
    """Deletion-intervention ranking."""

    name: str = "sensitivity"

    def rank(self, drill_view: GroupView, complaint: Complaint) -> list[tuple]:
        """Group keys ranked by the complaint after deleting the group."""
        parent = merge_states(drill_view.groups.values())
        scored = []
        for key, state in drill_view.groups.items():
            without = parent.remove(state)
            scored.append((complaint.penalty_of_state(without), key))
        scored.sort(key=lambda pair: pair[0])
        return [key for _, key in scored]

    def best(self, drill_view: GroupView, complaint: Complaint) -> tuple:
        return self.rank(drill_view, complaint)[0]
