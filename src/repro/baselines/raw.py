"""Raw baseline: record-level Winsorization repair (§5.2.1, [29]).

A bottom-up approach that never looks at group-level expectations: within
each drill-down group it clips every record's measure to
``[mean − std, mean + std]`` (computed within the group), recomputes the
group's statistics from the clipped records, and ranks groups by how much
that record-level repair resolves the complaint. Because clipping cannot
add or remove records, it is blind to missing/duplicate-row errors —
the behaviour Figure 11 shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.complaint import Complaint
from ..relational.aggregates import AggState, merge_states
from ..relational.relation import Relation


@dataclass
class RawBaseline:
    """Winsorization-based record-level repair ranking."""

    name: str = "raw"

    def rank(self, relation: Relation, group_attrs: Sequence[str],
             measure: str, complaint: Complaint,
             provenance: Mapping | None = None) -> list[tuple]:
        """Group keys ranked by the complaint after clipping the group."""
        rel = relation.filter_equals(dict(provenance or {}))
        grouped = rel.group_measure(list(group_attrs), measure)
        states = {key: AggState.of(values) for key, values in grouped.items()}
        parent = merge_states(states.values())
        scored = []
        for key, values in grouped.items():
            clipped = self._winsorize(values)
            repaired = AggState.of(clipped)
            new_parent = parent.replace(states[key], repaired)
            scored.append((complaint.penalty_of_state(new_parent), key))
        scored.sort(key=lambda pair: pair[0])
        return [key for _, key in scored]

    def best(self, relation: Relation, group_attrs: Sequence[str],
             measure: str, complaint: Complaint,
             provenance: Mapping | None = None) -> tuple:
        return self.rank(relation, group_attrs, measure, complaint,
                         provenance)[0]

    @staticmethod
    def _winsorize(values: np.ndarray) -> np.ndarray:
        """Clip each value to [mean − std, mean + std] within the group."""
        values = np.asarray(values, dtype=float)
        if values.size <= 1:
            return values
        mean = values.mean()
        std = values.std(ddof=1)
        return np.clip(values, mean - std, mean + std)
