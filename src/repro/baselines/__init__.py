"""Comparison approaches from §5.2: Sensitivity, Support, Outlier, Raw.

Each baseline shares Reptile's interface shape — given a drill-down view
(and, where needed, a complaint, model predictions, or raw records) it
returns group keys ranked best-explanation-first — so the accuracy
benchmarks swap approaches freely.
"""

from .outlier import OutlierBaseline
from .raw import RawBaseline
from .sensitivity import SensitivityBaseline
from .support import SupportBaseline

__all__ = ["OutlierBaseline", "RawBaseline", "SensitivityBaseline",
           "SupportBaseline"]
