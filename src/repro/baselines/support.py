"""Support baseline: density-based ranking (Smart Drill-Down [24] style).

Returns groups by row count (support) descending — the pruning criterion
of predicate-explanation systems [1] and the selection rule of
count-oriented drill-down recommenders. By construction it only "works"
when the error actually is the biggest group (duplication under a
"COUNT is high" complaint, §5.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.cube import GroupView


@dataclass
class SupportBaseline:
    """Largest-count-first ranking; ignores the complaint entirely."""

    name: str = "support"

    def rank(self, drill_view: GroupView, complaint=None) -> list[tuple]:
        scored = sorted(drill_view.groups.items(),
                        key=lambda kv: -kv[1].count)
        return [key for key, _ in scored]

    def best(self, drill_view: GroupView, complaint=None) -> tuple:
        return self.rank(drill_view, complaint)[0]
