"""Deterministic fault-point registry.

The recovery machinery added for production serving — the supervised
shard worker pool, kernel-backend quarantine, the atomic ingest commit,
degraded-mode serving — is exercised through *named fault points*: call
sites sprinkled through the stack in the style of the serving layer's
trace hooks (``repro.serving.concurrency.trace``), each a single cheap
call in production::

    fault_point("pool.submit", task=3)

Registered points (the chaos suite drives every one of them):

========================  =====================================================
``pool.submit``           coordinator submits one shard task to the pool
``pool.result``           coordinator collects one shard task result
``shm.attach``            a worker attaches a shared-memory/memmap block
``worker.build``          a worker starts one shard build (in-process)
``kernel.dispatch``       a fused kernel backend is about to run
``cache.fill``            a cache miss is about to compute its value
``ingest.commit``         an ingest is about to commit relation + version
``serving.rebuild``       a degraded dataset starts a recovery rebuild
========================  =====================================================

Faults are *specs* attached to a point. Each spec has a kind:

* ``error[:ExcName]`` — raise (default :class:`FaultInjected`; any
  builtin exception name works, e.g. ``error:OSError``);
* ``crash`` — ``os._exit(66)``: an abrupt worker death, the thing
  ``BrokenProcessPool`` recovery exists for;
* ``delay:seconds`` — sleep, for deadline/timeout paths.

and fires deterministically: on chosen 1-based invocation numbers of its
point (``@2`` or ``@1,3``), on every invocation (no ``@``), or at most
once across *all* processes (``@once`` — a temp-file token shared by
forked workers, so "crash the first build, then recover" is expressible
even though each worker counts its own invocations).

Two sources feed the registry: :func:`install`/:func:`inject` (tests;
forked pool workers inherit programmatic specs installed before the
fork) and the ``REPTILE_FAULTS`` environment variable, re-read lazily in
every process so freshly spawned workers honour it too. Spec strings are
``;``-separated entries::

    REPTILE_FAULTS="worker.build=crash@once;cache.fill=error@2"

Nothing here imports numpy or any repro module: the registry must be
importable from the lowest layers (shard pool, kernel dispatch) without
creating cycles.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "FaultInjected", "FaultSpec", "clear_faults", "fault_point", "faults",
    "fired_counts", "inject", "install", "parse_spec", "reset_counters",
]

#: Environment variable holding a fault spec string.
ENV_VAR = "REPTILE_FAULTS"

#: Exit code used by ``crash`` faults — distinctive in worker post-mortems.
CRASH_EXIT_CODE = 66


class FaultInjected(RuntimeError):
    """The default exception raised by an ``error`` fault.

    Picklable (plain message argument), so a worker-process fault
    travels back to the coordinator through the executor intact.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: where, what, and on which invocations."""

    point: str
    kind: str = "error"              # "error" | "crash" | "delay"
    arg: str | None = None           # exception name / delay seconds
    hits: tuple[int, ...] | None = None  # 1-based invocations; None = all
    once: bool = False               # at most one fire across processes
    token: str | None = field(default=None, compare=False)

    def token_path(self) -> str | None:
        if not self.once:
            return None
        return os.path.join(tempfile.gettempdir(),
                            f"reptile-fault-{self.token}.tok")


_lock = threading.Lock()
_specs: dict[str, list[FaultSpec]] = {}     # programmatic installs
_env_specs: dict[str, list[FaultSpec]] = {}  # parsed from ENV_VAR
_env_state: tuple[int, str] | None = None    # (pid, raw value) last parsed
_counts: dict[str, int] = {}                 # per-process invocation counts
_fired: dict[str, int] = {}                  # per-process fire counts
_token_counter = 0


def _exception_for(arg: str | None) -> BaseException:
    if arg:
        exc_type = getattr(__builtins__, arg, None) if not isinstance(
            __builtins__, dict) else __builtins__.get(arg)
        if isinstance(exc_type, type) and issubclass(exc_type, BaseException):
            return exc_type(f"injected fault ({arg})")
    return FaultInjected(f"injected fault{f' ({arg})' if arg else ''}")


def _new_token(seed: str) -> str:
    """A token shared by every process forked after this call."""
    global _token_counter
    _token_counter += 1
    raw = f"{os.getpid()}-{_token_counter}-{seed}"
    return hashlib.sha1(raw.encode()).hexdigest()[:16]


def parse_spec(text: str) -> list[FaultSpec]:
    """Parse a ``point=kind[:arg][@hits]`` spec string into specs.

    Entries are ``;``-separated; ``hits`` is ``once`` or a ``,``-list of
    1-based invocation numbers. Raises ``ValueError`` on bad grammar.
    """
    specs: list[FaultSpec] = []
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        point, sep, rest = entry.partition("=")
        point = point.strip()
        if not sep or not point:
            raise ValueError(f"bad fault entry {entry!r} "
                             f"(want point=kind[:arg][@hits])")
        rest, _, hits_text = rest.partition("@")
        kind, _, arg = rest.partition(":")
        kind = (kind or "error").strip()
        if kind not in ("error", "crash", "delay"):
            raise ValueError(f"unknown fault kind {kind!r} in {entry!r}")
        arg = arg.strip() or None
        if kind == "delay":
            try:
                float(arg or "")
            except ValueError:
                raise ValueError(
                    f"delay fault needs numeric seconds: {entry!r}") from None
        hits: tuple[int, ...] | None = None
        once = False
        hits_text = hits_text.strip()
        if hits_text == "once":
            once = True
        elif hits_text:
            try:
                hits = tuple(sorted(int(h) for h in hits_text.split(",")))
            except ValueError:
                raise ValueError(f"bad hit list {hits_text!r} in "
                                 f"{entry!r}") from None
            if any(h < 1 for h in hits):
                raise ValueError(f"hits are 1-based: {entry!r}")
        token = None
        if once:
            # Env-parsed tokens must agree across independently spawned
            # processes, so they derive from the entry text itself (plus
            # an optional nonce for run isolation), not from a pid.
            nonce = os.environ.get("REPTILE_FAULTS_NONCE", "")
            token = hashlib.sha1(f"{entry}|{nonce}".encode()).hexdigest()[:16]
        specs.append(FaultSpec(point, kind, arg, hits, once, token))
    return specs


def install(text: str) -> list[FaultSpec]:
    """Parse and activate a spec string (programmatic registry)."""
    specs = parse_spec(text)
    with _lock:
        for spec in specs:
            _specs.setdefault(spec.point, []).append(spec)
    return specs


def inject(point: str, kind: str = "error", arg: str | None = None,
           hits: tuple[int, ...] | None = None,
           once: bool = False) -> FaultSpec:
    """Activate one fault programmatically; returns the installed spec."""
    if kind not in ("error", "crash", "delay"):
        raise ValueError(f"unknown fault kind {kind!r}")
    token = _new_token(point) if once else None
    spec = FaultSpec(point, kind, arg, tuple(sorted(hits)) if hits else None,
                     once, token)
    with _lock:
        _specs.setdefault(point, []).append(spec)
    return spec


def _remove_tokens(specs: dict[str, list[FaultSpec]]) -> None:
    for entries in specs.values():
        for spec in entries:
            path = spec.token_path()
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass


def clear_faults() -> None:
    """Deactivate every fault and reset counters (token files removed).

    The environment registry is neutralized for the *current* value of
    ``REPTILE_FAULTS`` too: a still-set variable is not re-parsed until
    it changes (or the process changes), so tests that cleared faults
    stay fault-free.
    """
    global _env_state
    with _lock:
        _remove_tokens(_specs)
        _remove_tokens(_env_specs)
        _specs.clear()
        _env_specs.clear()
        _env_state = (os.getpid(), os.environ.get(ENV_VAR, ""))
        _counts.clear()
        _fired.clear()


def reset_counters() -> None:
    """Zero invocation/fire counters without touching installed specs."""
    with _lock:
        _counts.clear()
        _fired.clear()


def fired_counts() -> dict[str, int]:
    """Per-point count of faults actually fired in this process."""
    with _lock:
        return dict(_fired)


@contextmanager
def faults(text: str):
    """Context manager: install a spec string, restore clean state after.

    Restores an *empty* registry on exit (the chaos-suite convention:
    one schedule per context), removing any token files the specs
    created.
    """
    install(text)
    try:
        yield
    finally:
        clear_faults()


def _refresh_env_specs() -> None:
    """Re-parse ``REPTILE_FAULTS`` when the process or the value changed.

    Lazily called from :func:`fault_point`, so a freshly forked/spawned
    worker picks the variable up without any coordination — and a parent
    that already parsed it does not double-register in the child (the
    recorded ``(pid, value)`` state is inherited by fork and only a
    *change* triggers a re-parse, which replaces the env registry
    wholesale).
    """
    global _env_state
    raw = os.environ.get(ENV_VAR, "")
    state = (os.getpid(), raw)
    if _env_state == state:
        return
    with _lock:
        if _env_state == state:
            return
        _env_specs.clear()
        if raw:
            try:
                parsed = parse_spec(raw)
            except ValueError:
                parsed = []  # a bad env spec must never break production
            for spec in parsed:
                _env_specs.setdefault(spec.point, []).append(spec)
        _env_state = state


def fault_point(point: str, **info) -> None:
    """Report reaching a named fault point; maybe injects a fault.

    With nothing installed this is two dict lookups and an env read —
    cheap enough for every call site that is not an inner loop. ``info``
    is advisory (mirrors the trace-hook calling convention).
    """
    _refresh_env_specs()
    if not _specs and not _env_specs:
        return
    actions: list[FaultSpec] = []
    with _lock:
        matching = _specs.get(point, ()) or ()
        env_matching = _env_specs.get(point, ()) or ()
        if not matching and not env_matching:
            return
        count = _counts.get(point, 0) + 1
        _counts[point] = count
        for spec in list(matching) + list(env_matching):
            if spec.hits is not None and count not in spec.hits:
                continue
            if spec.once:
                path = spec.token_path()
                try:
                    # O_EXCL create = atomic claim; a second process (or
                    # invocation) loses the race and skips the fault.
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                    os.close(fd)
                except OSError:
                    continue
            _fired[point] = _fired.get(point, 0) + 1
            actions.append(spec)
    for spec in actions:  # act outside the lock: sleep/raise/exit
        if spec.kind == "delay":
            time.sleep(float(spec.arg or 0.0))
        elif spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        else:
            raise _exception_for(spec.arg)
