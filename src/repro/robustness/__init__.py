"""Fault-tolerance machinery: deterministic fault injection.

The serving stack's recovery paths — supervised worker pools, kernel
backend quarantine, atomic ingest commit, degraded-mode serving — are
only trustworthy if every one of them can be *driven* in tests. This
package provides the driver: :mod:`repro.robustness.faultinject` is a
registry of named fault points threaded through the shard pool, the
kernel dispatcher, the aggregate cache and the ingest commit, where the
chaos suite (and the ``REPTILE_FAULTS`` environment variable) injects
crashes, exceptions and latency on chosen invocations.
"""

from __future__ import annotations

from .faultinject import (FaultInjected, FaultSpec, clear_faults,
                          fault_point, faults, fired_counts, inject,
                          install, parse_spec)

__all__ = [
    "FaultInjected", "FaultSpec", "clear_faults", "fault_point", "faults",
    "fired_counts", "inject", "install", "parse_spec",
]
