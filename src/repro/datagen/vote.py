"""Election-results dataset (Appendices K and N, Figures 16 and 18).

A state → county panel shaped like the 2020 US presidential results: each
county has a persistent partisan lean, so its 2016 vote share is a strong
predictor of its 2020 share — the auxiliary feature that separates model 1
(default features) from model 2 (+2016 share) in the Appendix N case study.

Rows represent ballot batches: each county contributes ``total/batch``
rows whose measure is the county's 2020 share plus batch noise, so
COUNT ∝ total votes and MEAN ≈ share — letting SUM complaints combine both
signals exactly as the paper describes ("Reptile also takes into account
the total votes").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relational.dataset import AuxiliaryDataset, HierarchicalDataset
from ..relational.relation import Relation
from ..relational.schema import Schema, dimension, measure

N_STATES = 6
N_COUNTIES = 20        # per state
BATCH = 2000.0         # ballots per row


@dataclass
class VoteWorld:
    """The generated panel plus per-county ground truth."""

    dataset: HierarchicalDataset
    share_2016: dict[str, float]
    share_2020: dict[str, float]
    totals_2020: dict[str, float]
    states: list[str]
    counties: dict[str, list[str]]  # state -> counties
    focus_state: str                # the "Georgia" of the case study


def make_world(rng: np.random.Generator,
               n_states: int = N_STATES,
               n_counties: int = N_COUNTIES) -> VoteWorld:
    states = [f"S{i:02d}" for i in range(n_states)]
    counties = {s: [f"{s}-C{j:03d}" for j in range(n_counties)]
                for s in states}
    share_2016: dict[str, float] = {}
    share_2020: dict[str, float] = {}
    totals: dict[str, float] = {}

    rows = []
    aux_rows = []
    for s in states:
        state_lean = rng.normal(0.0, 0.05)
        state_swing = rng.normal(-0.01, 0.01)
        # How strongly 2016 leans carry into 2020 varies by state — the
        # cluster-specific slope that favours multi-level models (App. K).
        state_slope = max(0.3, rng.normal(1.0, 0.25))
        for c in counties[s]:
            lean = float(np.clip(0.5 + state_lean + rng.normal(0, 0.12),
                                 0.05, 0.95))
            s16 = float(np.clip(lean + rng.normal(0, 0.015), 0.02, 0.98))
            s20 = float(np.clip(0.5 + state_lean
                                + state_slope * (lean - 0.5 - state_lean)
                                + state_swing + rng.normal(0, 0.015),
                                0.02, 0.98))
            total = float(np.exp(rng.normal(10.0, 0.9)))
            share_2016[c] = s16
            share_2020[c] = s20
            totals[c] = total
            n_batches = max(3, int(round(total / BATCH)))
            shares = np.clip(s20 + rng.normal(0, 0.01, size=n_batches),
                             0.0, 1.0)
            rows.extend((s, c, float(v)) for v in shares)
            aux_rows.append((c, s16, total))

    schema = Schema([dimension("state"), dimension("county"),
                     measure("share")])
    relation = Relation.from_rows(schema, rows)
    dataset = HierarchicalDataset.build(
        relation, {"geo": ["state", "county"]}, "share")

    aux_schema = Schema([dimension("county"), measure("share_2016"),
                         measure("total_2016")])
    aux_rel = Relation.from_rows(aux_schema, aux_rows)
    dataset.add_auxiliary(AuxiliaryDataset(
        "election_2016", aux_rel, join_on=("county",),
        measures=("share_2016", "total_2016")))
    return VoteWorld(dataset, share_2016, share_2020, totals, states,
                     counties, focus_state=states[0])


def inject_missing_ballots(world: VoteWorld, counties: list[str],
                           fraction: float = 0.5) -> HierarchicalDataset:
    """Appendix N's missing-record variant: drop ballot batches.

    Halving a county's rows halves its COUNT (≈ total votes) while leaving
    its MEAN (share) intact, shifting the SUM-based margin gains.
    """
    relation = world.dataset.relation
    county_col = relation.column_values("county")
    victims = set(counties)
    seen: dict[str, int] = {}
    keep = []
    for i, c in enumerate(county_col):
        if c in victims:
            seen[c] = seen.get(c, 0) + 1
            if seen[c] % int(round(1 / fraction)) == 0:
                continue
        keep.append(i)
    corrupted = relation._take(keep)
    dataset = HierarchicalDataset.build(
        corrupted, {"geo": ["state", "county"]}, "share", validate=False)
    for aux in world.dataset.auxiliary.values():
        dataset.add_auxiliary(aux)
    return dataset
