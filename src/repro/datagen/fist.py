"""FIST drought-survey case study simulator (§5.4, Appendix M).

Columbia's Financial Instruments Sector Team collects farmer-reported
drought severity (1–10) per village and year in Ethiopia, cross-referenced
against satellite rainfall estimates. The study data and the three human
experts are not reproducible, so this module simulates:

* a (region → district → village) × year severity panel whose drought
  years are region-correlated, with rainfall auxiliary data that inversely
  tracks true drought severity;
* the 22 expert complaints as scripted scenarios whose injected ground
  truth mirrors the error classes the study surfaced: planting/harvest
  year confusion, misremembered events, non-drought years reported severe,
  and missing survey records;
* the two designed failures of Appendix M — an inherently ambiguous
  region-wide complaint, and a standard-deviation complaint caused by two
  districts corrupted symmetrically, where repairing either one alone
  cannot lower the std (the parabola argument of Appendix M).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..relational.dataset import AuxiliaryDataset, HierarchicalDataset
from ..relational.relation import Relation
from ..relational.schema import Schema, dimension, measure

N_REGIONS = 4
N_DISTRICTS = 3     # per region
N_VILLAGES = 6      # per district
YEARS = tuple(range(2000, 2018))
FARMERS_MIN, FARMERS_MAX = 5, 12


class ScenarioKind(enum.Enum):
    YEAR_SHIFT = "year shift"              # harvest-year confusion
    EXAGGERATED = "exaggerated severity"   # non-drought year reported severe
    MISREMEMBER = "misremembered drought"  # drought year reported mild
    MISSING = "missing records"            # survey records lost
    AMBIGUOUS = "ambiguous"                # region-wide drift (failure)
    TWO_DISTRICT_STD = "two-district std"  # symmetric corruption (failure)


@dataclass(frozen=True)
class FistScenario:
    """One scripted complaint with its injected ground truth."""

    scenario_id: int
    kind: ScenarioKind
    region: str
    year: int
    district: str | None        # ground-truth district (None for ambiguous)
    second_district: str | None  # the TWO_DISTRICT_STD partner
    aggregate: str               # complained statistic
    direction: str               # 'high' | 'low'
    expected_resolved: bool      # per §5.4: 20 of 22 resolve


@dataclass
class FistWorld:
    """The clean panel plus everything needed to build scenarios."""

    dataset: HierarchicalDataset
    drought: dict[tuple[str, int], float]   # (region, year) -> severity lift
    regions: list[str]
    districts: dict[str, list[str]]          # region -> districts
    villages: dict[str, list[str]]           # district -> villages


def region_name(i: int) -> str:
    return f"R{i:02d}"


def district_name(region: str, j: int) -> str:
    return f"{region}-D{j:02d}"


def village_name(district: str, k: int) -> str:
    return f"{district}-V{k:02d}"


def make_world(rng: np.random.Generator) -> FistWorld:
    """Generate the clean drought panel and its rainfall auxiliary data."""
    regions = [region_name(i) for i in range(N_REGIONS)]
    districts = {r: [district_name(r, j) for j in range(N_DISTRICTS)]
                 for r in regions}
    villages = {d: [village_name(d, k) for k in range(N_VILLAGES)]
                for r in regions for d in districts[r]}

    # Region-year drought lift: a few severe years per region.
    drought: dict[tuple[str, int], float] = {}
    for r in regions:
        for y in YEARS:
            severe = rng.random() < 0.25
            drought[(r, y)] = (3.0 + rng.normal(0, 0.4)) if severe \
                else rng.normal(0, 0.4)

    rows = []
    rain_rows = []
    for r in regions:
        region_base = 4.0 + rng.normal(0, 0.3)
        for d in districts[r]:
            district_off = rng.normal(0, 0.3)
            # Districts respond to drought with different sensitivity —
            # the cluster-specific slope that multi-level models capture
            # and global fixed effects cannot (Appendix K).
            district_sens = max(0.2, rng.normal(1.0, 0.35))
            for v in villages[d]:
                village_off = rng.normal(0, 0.3)
                for y in YEARS:
                    level = region_base + district_off + village_off \
                        + district_sens * drought[(r, y)]
                    n_farmers = int(rng.integers(FARMERS_MIN, FARMERS_MAX + 1))
                    reports = np.clip(
                        level + rng.normal(0, 0.8, size=n_farmers), 1.0, 10.0)
                    rows.extend((r, d, v, y, float(s)) for s in reports)
                    # Rainfall inversely tracks the drought lift.
                    rain = 600.0 - 90.0 * drought[(r, y)] \
                        + rng.normal(0, 30.0)
                    rain_rows.append((d, v, y, max(rain, 10.0)))

    schema = Schema([dimension("region"), dimension("district"),
                     dimension("village"), dimension("year"),
                     measure("severity")])
    relation = Relation.from_rows(schema, rows)
    dataset = HierarchicalDataset.build(
        relation,
        {"geo": ["region", "district", "village"], "time": ["year"]},
        "severity")

    rain_schema = Schema([dimension("district"), dimension("village"),
                          dimension("year"), measure("rainfall")])
    rain_rel = Relation.from_rows(rain_schema, rain_rows)
    dataset.add_auxiliary(AuxiliaryDataset(
        "sensing_village", rain_rel, join_on=("village", "year"),
        measures=("rainfall",)))
    dataset.add_auxiliary(AuxiliaryDataset(
        "sensing_district", rain_rel, join_on=("district", "year"),
        measures=("rainfall",)))
    return FistWorld(dataset, drought, regions, districts, villages)


def make_scenarios(world: FistWorld,
                   rng: np.random.Generator) -> list[FistScenario]:
    """The 22 scripted complaints (20 resolvable + 2 designed failures)."""
    severe_years = {r: [y for y in YEARS if world.drought[(r, y)] > 2.0]
                    for r in world.regions}
    mild_years = {r: [y for y in YEARS if world.drought[(r, y)] < 1.0]
                  for r in world.regions}

    def pick(seq):
        return seq[int(rng.integers(len(seq)))]

    scenarios: list[FistScenario] = []
    sid = 0
    # 6 year shifts: records reported one year late → count too low.
    for _ in range(6):
        r = pick(world.regions)
        y = pick([y for y in YEARS[:-1]])
        d = pick(world.districts[r])
        scenarios.append(FistScenario(sid, ScenarioKind.YEAR_SHIFT, r, y, d,
                                      None, "count", "low", True))
        sid += 1
    # 5 exaggerations: mild year reported severe → mean too high.
    for _ in range(5):
        r = pick(world.regions)
        y = pick(mild_years[r] or list(YEARS))
        d = pick(world.districts[r])
        scenarios.append(FistScenario(sid, ScenarioKind.EXAGGERATED, r, y, d,
                                      None, "mean", "high", True))
        sid += 1
    # 5 misrememberings: severe year reported mild → mean too low.
    for _ in range(5):
        r = pick(world.regions)
        y = pick(severe_years[r] or list(YEARS))
        d = pick(world.districts[r])
        scenarios.append(FistScenario(sid, ScenarioKind.MISREMEMBER, r, y, d,
                                      None, "mean", "low", True))
        sid += 1
    # 4 missing-record scenarios → count too low.
    for _ in range(4):
        r = pick(world.regions)
        y = pick(list(YEARS))
        d = pick(world.districts[r])
        scenarios.append(FistScenario(sid, ScenarioKind.MISSING, r, y, d,
                                      None, "count", "low", True))
        sid += 1
    # 1 ambiguous region-wide drift (expected failure, Appendix M).
    r = pick(world.regions)
    y = pick(severe_years[r] or list(YEARS))
    scenarios.append(FistScenario(sid, ScenarioKind.AMBIGUOUS, r, y, None,
                                  None, "mean", "low", False))
    sid += 1
    # 1 two-district symmetric std corruption (expected failure, Appendix M).
    r = pick(world.regions)
    y = pick(mild_years[r] or list(YEARS))
    d1, d2 = world.districts[r][0], world.districts[r][1]
    scenarios.append(FistScenario(sid, ScenarioKind.TWO_DISTRICT_STD, r, y,
                                  d1, d2, "std", "high", False))
    sid += 1
    return scenarios


def apply_scenario(world: FistWorld, scenario: FistScenario,
                   rng: np.random.Generator) -> HierarchicalDataset:
    """Inject one scenario's error into a copy of the clean panel."""
    relation = world.dataset.relation
    region = relation.column_values("region")
    district = relation.column_values("district")
    year = list(relation.column_values("year"))
    severity = list(relation.column_values("severity"))

    def rows_of(d: str, y: int) -> list[int]:
        return [i for i in range(len(relation))
                if district[i] == d and year[i] == y]

    keep = list(range(len(relation)))
    kind = scenario.kind
    if kind is ScenarioKind.YEAR_SHIFT:
        for i in rows_of(scenario.district, scenario.year):
            if rng.random() < 0.6:
                year[i] = scenario.year + 1
    elif kind is ScenarioKind.EXAGGERATED:
        for i in rows_of(scenario.district, scenario.year):
            severity[i] = float(min(10.0, severity[i] + 3.0))
    elif kind is ScenarioKind.MISREMEMBER:
        for i in rows_of(scenario.district, scenario.year):
            severity[i] = float(max(1.0, severity[i] - 3.0))
    elif kind is ScenarioKind.MISSING:
        drop = set()
        for i in rows_of(scenario.district, scenario.year):
            if rng.random() < 0.6:
                drop.add(i)
        keep = [i for i in keep if i not in drop]
    elif kind is ScenarioKind.AMBIGUOUS:
        for d in world.districts[scenario.region]:
            for i in rows_of(d, scenario.year):
                severity[i] = float(max(1.0, severity[i] - 2.0))
    elif kind is ScenarioKind.TWO_DISTRICT_STD:
        # Both districts shifted the SAME way: with 2 of the region's 3
        # districts corrupted, repairing either one alone leaves the
        # between-district variance unchanged (Appendix M's parabola).
        for i in rows_of(scenario.district, scenario.year):
            severity[i] = float(min(10.0, severity[i] + 2.5))
        for i in rows_of(scenario.second_district, scenario.year):
            severity[i] = float(min(10.0, severity[i] + 2.5))
    else:
        raise ValueError(f"unknown scenario kind {kind}")

    cols = {name: relation.column_values(name)
            for name in relation.schema.names}
    cols["year"] = year
    cols["severity"] = severity
    corrupted = Relation(relation.schema, cols)._take(keep)
    dataset = HierarchicalDataset.build(
        corrupted,
        {"geo": ["region", "district", "village"], "time": ["year"]},
        "severity", validate=False)
    for aux in world.dataset.auxiliary.values():
        dataset.add_auxiliary(aux)
    return dataset
