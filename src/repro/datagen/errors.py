"""Group-wise error injection (§5.2.1 "Error Generation").

The error classes evaluated in Figures 11–12:

* **Missing** — delete half of a group's rows (COUNT too low);
* **Dup** — duplicate half of a group's rows (COUNT too high);
* **↑ / ↓ drift** — shift all of a group's measure values by ±δ (default 5,
  the paper's "subtle systematic value error");
* combinations (Missing+↓, Dup+↑) complained about through SUM.

Each injector takes and returns a :class:`Relation`; :func:`corrupt`
applies a list of :class:`ErrorSpec` and reports what it did, giving the
benchmarks their ground truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..relational.relation import Relation

DEFAULT_DRIFT = 5.0
DEFAULT_FRACTION = 0.5


class ErrorKind(enum.Enum):
    MISSING = "missing"
    DUPLICATION = "duplication"
    DRIFT_UP = "drift_up"
    DRIFT_DOWN = "drift_down"


@dataclass(frozen=True)
class ErrorSpec:
    """One injected error: a kind applied to one group."""

    kind: ErrorKind
    group: Mapping  # {attribute: value} identifying the group
    magnitude: float = DEFAULT_DRIFT     # drift delta (ignored for rows)
    fraction: float = DEFAULT_FRACTION   # row fraction (ignored for drift)

    def describe(self) -> str:
        where = ", ".join(f"{k}={v}" for k, v in self.group.items())
        return f"{self.kind.value}@({where})"


def _group_indices(relation: Relation, group: Mapping) -> list[int]:
    checks = [(attr, value) for attr, value in group.items()]
    cols = {attr: relation.column_values(attr) for attr, _ in checks}
    return [i for i in range(len(relation))
            if all(cols[a][i] == v for a, v in checks)]


def inject_missing(relation: Relation, group: Mapping,
                   fraction: float = DEFAULT_FRACTION) -> Relation:
    """Delete the first ``fraction`` of the group's rows."""
    idx = _group_indices(relation, group)
    drop = set(idx[:int(len(idx) * fraction)])
    keep = [i for i in range(len(relation)) if i not in drop]
    return relation._take(keep)


def inject_duplicates(relation: Relation, group: Mapping,
                      fraction: float = DEFAULT_FRACTION) -> Relation:
    """Duplicate the first ``fraction`` of the group's rows."""
    idx = _group_indices(relation, group)
    extra = idx[:int(len(idx) * fraction)]
    order = list(range(len(relation))) + extra
    return relation._take(order)


def inject_drift(relation: Relation, group: Mapping, measure: str,
                 delta: float) -> Relation:
    """Shift the group's measure values by ``delta`` (±)."""
    idx = set(_group_indices(relation, group))
    values = list(relation.column_values(measure))
    for i in idx:
        values[i] = values[i] + delta
    cols = {name: relation.column_values(name)
            for name in relation.schema.names}
    cols[measure] = values
    return Relation(relation.schema, cols)


def apply_error(relation: Relation, spec: ErrorSpec, measure: str) -> Relation:
    if spec.kind is ErrorKind.MISSING:
        return inject_missing(relation, spec.group, spec.fraction)
    if spec.kind is ErrorKind.DUPLICATION:
        return inject_duplicates(relation, spec.group, spec.fraction)
    if spec.kind is ErrorKind.DRIFT_UP:
        return inject_drift(relation, spec.group, measure, +spec.magnitude)
    if spec.kind is ErrorKind.DRIFT_DOWN:
        return inject_drift(relation, spec.group, measure, -spec.magnitude)
    raise ValueError(f"unknown error kind {spec.kind}")


@dataclass
class CorruptionReport:
    """What :func:`corrupt` injected, for ground-truth bookkeeping."""

    relation: Relation
    specs: list[ErrorSpec] = field(default_factory=list)

    def true_groups(self) -> list[tuple]:
        """Corrupted group keys (values in spec order)."""
        return [tuple(s.group.values()) for s in self.specs]


def corrupt(relation: Relation, specs: Sequence[ErrorSpec],
            measure: str) -> CorruptionReport:
    """Apply every spec in order and return the corrupted relation."""
    out = relation
    for spec in specs:
        out = apply_error(out, spec, measure)
    return CorruptionReport(out, list(specs))


#: The six §5.2.2 error conditions: name -> (error kinds, complaint spec).
#: The complaint spec is (aggregate, direction) where direction follows the
#: ground truth (missing lowers COUNT, drift-up raises MEAN, ...).
CONDITIONS: dict[str, tuple[tuple[ErrorKind, ...], tuple[str, str]]] = {
    "Missing (count)": ((ErrorKind.MISSING,), ("count", "low")),
    "Dup (count)": ((ErrorKind.DUPLICATION,), ("count", "high")),
    "Increase (mean)": ((ErrorKind.DRIFT_UP,), ("mean", "high")),
    "Decrease (mean)": ((ErrorKind.DRIFT_DOWN,), ("mean", "low")),
    "Missing+Decrease (sum)": ((ErrorKind.MISSING, ErrorKind.DRIFT_DOWN),
                               ("sum", "low")),
    "Dup+Increase (sum)": ((ErrorKind.DUPLICATION, ErrorKind.DRIFT_UP),
                           ("sum", "high")),
}
