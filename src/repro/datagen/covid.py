"""COVID-19 case-study simulator (§5.3, Appendix L, Tables 1–2).

The paper evaluates Reptile on 30 resolved data-quality issues of the JHU
CSSE COVID-19 repository (16 US, 14 global). The raw data and GitHub issues
are not redistributable, so this module simulates panels with the same
structure — daily counts per location with trend, weekly seasonality and
noise — and re-injects each issue by its documented *category* and
approximate magnitude:

* missing reports / backlog / over- & under-reporting / definition changes
  are strong one-day (or onward) distortions → detectable;
* typos, small backlogs and small decreases are below the panel's natural
  variation → the four "subtle" failures of the paper's error analysis;
* "missing source" / day-shift issues distort *every* day → the five
  "prevalent" failures (the lag features are corrupted too, so no model
  can single the location out).

Ground truth (issue id, location, category, complaint direction, and
whether the paper's Reptile caught it) follows Tables 1 and 2 exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..relational.dataset import HierarchicalDataset
from ..relational.relation import Relation
from ..relational.schema import Schema, dimension, measure

#: Day index the complaints target (leaves ≥ 7 days of lag history).
COMPLAINT_DAY = 35
N_DAYS = 45


class IssueKind(enum.Enum):
    MISSING_REPORTS = "missing reports"        # day value collapses
    BACKLOG = "backlog"                        # day value spikes
    OVER_REPORTED = "over reported"            # day value inflated
    UNDER_REPORTED = "under reported"          # day value deflated
    DEFINITION_CHANGE = "definition altered"   # level shift from day onward
    TYPO = "typo"                              # tiny distortion (subtle)
    SMALL_BACKLOG = "small backlog"            # tiny spike (subtle)
    SMALL_DECREASE = "small decrease"          # tiny dip (subtle)
    PREVALENT_MISSING = "missing source"       # all days deflated (prevalent)
    DAY_SHIFT = "day shift"                    # all days shifted (prevalent)


#: Multiplier/behaviour per kind, applied at the complaint day.
_DAY_FACTORS = {
    IssueKind.MISSING_REPORTS: 0.35,
    IssueKind.BACKLOG: 2.6,
    IssueKind.OVER_REPORTED: 1.8,
    IssueKind.UNDER_REPORTED: 0.6,
    IssueKind.DEFINITION_CHANGE: 1.6,
    IssueKind.TYPO: 1.015,
    IssueKind.SMALL_BACKLOG: 1.02,
    IssueKind.SMALL_DECREASE: 0.985,
}

PREVALENT_KINDS = (IssueKind.PREVALENT_MISSING, IssueKind.DAY_SHIFT)
SUBTLE_KINDS = (IssueKind.TYPO, IssueKind.SMALL_BACKLOG,
                IssueKind.SMALL_DECREASE)


@dataclass(frozen=True)
class CovidIssue:
    """One resolved JHU data issue (a row of Table 1 or 2)."""

    issue_id: str
    description: str
    location: str
    kind: IssueKind
    direction: str            # complaint direction at the parent level
    expected_detected: bool   # the RP column of Tables 1–2
    region: str | None = None  # global issues only

    @property
    def prevalent(self) -> bool:
        return self.kind in PREVALENT_KINDS


US_ISSUES: tuple[CovidIssue, ...] = (
    CovidIssue("3572", "Texas confirmed missing reports", "Texas",
               IssueKind.MISSING_REPORTS, "low", True),
    CovidIssue("3521", "Arizona death methodology altered", "Arizona",
               IssueKind.DEFINITION_CHANGE, "high", True),
    CovidIssue("3482", "Washington missing reports", "Washington",
               IssueKind.MISSING_REPORTS, "low", True),
    CovidIssue("3476", "Utah missing source", "Utah",
               IssueKind.PREVALENT_MISSING, "low", False),
    CovidIssue("3468", "New York death missing reports", "New York",
               IssueKind.MISSING_REPORTS, "low", True),
    CovidIssue("3466", "Montana missing reports", "Montana",
               IssueKind.MISSING_REPORTS, "low", True),
    CovidIssue("3456", "North Dakota confirmed backlog", "North Dakota",
               IssueKind.BACKLOG, "high", True),
    CovidIssue("3451", "Iowa death missing reports", "Iowa",
               IssueKind.MISSING_REPORTS, "low", True),
    CovidIssue("3449", "Arizona test over reported", "Arizona",
               IssueKind.OVER_REPORTED, "high", True),
    CovidIssue("3448", "Washington death wrongly reported", "Washington",
               IssueKind.UNDER_REPORTED, "low", True),
    CovidIssue("3441", "Albany confirmed day shift", "Albany",
               IssueKind.DAY_SHIFT, "high", False),
    CovidIssue("3438", "Ohio confirmed backlog", "Ohio",
               IssueKind.BACKLOG, "high", True),
    CovidIssue("3424", "Massachusetts confirmed backlog", "Massachusetts",
               IssueKind.SMALL_BACKLOG, "high", False),
    CovidIssue("3416", "Nevada death over reported", "Nevada",
               IssueKind.OVER_REPORTED, "high", True),
    CovidIssue("3414", "Eureka death over reported", "Eureka",
               IssueKind.OVER_REPORTED, "high", True),
    CovidIssue("3402", "Washington confirmed typo", "Washington",
               IssueKind.TYPO, "high", False),
)

GLOBAL_ISSUES: tuple[CovidIssue, ...] = (
    CovidIssue("3623", "Germany recovered over reported", "Germany",
               IssueKind.OVER_REPORTED, "high", True, region="Europe"),
    CovidIssue("3618", "Quebec death missing source", "Quebec",
               IssueKind.PREVALENT_MISSING, "low", False, region="Americas"),
    CovidIssue("3578", "US recovery nullified", "United States",
               IssueKind.MISSING_REPORTS, "low", True, region="Americas"),
    CovidIssue("3567", "India confirmed missing reports", "India",
               IssueKind.MISSING_REPORTS, "low", True, region="Asia"),
    CovidIssue("3546", "Thailand confirmed missing source", "Thailand",
               IssueKind.PREVALENT_MISSING, "low", False, region="Asia"),
    CovidIssue("3538a", "Mexico confirmed definition altered", "Mexico",
               IssueKind.DEFINITION_CHANGE, "high", True, region="Americas"),
    CovidIssue("3538b", "Mexico confirmed missing reports", "Mexico",
               IssueKind.MISSING_REPORTS, "low", True, region="Americas"),
    CovidIssue("3518", "Sweden death missing source", "Sweden",
               IssueKind.PREVALENT_MISSING, "low", False, region="Europe"),
    CovidIssue("3498", "Alberta missing source", "Alberta",
               IssueKind.PREVALENT_MISSING, "low", False, region="Americas"),
    CovidIssue("3494", "UK death missing reports", "United Kingdom",
               IssueKind.MISSING_REPORTS, "low", True, region="Europe"),
    CovidIssue("3471", "Turkey confirmed definition altered", "Turkey",
               IssueKind.DEFINITION_CHANGE, "high", True, region="Asia"),
    CovidIssue("3423", "Afghanistan confirmed wrongly reported",
               "Afghanistan", IssueKind.SMALL_DECREASE, "low", False,
               region="Asia"),
    CovidIssue("3413", "France missing reports", "France",
               IssueKind.MISSING_REPORTS, "low", True, region="Europe"),
    CovidIssue("3408", "Kazakhstan confirmed over reported", "Kazakhstan",
               IssueKind.OVER_REPORTED, "high", True, region="Asia"),
)

ALL_ISSUES = US_ISSUES + GLOBAL_ISSUES

_US_STATES = ["Texas", "Arizona", "Washington", "Utah", "New York",
              "Montana", "North Dakota", "Iowa", "Nevada", "Eureka",
              "Albany", "Massachusetts", "Ohio", "California", "Florida",
              "Georgia", "Colorado", "Oregon", "Kansas", "Vermont",
              "Maine", "Idaho", "Alabama", "Virginia", "Missouri",
              "Indiana", "Wisconsin", "Minnesota", "Tennessee", "Kentucky"]

_GLOBAL_LOCATIONS = {
    "Americas": ["United States", "Mexico", "Quebec", "Alberta", "Brazil",
                 "Argentina", "Chile", "Peru", "Colombia", "Cuba",
                 "Ecuador", "Panama"],
    "Europe": ["Germany", "Sweden", "United Kingdom", "France", "Italy",
               "Spain", "Poland", "Norway", "Finland", "Greece",
               "Portugal", "Austria"],
    "Asia": ["India", "Thailand", "Turkey", "Afghanistan", "Kazakhstan",
             "Japan", "Vietnam", "Nepal", "Mongolia", "Malaysia",
             "Indonesia", "Philippines"],
    "Africa": ["Nigeria", "Egypt", "Kenya", "Ghana", "Morocco", "Ethiopia",
               "Senegal", "Tunisia", "Uganda", "Zambia", "Botswana",
               "Rwanda"],
}


def _panel_values(locations: list[str], n_days: int,
                  rng: np.random.Generator) -> dict[tuple[str, int], float]:
    """Daily counts: per-location level × national trend × weekday × noise."""
    weekday = np.array([1.0, 1.05, 1.1, 1.08, 1.0, 0.75, 0.65])
    trend = np.cumsum(rng.normal(0.01, 0.01, size=n_days))
    trend = np.exp(trend - trend[0])
    values: dict[tuple[str, int], float] = {}
    for loc in locations:
        base = float(np.exp(rng.normal(6.5, 0.8)))
        local = np.exp(rng.normal(0.0, 0.05, size=n_days))
        for d in range(n_days):
            values[(loc, d)] = max(
                1.0, base * trend[d] * weekday[d % 7] * local[d])
    return values


def us_panel(rng: np.random.Generator,
             n_days: int = N_DAYS) -> HierarchicalDataset:
    """US-shaped panel: (state, day) daily counts."""
    values = _panel_values(_US_STATES, n_days, rng)
    rows = [(loc, d, round(v)) for (loc, d), v in values.items()]
    schema = Schema([dimension("state"), dimension("day"), measure("cases")])
    relation = Relation.from_rows(schema, rows)
    return HierarchicalDataset.build(
        relation, {"location": ["state"], "time": ["day"]}, "cases")


def global_panel(rng: np.random.Generator,
                 n_days: int = N_DAYS) -> HierarchicalDataset:
    """Global-shaped panel: (region, country, day) daily counts."""
    rows = []
    for region, countries in _GLOBAL_LOCATIONS.items():
        values = _panel_values(countries, n_days, rng)
        rows.extend((region, loc, d, round(v))
                    for (loc, d), v in values.items())
    schema = Schema([dimension("region"), dimension("country"),
                     dimension("day"), measure("cases")])
    relation = Relation.from_rows(schema, rows)
    return HierarchicalDataset.build(
        relation, {"location": ["region", "country"], "time": ["day"]},
        "cases")


def apply_issue(dataset: HierarchicalDataset, issue: CovidIssue,
                location_attr: str, day: int = COMPLAINT_DAY
                ) -> HierarchicalDataset:
    """Inject one issue into the panel's measure column."""
    relation = dataset.relation
    locs = relation.column_values(location_attr)
    days = relation.column_values("day")
    cases = list(relation.column_values(dataset.measure))
    by_day = {}
    for i, (loc, d) in enumerate(zip(locs, days)):
        if loc == issue.location:
            by_day[d] = i

    if issue.kind is IssueKind.PREVALENT_MISSING:
        for d, i in by_day.items():
            cases[i] = round(cases[i] * 0.85)
    elif issue.kind is IssueKind.DAY_SHIFT:
        shifted = {d: cases[by_day[d - 1]] for d in by_day if d - 1 in by_day}
        for d, v in shifted.items():
            cases[by_day[d]] = v
    elif issue.kind is IssueKind.DEFINITION_CHANGE:
        factor = _DAY_FACTORS[issue.kind]
        for d, i in by_day.items():
            if d >= day:
                cases[i] = round(cases[i] * factor)
    elif issue.kind is IssueKind.BACKLOG:
        backlog = sum(cases[by_day[d]] for d in (day - 2, day - 1)
                      if d in by_day)
        cases[by_day[day]] = round(cases[by_day[day]] + 0.8 * backlog)
    else:
        factor = _DAY_FACTORS[issue.kind]
        cases[by_day[day]] = round(cases[by_day[day]] * factor)

    cols = {name: relation.column_values(name)
            for name in relation.schema.names}
    cols[dataset.measure] = cases
    corrupted = Relation(relation.schema, cols)
    hierarchies = {h.name: list(h.attributes) for h in dataset.dimensions}
    return HierarchicalDataset.build(corrupted, hierarchies, dataset.measure,
                                     validate=False)
