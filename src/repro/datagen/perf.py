"""Synthetic hierarchy structures for the performance experiments (§5.1).

Figures 7–9 and 15 sweep structural parameters — number of hierarchies d,
attributes per hierarchy t, attribute cardinality w — over synthetic BCNF
hierarchy tables. :func:`chain_paths` builds one hierarchy with ``n_leaves``
leaf values whose ancestors fan out by a fixed branching factor, which is
all those benchmarks need.
"""

from __future__ import annotations

import numpy as np

from ..factorized.forder import AttributeOrder, HierarchyPaths
from ..factorized.matrix import FactorizedMatrix, FeatureColumn


def chain_paths(name: str, n_attrs: int, n_leaves: int,
                branching: int | None = None) -> HierarchyPaths:
    """A hierarchy of ``n_attrs`` levels with ``n_leaves`` leaf paths.

    Ancestor values at level ℓ group the leaves into contiguous runs of
    ``branching^(n_attrs−1−ℓ)`` — a balanced tree when branching divides
    evenly; the default branching spreads levels geometrically.
    """
    if branching is None:
        branching = max(2, int(round(n_leaves ** (1.0 / max(n_attrs, 1)))))
    attrs = [f"{name}_a{lvl}" for lvl in range(n_attrs)]
    paths = []
    for leaf in range(n_leaves):
        path = []
        for lvl in range(n_attrs):
            span = branching ** (n_attrs - 1 - lvl)
            path.append(f"{name}{lvl}_{leaf // span:06d}")
        # Guarantee leaf uniqueness regardless of branching arithmetic.
        path[-1] = f"{name}{n_attrs - 1}_{leaf:06d}"
        paths.append(tuple(path))
    return HierarchyPaths(name, attrs, paths)


def flat_hierarchies(n_hierarchies: int, cardinality: int) -> list[HierarchyPaths]:
    """Figure 7/15 structure: d hierarchies of one attribute each."""
    return [chain_paths(f"h{i}", 1, cardinality)
            for i in range(n_hierarchies)]


def deep_hierarchies(n_hierarchies: int, n_attrs: int,
                     cardinality: int) -> list[HierarchyPaths]:
    """Figure 8/9 structure: d hierarchies × t attributes, w leaf values."""
    return [chain_paths(f"h{i}", n_attrs, cardinality)
            for i in range(n_hierarchies)]


def random_feature_matrix(order: AttributeOrder, rng: np.random.Generator,
                          columns_per_attribute: int = 1) -> FactorizedMatrix:
    """Random feature columns per attribute (the benchmark matrices).

    Figure 7 uses ``columns_per_attribute=3`` to match the paper's
    10^d × 3·d matrix shape — three featurizations share one attribute's
    block structure, which is where the factorised operators share work.
    """
    cols = []
    for attr in order.attributes:
        dom = order.ordered_domain(attr)
        for k in range(columns_per_attribute):
            cols.append(FeatureColumn(
                attr, f"f{k}_{attr}",
                {v: float(x)
                 for v, x in zip(dom, rng.standard_normal(len(dom)))}))
    return FactorizedMatrix(order, cols)
