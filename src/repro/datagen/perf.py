"""Synthetic hierarchy structures for the performance experiments (§5.1).

Figures 7–9 and 15 sweep structural parameters — number of hierarchies d,
attributes per hierarchy t, attribute cardinality w — over synthetic BCNF
hierarchy tables. :func:`chain_paths` builds one hierarchy with ``n_leaves``
leaf values whose ancestors fan out by a fixed branching factor, which is
all those benchmarks need.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from ..factorized.forder import AttributeOrder, HierarchyPaths
from ..factorized.matrix import FactorizedMatrix, FeatureColumn

#: Schema of the streamed drought workload: the fig17/fig20 shape
#: (two-level geo hierarchy + year), scaled up for the sharded benches.
DROUGHT_HIERARCHIES = {"geo": ["district", "village"], "time": ["year"]}
DROUGHT_MEASURE = "severity"


def drought_chunks(n_rows: int, chunk_rows: int = 1_000_000, *,
                   n_districts: int = 64, villages_per_district: int = 50,
                   n_years: int = 25, seed: int = 0
                   ) -> Iterator[Mapping[str, np.ndarray]]:
    """Stream the drought-survey workload as ``{column: array}`` chunks.

    The generator never materializes more than one chunk of value arrays
    (let alone a list of row tuples), which is what lets the 1e7-row
    sharded benches run without an all-rows Python image. Severity is
    integer-valued so every aggregate is exactly representable and
    order-independent — the bitwise-equality gates stay meaningful.
    Deterministic for a given ``(seed, chunk_rows)`` pair.
    """
    districts = np.array([f"d{i:04d}" for i in range(n_districts)])
    villages = np.array([f"v{i:06d}"
                         for i in range(n_districts * villages_per_district)])
    rng = np.random.default_rng(seed)
    produced = 0
    while produced < n_rows:
        m = int(min(chunk_rows, n_rows - produced))
        d = rng.integers(0, n_districts, m)
        v = d * villages_per_district + rng.integers(
            0, villages_per_district, m)
        yield {
            "district": districts[d],
            "village": villages[v],
            "year": 1980 + rng.integers(0, n_years, m),
            DROUGHT_MEASURE: rng.integers(0, 100, m).astype(float),
        }
        produced += m


def chain_paths(name: str, n_attrs: int, n_leaves: int,
                branching: int | None = None) -> HierarchyPaths:
    """A hierarchy of ``n_attrs`` levels with ``n_leaves`` leaf paths.

    Ancestor values at level ℓ group the leaves into contiguous runs of
    ``branching^(n_attrs−1−ℓ)`` — a balanced tree when branching divides
    evenly; the default branching spreads levels geometrically.
    """
    if branching is None:
        branching = max(2, int(round(n_leaves ** (1.0 / max(n_attrs, 1)))))
    attrs = [f"{name}_a{lvl}" for lvl in range(n_attrs)]
    paths = []
    for leaf in range(n_leaves):
        path = []
        for lvl in range(n_attrs):
            span = branching ** (n_attrs - 1 - lvl)
            path.append(f"{name}{lvl}_{leaf // span:06d}")
        # Guarantee leaf uniqueness regardless of branching arithmetic.
        path[-1] = f"{name}{n_attrs - 1}_{leaf:06d}"
        paths.append(tuple(path))
    return HierarchyPaths(name, attrs, paths)


def flat_hierarchies(n_hierarchies: int, cardinality: int) -> list[HierarchyPaths]:
    """Figure 7/15 structure: d hierarchies of one attribute each."""
    return [chain_paths(f"h{i}", 1, cardinality)
            for i in range(n_hierarchies)]


def deep_hierarchies(n_hierarchies: int, n_attrs: int,
                     cardinality: int) -> list[HierarchyPaths]:
    """Figure 8/9 structure: d hierarchies × t attributes, w leaf values."""
    return [chain_paths(f"h{i}", n_attrs, cardinality)
            for i in range(n_hierarchies)]


def random_feature_matrix(order: AttributeOrder, rng: np.random.Generator,
                          columns_per_attribute: int = 1) -> FactorizedMatrix:
    """Random feature columns per attribute (the benchmark matrices).

    Figure 7 uses ``columns_per_attribute=3`` to match the paper's
    10^d × 3·d matrix shape — three featurizations share one attribute's
    block structure, which is where the factorised operators share work.
    """
    cols = []
    for attr in order.attributes:
        dom = order.ordered_domain(attr)
        for k in range(columns_per_attribute):
            cols.append(FeatureColumn(
                attr, f"f{k}_{attr}",
                {v: float(x)
                 for v, x in zip(dom, rng.standard_normal(len(dom)))}))
    return FactorizedMatrix(order, cols)
