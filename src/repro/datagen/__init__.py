"""Data generators: synthetic workloads, error injection, case-study sims."""

from .correlate import (correlated_normal, induce_correlation,
                        rank_correlation, van_der_waerden_scores)
from .errors import (CONDITIONS, CorruptionReport, ErrorKind, ErrorSpec,
                     apply_error, corrupt, inject_drift, inject_duplicates,
                     inject_missing)
from .synthetic import (SyntheticConfig, group_names, make_auxiliary,
                        make_dataset)

__all__ = [
    "correlated_normal", "induce_correlation", "rank_correlation",
    "van_der_waerden_scores", "CONDITIONS", "CorruptionReport", "ErrorKind",
    "ErrorSpec", "apply_error", "corrupt", "inject_drift",
    "inject_duplicates", "inject_missing", "SyntheticConfig", "group_names",
    "make_auxiliary", "make_dataset",
]
