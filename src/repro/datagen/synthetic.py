"""Synthetic accuracy workload of §5.2.1.

One dimension attribute ("group") with 100 unique values; rows per group
drawn from N(100, 20); measure values drawn from N(100, 20). Auxiliary
tables carry, per group, one measure rank-correlated ρ with a chosen group
statistic (COUNT, MEAN or STD) via Iman–Conover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relational.dataset import AuxiliaryDataset, HierarchicalDataset
from ..relational.relation import Relation
from ..relational.schema import Schema, dimension, measure
from .correlate import induce_correlation

DEFAULT_N_GROUPS = 100
DEFAULT_ROW_MEAN = 100.0
DEFAULT_ROW_STD = 20.0
DEFAULT_VALUE_MEAN = 100.0
DEFAULT_VALUE_STD = 20.0


@dataclass
class SyntheticConfig:
    """Knobs of the §5.2.1 generator (paper defaults)."""

    n_groups: int = DEFAULT_N_GROUPS
    row_mean: float = DEFAULT_ROW_MEAN
    row_std: float = DEFAULT_ROW_STD
    value_mean: float = DEFAULT_VALUE_MEAN
    value_std: float = DEFAULT_VALUE_STD


def group_names(n: int) -> list[str]:
    """Stable, sortable group labels g000, g001, ..."""
    width = max(3, len(str(n - 1)))
    return [f"g{i:0{width}d}" for i in range(n)]


def make_dataset(rng: np.random.Generator,
                 config: SyntheticConfig | None = None) -> HierarchicalDataset:
    """Generate one synthetic dataset (no errors injected yet)."""
    config = config or SyntheticConfig()
    names = group_names(config.n_groups)
    groups: list[str] = []
    values: list[float] = []
    for name in names:
        count = max(2, int(round(rng.normal(config.row_mean, config.row_std))))
        groups.extend([name] * count)
        values.extend(rng.normal(config.value_mean, config.value_std,
                                 size=count).tolist())
    relation = Relation(Schema([dimension("group"), measure("value")]),
                        {"group": groups, "value": values})
    return HierarchicalDataset.build(relation, {"dim": ["group"]}, "value")


def make_auxiliary(dataset: HierarchicalDataset, statistic: str, rho: float,
                   rng: np.random.Generator,
                   name: str | None = None) -> AuxiliaryDataset:
    """Auxiliary table whose measure rank-correlates ρ with a group statistic.

    Following §5.2.1, the auxiliary table has the same dimension attribute
    and one measure produced by the Iman–Conover procedure against the
    *clean* per-group statistic.
    """
    view = _group_view(dataset)
    keys = sorted(view)
    target = np.asarray([view[k].statistic(statistic) for k in keys])
    sample = rng.normal(0.0, 1.0, size=len(keys))
    correlated = induce_correlation(target, sample, rho, rng)
    aux_name = name or f"aux_{statistic}"
    relation = Relation(
        Schema([dimension("group"), measure("signal")]),
        {"group": [k[0] for k in keys], "signal": correlated.tolist()})
    return AuxiliaryDataset(aux_name, relation, join_on=("group",),
                            measures=("signal",))


def _group_view(dataset: HierarchicalDataset):
    from ..relational.cube import Cube
    return Cube(dataset).view(("group",)).groups
