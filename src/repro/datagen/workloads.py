"""Real-dataset-shaped workloads for the end-to-end runtime study (§5.1.4).

Figure 10 times Reptile against a dense (Matlab/Lapack-style) EM on two
public datasets. The values never matter for runtime — only the shape
does — so these generators reproduce the published cardinalities:

* **Absentee** — 179K records of NC absentee voting; four single-attribute
  hierarchies: county (100), party (6), week (53), gender (3).
* **COMPAS** — 60,843 recidivism records; a 3-attribute time hierarchy
  (year, month, day — 704 distinct days) plus age range (3), race (6) and
  charge degree (3).
"""

from __future__ import annotations

import numpy as np

from ..relational.dataset import HierarchicalDataset
from ..relational.relation import Relation
from ..relational.schema import Schema, dimension, measure

ABSENTEE_ROWS = 179_000
ABSENTEE_CARDS = {"county": 100, "party": 6, "week": 53, "gender": 3}
COMPAS_ROWS = 60_843
COMPAS_DAYS = 704


def absentee_like(rng: np.random.Generator,
                  n_rows: int = ABSENTEE_ROWS) -> HierarchicalDataset:
    """NC-absentee-shaped dataset: 4 single-attribute hierarchies."""
    cols: dict[str, list] = {}
    for attr, card in ABSENTEE_CARDS.items():
        values = [f"{attr}{i:03d}" for i in range(card)]
        draws = rng.integers(0, card, size=n_rows)
        cols[attr] = [values[i] for i in draws]
    cols["ballots"] = rng.exponential(1.0, size=n_rows).tolist()
    schema = Schema([dimension(a) for a in ABSENTEE_CARDS] +
                    [measure("ballots")])
    relation = Relation(schema, cols)
    hierarchies = {a: [a] for a in ABSENTEE_CARDS}
    return HierarchicalDataset.build(relation, hierarchies, "ballots")


def compas_like(rng: np.random.Generator,
                n_rows: int = COMPAS_ROWS,
                n_days: int = COMPAS_DAYS) -> HierarchicalDataset:
    """COMPAS-shaped dataset: time(3 attrs) + age + race + charge degree."""
    # A ~2-year calendar with n_days distinct days.
    days = []
    year, month, day = 2013, 1, 1
    for _ in range(n_days):
        days.append((f"y{year}", f"y{year}-m{month:02d}",
                     f"y{year}-m{month:02d}-d{day:02d}"))
        day += 1
        if day > 30:
            day = 1
            month += 1
            if month > 12:
                month = 1
                year += 1
    day_idx = rng.integers(0, n_days, size=n_rows)
    ages = ["age<25", "age25-45", "age>45"]
    races = [f"race{i}" for i in range(6)]
    degrees = ["F", "M", "O"]
    cols = {
        "year": [days[i][0] for i in day_idx],
        "month": [days[i][1] for i in day_idx],
        "day": [days[i][2] for i in day_idx],
        "age_range": [ages[i] for i in rng.integers(0, 3, size=n_rows)],
        "race": [races[i] for i in rng.integers(0, 6, size=n_rows)],
        "charge_degree": [degrees[i] for i in rng.integers(0, 3, size=n_rows)],
        "score": rng.uniform(0, 10, size=n_rows).tolist(),
    }
    schema = Schema([dimension("year"), dimension("month"), dimension("day"),
                     dimension("age_range"), dimension("race"),
                     dimension("charge_degree"), measure("score")])
    relation = Relation(schema, cols)
    hierarchies = {
        "time": ["year", "month", "day"],
        "age": ["age_range"],
        "race": ["race"],
        "charge": ["charge_degree"],
    }
    return HierarchicalDataset.build(relation, hierarchies, "score")
