"""Rank-correlation induction, Iman & Conover [23] (§5.2.1).

The accuracy experiments need auxiliary measures with a *tunable, weak*
correlation (ρ ∈ [0.6, 1.0]) to the true group statistics. Following the
paper, we use the distribution-free Iman–Conover procedure: build scores
``ρ·s(t) + √(1−ρ²)·z`` from the van der Waerden scores of the target's
ranks, then reorder the auxiliary sample so its ranks match the scores'
ranks. The auxiliary marginal distribution is preserved exactly; only the
rank order changes.
"""

from __future__ import annotations

import math

import numpy as np


def van_der_waerden_scores(values: np.ndarray) -> np.ndarray:
    """Normal scores Φ⁻¹(rank / (n+1)) of a sample."""
    values = np.asarray(values, dtype=float)
    n = len(values)
    ranks = np.empty(n)
    ranks[np.argsort(values, kind="stable")] = np.arange(1, n + 1)
    return _norm_ppf(ranks / (n + 1))


def induce_correlation(target: np.ndarray, sample: np.ndarray, rho: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Reorder ``sample`` to have rank correlation ≈ ``rho`` with ``target``.

    Parameters
    ----------
    target:
        The vector the output should correlate with (not modified).
    sample:
        Values whose marginal distribution the output keeps.
    rho:
        Desired rank correlation in [-1, 1].
    rng:
        Randomness source for the independent component.
    """
    target = np.asarray(target, dtype=float)
    sample = np.asarray(sample, dtype=float)
    if target.shape != sample.shape:
        raise ValueError(
            f"target {target.shape} and sample {sample.shape} differ")
    if not -1.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [-1, 1], got {rho}")
    n = len(target)
    if n == 0:
        return sample.copy()
    scores = (rho * van_der_waerden_scores(target)
              + math.sqrt(max(0.0, 1.0 - rho * rho)) * rng.standard_normal(n))
    # Place the k-th smallest sample value at the position of the k-th
    # smallest score.
    score_order = np.argsort(scores, kind="stable")
    out = np.empty(n)
    out[score_order] = np.sort(sample)
    return out


def correlated_normal(target: np.ndarray, rho: float,
                      rng: np.random.Generator,
                      loc: float = 0.0, scale: float = 1.0) -> np.ndarray:
    """Fresh N(loc, scale) draws rank-correlated ρ with ``target``."""
    sample = rng.normal(loc, scale, size=len(np.asarray(target)))
    return induce_correlation(target, sample, rho, rng)


def rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (no scipy dependency at runtime)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    ra = np.empty(len(a))
    rb = np.empty(len(b))
    ra[np.argsort(a, kind="stable")] = np.arange(len(a))
    rb[np.argsort(b, kind="stable")] = np.arange(len(b))
    ra -= ra.mean()
    rb -= rb.mean()
    denom = math.sqrt(float(ra @ ra) * float(rb @ rb))
    return float(ra @ rb) / denom if denom else 0.0


def _norm_ppf(p: np.ndarray) -> np.ndarray:
    """Standard normal quantile function (Acklam's rational approximation).

    Max absolute error ≈ 1.15e−9 — far below what rank scores need.
    """
    p = np.asarray(p, dtype=float)
    if np.any((p <= 0) | (p >= 1)):
        raise ValueError("probabilities must lie strictly in (0, 1)")
    a = [-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00]
    p_low, p_high = 0.02425, 1 - 0.02425
    out = np.empty_like(p)

    low = p < p_low
    if np.any(low):
        q = np.sqrt(-2 * np.log(p[low]))
        out[low] = ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                     * q + c[5])
                    / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    mid = (p >= p_low) & (p <= p_high)
    if np.any(mid):
        q = p[mid] - 0.5
        r = q * q
        out[mid] = ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
                     * r + a[5]) * q
                    / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                        + b[4]) * r + 1))
    high = p > p_high
    if np.any(high):
        q = np.sqrt(-2 * np.log1p(-p[high]))
        out[high] = -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q
                        + c[4]) * q + c[5])
                      / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    return out
