"""User complaints over aggregate query results (§3.1).

A complaint identifies one tuple of the current view (by its group-by
coordinates) and supplies ``f_comp : t → ℝ``, a function of the tuple's
aggregate value that the user wants minimised. The three shapes used
throughout the paper are provided: *too high*, *too low*, and *should be v*
(e.g. ``f_comp(t) = |t[count] − v|``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..relational.aggregates import AggState, decompose, evaluate_composite


class Direction(enum.Enum):
    """Which way the complained value deviates from the user's expectation."""

    TOO_HIGH = "high"
    TOO_LOW = "low"
    TARGET = "target"


@dataclass(frozen=True)
class Complaint:
    """A complaint about one aggregate value of one view tuple.

    Parameters
    ----------
    coordinates:
        Group-by attribute values identifying the complained tuple ``t_c``.
    aggregate:
        The complained statistic: count, sum, mean, std or var (composites
        decompose per footnote 3/4).
    direction:
        TOO_HIGH, TOO_LOW, or TARGET.
    target:
        The expected value when ``direction`` is TARGET.
    """

    coordinates: Mapping
    aggregate: str
    direction: Direction
    target: float | None = None

    def __post_init__(self):
        decompose(self.aggregate)  # validates the aggregate name
        if self.direction is Direction.TARGET and self.target is None:
            raise ValueError("TARGET complaints need a target value")
        object.__setattr__(self, "coordinates", dict(self.coordinates))

    # -- constructors --------------------------------------------------------------
    @classmethod
    def too_high(cls, coordinates: Mapping, aggregate: str) -> "Complaint":
        """"The value is higher than it should be.\""""
        return cls(coordinates, aggregate, Direction.TOO_HIGH)

    @classmethod
    def too_low(cls, coordinates: Mapping, aggregate: str) -> "Complaint":
        """"The value is lower than it should be.\""""
        return cls(coordinates, aggregate, Direction.TOO_LOW)

    @classmethod
    def should_be(cls, coordinates: Mapping, aggregate: str,
                  value: float) -> "Complaint":
        """"The value should have been ``value``" (Example 8)."""
        return cls(coordinates, aggregate, Direction.TARGET, target=value)

    # -- f_comp ----------------------------------------------------------------------
    def penalty(self, value: float) -> float:
        """``f_comp`` applied to an aggregate value (lower is better)."""
        if self.direction is Direction.TOO_HIGH:
            return float(value)
        if self.direction is Direction.TOO_LOW:
            return float(-value)
        return abs(float(value) - float(self.target))

    def penalty_of_state(self, state: AggState) -> float:
        """``f_comp`` applied to a (possibly repaired) aggregate state."""
        return self.penalty(evaluate_composite(self.aggregate, state))

    def penalty_values(self, values) -> np.ndarray:
        """``f_comp`` applied elementwise to an array of aggregate values.

        Bitwise-identical per element to :meth:`penalty` (the array ranker
        depends on this to match the scalar path exactly).
        """
        values = np.asarray(values, dtype=float)
        if self.direction is Direction.TOO_HIGH:
            return values
        if self.direction is Direction.TOO_LOW:
            return -values
        return np.abs(values - float(self.target))

    def base_statistics(self) -> tuple[str, ...]:
        """The distributive statistics the complaint decomposes into."""
        return decompose(self.aggregate)

    def __repr__(self) -> str:
        where = ", ".join(f"{k}={v!r}" for k, v in self.coordinates.items())
        if self.direction is Direction.TARGET:
            return f"Complaint({self.aggregate} should be {self.target} at {where})"
        return f"Complaint({self.aggregate} too {self.direction.value} at {where})"
