"""Model-based repair functions ``f_repair`` (§3.2, Problem 1).

A repair function maps a drill-down group to its *expected* aggregate
statistics. Reptile's default fits one model per base statistic over the
parallel groups (§3.2) and predicts every group's expectation; repairing a
group replaces the chosen statistics of its :class:`AggState` with the
predictions, after which the parent aggregate is recomputed through ``G``
(eq. 3).

Which statistics a repair touches depends on the complaint's aggregate
(footnote 4: composites are decomposed and modelled separately):

========== ======================
complaint  repaired statistics
========== ======================
count      count
mean       mean
sum        count, mean
std / var  mean, std
========== ======================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..relational.aggregates import AggState
from ..relational.cube import GroupView
from ..model.features import FeaturePlan, build_view_design
from ..model.linear import LinearModel
from ..model.multilevel import MultilevelModel

#: Default statistics each complaint aggregate repairs.
REPAIR_STATISTICS: dict[str, tuple[str, ...]] = {
    "count": ("count",),
    "sum": ("count", "mean"),
    "mean": ("mean",),
    "std": ("mean", "std"),
    "var": ("mean", "std"),
}

#: Statistics whose repaired values cannot be negative.
NON_NEGATIVE = {"count", "std", "var"}


@dataclass
class RepairPrediction:
    """Expected statistics for every group of a drill-down level."""

    statistics: tuple[str, ...]
    predicted: dict[tuple, dict[str, float]]  # group key -> stat -> value

    def expected(self, key: tuple) -> dict[str, float]:
        return self.predicted.get(tuple(key), {})

    def repair_state(self, key: tuple, state: AggState) -> AggState:
        """``f_repair``: the group's state with statistics replaced."""
        out = state
        for stat, value in self.expected(key).items():
            out = out.with_statistic(stat, value)
        return out


@dataclass
class ModelRepairer:
    """The default, model-backed repair function.

    Parameters
    ----------
    feature_plan:
        Featurization; default is main effects of every view attribute
        (auxiliary features are appended by the session).
    model:
        "multilevel" (default) or "linear" — the ablation knob of §5.2.
    n_iterations:
        EM iterations for the multi-level model.
    statistics:
        Override of the statistic set to model/repair.
    """

    feature_plan: FeaturePlan = field(default_factory=FeaturePlan)
    model: str = "multilevel"
    n_iterations: int = 20
    statistics: tuple[str, ...] | None = None

    def statistics_for(self, aggregate: str) -> tuple[str, ...]:
        if self.statistics is not None:
            return self.statistics
        return REPAIR_STATISTICS[aggregate]

    def predict(self, parallel: GroupView, cluster_attrs: Sequence[str],
                aggregate: str) -> RepairPrediction:
        """Fit one model per statistic over the parallel groups (§3.2)."""
        stats = self.statistics_for(aggregate)
        per_stat: dict[str, dict[tuple, float]] = {}
        for stat in stats:
            per_stat[stat] = self._predict_one(parallel, cluster_attrs, stat)
        predicted: dict[tuple, dict[str, float]] = {}
        for key in parallel.groups:
            predicted[key] = {s: per_stat[s][key] for s in stats}
        return RepairPrediction(stats, predicted)

    def _predict_one(self, parallel: GroupView,
                     cluster_attrs: Sequence[str],
                     statistic: str) -> dict[tuple, float]:
        vd = build_view_design(parallel, statistic, self.feature_plan,
                               cluster_attrs)
        if self.model == "linear":
            fitted = LinearModel().fit_predict(vd.design, vd.y)
        elif self.model == "multilevel":
            fitted = MultilevelModel(
                n_iterations=self.n_iterations).fit_predict(vd.design, vd.y)
        else:
            raise ValueError(f"unknown model kind {self.model!r}")
        if statistic in NON_NEGATIVE:
            fitted = np.maximum(fitted, 0.0)
        return {key: float(fitted[i]) for key, i in vd.row_of.items()}


@dataclass
class CustomRepairer:
    """A user-provided repair function (Problem 1 allows any ``f_repair``).

    ``fn(key, state) -> {statistic: expected value}``.
    """

    fn: object
    statistics: tuple[str, ...] = ("mean",)

    def statistics_for(self, aggregate: str) -> tuple[str, ...]:
        return self.statistics

    def predict(self, parallel: GroupView, cluster_attrs: Sequence[str],
                aggregate: str) -> RepairPrediction:
        predicted = {key: dict(self.fn(key, state))
                     for key, state in parallel.groups.items()}
        return RepairPrediction(self.statistics, predicted)
