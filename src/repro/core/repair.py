"""Model-based repair functions ``f_repair`` (§3.2, Problem 1).

A repair function maps a drill-down group to its *expected* aggregate
statistics. Reptile's default fits one model per base statistic over the
parallel groups (§3.2) and predicts every group's expectation; repairing a
group replaces the chosen statistics of its :class:`AggState` with the
predictions, after which the parent aggregate is recomputed through ``G``
(eq. 3).

Which statistics a repair touches depends on the complaint's aggregate
(footnote 4: composites are decomposed and modelled separately):

========== ======================
complaint  repaired statistics
========== ======================
count      count
mean       mean
sum        count, mean
std / var  mean, std
========== ======================

:class:`RepairPrediction` is array-native: the predictions live in one
``(n_groups, n_statistics)`` matrix indexed by group id, with the group
keys alongside. The old ``{key: {statistic: value}}`` mapping remains
available (``predicted``/:meth:`~RepairPrediction.expected`) as a lazy
view, and predictions may still be *constructed* from such a mapping —
the ranker converts either form to arrays before scoring.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..relational.aggregates import AggState
from ..relational.cube import GroupView
from ..model.backends import DenseDesign, sharded_cluster_grams
from ..model.features import FeaturePlan, ViewDesign, build_view_designs
from ..model.linear import LinearModel
from ..model.multilevel import MultilevelModel

logger = logging.getLogger(__name__)

#: Default statistics each complaint aggregate repairs.
REPAIR_STATISTICS: dict[str, tuple[str, ...]] = {
    "count": ("count",),
    "sum": ("count", "mean"),
    "mean": ("mean",),
    "std": ("mean", "std"),
    "var": ("mean", "std"),
}

#: Statistics whose repaired values cannot be negative.
NON_NEGATIVE = {"count", "std", "var"}


class RepairAlignmentError(KeyError):
    """A repair was requested for a group the prediction does not cover."""


class RepairPrediction:
    """Expected statistics for every group of a drill-down level.

    Parameters
    ----------
    statistics:
        The modelled statistics, in repair-application order.
    predicted:
        Legacy mapping form ``{key: {statistic: value}}``. Mutually
        exclusive with ``keys``/``matrix``.
    keys:
        Group keys, aligned with the matrix rows (array form).
    matrix:
        ``(len(keys), len(statistics))`` prediction matrix; column ``j``
        holds the predictions for ``statistics[j]``.
    strict:
        When True, asking for a group the prediction does not cover raises
        :class:`RepairAlignmentError` instead of silently treating the
        repair as a no-op; when False the miss is logged once. The model
        repairer predicts every parallel group, so a miss on the drill
        path always indicates a key-alignment bug.
    """

    __slots__ = ("statistics", "keys", "matrix", "mask", "strict",
                 "_row_of", "_dicts", "_warned")

    def __init__(self, statistics: tuple[str, ...],
                 predicted: Mapping[tuple, Mapping[str, float]] | None = None,
                 *, keys: list[tuple] | None = None,
                 matrix: np.ndarray | None = None,
                 mask: np.ndarray | None = None,
                 strict: bool = False):
        self.statistics = tuple(statistics)
        self.strict = strict
        self._row_of: dict[tuple, int] | None = None
        self._warned = False
        if predicted is not None:
            if keys is not None or matrix is not None:
                raise ValueError("pass either a mapping or keys+matrix, "
                                 "not both")
            self._dicts = {tuple(k): dict(v) for k, v in predicted.items()}
            self.keys = list(self._dicts)
            n, s = len(self.keys), len(self.statistics)
            self.matrix = np.full((n, s), np.nan)
            self.mask = np.zeros((n, s), dtype=bool)
            for i, key in enumerate(self.keys):
                per_key = self._dicts[key]
                for j, stat in enumerate(self.statistics):
                    if stat in per_key:
                        self.matrix[i, j] = float(per_key[stat])
                        self.mask[i, j] = True
        else:
            if keys is None or matrix is None:
                raise ValueError("array form needs both keys and matrix")
            self._dicts = None
            self.keys = list(keys)
            self.matrix = np.asarray(matrix, dtype=float)
            if self.matrix.shape != (len(self.keys), len(self.statistics)):
                raise ValueError(
                    f"prediction matrix has shape {self.matrix.shape}, "
                    f"expected ({len(self.keys)}, {len(self.statistics)})")
            self.mask = np.ones(self.matrix.shape, dtype=bool) \
                if mask is None else np.asarray(mask, dtype=bool)

    @classmethod
    def from_arrays(cls, statistics: Sequence[str], keys: list[tuple],
                    matrix: np.ndarray, strict: bool = True
                    ) -> "RepairPrediction":
        """Array-native constructor (alignment asserted, strict default)."""
        return cls(tuple(statistics), keys=keys, matrix=matrix,
                   strict=strict)

    # -- mapping-compatible access ----------------------------------------------
    @property
    def predicted(self) -> dict[tuple, dict[str, float]]:
        """The legacy ``{key: {statistic: value}}`` view (materialized)."""
        return {key: self.expected(key) for key in self.keys}

    def row_of(self) -> dict[tuple, int]:
        if self._row_of is None:
            self._row_of = {k: i for i, k in enumerate(self.keys)}
        return self._row_of

    def _miss(self, key: tuple) -> dict:
        if self.strict:
            raise RepairAlignmentError(
                f"no prediction for group {key!r}: the repair would be a "
                f"silent no-op (prediction covers {len(self.keys)} groups)")
        if not self._warned:
            self._warned = True
            logger.warning(
                "repair prediction has no entry for group %r; treating the "
                "repair as a no-op (further misses not logged)", key)
        return {}

    def expected(self, key: tuple) -> dict[str, float]:
        key = tuple(key)
        row = self.row_of().get(key)
        if row is None:
            return self._miss(key)
        if self._dicts is not None:
            return self._dicts[key]
        return {stat: float(self.matrix[row, j])
                for j, stat in enumerate(self.statistics)
                if self.mask[row, j]}

    def repair_state(self, key: tuple, state: AggState) -> AggState:
        """``f_repair``: the group's state with statistics replaced."""
        out = state
        for stat, value in self.expected(key).items():
            out = out.with_statistic(stat, value)
        return out

    # -- array access (the ranker's fast path) ----------------------------------
    def array_form(self, keys: Sequence[tuple]
                   ) -> tuple[np.ndarray, np.ndarray] | None:
        """Prediction rows aligned to ``keys``: ``(values, valid)``.

        ``values`` is ``(len(keys), n_statistics)`` with the prediction
        for each requested group (0 where absent) and ``valid`` the
        matching presence mask. None when the mapping form cannot be
        replayed column-by-column in ``statistics`` order (a hand-built
        per-key dict ordered differently, or carrying extra statistics) —
        the ranker then falls back to the group-at-a-time loop.
        """
        if self._dicts is not None:
            allowed = {s: j for j, s in enumerate(self.statistics)}
            for per_key in self._dicts.values():
                order = [allowed.get(s) for s in per_key]
                if None in order or order != sorted(order):  # type: ignore[type-var]
                    return None
        row_of = self.row_of()
        idx = np.asarray([row_of.get(tuple(k), -1) for k in keys],
                         dtype=np.int64)
        present = idx >= 0
        if self.strict and not present.all():
            missing = [k for k, ok in zip(keys, present) if not ok]
            raise RepairAlignmentError(
                f"no prediction for {len(missing)} group(s), e.g. "
                f"{missing[0]!r}")
        if not len(self.keys):
            # Nothing predicted: every repair is a no-op (there is no row
            # 0 to even gather from).
            shape = (len(idx), len(self.statistics))
            return np.zeros(shape), np.zeros(shape, dtype=bool)
        safe = np.where(present, idx, 0)
        values = np.where(present[:, None], self.matrix[safe], 0.0)
        valid = self.mask[safe] & present[:, None]
        values = np.where(valid, values, 0.0)
        return values, valid

    def __repr__(self) -> str:
        return (f"RepairPrediction(statistics={self.statistics}, "
                f"n_groups={len(self.keys)})")


@dataclass
class ModelRepairer:
    """The default, model-backed repair function.

    Parameters
    ----------
    feature_plan:
        Featurization; default is main effects of every view attribute
        (auxiliary features are appended by the session).
    model:
        "multilevel" (default) or "linear" — the ablation knob of §5.2.
    n_iterations:
        EM iterations for the multi-level model.
    statistics:
        Override of the statistic set to model/repair.
    sharder:
        Optional :class:`~repro.relational.shard.ShardExecutor` fanning
        the design fill and the per-cluster Gram stack out over the
        shard pool. Both sharded computations are bitwise-equal to their
        serial forms, so the repairer's predictions (and its cache
        signature) are unchanged — the field is deliberately *not* part
        of ``repairer_signature``.
    """

    feature_plan: FeaturePlan = field(default_factory=FeaturePlan)
    model: str = "multilevel"
    n_iterations: int = 20
    statistics: tuple[str, ...] | None = None
    sharder: object | None = None

    def statistics_for(self, aggregate: str) -> tuple[str, ...]:
        if self.statistics is not None:
            return self.statistics
        return REPAIR_STATISTICS[aggregate]

    def predict(self, parallel: GroupView, cluster_attrs: Sequence[str],
                aggregate: str) -> RepairPrediction:
        """Fit one model per statistic over the parallel groups (§3.2).

        The statistics' designs share one structural pass (cluster sort,
        run lengths, key index); statistics whose design matrices come out
        identical additionally share one data factorization through
        ``fit_predict_many``. The result is an array-backed strict
        prediction: one matrix column per statistic, rows aligned with
        the design's group keys.
        """
        if self.model not in ("linear", "multilevel"):
            raise ValueError(f"unknown model kind {self.model!r}")
        stats = self.statistics_for(aggregate)
        designs = build_view_designs(parallel, stats, self.feature_plan,
                                     cluster_attrs, sharder=self.sharder)
        matrix = np.empty((len(designs[0].keys), len(stats)))
        for bucket in self._design_buckets(designs):
            fitted = self._fit_bucket(designs[bucket[0]],
                                      [designs[j].y for j in bucket])
            for j, values in zip(bucket, fitted):
                if stats[j] in NON_NEGATIVE:
                    values = np.maximum(values, 0.0)
                matrix[:, j] = values
        return RepairPrediction.from_arrays(stats, designs[0].keys, matrix)

    @staticmethod
    def _design_buckets(designs: list[ViewDesign]) -> list[list[int]]:
        """Group statistic indices whose design matrices are identical."""
        buckets: list[list[int]] = []
        for j, vd in enumerate(designs):
            for bucket in buckets:
                lead = designs[bucket[0]].design
                if lead.z_columns == vd.design.z_columns \
                        and np.array_equal(lead.x, vd.design.x):
                    bucket.append(j)
                    break
            else:
                buckets.append([j])
        return buckets

    def _fit_bucket(self, vd: ViewDesign, ys: list[np.ndarray]
                    ) -> list[np.ndarray]:
        if self.model == "linear":
            return LinearModel().fit_predict_many(vd.design, ys)
        design = vd.design
        if self.sharder is not None \
                and getattr(self.sharder, "n_parts", 1) > 1 \
                and getattr(design, "_cluster_gram_cache", False) is None \
                and isinstance(design, DenseDesign) and design.n_clusters > 1:
            # Bitwise-safe injection: the sharded per-cluster Gram stack
            # equals design.cluster_grams() exactly (reduceat segments
            # only read their own rows). XᵀX stays serial — a sharded
            # partial-sum is reproducible but not bitwise (see
            # sum_design_products) and the recommend path promises exact
            # equality with the serial reference.
            design._cluster_gram_cache = sharded_cluster_grams(
                design, self.sharder)
        return MultilevelModel(
            n_iterations=self.n_iterations).fit_predict_many(design, ys)


@dataclass
class CustomRepairer:
    """A user-provided repair function (Problem 1 allows any ``f_repair``).

    ``fn(key, state) -> {statistic: expected value}``.
    """

    fn: object
    statistics: tuple[str, ...] = ("mean",)

    def statistics_for(self, aggregate: str) -> tuple[str, ...]:
        return self.statistics

    def predict(self, parallel: GroupView, cluster_attrs: Sequence[str],
                aggregate: str) -> RepairPrediction:
        predicted = {key: dict(self.fn(key, state))
                     for key, state in parallel.groups.items()}
        return RepairPrediction(self.statistics, predicted)
