"""The Reptile engine and its iterative drill-down session (§2.1, §4.5).

:class:`Reptile` is initialised with a :class:`HierarchicalDataset` (plus
optional feature/model configuration). A :class:`DrillSession` then tracks
the analyst's position — current group-by level and accumulated coordinate
filters — and, per complaint, recommends the next drill-down hierarchy and
the top-K groups to inspect, exactly the loop of the FIST walkthrough:
complain → recommend → drill → repeat.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ..model.features import AuxiliaryFeature, FeaturePlan
from ..relational.cube import Cube, GroupView
from ..relational.dataset import HierarchicalDataset
from ..relational.hierarchy import DrillState
from .complaint import Complaint
from .ranker import Recommendation, rank_candidates
from .repair import ModelRepairer


class SessionError(ValueError):
    """Raised for invalid session operations."""


@dataclass
class ReptileConfig:
    """Engine configuration.

    Parameters
    ----------
    model:
        "multilevel" (default) or "linear".
    n_em_iterations:
        EM iterations for the multi-level model (paper: 20).
    top_k:
        Groups reported per recommendation.
    auto_auxiliary:
        Automatically add features from registered auxiliary datasets when
        the drill-down level contains their join attributes (§3.3.2).
    """

    model: str = "multilevel"
    n_em_iterations: int = 20
    top_k: int = 5
    auto_auxiliary: bool = True


class Reptile:
    """The explanation engine: data in, drill-down recommendations out."""

    def __init__(self, dataset: HierarchicalDataset,
                 feature_plan: FeaturePlan | None = None,
                 config: ReptileConfig | None = None,
                 repairer: ModelRepairer | None = None):
        self.dataset = dataset
        self.config = config or ReptileConfig()
        self.feature_plan = feature_plan or FeaturePlan()
        self.cube = Cube(dataset)
        self._repairer = repairer

    def repairer_for(self, group_attrs: Sequence[str]) -> ModelRepairer:
        """The repair function for a drill-down level.

        Starts from the configured plan and appends auxiliary features that
        became applicable at this level.
        """
        if self._repairer is not None:
            return self._repairer
        plan = self.feature_plan
        if self.config.auto_auxiliary:
            extra = list(plan.extra_specs)
            existing = {f.name for f in extra if isinstance(f, AuxiliaryFeature)}
            for aux in self.dataset.applicable_auxiliary(group_attrs):
                for measure in aux.measures:
                    spec = AuxiliaryFeature(aux, measure)
                    if spec not in extra:
                        extra.append(spec)
            plan = replace(plan, extra_specs=extra)
        return ModelRepairer(feature_plan=plan, model=self.config.model,
                             n_iterations=self.config.n_em_iterations)

    def session(self, group_by: Sequence[str] = (),
                filters: Mapping | None = None) -> "DrillSession":
        """Start an exploration session at the given group-by level.

        Filtering a hierarchy attribute implies that level is already
        drilled (Example 7: the view "District=Ofla, Year" sits at the
        district level of geography, so the next geo drill is village).
        The effective group-by is the union of hierarchy prefixes implied
        by ``group_by`` and ``filters``.
        """
        filters = dict(filters or {})
        depths: dict[str, int] = {h.name: 0 for h in self.dataset.dimensions}
        for attr in list(group_by) + list(filters):
            h = self.dataset.dimensions.hierarchy_of(attr)
            depths[h.name] = max(depths[h.name], h.level(attr) + 1)
        effective: list[str] = []
        for h in self.dataset.dimensions:
            effective.extend(h.prefix(depths[h.name]))
        state = DrillState.from_groupby(self.dataset.dimensions, effective)
        return DrillSession(self, state, filters)

    def recommend(self, complaint: Complaint,
                  group_by: Sequence[str] = (),
                  filters: Mapping | None = None,
                  k: int | None = None) -> Recommendation:
        """One-shot recommendation without an explicit session."""
        return self.session(group_by, filters).recommend(complaint, k=k)


class DrillSession:
    """Tracks the analyst's position in the drill-down workflow."""

    def __init__(self, engine: Reptile, state: DrillState, filters: dict):
        self.engine = engine
        self.state = state
        self.filters = filters
        self.history: list[Recommendation] = []

    # -- views ------------------------------------------------------------------------
    @property
    def group_by(self) -> tuple[str, ...]:
        return self.state.group_by()

    def view(self) -> GroupView:
        """The current aggregate view the analyst is looking at."""
        return self.engine.cube.view(self.group_by, filters=self.filters)

    # -- the complaint loop -------------------------------------------------------------
    def provenance(self, complaint: Complaint) -> dict:
        """Coordinate filter identifying the complaint tuple's provenance."""
        coords = dict(self.filters)
        for attr, value in complaint.coordinates.items():
            if attr not in self.group_by and attr not in self.filters:
                raise SessionError(
                    f"complaint coordinate {attr!r} is not a grouped or "
                    f"filtered attribute of this session")
            coords[attr] = value
        return coords

    def recommend(self, complaint: Complaint,
                  k: int | None = None) -> Recommendation:
        """Recommend the next drill-down hierarchy and its top groups."""
        candidates = [(h.name, attr) for h, attr in self.state.candidates()]
        if not candidates:
            raise SessionError("every hierarchy is fully drilled down")
        repairer = self.engine.repairer_for(
            self.group_by + tuple(a for _, a in candidates))
        recommendation = rank_candidates(
            self.engine.cube, self.group_by, candidates, complaint,
            self.provenance(complaint), repairer)
        top_k = k or self.engine.config.top_k
        for rec in recommendation.per_hierarchy.values():
            rec.groups = rec.top(top_k)
        self.history.append(recommendation)
        return recommendation

    def drill(self, hierarchy: str,
              coordinates: Mapping | None = None) -> "DrillSession":
        """Commit a drill-down, optionally zooming into chosen coordinates.

        ``coordinates`` (e.g. the complaint tuple's key, or a recommended
        group's coordinates) become part of the session filter, mirroring
        the provenance replacement of Example 7.
        """
        self.state = self.state.drill(hierarchy)
        if coordinates:
            for attr, value in coordinates.items():
                self.filters[attr] = value
        return self

    def __repr__(self) -> str:
        return (f"DrillSession(group_by={list(self.group_by)}, "
                f"filters={self.filters})")
