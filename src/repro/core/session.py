"""The Reptile engine and its iterative drill-down session (§2.1, §4.5).

:class:`Reptile` is initialised with a :class:`HierarchicalDataset` (plus
optional feature/model configuration). A :class:`DrillSession` then tracks
the analyst's position — current group-by level and accumulated coordinate
filters — and, per complaint, recommends the next drill-down hierarchy and
the top-K groups to inspect, exactly the loop of the FIST walkthrough:
complain → recommend → drill → repeat.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping, Sequence

from ..factorized.forder import HierarchyPaths
from ..factorized.multiquery import (AggregateSet, HierarchyAggregates,
                                     combine_units, hierarchy_unit,
                                     plan_units)
from ..model.features import AuxiliaryFeature, FeaturePlan
from ..relational.cube import Cube, GroupView
from ..relational.dataset import HierarchicalDataset
from ..relational.hierarchy import DrillState
from .complaint import Complaint
from .ranker import Recommendation, rank_candidates
from .repair import ModelRepairer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..serving.cache import AggregateCache


class SessionError(ValueError):
    """Raised for invalid session operations."""


@dataclass
class ReptileConfig:
    """Engine configuration.

    Parameters
    ----------
    model:
        "multilevel" (default) or "linear".
    n_em_iterations:
        EM iterations for the multi-level model (paper: 20).
    top_k:
        Groups reported per recommendation.
    auto_auxiliary:
        Automatically add features from registered auxiliary datasets when
        the drill-down level contains their join attributes (§3.3.2).
    """

    model: str = "multilevel"
    n_em_iterations: int = 20
    top_k: int = 5
    auto_auxiliary: bool = True


class Reptile:
    """The explanation engine: data in, drill-down recommendations out."""

    def __init__(self, dataset: HierarchicalDataset,
                 feature_plan: FeaturePlan | None = None,
                 config: ReptileConfig | None = None,
                 repairer: ModelRepairer | None = None,
                 cache: "AggregateCache | None" = None):
        self.dataset = dataset
        self.config = config or ReptileConfig()
        self.feature_plan = feature_plan or FeaturePlan()
        self.cache = cache
        self.fingerprint: str | None = None
        if cache is not None:
            from ..serving.cache import dataset_fingerprint
            from ..serving.engine import CachingCube
            # refresh=True: never trust a fingerprint memoized before an
            # in-place mutation — a fresh engine must hash what the data
            # says *now*, or it would silently serve pre-mutation entries.
            self.fingerprint = dataset_fingerprint(dataset, refresh=True)
            self.cube: Cube = CachingCube(dataset, cache, self.fingerprint)
        else:
            self.cube = Cube(dataset)
        self._repairer = repairer
        self._full_paths: dict[str, HierarchyPaths] | None = None
        # Bumped by refresh(); sessions drop their reusable units when
        # their recorded generation no longer matches.
        self._generation = 0
        # Instrumentation: hierarchy-unit builds actually executed (after
        # any cache hit) — the expensive §4.4 recomputations.
        self.unit_builds = 0

    def repairer_for(self, group_attrs: Sequence[str]) -> ModelRepairer:
        """The repair function for a drill-down level.

        Starts from the configured plan and appends auxiliary features that
        became applicable at this level. With a serving cache attached the
        repairer is wrapped so per-view predictions are memoized.
        """
        repairer = self._base_repairer(group_attrs)
        if self.cache is not None:
            from ..serving.engine import CachingRepairer
            return CachingRepairer(repairer, self.cache)
        return repairer

    def _base_repairer(self, group_attrs: Sequence[str]) -> ModelRepairer:
        if self._repairer is not None:
            return self._repairer
        plan = self.feature_plan
        if self.config.auto_auxiliary:
            extra = list(plan.extra_specs)
            for aux in self.dataset.applicable_auxiliary(group_attrs):
                for measure in aux.measures:
                    spec = AuxiliaryFeature(aux, measure)
                    if spec not in extra:
                        extra.append(spec)
            plan = replace(plan, extra_specs=extra)
        return ModelRepairer(feature_plan=plan, model=self.config.model,
                             n_iterations=self.config.n_em_iterations)

    # -- decomposed aggregates (§4.4) ---------------------------------------------------
    def full_paths(self) -> dict[str, HierarchyPaths]:
        """Fully specific root-to-leaf paths of every hierarchy (memoized)."""
        if self._full_paths is None:
            self._full_paths = {
                h.name: HierarchyPaths.from_relation(h, self.dataset.relation)
                for h in self.dataset.dimensions}
        return self._full_paths

    def build_unit(self, paths: HierarchyPaths) -> HierarchyAggregates:
        """One hierarchy's aggregate unit, via the serving cache if present."""
        def compute() -> HierarchyAggregates:
            self.unit_builds += 1
            return hierarchy_unit(paths)
        if self.cache is None:
            return compute()
        key = ("hunit", self.fingerprint, paths.name, paths.attributes)
        return self.cache.get_or_compute(key, compute)

    def refresh(self) -> None:
        """Re-read the dataset after an in-place mutation.

        Rebuilds the cube's leaf states, recomputes the fingerprint (so
        cached entries for the old contents can no longer be hit), and
        drops memoized hierarchy paths; live sessions notice the new
        generation and discard their reusable aggregate units.
        """
        self._full_paths = None
        self._generation += 1
        if self.cache is not None:
            from ..serving.engine import CachingCube
            assert isinstance(self.cube, CachingCube)
            self.fingerprint = self.cube.refresh()
        else:
            self.cube = Cube(self.dataset)

    def session(self, group_by: Sequence[str] = (),
                filters: Mapping | None = None) -> "DrillSession":
        """Start an exploration session at the given group-by level.

        Filtering a hierarchy attribute implies that level is already
        drilled (Example 7: the view "District=Ofla, Year" sits at the
        district level of geography, so the next geo drill is village).
        The effective group-by is the union of hierarchy prefixes implied
        by ``group_by`` and ``filters``.
        """
        filters = dict(filters or {})
        depths: dict[str, int] = {h.name: 0 for h in self.dataset.dimensions}
        for attr in list(group_by) + list(filters):
            h = self.dataset.dimensions.hierarchy_of(attr)
            depths[h.name] = max(depths[h.name], h.level(attr) + 1)
        effective: list[str] = []
        for h in self.dataset.dimensions:
            effective.extend(h.prefix(depths[h.name]))
        state = DrillState.from_groupby(self.dataset.dimensions, effective)
        return DrillSession(self, state, filters)

    def recommend(self, complaint: Complaint,
                  group_by: Sequence[str] = (),
                  filters: Mapping | None = None,
                  k: int | None = None) -> Recommendation:
        """One-shot recommendation without an explicit session."""
        return self.session(group_by, filters).recommend(complaint, k=k)


class DrillSession:
    """Tracks the analyst's position in the drill-down workflow."""

    def __init__(self, engine: Reptile, state: DrillState, filters: dict):
        self.engine = engine
        self.state = state
        self.filters = filters
        self.history: list[Recommendation] = []
        # Incrementally maintained per-hierarchy aggregate units (§4.4):
        # hierarchy name -> HierarchyAggregates at the current drill depth.
        self._units: dict[str, HierarchyAggregates] = {}
        # Hierarchy order of the factorised matrix; each committed drill
        # moves the drilled hierarchy to the end (§3.4).
        self._unit_order: list[str] = [h.name
                                       for h in engine.dataset.dimensions]
        self._units_generation = engine._generation
        # Units this session could not reuse from its previous state.
        self.unit_computations = 0

    # -- views ------------------------------------------------------------------------
    @property
    def group_by(self) -> tuple[str, ...]:
        return self.state.group_by()

    def view(self) -> GroupView:
        """The current aggregate view the analyst is looking at."""
        return self.engine.cube.view(self.group_by, filters=self.filters)

    def aggregates(self) -> AggregateSet:
        """Decomposed aggregates {TOTAL, COUNT, COF} of the current state.

        Maintained incrementally per §4.4: after a :meth:`drill`, only the
        drilled hierarchy's :class:`HierarchyAggregates` unit is
        recomputed; every other hierarchy's unit is reused and merely
        rescaled inside :func:`~repro.factorized.multiquery.combine_units`.
        ``unit_computations`` counts the non-reused units for tests and
        instrumentation. The same §4.4 rules power the Figure 9 benchmark's
        :class:`~repro.factorized.drilldown.DrilldownEngine` (which adds
        tentative candidate evaluation and per-mode accounting) — a change
        to the reuse or ordering rule must land in both.
        """
        def counting_builder(paths: HierarchyPaths) -> HierarchyAggregates:
            self.unit_computations += 1
            return self.engine.build_unit(paths)
        if self._units_generation != self.engine._generation:
            self.reset_aggregates()  # the engine was refreshed under us
        units = plan_units(self.engine.full_paths(), self.state.depths,
                           self._unit_order, self._units,
                           builder=counting_builder)
        self._units = units
        return combine_units([units[n] for n in self._unit_order
                              if n in units])

    def reset_aggregates(self) -> None:
        """Forget reusable units (call after the dataset was mutated)."""
        self._units = {}
        self._units_generation = self.engine._generation

    # -- the complaint loop -------------------------------------------------------------
    def provenance(self, complaint: Complaint) -> dict:
        """Coordinate filter identifying the complaint tuple's provenance."""
        coords = dict(self.filters)
        for attr, value in complaint.coordinates.items():
            if attr not in self.group_by and attr not in self.filters:
                raise SessionError(
                    f"complaint coordinate {attr!r} is not a grouped or "
                    f"filtered attribute of this session")
            coords[attr] = value
        return coords

    def recommend(self, complaint: Complaint,
                  k: int | None = None) -> Recommendation:
        """Recommend the next drill-down hierarchy and its top groups."""
        candidates = [(h.name, attr) for h, attr in self.state.candidates()]
        if not candidates:
            raise SessionError("every hierarchy is fully drilled down")
        repairer = self.engine.repairer_for(
            self.group_by + tuple(a for _, a in candidates))
        top_k = k or self.engine.config.top_k
        # k is threaded into the ranker so the array sweep materializes
        # ScoredGroup records only for the groups the analyst will see.
        recommendation = rank_candidates(
            self.engine.cube, self.group_by, candidates, complaint,
            self.provenance(complaint), repairer, k=top_k)
        for rec in recommendation.per_hierarchy.values():
            rec.groups = rec.top(top_k)
        self.history.append(recommendation)
        return recommendation

    def drill(self, hierarchy: str,
              coordinates: Mapping | None = None) -> "DrillSession":
        """Commit a drill-down, optionally zooming into chosen coordinates.

        ``coordinates`` (e.g. the complaint tuple's key, or a recommended
        group's coordinates) become part of the session filter, mirroring
        the provenance replacement of Example 7.
        """
        self.state = self.state.drill(hierarchy)
        if coordinates:
            for attr, value in coordinates.items():
                self.filters[attr] = value
        # §4.4 maintenance: only the drilled hierarchy's unit is stale;
        # it also moves to the end of the matrix's hierarchy order (§3.4).
        self._units.pop(hierarchy, None)
        if hierarchy in self._unit_order:
            self._unit_order.remove(hierarchy)
            self._unit_order.append(hierarchy)
        return self

    def __repr__(self) -> str:
        return (f"DrillSession(group_by={list(self.group_by)}, "
                f"filters={self.filters})")
